"""Legacy shim so `pip install -e .` works without the `wheel` package.

All real metadata lives in pyproject.toml; this file only enables
setuptools' legacy editable-install path on minimal build environments.
"""
from setuptools import setup

setup()
