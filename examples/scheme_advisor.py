#!/usr/bin/env python
"""Scheme advisor: pick SSS / CSS / CMS for a given layout and mask.

A runtime library implementing HPF PACK must choose a scheme per call.
The paper's Section 6.4 model makes that choice computable from the
distribution and an estimate of the mask density.  This example sweeps
density x block size, predicts the winner with the closed-form model (the
same charges the simulator makes), spot-checks a few cells by full
simulation, and prints the resulting decision map — a practical artifact a
compiler runtime could precompute.

Run:  python examples/scheme_advisor.py
"""

import numpy as np

import repro
from repro.analysis import predict_pack_local_seconds
from repro.core.schemes import Scheme
from repro.hpf import GridLayout
from repro.workloads import random_mask


def advise(shape, grid, block, density, spec=repro.CM5) -> str:
    """Predicted best scheme by total local computation."""
    mask = random_mask(shape, density, seed=0)
    layout = GridLayout.create(shape, grid, block)
    times = {
        s.value: predict_pack_local_seconds(mask, layout, s, spec)
        for s in Scheme
    }
    return min(times, key=times.get)


def main():
    n, procs = 16384, 16
    densities = (0.1, 0.3, 0.5, 0.7, 0.9)
    blocks = (1, 4, 16, 64, 256, 1024)

    print(f"decision map for a 1-D array of {n} elements on {procs} processors")
    print(f"{'density':>8} | " + " ".join(f"W={w:<5}" for w in blocks))
    print("-" * (11 + 8 * len(blocks)))
    decision = {}
    for d in densities:
        row = []
        for w in blocks:
            best = advise((n,), (procs,), w, d)
            decision[(d, w)] = best
            row.append(f"{best:<7}")
        print(f"{d:>8.0%} | " + " ".join(row))

    # Spot-check the prediction against full simulation at three cells.
    print("\nspot checks (simulated local time, ms):")
    rng = np.random.default_rng(0)
    a = rng.random(n)
    for d, w in [(0.1, 1), (0.5, 64), (0.9, 1024)]:
        mask = random_mask((n,), d, seed=0)
        times = {}
        for s in ("sss", "css", "cms"):
            res = repro.pack(a, mask, grid=procs, block=w, scheme=s)
            times[s] = res.local_ms
        simulated_best = min(times, key=times.get)
        print(f"  density {d:.0%}, W={w:<5} predicted={decision[(d, w)]:<4} "
              f"simulated={simulated_best:<4} "
              + " ".join(f"{s}={t:.3f}" for s, t in times.items()))
        assert simulated_best == decision[(d, w)], "model/simulation disagree"

    print("\nThe paper's rules of thumb emerge: SSS for cyclic layouts and "
          "sparse masks,\nthe compact schemes for large blocks, CMS "
          "increasingly dominant as density rises.")


if __name__ == "__main__":
    main()
