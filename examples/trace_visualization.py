#!/usr/bin/env python
"""Visualizing a PACK execution: ASCII timeline + Chrome trace export.

Attaches a :class:`repro.machine.Tracer` to the machine, runs one PACK,
prints the per-rank phase timeline and the communication matrix, and
writes a Chrome trace-event file loadable in chrome://tracing or
https://ui.perfetto.dev — every message becomes a flow arrow between rank
tracks, every phase a colored span.

Run:  python examples/trace_visualization.py [out.trace.json]
"""

import json
import sys

import numpy as np

from repro.core.pack import pack_program
from repro.core.schemes import PackConfig
from repro.hpf import GridLayout
from repro.machine import CM5, Machine, Tracer
from repro.workloads import random_mask


def main(out_path: str = "pack.trace.json"):
    n, procs, block = 2048, 8, 16
    rng = np.random.default_rng(0)
    a = rng.random(n)
    m = random_mask((n,), 0.5, seed=4)
    layout = GridLayout.create((n,), (procs,), block=block)
    config = PackConfig(scheme="cms")

    tracer = Tracer()
    machine = Machine(procs, CM5, tracer=tracer)
    run = machine.run(
        pack_program,
        rank_args=[
            (ab, mb, layout, config)
            for ab, mb in zip(layout.scatter(a), layout.scatter(m))
        ],
    )

    print(f"PACK N={n} on {procs} processors, CYCLIC({block}), CMS")
    print(f"simulated {run.elapsed * 1e3:.3f} ms; trace: {tracer.summary()}\n")

    print("phase timeline (one lane per rank):")
    print(tracer.timeline(procs, width=70))

    print("\ncommunication matrix (words, source row -> dest column):")
    matrix = tracer.communication_matrix(procs)
    header = "     " + " ".join(f"{d:>5d}" for d in range(procs))
    print(header)
    for s in range(procs):
        print(f"{s:>4d} " + " ".join(f"{matrix[s, d]:>5d}" for d in range(procs)))

    events = tracer.to_chrome_trace(procs)
    with open(out_path, "w") as fh:
        json.dump(events, fh)
    print(f"\nwrote {len(events)} trace events to {out_path}")
    print("open chrome://tracing (or https://ui.perfetto.dev) and load it to")
    print("see phases as spans and every message as a flow arrow.")


if __name__ == "__main__":
    main(*sys.argv[1:2])
