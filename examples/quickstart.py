#!/usr/bin/env python
"""Quickstart: parallel PACK/UNPACK on a simulated 16-processor CM-5.

Runs the paper's Figure 1 setting (a 1-D array distributed block-cyclic(2)
over 4 processors) and a 2-D example, validating every result against the
serial Fortran 90 semantics and printing the simulated phase times.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro


def figure1_example():
    """The paper's running example: N=16, block-cyclic(2), P=4, Size=10."""
    print("=" * 64)
    print("Figure 1 example: A(16), block-cyclic(2) on 4 processors")
    a = np.arange(16.0)
    m = np.array([1, 0, 1, 1, 0, 1, 1, 1, 0, 0, 1, 1, 0, 1, 0, 1], dtype=bool)

    result = repro.pack(a, m, grid=4, block=2, scheme="cms")
    print(f"mask:         {m.astype(int)}")
    print(f"packed:       {result.vector}")
    print(f"Size:         {result.size}")
    print(f"simulated:    total {result.total_ms:.3f} ms "
          f"(local {result.local_ms:.3f}, prs {result.prs_ms:.3f}, "
          f"m2m {result.m2m_ms:.3f})")

    # And back: UNPACK restores the masked positions (zeros elsewhere).
    restored = repro.unpack(
        result.vector, m, np.zeros_like(a), grid=4, block=2, scheme="css"
    )
    print(f"unpacked:     {restored.array}")
    assert np.array_equal(restored.array[m], a[m])


def two_dimensional_example():
    """PACK on a 2-D block-cyclic array over a 2x2 processor grid."""
    print("=" * 64)
    print("2-D example: 32x32 array, CYCLIC(4) on a 2x2 grid")
    rng = np.random.default_rng(7)
    a = rng.random((32, 32))
    m = a > 0.6  # data-dependent mask

    for scheme in ("sss", "css", "cms"):
        result = repro.pack(a, m, grid=(2, 2), block=(4, 4), scheme=scheme)
        print(f"  {scheme.upper()}: size={result.size}  "
              f"total={result.total_ms:7.3f} ms  local={result.local_ms:7.3f} ms  "
              f"words={result.total_words}")

    # The result is exactly Fortran 90 PACK(a, m).
    expected = repro.pack_reference(a, m)
    result = repro.pack(a, m, grid=(2, 2), block=(4, 4))
    assert np.array_equal(result.vector, expected)
    print("  matches serial PACK semantics: OK")


def custom_machine_example():
    """Machines are parameterizable: compare CM-5 against a commodity
    cluster profile whose start-up cost is ~7x larger."""
    print("=" * 64)
    print("Machine sensitivity: CM-5 vs Ethernet-cluster profile")
    rng = np.random.default_rng(11)
    a = rng.random(4096)
    m = rng.random(4096) < 0.5
    for spec in (repro.CM5, repro.ETHERNET_CLUSTER):
        result = repro.pack(a, m, grid=16, block=8, scheme="cms", spec=spec)
        print(f"  {spec.name:18s} total={result.total_ms:8.3f} ms  "
              f"(m2m {result.m2m_ms:7.3f} ms)")


if __name__ == "__main__":
    figure1_example()
    two_dimensional_example()
    custom_machine_example()
    print("=" * 64)
    print("quickstart: all checks passed")
