#!/usr/bin/env python
"""Particle-in-cell stream compaction with parallel PACK.

The motivating HPF workload for PACK: a particle simulation marks
particles dead (absorbed, out of bounds) each timestep and compacts the
live ones into a dense vector so subsequent pushes stay load balanced.
In HPF this is exactly ``new = PACK(particles, alive)``.

This example runs a toy 1-D particle population over several timesteps on
the simulated 16-processor CM-5, compacting with each of the paper's
schemes, and reports how the compaction cost tracks the survivor density
— reproducing in miniature the paper's density findings.

Run:  python examples/particle_compaction.py
"""

import numpy as np

import repro


def step_population(positions: np.ndarray, rng) -> np.ndarray:
    """Advance particles; those leaving [0, 1) are absorbed (die)."""
    return positions + rng.normal(0.0, 0.08, positions.size)


def main():
    rng = np.random.default_rng(42)
    n = 8192                 # particle slots (kept power-of-two for layouts)
    grid = 16                # processors
    block = 32               # CYCLIC(32) distribution of the particle array
    positions = rng.random(n)

    print(f"compacting a {n}-particle population on {grid} simulated processors")
    print(f"{'step':>4} {'alive':>6} {'density':>8} "
          f"{'sss ms':>8} {'css ms':>8} {'cms ms':>8} {'best':>5}")

    for step in range(6):
        positions = step_population(positions, rng)
        alive = (positions >= 0.0) & (positions < 1.0)

        times = {}
        packed = None
        for scheme in ("sss", "css", "cms"):
            res = repro.pack(positions, alive, grid=grid, block=block,
                             scheme=scheme)
            times[scheme] = res.total_ms
            packed = res.vector
        best = min(times, key=times.get)
        density = alive.mean()
        print(f"{step:>4} {alive.sum():>6} {density:>8.1%} "
              f"{times['sss']:>8.3f} {times['css']:>8.3f} "
              f"{times['cms']:>8.3f} {best:>5}")

        # Survivors get re-seeded into the fixed-size population: the
        # compacted vector fills the front, fresh particles the back —
        # an UNPACK with a "front slots" mask.
        survivors = packed
        refill = rng.random(n - survivors.size)
        front = np.arange(n) < survivors.size
        merged = repro.unpack(
            survivors, front, np.concatenate([np.zeros(survivors.size), refill]),
            grid=grid, block=block, scheme="css",
        )
        positions = merged.array

    print("\nWith a dense survivor population the compact message scheme "
          "wins;\nthe simple storage scheme only competes when few "
          "particles survive —\nthe paper's Figure 4 finding.")


if __name__ == "__main__":
    main()
