#!/usr/bin/env python
"""A miniature HPF runtime: what a compiler would generate around PACK.

An HPF compiler translating ``V = PACK(A, M)`` cannot know the mask
density or the best scheme at compile time.  A production runtime
therefore (1) COUNTs the mask to size the result, (2) consults a cost
model to pick the scheme — and a cyclic-to-block pre-pass when the
distribution warrants it — then (3) executes and (4) validates in debug
builds.  This example wires those stages together out of the library's
public pieces, over a few caller "call sites" with very different
characteristics.

Run:  python examples/hpf_runtime.py
"""

import numpy as np

import repro
from repro.analysis import predict_pack_seconds
from repro.core import count
from repro.core.schemes import Scheme
from repro.hpf import GridLayout
from repro.workloads import lt_mask_2d, random_mask


def runtime_pack(array, mask, grid, block, spec=repro.CM5, debug=True):
    """The 'compiler runtime' entry point: plan, then execute."""
    layout = GridLayout.create(array.shape, grid, block)

    # --- plan: predict every strategy's total cost from the layout + mask
    size = count(mask, grid=grid, block=block, spec=spec, validate=False)
    candidates = {}
    for scheme in Scheme:
        pred = predict_pack_seconds(mask, layout, scheme, spec)
        candidates[(scheme.value, None)] = pred.total
    # Cyclic layouts additionally consider the Section 6.3 pre-passes
    # (their detection cost is layout-derived; rough out both).
    if all(d.is_cyclic for d in layout.dims):
        for variant in ("selected", "whole"):
            probe = repro.pack(array, mask, grid=grid, block=block, scheme="cms",
                               spec=spec, redistribute=variant, validate=False)
            candidates[("cms", variant)] = probe.total_ms / 1e3

    (scheme, redistribute), planned = min(
        candidates.items(), key=lambda kv: kv[1]
    )

    # --- execute
    result = repro.pack(
        array, mask, grid=grid, block=block, scheme=scheme, spec=spec,
        redistribute=redistribute, validate=debug,
    )
    assert result.size == size
    return result, scheme, redistribute, planned


def main():
    rng = np.random.default_rng(5)
    call_sites = [
        ("dense mask, large blocks",
         rng.random(8192), random_mask((8192,), 0.9, 1), (16,), 64),
        ("sparse mask, cyclic",
         rng.random(8192), random_mask((8192,), 0.1, 2), (16,), "cyclic"),
        ("2-D triangle, blocked",
         rng.random((64, 64)), lt_mask_2d((64, 64)), (4, 4), (8, 8)),
        ("2-D dense, cyclic",
         rng.random((64, 64)), random_mask((64, 64), 0.7, 3), (4, 4), "cyclic"),
    ]

    print(f"{'call site':28} {'chosen':16} {'planned ms':>10} {'actual ms':>10}")
    for name, a, m, grid, block in call_sites:
        result, scheme, red, planned = runtime_pack(a, m, grid, block)
        label = scheme + (f"+red.{red[0]}" if red else "")
        print(f"{name:28} {label:16} {planned * 1e3:>10.3f} {result.total_ms:>10.3f}")
        # debug build: results already validated against PACK semantics.

    print("\nThe runtime picks SSS for sparse/cyclic sites, CMS for "
          "dense/blocked ones,\nand a redistribution pre-pass where "
          "Section 6.3 says it pays — all from\nthe cost model, with the "
          "oracle validation as the debug-build safety net.")


if __name__ == "__main__":
    main()
