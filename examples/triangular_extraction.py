#!/usr/bin/env python
"""Extracting the strictly lower triangle of a distributed matrix.

The paper's structured 2-D workload ("LT"): mask true where the dimension-1
index exceeds the dimension-0 index.  Packing a triangle out of a dense
block-cyclic matrix is the HPF idiom for preparing compact factor storage
(e.g. the multipliers of an LU factorization) — and it stresses PACK with
a *spatially skewed* mask: processors near the diagonal own mixed slices,
corner processors own all-true or all-false blocks.

This example packs the triangle, checks it against numpy's ``tril``
extraction, then compares block sizes — showing the paper's central result
that the block-cyclic block size, not the mask, governs the ranking cost.

Run:  python examples/triangular_extraction.py
"""

import numpy as np

import repro
from repro.workloads import lt_mask_2d


def main():
    n = 64
    rng = np.random.default_rng(3)
    matrix = rng.random((n, n))
    mask = lt_mask_2d((n, n))

    # Serial truth: strictly-lower-triangular elements in row-major order.
    expected = matrix[np.tril_indices(n, k=-1)]

    print(f"packing the strict lower triangle of a {n}x{n} matrix "
          f"on a 4x4 simulated grid")
    print(f"{'W':>4} {'total ms':>9} {'local ms':>9} {'prs ms':>8} "
          f"{'m2m ms':>8} {'words':>7}")
    for w in (1, 2, 4, 8, 16):
        res = repro.pack(matrix, mask, grid=(4, 4), block=(w, w), scheme="cms")
        assert np.array_equal(res.vector, expected)
        print(f"{w:>4} {res.total_ms:>9.3f} {res.local_ms:>9.3f} "
              f"{res.prs_ms:>8.3f} {res.m2m_ms:>8.3f} {res.total_words:>7}")

    print("\nRanking cost falls monotonically with the block size even "
          "though the\ntriangle mask is maximally skewed — the paper's "
          "claim that the ranking\noverhead depends on the distribution, "
          "not the mask.")

    # Round-trip: scatter the triangle back into a zero matrix.
    res = repro.pack(matrix, mask, grid=(4, 4), block=(4, 4), scheme="cms")
    restored = repro.unpack(
        res.vector, mask, np.zeros_like(matrix), grid=(4, 4), block=(4, 4),
        scheme="css",
    )
    assert np.array_equal(np.tril(restored.array, k=-1), restored.array)
    assert np.array_equal(restored.array[mask], matrix[mask])
    print("lower-triangle round trip (PACK -> UNPACK): OK")


if __name__ == "__main__":
    main()
