#!/usr/bin/env python
"""Weak-scaling study: 16 -> 64 -> 256 simulated processors.

Reproduces the paper's 256-processor experiment in miniature: hold the
local array size fixed, grow the machine, and watch communication take
over the total — then show how the PACK totals respond to the machine's
tau/mu balance by re-running the largest configuration on the
ethernet-cluster profile.

Run:  python examples/weak_scaling_study.py
"""

import numpy as np

import repro
from repro.workloads import random_mask


def run_at(procs: int, local: int, spec) -> repro.PackResult:
    n = procs * local
    rng = np.random.default_rng(1)
    a = rng.random(n)
    m = random_mask((n,), 0.5, seed=2)
    return repro.pack(a, m, grid=procs, block=8, scheme="cms", spec=spec,
                      validate=False)


def main():
    local = 2048
    print(f"weak scaling, fixed local size {local}, CYCLIC(8), 50% mask, CMS")
    print(f"{'P':>4} {'N':>8} {'total ms':>9} {'local ms':>9} "
          f"{'prs ms':>8} {'m2m ms':>8} {'comm %':>7}")
    for procs in (16, 64, 256):
        res = run_at(procs, local, repro.CM5)
        comm = res.prs_ms + res.m2m_ms
        print(f"{procs:>4} {procs * local:>8} {res.total_ms:>9.3f} "
              f"{res.local_ms:>9.3f} {res.prs_ms:>8.3f} {res.m2m_ms:>8.3f} "
              f"{comm / res.total_ms:>7.1%}")

    print("\nsame 256-processor run on a commodity cluster (7x start-up):")
    res = run_at(256, local, repro.ETHERNET_CLUSTER)
    comm = res.prs_ms + res.m2m_ms
    print(f"{256:>4} {256 * local:>8} {res.total_ms:>9.3f} "
          f"{res.local_ms:>9.3f} {res.prs_ms:>8.3f} {res.m2m_ms:>8.3f} "
          f"{comm / res.total_ms:>7.1%}")
    print("\nLocal computation stays flat under weak scaling while the "
          "many-to-many\nexchange grows with P — the paper's 256-processor "
          "observation; a higher\nstart-up machine only amplifies it.")


if __name__ == "__main__":
    main()
