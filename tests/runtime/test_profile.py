"""Cross-rank runtime profiling: merged traces, comm matrices, domains.

Covers the :mod:`repro.obs.runtime` seam from both ends: the mp backend's
shared-memory span recording (merged into one wall-aligned trace) and the
simulator adapter (same shape, simulated clock, bit-identical results).
"""

import json

import numpy as np
import pytest

from repro.machine import MachineSpec
from repro.machine.errors import TimeDomainError
from repro.obs import RUNTIME_PHASES, RuntimeProfiler, validate_chrome_trace
from repro.runtime import MpBackend, SimBackend
from repro.runtime.primitives import allreduce, barrier

SPEC = MachineSpec(tau=10e-6, mu=1e-6, delta=0.1e-6, name="test")
NPROCS = 4


def _comm_program(ctx):
    """Seeded deterministic all-pairs exchange plus one collective.

    Each rank sends one seeded, variably-sized array to every other rank
    (tag = distance), receives its P-1 counterparts, and joins an
    allreduce — so the profile sees point-to-point traffic of known
    deterministic volume *and* collective protocol messages that must
    stay out of the comm matrix.
    """
    ctx.phase("exchange")
    rng = np.random.default_rng(1000 + ctx.rank)
    total = 0.0
    for k in range(1, ctx.size):
        dest = (ctx.rank + k) % ctx.size
        payload = rng.random(int(rng.integers(8, 64)))
        ctx.send(dest, payload, tag=k)
    for k in range(1, ctx.size):
        msg = yield ctx.recv((ctx.rank - k) % ctx.size, k)
        total += float(np.sum(msg.payload))
    ctx.phase("reduce")
    gang_total = yield from allreduce(ctx, total, key=7)
    yield from barrier(ctx, key=8)
    return gang_total


def _mp_profile(nprocs=NPROCS, **kw):
    prof = RuntimeProfiler(**kw)
    run = MpBackend(timeout=120.0).run_spmd(
        _comm_program, nprocs, spec=SPEC, profile=prof
    )
    assert prof.profile is not None
    return run, prof.profile


@pytest.fixture(scope="module")
def mp_profile():
    """One profiled 4-rank mp run shared by the read-only assertions."""
    return _mp_profile()


class TestMpTraceMerge:
    def test_trace_is_valid_chrome_json(self, tmp_path, mp_profile):
        _, profile = mp_profile
        out = tmp_path / "trace.json"
        n = profile.write_chrome_trace(out)
        doc = json.loads(out.read_text())
        assert len(doc["traceEvents"]) == n
        validate_chrome_trace(doc["traceEvents"])
        assert doc["otherData"]["time_domain"] == "wall"
        assert doc["otherData"]["timestamp_unit"] == "wall microseconds"
        assert doc["otherData"]["nprocs"] == NPROCS

    def test_ranks_map_to_distinct_lanes(self, mp_profile):
        _, profile = mp_profile
        events = profile.to_chrome_trace()
        lane_tids = {
            e["tid"] for e in events
            if e.get("cat") == "runtime" and e["ph"] == "X"
        }
        assert lane_tids == set(range(NPROCS))
        gang_tids = {e["tid"] for e in events if e.get("cat") == "gang"}
        assert gang_tids == {NPROCS}  # the host lane is its own track
        names = {
            e["tid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names[NPROCS] == "gang (host)"
        assert all(names[r] == f"rank {r}" for r in range(NPROCS))

    def test_per_rank_timestamps_monotonic(self, mp_profile):
        _, profile = mp_profile
        assert len(profile.lanes) == NPROCS
        for lane in profile.lanes:
            assert lane.t_start <= lane.t_ready <= lane.t_done
            starts = [t0 for _, t0, t1 in lane.spans]
            assert starts == sorted(starts)  # single writer, time order
            assert all(t1 >= t0 for _, t0, t1 in lane.spans)
            assert all(t0 >= 0.0 for _, t0, _ in lane.spans)

    def test_attribution_sums_to_host_wall(self, mp_profile):
        _, profile = mp_profile
        assert profile.time_domain == "wall"
        assert profile.backend == "mp"
        assert set(profile.phase_seconds) <= set(RUNTIME_PHASES)
        # The compute residual makes the table telescope to the total.
        assert profile.attributed_fraction == pytest.approx(1.0, abs=1e-6)
        assert profile.dropped_events == 0

    def test_gang_spans_cover_host_side(self, mp_profile):
        _, profile = mp_profile
        names = [name for name, _, _ in profile.gang_spans]
        assert names == ["shm_setup", "spawn", "collect", "reap"]


class TestCommMatrix:
    def test_conservation(self, mp_profile):
        run, profile = mp_profile
        profile.validate_conservation()  # raises on any violation
        # All-pairs: every off-diagonal cell is exactly one message.
        expect = [
            [0 if r == c else 1 for c in range(NPROCS)] for r in range(NPROCS)
        ]
        assert profile.comm_msgs == expect
        assert [s.sends for s in run.stats] == profile.sends_per_rank

    def test_matrix_is_deterministic(self, mp_profile):
        _, first = mp_profile
        _, second = _mp_profile()
        second.assert_comparable(first)
        assert second.comm_msgs == first.comm_msgs
        assert second.comm_bytes == first.comm_bytes  # seeded payload sizes
        assert second.pickle_bytes_per_rank == first.pickle_bytes_per_rank

    def test_matrix_dict_is_self_checking(self, tmp_path, mp_profile):
        _, profile = mp_profile
        out = tmp_path / "matrix.json"
        out.write_text(json.dumps(profile.matrix_dict()))
        doc = json.loads(out.read_text())
        n = doc["nprocs"]
        assert doc["byte_meaning"] == (
            "encoded wire bytes" if doc["transport"] == "ring"
            else "pickled payload bytes"
        )
        for r in range(n):
            assert sum(doc["msgs"][r]) == doc["sends_per_rank"][r]
            col = sum(doc["msgs"][q][r] for q in range(n))
            assert col == doc["recvs_per_rank"][r]
            col_b = sum(doc["bytes"][q][r] for q in range(n))
            assert col_b == doc["recv_bytes_per_rank"][r]

    def test_conservation_violation_is_named(self, mp_profile):
        _, profile = mp_profile
        import copy

        broken = copy.deepcopy(profile)
        broken.comm_msgs[2][3] += 1
        with pytest.raises(ValueError, match="row 2"):
            broken.validate_conservation()


class TestTimeDomains:
    def test_cross_domain_comparison_refused(self, mp_profile):
        _, wall = mp_profile
        prof = RuntimeProfiler()
        SimBackend().run_spmd(_comm_program, NPROCS, spec=SPEC, profile=prof)
        sim = prof.profile
        assert sim.time_domain == "simulated"
        with pytest.raises(TimeDomainError):
            sim.assert_comparable(wall)
        with pytest.raises(TimeDomainError):
            wall.assert_comparable(sim)

    def test_sim_trace_stamped_simulated(self, tmp_path):
        prof = RuntimeProfiler()
        SimBackend().run_spmd(_comm_program, NPROCS, spec=SPEC, profile=prof)
        out = tmp_path / "sim.trace.json"
        prof.profile.write_chrome_trace(out)
        doc = json.loads(out.read_text())
        assert doc["otherData"]["time_domain"] == "simulated"


class TestSimBitIdentity:
    def test_profiling_does_not_change_results_or_clocks(self):
        plain = SimBackend().run_spmd(_comm_program, NPROCS, spec=SPEC)
        prof = RuntimeProfiler()
        profiled = SimBackend().run_spmd(
            _comm_program, NPROCS, spec=SPEC, profile=prof
        )
        assert profiled.results == plain.results
        assert profiled.elapsed == plain.elapsed
        assert profiled.phase_breakdown() == plain.phase_breakdown()

    def test_sim_profile_shape(self):
        prof = RuntimeProfiler()
        run = SimBackend().run_spmd(_comm_program, NPROCS, spec=SPEC, profile=prof)
        profile = prof.profile
        assert profile.nprocs == NPROCS
        assert profile.total_seconds == run.elapsed
        # Simulated attribution covers the elapsed clock by construction.
        assert profile.attributed_fraction == pytest.approx(1.0, abs=1e-9)
        assert set(profile.phase_seconds)  # algorithm's own phase labels
        validate_chrome_trace(profile.to_chrome_trace())


class TestProfilerHandle:
    def test_ring_capacity_validated(self):
        with pytest.raises(ValueError, match="ring_capacity"):
            RuntimeProfiler(ring_capacity=4)

    def test_finish_requires_a_run(self):
        with pytest.raises(ValueError, match="no profile recorded"):
            RuntimeProfiler().finish(op="pack")
