"""The backend-agnostic primitive set, on both backends."""

import numpy as np
import pytest

from repro.machine import MachineSpec
from repro.machine.errors import CollectiveMismatchError
from repro.runtime import (
    MpBackend,
    SimBackend,
    allreduce,
    alltoallv,
    barrier,
    exclusive_prefix_sum,
)

SPEC = MachineSpec(tau=10e-6, mu=1e-6, delta=0.1e-6, name="test")


@pytest.fixture(params=["sim", "mp"])
def backend(request):
    if request.param == "sim":
        return SimBackend()
    return MpBackend(timeout=60)


def _run(backend, program, nprocs=4, **kwargs):
    return backend.run_spmd(program, nprocs, spec=SPEC, **kwargs)


class TestCollectives:
    def test_barrier_then_allreduce(self, backend):
        def prog(ctx):
            yield from barrier(ctx)
            total = yield from allreduce(ctx, ctx.rank + 1)
            return total

        run = _run(backend, prog)
        assert run.results == [10, 10, 10, 10]

    def test_allreduce_custom_op(self, backend):
        def prog(ctx):
            biggest = yield from allreduce(ctx, (ctx.rank * 7) % 5, op=max)
            return biggest

        run = _run(backend, prog)
        assert run.results == [max((r * 7) % 5 for r in range(4))] * 4

    def test_allreduce_noncommutative_is_rank_ordered(self, backend):
        def prog(ctx):
            order = yield from allreduce(ctx, [ctx.rank], op=lambda a, b: a + b)
            return order

        run = _run(backend, prog)
        assert run.results == [[0, 1, 2, 3]] * 4

    def test_exclusive_prefix_sum(self, backend):
        def prog(ctx):
            off = yield from exclusive_prefix_sum(ctx, ctx.rank + 1)
            return off

        run = _run(backend, prog)
        assert run.results == [0, 1, 3, 6]

    def test_subgroup_collective(self, backend):
        def prog(ctx):
            if ctx.rank in (1, 3):
                total = yield from allreduce(ctx, ctx.rank, group=(1, 3))
                return total
            return None

        run = _run(backend, prog)
        assert run.results == [None, 4, None, 4]

    def test_rank_outside_group_raises(self, backend):
        def prog(ctx):
            yield from barrier(ctx, group=(0, 1))
            return True

        with pytest.raises(Exception) as err:
            _run(backend, prog, nprocs=3)
        # sim raises CollectiveMismatchError directly; mp wraps the
        # originating rank's traceback in MpGangError.
        assert "group" in str(err.value)


class TestPointToPoint:
    def test_ring(self, backend):
        def prog(ctx):
            ctx.send((ctx.rank + 1) % ctx.size,
                     np.array([ctx.rank], dtype=np.int64), tag=9)
            msg = yield ctx.recv((ctx.rank - 1) % ctx.size, 9)
            return int(np.asarray(msg.payload)[0])

        run = _run(backend, prog)
        assert run.results == [3, 0, 1, 2]

    def test_fifo_per_pair(self, backend):
        def prog(ctx):
            if ctx.rank == 0:
                for i in range(5):
                    ctx.send(1, i, tag=2)
                return None
            if ctx.rank == 1:
                got = []
                for _ in range(5):
                    msg = yield ctx.recv(0, 2)
                    got.append(msg.payload)
                return got
            return None

        run = _run(backend, prog, nprocs=2)
        assert run.results[1] == [0, 1, 2, 3, 4]

    def test_alltoallv(self, backend):
        def prog(ctx):
            outgoing = {
                q: np.full(ctx.rank + 1, ctx.rank * 10 + q, dtype=np.int64)
                for q in range(ctx.size) if q != ctx.rank
            }
            incoming = yield from alltoallv(ctx, outgoing)
            return {int(q): np.asarray(v).tolist()
                    for q, v in incoming.items()}

        run = _run(backend, prog, nprocs=3)
        for r, got in enumerate(run.results):
            for q in range(3):
                if q == r:
                    continue
                assert got[q] == [q * 10 + r] * (q + 1), (r, q)


class TestMixedTraffic:
    def test_collective_then_p2p_interleaving(self, backend):
        """Protocol messages and program messages must not steal each
        other even when a rank races ahead of the collective."""

        def prog(ctx):
            off = yield from exclusive_prefix_sum(ctx, 1)
            ctx.send((ctx.rank + 1) % ctx.size, off, tag=5)
            msg = yield ctx.recv((ctx.rank - 1) % ctx.size, 5)
            total = yield from allreduce(ctx, msg.payload)
            return total

        run = _run(backend, prog)
        assert run.results == [sum(range(4))] * 4
