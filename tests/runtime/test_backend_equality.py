"""MpBackend ≡ SimBackend ≡ serial oracle over a seeded configuration grid.

The mp backend must produce bit-identical *results* to the simulator (and
therefore to the serial reference) for every legal configuration — only
the times differ, and those live in a different time domain.  The grid
below covers distributions (BLOCK, CYCLIC, CYCLIC(k)), densities
including both degenerate extremes, dtypes, multi-dimensional arrays,
single-rank / single-element degenerates, and padded result vectors.  Rank counts stay
small: each mp case forks a real process gang.
"""

import numpy as np
import pytest

from repro.core.api import pack, ranking, unpack
from repro.machine import MachineSpec
from repro.serial.reference import mask_ranks, pack_reference, unpack_reference

SPEC = MachineSpec(tau=10e-6, mu=1e-6, delta=0.1e-6, name="test")
MP_KW = dict(spec=SPEC, validate=False)


def _mp():
    from repro.runtime import MpBackend

    return MpBackend(timeout=120)


# (name, shape, grid, block, density, dtype, scheme)
CASES = [
    ("block_1d", (64,), (4,), "block", 0.5, np.float64, "cms"),
    ("cyclic_1d", (63,), (3,), "cyclic", 0.4, np.float64, "sss"),
    ("cyclic_k", (48,), (4,), 3, 0.6, np.float64, "css"),
    ("int_dtype", (40,), (2,), "block", 0.5, np.int64, "cms"),
    ("float32", (32,), (2,), "block", 0.7, np.float32, "css"),
    ("dense", (24,), (2,), "block", 1.0, np.float64, "cms"),
    ("all_false", (24,), (2,), "block", 0.0, np.float64, "cms"),
    ("grid_2d", (8, 12), (2, 2), "block", 0.5, np.float64, "cms"),
    ("grid_2d_cyclic", (6, 8), (2, 2), "cyclic", 0.3, np.float64, "sss"),
    ("single_rank", (16,), (1,), "block", 0.5, np.float64, "cms"),
    ("single_elem", (1,), (1,), "block", 1.0, np.float64, "cms"),
    ("cyclic_dense", (12,), (4,), "cyclic", 0.8, np.float64, "css"),
]


def _inputs(name, shape, density, dtype):
    rng = np.random.default_rng(abs(hash(name)) % (2**32))
    n = int(np.prod(shape))
    if np.issubdtype(dtype, np.integer):
        array = rng.integers(-100, 100, size=shape).astype(dtype)
    else:
        array = rng.random(shape).astype(dtype)
    if density >= 1.0:
        mask = np.ones(shape, dtype=bool)
    elif density <= 0.0:
        mask = np.zeros(shape, dtype=bool)
    else:
        mask = rng.random(shape) < density
    return array, mask


@pytest.mark.parametrize(
    "name,shape,grid,block,density,dtype,scheme",
    CASES, ids=[c[0] for c in CASES],
)
def test_pack_mp_equals_sim_equals_oracle(
    name, shape, grid, block, density, dtype, scheme
):
    array, mask = _inputs(name, shape, density, dtype)
    sim = pack(array, mask, grid=grid, block=block, scheme=scheme,
               backend="sim", **MP_KW)
    mp = pack(array, mask, grid=grid, block=block, scheme=scheme,
              backend=_mp(), **MP_KW)
    expected = pack_reference(array, mask)
    assert mp.size == sim.size == int(mask.sum())
    np.testing.assert_array_equal(mp.vector, sim.vector)
    np.testing.assert_array_equal(mp.vector, expected)
    assert mp.vector.dtype == sim.vector.dtype


@pytest.mark.parametrize(
    "name,shape,grid,block,density,dtype,scheme",
    [c for c in CASES if c[6] in ("sss", "css")][:4],
    ids=[c[0] for c in CASES if c[6] in ("sss", "css")][:4],
)
def test_unpack_mp_equals_sim_equals_oracle(
    name, shape, grid, block, density, dtype, scheme
):
    array, mask = _inputs(name, shape, density, dtype)
    rng = np.random.default_rng(7)
    size = int(mask.sum())
    vector = (rng.random(size) * 100).astype(dtype)
    sim = unpack(vector, mask, array, grid=grid, block=block, scheme=scheme,
                 backend="sim", **MP_KW)
    mp = unpack(vector, mask, array, grid=grid, block=block, scheme=scheme,
                backend=_mp(), **MP_KW)
    expected = unpack_reference(vector, mask, array)
    np.testing.assert_array_equal(mp.array, sim.array)
    np.testing.assert_array_equal(mp.array, expected)


@pytest.mark.parametrize("grid,block", [((4,), "block"), ((3,), "cyclic")])
def test_ranking_mp_equals_sim_equals_oracle(grid, block):
    rng = np.random.default_rng(11)
    mask = rng.random(36) < 0.5
    sim = ranking(mask, grid=grid, block=block, backend="sim", **MP_KW)
    mp = ranking(mask, grid=grid, block=block, backend=_mp(), **MP_KW)
    np.testing.assert_array_equal(mp.ranks, sim.ranks)
    np.testing.assert_array_equal(mp.ranks, mask_ranks(mask))
    assert mp.size == sim.size


def test_pack_with_pad_vector_mp_equals_sim():
    rng = np.random.default_rng(13)
    array = rng.random(30)
    mask = rng.random(30) < 0.5
    pad = rng.random(30)  # longer than Size: tail pads the result
    sim = pack(array, mask, grid=(3,), vector=pad, backend="sim", **MP_KW)
    mp = pack(array, mask, grid=(3,), vector=pad, backend=_mp(), **MP_KW)
    np.testing.assert_array_equal(mp.vector, sim.vector)
    np.testing.assert_array_equal(mp.vector, pack_reference(array, mask, pad))


def test_mp_validates_against_oracle_inline():
    """validate=True runs the full oracle check inside pack() itself."""
    rng = np.random.default_rng(17)
    array = rng.random(48)
    mask = rng.random(48) < 0.5
    res = pack(array, mask, grid=(4,), spec=SPEC, validate=True,
               backend=_mp())
    assert res.size == int(mask.sum())
