"""Shared fixtures for the runtime suite: the mp leak check.

Every test in this directory runs under an autouse fixture asserting
that it left behind **zero** gang children, **zero** POSIX shared-memory
segments (``/dev/shm/psm_*``) and **zero** named semaphores
(``/dev/shm/sem.*`` — each ``multiprocessing.Queue`` owns several; a
leaked queue is a leaked semaphore).  The default supervisor gang is
shut down between tests, so ``backend="supervised"`` may be used freely
without tripping the child check.

Semaphores are unlinked when their queue is garbage-collected, so the
comparison retries with ``gc.collect()`` for a few seconds before
declaring a leak — CPython frees them promptly, but not synchronously
with test teardown.
"""

import gc
import multiprocessing
import os
import time

import pytest

SHM_DIR = "/dev/shm"
#: Entry prefixes owned by multiprocessing: shm segments and semaphores.
SHM_PREFIXES = ("psm_", "sem.")


def shm_entries():
    """Current multiprocessing-owned /dev/shm entries (segments + sems)."""
    if not os.path.isdir(SHM_DIR):  # pragma: no cover - non-POSIX hosts
        return set()
    return {f for f in os.listdir(SHM_DIR) if f.startswith(SHM_PREFIXES)}


# Back-compat aliases for tests that check segments mid-test.
def _shm_segments():
    if not os.path.isdir(SHM_DIR):  # pragma: no cover - non-POSIX hosts
        return set()
    return {f for f in os.listdir(SHM_DIR) if f.startswith("psm_")}


def live_gang():
    return [p for p in multiprocessing.active_children()
            if p.name.startswith("repro-mp-rank-")]


def settle(deadline=5.0):
    """Give just-terminated children a moment to be reaped."""
    t0 = time.monotonic()
    while live_gang() and time.monotonic() - t0 < deadline:
        time.sleep(0.02)


def assert_no_leaks(before, deadline=5.0):
    """Assert /dev/shm is back to ``before``, retrying while gc settles."""
    t0 = time.monotonic()
    while time.monotonic() - t0 < deadline:
        if shm_entries() <= before:
            return
        gc.collect()
        time.sleep(0.05)
    leaked = shm_entries() - before
    assert not leaked, f"leaked /dev/shm entries: {sorted(leaked)}"


@pytest.fixture(autouse=True)
def no_leaks():
    """Every test must leave zero gang children, segments and semaphores."""
    before = shm_entries()
    yield
    # The default supervisor keeps a warm gang alive by design; reap it
    # so the child/semaphore checks are deterministic per test.
    from repro.runtime.supervisor import shutdown_default_supervisor

    shutdown_default_supervisor()
    settle()
    assert live_gang() == []
    assert_no_leaks(before)
