"""MpBackend failure hygiene: gang teardown, reaping, leak-freedom.

A rank failing mid-phase must terminate the whole gang, reap every child
process, unlink every shared-memory segment, and surface the originating
rank's traceback — on every failure path (program exception, silent child
death, gang timeout, SPMD divergence).
"""

import multiprocessing
import os
import time

import numpy as np
import pytest

from repro.machine import MachineSpec
from repro.runtime import MpBackend, MpGangError, allreduce, barrier

SPEC = MachineSpec(tau=10e-6, mu=1e-6, delta=0.1e-6, name="test")

SHM_DIR = "/dev/shm"


def _shm_segments():
    """Current multiprocessing shared-memory segment names (POSIX)."""
    if not os.path.isdir(SHM_DIR):  # pragma: no cover - non-POSIX hosts
        return set()
    return {f for f in os.listdir(SHM_DIR) if f.startswith("psm_")}


def _live_gang():
    return [p for p in multiprocessing.active_children()
            if p.name.startswith("repro-mp-rank-")]


def _settle(deadline=5.0):
    """Give just-terminated children a moment to be reaped."""
    t0 = time.monotonic()
    while _live_gang() and time.monotonic() - t0 < deadline:
        time.sleep(0.02)


@pytest.fixture(autouse=True)
def no_leaks():
    """Every test must leave zero gang children and zero shm segments."""
    before = _shm_segments()
    yield
    _settle()
    assert _live_gang() == []
    assert _shm_segments() <= before


class TestProgramFailure:
    def test_raise_mid_phase_surfaces_rank_and_traceback(self):
        def prog(ctx):
            ctx.phase("ranking.local")
            yield from barrier(ctx)
            if ctx.rank == 1:
                raise ValueError("boom on rank one")
            # Healthy ranks block forever; teardown must not wait on them.
            yield ctx.recv(0, 42)

        with pytest.raises(MpGangError) as err:
            MpBackend(timeout=60).run_spmd(prog, 3, spec=SPEC)
        assert err.value.rank == 1
        assert "ValueError: boom on rank one" in str(err.value)
        assert "rank 1 traceback" in str(err.value)

    def test_gang_reaped_after_failure(self):
        def prog(ctx):
            if ctx.rank == 0:
                raise RuntimeError("die immediately")
            yield ctx.recv(0, 1)  # would block forever

        with pytest.raises(MpGangError):
            MpBackend(timeout=60).run_spmd(prog, 4, spec=SPEC)
        _settle()
        assert _live_gang() == []

    def test_shm_unlinked_after_failure(self):
        before = _shm_segments()
        big = np.arange(1 << 16, dtype=np.float64)

        def prog(ctx, block):
            raise RuntimeError("fail with shm live")
            yield  # pragma: no cover - generator form

        with pytest.raises(MpGangError):
            MpBackend(timeout=60).run_spmd(
                prog, 2, spec=SPEC, shared={"big": big},
                make_rank_args=lambda r, sh: (sh["big"],),
            )
        assert _shm_segments() <= before

    def test_shm_unlinked_after_success(self):
        before = _shm_segments()
        data = np.arange(4096, dtype=np.float64)

        def prog(ctx, block):
            ctx.work(1)
            return float(np.sum(block))

        run = MpBackend(timeout=60).run_spmd(
            prog, 2, spec=SPEC, shared={"data": data},
            make_rank_args=lambda r, sh: (sh["data"],),
        )
        assert run.results == [float(data.sum())] * 2
        assert _shm_segments() <= before

    def test_silent_child_death_detected(self):
        def prog(ctx):
            if ctx.rank == 1:
                os._exit(9)  # dies without reporting a result
            yield ctx.recv(0, 1)

        with pytest.raises(MpGangError, match="without reporting"):
            MpBackend(timeout=60).run_spmd(prog, 2, spec=SPEC)

    def test_gang_timeout(self):
        def prog(ctx):
            yield ctx.recv((ctx.rank + 1) % ctx.size, 99)  # never sent

        with pytest.raises(MpGangError, match="did not finish within"):
            MpBackend(timeout=1.5).run_spmd(prog, 2, spec=SPEC)

    def test_collective_divergence_is_reported_not_deadlocked(self):
        def prog(ctx):
            if ctx.rank == 0:
                total = yield from allreduce(ctx, 1, key=1)
            else:
                yield from barrier(ctx, key=2)
                total = None
            return total

        with pytest.raises(MpGangError) as err:
            MpBackend(timeout=30).run_spmd(prog, 2, spec=SPEC)
        assert "CollectiveMismatch" in str(err.value)


class TestRejectedInsideChild:
    """Simulator-only ops used *inside* a program fail fast with a clear
    message shipped home, instead of hanging the gang."""

    def test_timed_recv(self):
        def prog(ctx):
            from repro.machine.ops import Recv

            yield Recv(source=0, tag=1, timeout=1e-3)

        with pytest.raises(MpGangError, match="timed receives"):
            MpBackend(timeout=30).run_spmd(prog, 2, spec=SPEC)

    def test_auto_ack_send(self):
        def prog(ctx):
            ctx.send(0, 1.0, auto_ack=(object(), 1))
            yield ctx.recv(0, 1)

        with pytest.raises(MpGangError, match="reliable transport"):
            MpBackend(timeout=30).run_spmd(prog, 2, spec=SPEC)

    def test_negative_tag_send(self):
        def prog(ctx):
            ctx.send(0, 1.0, tag=-5)
            yield ctx.recv(0, 1)

        with pytest.raises(MpGangError, match="reserved"):
            MpBackend(timeout=30).run_spmd(prog, 2, spec=SPEC)
