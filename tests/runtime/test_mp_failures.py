"""MpBackend failure hygiene: gang teardown, reaping, leak-freedom.

A rank failing mid-phase must terminate the whole gang, reap every child
process, unlink every shared-memory segment, and surface the originating
rank's traceback — on every failure path (program exception, silent child
death via real SIGKILL at every lifecycle phase, gang timeout, SPMD
divergence, poisoned result message).

The leak check itself (children, ``psm_*`` segments, ``sem.*``
semaphores after every test) is the autouse fixture in ``conftest.py``.
"""

import os

import numpy as np
import pytest

from repro.faults.chaos import ChaosEvent, ChaosPlan
from repro.machine import MachineSpec
from repro.runtime import MpBackend, MpGangError, allreduce, barrier

from .conftest import _shm_segments, live_gang as _live_gang, settle as _settle

SPEC = MachineSpec(tau=10e-6, mu=1e-6, delta=0.1e-6, name="test")


class TestProgramFailure:
    def test_raise_mid_phase_surfaces_rank_and_traceback(self):
        def prog(ctx):
            ctx.phase("ranking.local")
            yield from barrier(ctx)
            if ctx.rank == 1:
                raise ValueError("boom on rank one")
            # Healthy ranks block forever; teardown must not wait on them.
            yield ctx.recv(0, 42)

        with pytest.raises(MpGangError) as err:
            MpBackend(timeout=60).run_spmd(prog, 3, spec=SPEC)
        assert err.value.rank == 1
        assert "ValueError: boom on rank one" in str(err.value)
        assert "rank 1 traceback" in str(err.value)

    def test_gang_reaped_after_failure(self):
        def prog(ctx):
            if ctx.rank == 0:
                raise RuntimeError("die immediately")
            yield ctx.recv(0, 1)  # would block forever

        with pytest.raises(MpGangError):
            MpBackend(timeout=60).run_spmd(prog, 4, spec=SPEC)
        _settle()
        assert _live_gang() == []

    def test_shm_unlinked_after_failure(self):
        before = _shm_segments()
        big = np.arange(1 << 16, dtype=np.float64)

        def prog(ctx, block):
            raise RuntimeError("fail with shm live")
            yield  # pragma: no cover - generator form

        with pytest.raises(MpGangError):
            MpBackend(timeout=60).run_spmd(
                prog, 2, spec=SPEC, shared={"big": big},
                make_rank_args=lambda r, sh: (sh["big"],),
            )
        assert _shm_segments() <= before

    def test_shm_unlinked_after_success(self):
        before = _shm_segments()
        data = np.arange(4096, dtype=np.float64)

        def prog(ctx, block):
            ctx.work(1)
            return float(np.sum(block))

        run = MpBackend(timeout=60).run_spmd(
            prog, 2, spec=SPEC, shared={"data": data},
            make_rank_args=lambda r, sh: (sh["data"],),
        )
        assert run.results == [float(data.sum())] * 2
        assert _shm_segments() <= before

    def test_silent_child_death_detected(self):
        def prog(ctx):
            if ctx.rank == 1:
                os._exit(9)  # dies without reporting a result
            yield ctx.recv(0, 1)

        with pytest.raises(MpGangError, match="without reporting"):
            MpBackend(timeout=60).run_spmd(prog, 2, spec=SPEC)

    def test_gang_timeout(self):
        def prog(ctx):
            yield ctx.recv((ctx.rank + 1) % ctx.size, 99)  # never sent

        with pytest.raises(MpGangError, match="did not finish within"):
            MpBackend(timeout=1.5).run_spmd(prog, 2, spec=SPEC)

    def test_collective_divergence_is_reported_not_deadlocked(self):
        def prog(ctx):
            if ctx.rank == 0:
                total = yield from allreduce(ctx, 1, key=1)
            else:
                yield from barrier(ctx, key=2)
                total = None
            return total

        with pytest.raises(MpGangError) as err:
            MpBackend(timeout=30).run_spmd(prog, 2, spec=SPEC)
        assert "CollectiveMismatch" in str(err.value)


class TestChaosKillPaths:
    """Satellite: every MpGangError path under a *real* SIGKILL, placed
    by a seeded ChaosPlan at each lifecycle phase.  The bare backend must
    fail fast with originating-rank attribution, reap the gang, and leak
    nothing (the autouse fixture asserts the last two)."""

    #: phase -> where the rank dies: before reporting ready (fork/spawn),
    #: inside its compute phase, entering a collective, or after the
    #: program finished but before the result is posted (flush).
    PHASES = ("spawn", "compute", "collective", "flush")

    @staticmethod
    def _prog(ctx, x):
        ctx.phase("compute")
        total = yield from allreduce(ctx, float(np.sum(x)), lambda a, b: a + b)
        return total

    @pytest.mark.parametrize("phase", PHASES)
    @pytest.mark.parametrize("victim", [0, 1])
    def test_sigkill_at_phase_attributed_and_clean(self, phase, victim):
        data = np.arange(64, dtype=np.float64)
        plan = ChaosPlan(events=(
            ChaosEvent(kind="kill", rank=victim, op_index=0, phase=phase),
        ))
        backend = MpBackend(timeout=60, chaos=plan)
        with pytest.raises(MpGangError) as err:
            backend.run_spmd(
                self._prog, 2, spec=SPEC, shared={"x": data},
                make_rank_args=lambda r, sh: (sh["x"][r * 32:(r + 1) * 32],),
            )
        # A SIGKILLed child exits -9 without reporting; the survivor may
        # block in the collective forever — teardown must not wait on it.
        assert err.value.rank == victim
        assert "code -9" in str(err.value)
        assert "without reporting" in str(err.value)
        _settle()
        assert _live_gang() == []

    def test_poisoned_result_rejected(self):
        plan = ChaosPlan(events=(
            ChaosEvent(kind="poison", rank=1, op_index=0, phase="flush"),
        ))

        def prog(ctx):
            ctx.work(1)
            return ctx.rank

        with pytest.raises(MpGangError, match="malformed result"):
            MpBackend(timeout=60, chaos=plan).run_spmd(prog, 2, spec=SPEC)

    def test_delay_is_not_a_failure(self):
        plan = ChaosPlan(events=(
            ChaosEvent(kind="delay", rank=0, op_index=0, phase="compute",
                       seconds=0.2),
        ))

        def prog(ctx):
            ctx.phase("compute")
            ctx.work(1)
            return ctx.rank

        run = MpBackend(timeout=60, chaos=plan).run_spmd(prog, 2, spec=SPEC)
        assert run.results == [0, 1]


class TestRejectedInsideChild:
    """Simulator-only ops used *inside* a program fail fast with a clear
    message shipped home, instead of hanging the gang."""

    def test_timed_recv(self):
        def prog(ctx):
            from repro.machine.ops import Recv

            yield Recv(source=0, tag=1, timeout=1e-3)

        with pytest.raises(MpGangError, match="timed receives"):
            MpBackend(timeout=30).run_spmd(prog, 2, spec=SPEC)

    def test_auto_ack_send(self):
        def prog(ctx):
            ctx.send(0, 1.0, auto_ack=(object(), 1))
            yield ctx.recv(0, 1)

        with pytest.raises(MpGangError, match="reliable transport"):
            MpBackend(timeout=30).run_spmd(prog, 2, spec=SPEC)

    def test_negative_tag_send(self):
        def prog(ctx):
            ctx.send(0, 1.0, tag=-5)
            yield ctx.recv(0, 1)

        with pytest.raises(MpGangError, match="reserved"):
            MpBackend(timeout=30).run_spmd(prog, 2, spec=SPEC)
