"""Backend seam: resolution, time domains, sim bit-identity, rejection."""

import numpy as np
import pytest

from repro.core.api import aggregate_time, pack, ranking
from repro.machine import CM5, Machine, MachineSpec
from repro.machine.errors import TimeDomainError
from repro.machine.stats import ProcStats, RunResult, same_time_domain
from repro.runtime import (
    BACKEND_NAMES,
    Backend,
    BackendError,
    GangSupervisor,
    MpBackend,
    SimBackend,
    available_backends,
    get_backend,
)

SPEC = MachineSpec(tau=10e-6, mu=1e-6, delta=0.1e-6, name="test")


def _ring_program(ctx):
    ctx.phase("ring")
    ctx.work(5)
    ctx.send((ctx.rank + 1) % ctx.size, ctx.rank * 10, tag=3)
    msg = yield ctx.recv((ctx.rank - 1) % ctx.size, 3)
    return msg.payload


class TestResolution:
    def test_names(self):
        assert set(BACKEND_NAMES) == {"sim", "mp", "supervised"}
        assert set(available_backends()) == set(BACKEND_NAMES)

    def test_get_backend_by_name(self):
        assert isinstance(get_backend("sim"), SimBackend)
        assert isinstance(get_backend("mp"), MpBackend)
        assert isinstance(get_backend("supervised"), GangSupervisor)
        # The supervised backend is a process-wide singleton: every
        # string-name caller shares one warm gang.
        assert get_backend("supervised") is get_backend("supervised")

    def test_default_is_sim(self):
        assert get_backend().name == "sim"

    def test_instance_passthrough(self):
        backend = MpBackend(timeout=5.0)
        assert get_backend(backend) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("threads")

    def test_is_abstract(self):
        with pytest.raises(TypeError):
            Backend()  # run_spmd is abstract


class TestSimBitIdentity:
    """SimBackend must be the engine verbatim: same results, same clocks."""

    def test_matches_direct_machine_run(self):
        direct = Machine(4, SPEC).run(_ring_program)
        via = SimBackend().run_spmd(_ring_program, 4, spec=SPEC)
        assert via.results == direct.results
        assert via.elapsed == direct.elapsed
        assert via.phase_breakdown() == direct.phase_breakdown()
        assert [s.sends for s in via.stats] == [s.sends for s in direct.stats]

    def test_rank_args_both_ways(self):
        def prog(ctx, x):
            ctx.work(1)
            return x * 2

        by_list = SimBackend().run_spmd(
            prog, 3, rank_args=[(r,) for r in range(3)], spec=SPEC
        )
        by_maker = SimBackend().run_spmd(
            prog, 3, make_rank_args=lambda r, shared: (r,), spec=SPEC
        )
        assert by_list.results == by_maker.results == [0, 2, 4]

    def test_both_arg_styles_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            SimBackend().run_spmd(
                _ring_program, 2,
                rank_args=[(), ()], make_rank_args=lambda r, s: (),
                spec=SPEC,
            )


class TestTimeDomains:
    def test_sim_runs_are_simulated(self):
        run = SimBackend().run_spmd(_ring_program, 2, spec=SPEC)
        assert run.time_domain == "simulated"

    def test_mp_runs_are_wall(self):
        run = MpBackend(timeout=60).run_spmd(_ring_program, 2, spec=SPEC)
        assert run.time_domain == "wall"
        assert run.results == [10, 0]

    def test_run_result_validates_domain(self):
        with pytest.raises(ValueError, match="time_domain"):
            RunResult(results=[None], stats=[ProcStats(0)], time_domain="cpu")

    def test_same_time_domain(self):
        sim = RunResult(results=[None], stats=[ProcStats(0)])
        wall = RunResult(results=[None], stats=[ProcStats(0)],
                         time_domain="wall")
        assert same_time_domain([sim, sim]) == "simulated"
        with pytest.raises(TimeDomainError):
            same_time_domain([sim, wall])

    def test_aggregate_time_refuses_mixed_domains(self):
        mask = np.random.default_rng(0).random(64) < 0.5
        sim_run = ranking(mask, grid=2, spec=SPEC, backend="sim")
        mp_run = ranking(mask, grid=2, spec=SPEC, backend="mp")
        assert sim_run.time_domain == "simulated"
        assert mp_run.time_domain == "wall"
        # Same domain aggregates fine...
        total = aggregate_time([sim_run.run, sim_run.run])
        assert total == pytest.approx(2 * sim_run.run.elapsed)
        # ...mixing domains is an error, not a silently wrong number.
        with pytest.raises(TimeDomainError):
            aggregate_time([sim_run.run, mp_run.run])

    def test_report_carries_domain(self):
        from repro.obs import PhaseProfiler

        a = np.arange(64, dtype=np.float64)
        m = np.ones(64, dtype=bool)
        with PhaseProfiler() as prof:
            pack(a, m, grid=2, spec=SPEC, profiler=prof, backend="mp")
        assert prof.report.time_domain == "wall"
        assert prof.report.to_dict()["time_domain"] == "wall"
        assert "time=wall" in prof.report.summary()


class TestUnsupportedFeatures:
    def test_mp_rejects_faults(self):
        from repro.faults import FaultPlan

        a = np.arange(32, dtype=np.float64)
        m = np.ones(32, dtype=bool)
        with pytest.raises(BackendError, match="fault"):
            pack(a, m, grid=2, spec=SPEC, backend="mp",
                 faults=FaultPlan(seed=0, drop_rate=0.1))

    def test_mp_rejects_reliability(self):
        a = np.arange(32, dtype=np.float64)
        m = np.ones(32, dtype=bool)
        with pytest.raises(BackendError, match="reliab"):
            pack(a, m, grid=2, spec=SPEC, backend="mp", reliability=True)

    def test_mp_rejects_simulated_budgets(self):
        with pytest.raises(BackendError, match="budget"):
            MpBackend().run_spmd(_ring_program, 2, step_budget=100)
        with pytest.raises(BackendError, match="budget"):
            MpBackend().run_spmd(_ring_program, 2, time_budget=1.0)

    def test_sim_accepts_reliability(self):
        # The simulator keeps the full feature set.
        assert SimBackend().supports_faults
        assert SimBackend().supports_reliability
        SimBackend().reject_unsupported(faults=None, reliability=True)

    def test_bad_timeout_rejected(self):
        with pytest.raises(ValueError):
            MpBackend(timeout=0)


class TestApiParity:
    """pack/ranking give bit-identical answers through the backend seam."""

    def test_pack_backend_sim_equals_default(self):
        rng = np.random.default_rng(1)
        a = rng.random(96)
        m = rng.random(96) < 0.4
        base = pack(a, m, grid=4, spec=SPEC)
        via = pack(a, m, grid=4, spec=SPEC, backend="sim")
        np.testing.assert_array_equal(base.vector, via.vector)
        assert base.total_ms == via.total_ms

    def test_pack_accepts_backend_instance(self):
        rng = np.random.default_rng(2)
        a = rng.random(64)
        m = rng.random(64) < 0.6
        res = pack(a, m, grid=2, spec=SPEC, backend=MpBackend(timeout=60))
        np.testing.assert_array_equal(res.vector[: res.size], a[m])
