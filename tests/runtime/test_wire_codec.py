"""Wire codec: exact roundtrips, forced modes, and the CMS byte crossover.

Every payload kind the transport ships must decode bit-identically from
its wire bytes, and the ``auto`` mode must pick CMS exactly when the
paper's ``E + 2*Gs < 2*E`` condition holds at the byte level
(``count*itemsize + 16*segments < count*(8+itemsize)``).
"""

import numpy as np
import pytest

from repro.codecs import (
    CODEC_MODES,
    decode_payload,
    encode_payload,
    pair_runs,
    resolve_codec,
    wire_bytes_pair_cms,
    wire_bytes_pair_sss,
)
from repro.codecs.wire import W_ND, W_NONE, W_PAIR_CMS, W_PAIR_SSS, W_PICKLE, W_SEG
from repro.core.messages import PairMessage, SegmentMessage


def roundtrip(obj, codec="auto"):
    kind, parts, nbytes = encode_payload(obj, codec)
    buf = b"".join(bytes(p) for p in parts)
    assert len(buf) == nbytes
    return kind, decode_payload(kind, buf)


class TestRoundtrips:
    def test_none(self):
        kind, back = roundtrip(None)
        assert kind == W_NONE and back is None

    def test_pickle_fallback(self):
        kind, back = roundtrip({"counts": {3: 7}, "stamp": ("m2m", 901)})
        assert kind == W_PICKLE
        assert back == {"counts": {3: 7}, "stamp": ("m2m", 901)}

    @pytest.mark.parametrize("dtype", [np.float64, np.float32, np.int64, np.int32])
    def test_ndarray_dtypes(self, dtype):
        a = np.arange(12).astype(dtype).reshape(3, 4)
        kind, back = roundtrip(a)
        assert kind == W_ND
        np.testing.assert_array_equal(back, a)
        assert back.dtype == a.dtype and back.shape == a.shape

    def test_zero_d_array(self):
        kind, back = roundtrip(np.array(7.25))
        assert kind == W_ND and back.shape == () and float(back) == 7.25

    def test_empty_array(self):
        kind, back = roundtrip(np.empty(0, dtype=np.float64))
        assert kind == W_ND and back.size == 0 and back.dtype == np.float64

    def test_noncontiguous_array(self):
        a = np.arange(24, dtype=np.float64).reshape(4, 6)[:, ::2]
        kind, back = roundtrip(a)
        assert kind == W_ND
        np.testing.assert_array_equal(back, a)

    def test_segment_message(self):
        sm = SegmentMessage(bases=np.array([0, 5], dtype=np.int64),
                            counts=np.array([3, 2], dtype=np.int64),
                            values=np.arange(5.0))
        kind, back = roundtrip(sm)
        assert kind == W_SEG
        np.testing.assert_array_equal(back.bases, sm.bases)
        np.testing.assert_array_equal(back.counts, sm.counts)
        np.testing.assert_array_equal(back.values, sm.values)

    def test_empty_pair_message(self):
        pm = PairMessage(ranks=np.empty(0, dtype=np.int64),
                         values=np.empty(0))
        _, back = roundtrip(pm)
        assert back.count == 0

    def test_decoded_view_writability_follows_buffer(self):
        # Decoded arrays are views over the receive buffer: immutable
        # bytes give a read-only view, while the mutable bytearray the
        # ring transport delivers gives a writable one — programs may
        # mutate received payloads, like on every other transport.
        kind, parts, nbytes = encode_payload(np.arange(4.0))
        buf = b"".join(bytes(p) for p in parts)
        assert not decode_payload(kind, buf).flags.writeable
        back = decode_payload(kind, bytearray(buf))
        assert back.flags.writeable
        back[0] = 9.0  # must not raise
        assert float(back[0]) == 9.0


class TestPairEncoding:
    def test_consecutive_ranks_pick_cms(self):
        pm = PairMessage(ranks=np.arange(100, dtype=np.int64),
                         values=np.arange(100, dtype=np.float64))
        kind, back = roundtrip(pm)
        assert kind == W_PAIR_CMS  # one run of 100: CMS is far smaller
        np.testing.assert_array_equal(back.ranks, pm.ranks)
        np.testing.assert_array_equal(back.values, pm.values)
        assert back.ranks.dtype == pm.ranks.dtype

    def test_scattered_ranks_pick_sss(self):
        pm = PairMessage(ranks=np.arange(0, 200, 2, dtype=np.int64),
                         values=np.ones(100))
        kind, back = roundtrip(pm)
        assert kind == W_PAIR_SSS  # 100 singleton runs: pairs are smaller
        np.testing.assert_array_equal(back.ranks, pm.ranks)

    def test_forced_modes(self):
        scattered = PairMessage(ranks=np.arange(0, 200, 2, dtype=np.int64),
                                values=np.ones(100))
        dense = PairMessage(ranks=np.arange(100, dtype=np.int64),
                            values=np.ones(100))
        assert roundtrip(scattered, "cms")[0] == W_PAIR_CMS
        assert roundtrip(dense, "sss")[0] == W_PAIR_SSS
        assert roundtrip(dense, "pickle")[0] == W_PICKLE

    def test_forced_modes_still_roundtrip(self):
        pm = PairMessage(ranks=np.array([2, 3, 4, 9, 20, 21], dtype=np.int64),
                         values=np.arange(6.0))
        for codec in CODEC_MODES:
            _, back = roundtrip(pm, codec)
            np.testing.assert_array_equal(back.ranks, pm.ranks)
            np.testing.assert_array_equal(back.values, pm.values)

    def test_crossover_at_mean_run_length_two(self):
        # CMS wins iff 16*segments < 8*count, i.e. mean run length > 2 —
        # the byte-level image of the paper's E + 2*Gs < 2*E.
        assert wire_bytes_pair_cms(100, 49) < wire_bytes_pair_sss(100)
        assert wire_bytes_pair_cms(100, 50) == wire_bytes_pair_sss(100)
        assert wire_bytes_pair_cms(100, 51) > wire_bytes_pair_sss(100)

    def test_pair_runs_inverts_expand(self):
        bases, counts = pair_runs(np.array([1, 2, 3, 7, 8, 20], dtype=np.int64))
        assert list(bases) == [1, 7, 20]
        assert list(counts) == [3, 2, 1]

    def test_pair_runs_empty(self):
        bases, counts = pair_runs(np.empty(0, dtype=np.int64))
        assert bases.size == 0 and counts.size == 0


class TestResolveCodec:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WIRE_CODEC", "sss")
        assert resolve_codec("cms") == "cms"

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_WIRE_CODEC", "pickle")
        assert resolve_codec(None) == "pickle"

    def test_default_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_WIRE_CODEC", raising=False)
        assert resolve_codec(None) == "auto"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown wire codec"):
            resolve_codec("zstd")
