"""SPSC shm ring unit tests: wraparound, slab spill, backpressure, doorbell.

These exercise :mod:`repro.runtime.shm_ring` directly with threads as
producer/consumer (the SPSC protocol does not care whether the peer is a
thread or a forked process — the fork path is covered by the transport
tests).  The autouse conftest fixture asserts no /dev/shm residue.
"""

import os
import threading
import time

import pytest

from repro.runtime.shm_ring import RECORD, RingConfig, RingMatrix


SMALL = RingConfig(nslots=4, slot_bytes=128, slab_bytes=256)


@pytest.fixture
def matrix():
    m = RingMatrix(2, SMALL)
    yield m
    m.destroy()


def _send(ep, dst, payload, tag=0, epoch=0, op_id=0):
    ep.send(dst, epoch=epoch, op_id=op_id, tag=tag, kind=0, wire=0,
            words=0, clock=0.0, parts=[payload], nbytes=len(payload))


class TestRecordRing:
    def test_header_and_inline_payload_roundtrip(self, matrix):
        ep0, ep1 = matrix.endpoint(0), matrix.endpoint(1)
        ep0.send(1, epoch=3, op_id=9, tag=7, kind=2, wire=4, words=11,
                 clock=1.5, parts=[b"he", b"llo"], nbytes=5)
        r = ep1.wait()
        assert (r.src, r.epoch, r.op_id, r.tag, r.kind, r.wire, r.words,
                r.clock) == (0, 3, 9, 7, 2, 4, 11, 1.5)
        assert r.data == b"hello"

    def test_wraparound_preserves_fifo(self, matrix):
        # 20 records through 4 slots: the consumer must interleave, and
        # every sequence counter laps the ring several times.
        ep0, ep1 = matrix.endpoint(0), matrix.endpoint(1)
        got = []

        def consume():
            for _ in range(20):
                got.append(ep1.wait().data)

        t = threading.Thread(target=consume)
        t.start()
        for i in range(20):
            _send(ep0, 1, bytes([i]) * 10, tag=i)
        t.join(10)
        assert not t.is_alive()
        assert got == [bytes([i]) * 10 for i in range(20)]

    def test_full_ring_backpressure_blocks_then_completes(self, matrix):
        # Fill every slot, then assert the next send blocks until the
        # consumer frees one.
        ep0, ep1 = matrix.endpoint(0), matrix.endpoint(1)
        for i in range(SMALL.nslots):
            _send(ep0, 1, b"x", tag=i)
        blocked = threading.Event()
        done = threading.Event()

        def overflow_send():
            ep0.send(1, epoch=0, op_id=0, tag=99, kind=0, wire=0, words=0,
                     clock=0.0, parts=[b"y"], nbytes=1,
                     on_wait=blocked.set)
            done.set()

        t = threading.Thread(target=overflow_send)
        t.start()
        assert blocked.wait(5.0), "send should report backpressure"
        assert not done.is_set()
        tags = [ep1.wait().tag for _ in range(SMALL.nslots + 1)]
        t.join(10)
        assert done.is_set()
        assert tags == list(range(SMALL.nslots)) + [99]

    def test_deadline_expiry_returns_none(self, matrix):
        ep0 = matrix.endpoint(0)
        t0 = time.monotonic()
        assert ep0.wait(deadline=t0 + 0.05) is None
        assert time.monotonic() - t0 < 5.0


class TestSlabStream:
    def test_spill_threshold(self, matrix):
        # inline_max is the exact boundary: one byte more goes to slab.
        ep0, ep1 = matrix.endpoint(0), matrix.endpoint(1)
        boundary = SMALL.inline_max
        assert boundary == SMALL.slot_bytes - RECORD.size
        _send(ep0, 1, b"a" * boundary)
        _send(ep0, 1, b"b" * (boundary + 1))
        r1, r2 = ep1.wait(), ep1.wait()
        assert r1.data == b"a" * boundary
        assert r2.data == b"b" * (boundary + 1)

    def test_payload_larger_than_slab_ring(self, matrix):
        # 1000 bytes through a 256-byte slab ring: multiple flow-control
        # rounds, producer and consumer strictly interleaved.
        ep0, ep1 = matrix.endpoint(0), matrix.endpoint(1)
        big = os.urandom(1000)
        got = {}

        def consume():
            got["data"] = ep1.wait().data

        t = threading.Thread(target=consume)
        t.start()
        _send(ep0, 1, big)
        t.join(10)
        assert not t.is_alive()
        assert got["data"] == big

    def test_slab_records_interleave_with_inline(self, matrix):
        ep0, ep1 = matrix.endpoint(0), matrix.endpoint(1)
        payloads = [b"s", os.urandom(500), b"t", os.urandom(300)]
        got = []

        def consume():
            for _ in payloads:
                got.append(ep1.wait().data)

        t = threading.Thread(target=consume)
        t.start()
        for p in payloads:
            _send(ep0, 1, p)
        t.join(10)
        assert not t.is_alive()
        assert got == payloads


class TestDoorbell:
    def test_blocked_consumer_woken_by_late_producer(self, matrix):
        # The consumer exhausts its spin/yield budget and parks on the
        # doorbell; a producer arriving afterwards must wake it promptly.
        ep0, ep1 = matrix.endpoint(0), matrix.endpoint(1)
        got = {}

        def consume():
            got["rec"] = ep1.wait(deadline=time.monotonic() + 30.0)

        t = threading.Thread(target=consume)
        t.start()
        time.sleep(0.3)  # let the consumer reach the doorbell phase
        _send(ep0, 1, b"wake", tag=5)
        t.join(10)
        assert not t.is_alive()
        assert got["rec"] is not None and got["rec"].data == b"wake"

    def test_waiting_flag_cleared_after_wakeup(self, matrix):
        ep0, ep1 = matrix.endpoint(0), matrix.endpoint(1)

        def consume():
            ep1.wait()

        t = threading.Thread(target=consume)
        t.start()
        time.sleep(0.2)
        _send(ep0, 1, b"z")
        t.join(10)
        assert int(matrix._flags[1]) == 0


class TestBidirectional:
    def test_both_directions_share_the_matrix(self, matrix):
        ep0, ep1 = matrix.endpoint(0), matrix.endpoint(1)
        _send(ep0, 1, b"fwd", tag=1)
        _send(ep1, 0, b"rev", tag=2)
        assert ep1.wait().data == b"fwd"
        assert ep0.wait().data == b"rev"

    def test_payload_copy_is_writable(self, matrix):
        # Both the inline and slab paths must deliver a mutable buffer:
        # decoded numpy views over it are the program's to write.
        ep0, ep1 = matrix.endpoint(0), matrix.endpoint(1)
        _send(ep0, 1, b"tiny")
        # > inline_max so it streams through the slab, but < slab_bytes
        # so the single-threaded send completes without a consumer.
        _send(ep0, 1, b"x" * 200)
        for expect in (b"tiny", b"x" * 200):
            r = ep1.wait()
            assert isinstance(r.data, bytearray)
            r.data[0:1] = b"Y"  # must not raise
            assert r.data[1:] == expect[1:]


def _cooperative_runner(ep, dst, payloads, results):
    """Send every payload before receiving any — the alltoallv pattern.

    A blocked send drains the endpoint's own incoming rings through the
    non-blocking ``progress`` hook (as ``_RingTransport`` does), which
    is the only thing that lets two ranks both mid-send get unstuck.
    """
    drained = []

    def progress():
        r = ep.progress()
        if r is True or r is False:
            return r
        drained.append(r.data)
        return True

    for i, payload in enumerate(payloads):
        ep.send(dst, epoch=0, op_id=0, tag=i, kind=0, wire=0, words=0,
                clock=0.0, parts=[payload], nbytes=len(payload),
                progress=progress)
    while len(drained) < len(payloads):
        r = ep.wait(deadline=time.monotonic() + 10)
        assert r is not None, "peer traffic never arrived"
        drained.append(r.data)
    results[ep.rank] = drained


class TestCooperativeBackpressure:
    """The REVIEW cyclic-deadlock scenario, at the ring level."""

    def test_cyclic_slab_sends_complete(self, matrix):
        # Each payload is ~4x the 256-byte slab ring, and both sides
        # send before either receives: without the cooperative drain
        # both block in send forever, ring deadlocked.
        ep0, ep1 = matrix.endpoint(0), matrix.endpoint(1)
        p0, p1 = os.urandom(1000), os.urandom(900)
        results = {}
        t0 = threading.Thread(target=_cooperative_runner,
                              args=(ep0, 1, [p0], results))
        t1 = threading.Thread(target=_cooperative_runner,
                              args=(ep1, 0, [p1], results))
        t0.start(); t1.start()
        t0.join(15); t1.join(15)
        assert not t0.is_alive() and not t1.is_alive()
        assert results[1] == [p0]
        assert results[0] == [p1]

    def test_cyclic_slot_backpressure_completes(self, matrix):
        # Same cycle through the record ring: 3x more inline sends than
        # slots, fired in both directions before any receive.
        ep0, ep1 = matrix.endpoint(0), matrix.endpoint(1)
        n = SMALL.nslots * 3
        p0 = [bytes([i]) * 8 for i in range(n)]
        p1 = [bytes([100 + i]) * 8 for i in range(n)]
        results = {}
        t0 = threading.Thread(target=_cooperative_runner,
                              args=(ep0, 1, p0, results))
        t1 = threading.Thread(target=_cooperative_runner,
                              args=(ep1, 0, p1, results))
        t0.start(); t1.start()
        t0.join(15); t1.join(15)
        assert not t0.is_alive() and not t1.is_alive()
        assert results[1] == p0  # SPSC order survives the drain path
        assert results[0] == p1


class TestConfig:
    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_RING_SLOTS", "8")
        monkeypatch.setenv("REPRO_RING_SLOT_BYTES", "256")
        monkeypatch.setenv("REPRO_RING_SLAB_BYTES", "1024")
        cfg = RingConfig.from_env()
        assert (cfg.nslots, cfg.slot_bytes, cfg.slab_bytes) == (8, 256, 1024)

    def test_kwarg_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_RING_SLOTS", "8")
        assert RingConfig.from_env(nslots=16).nslots == 16

    def test_too_small_rejected(self):
        with pytest.raises(ValueError, match="too small"):
            RingConfig.from_env(nslots=1)

    def test_destroy_is_idempotent(self):
        m = RingMatrix(2, SMALL)
        m.endpoint(0)
        m.destroy()
        m.destroy()
