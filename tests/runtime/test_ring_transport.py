"""Ring transport integration: bit-equality, conformance corpus, chaos.

The ring transport must be invisible to results: every configuration
that passes on the queue transport (and on the simulator, and against
the serial oracle) must produce bit-identical output over the rings, at
P=2 and P=4, for every wire codec mode.  And a SIGKILL delivered while
a rank is blocked in a ring wait must classify as ``rank_death`` and
recover under the supervisor — never deadlock the gang.
"""

import platform
import time
import warnings

import numpy as np
import pytest

from repro.conformance import replay_corpus
from repro.core.api import pack, unpack
from repro.faults.chaos import ChaosEvent, ChaosPlan
from repro.machine import MachineSpec
from repro.runtime import (
    GangSupervisor,
    MpBackend,
    RetryPolicy,
    TRANSPORT_NAMES,
    resolve_transport,
)

SPEC = MachineSpec(tau=10e-6, mu=1e-6, delta=0.1e-6, name="test")
CORPUS = "tests/conformance/corpus"

FAST_RETRY = RetryPolicy(max_retries=2, base_delay=0.01, max_delay=0.05,
                         jitter=0.0, seed=0)


def _workload(n=96, density=0.5, seed=3):
    rng = np.random.default_rng(seed)
    return rng.random(n), rng.random(n) < density


class TestTransportResolution:
    def test_default_is_ring(self, monkeypatch):
        monkeypatch.delenv("REPRO_MP_TRANSPORT", raising=False)
        monkeypatch.setattr(platform, "machine", lambda: "x86_64")
        assert MpBackend().transport == "ring"

    def test_weakly_ordered_platform_defaults_to_queue(self, monkeypatch):
        # The ring's lock-free head publication assumes total store
        # order; off x86 the safe queue transport is the default.
        monkeypatch.delenv("REPRO_MP_TRANSPORT", raising=False)
        monkeypatch.setattr(platform, "machine", lambda: "aarch64")
        assert resolve_transport(None) == "queue"
        assert MpBackend().transport == "queue"

    def test_forcing_ring_on_weakly_ordered_platform_warns(self, monkeypatch):
        monkeypatch.setattr(platform, "machine", lambda: "aarch64")
        with pytest.warns(RuntimeWarning, match="total-store-order"):
            assert resolve_transport("ring") == "ring"
        monkeypatch.setenv("REPRO_MP_TRANSPORT", "ring")
        with pytest.warns(RuntimeWarning, match="total-store-order"):
            assert resolve_transport(None) == "ring"

    def test_no_warning_on_tso_platform(self, monkeypatch):
        monkeypatch.setattr(platform, "machine", lambda: "x86_64")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_transport("ring") == "ring"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_TRANSPORT", "queue")
        assert MpBackend().transport == "queue"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_MP_TRANSPORT", "queue")
        assert MpBackend(transport="ring").transport == "ring"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown transport"):
            resolve_transport("tcp")
        with pytest.raises(ValueError, match="unknown transport"):
            MpBackend(transport="tcp")

    def test_names_registry(self):
        assert TRANSPORT_NAMES == ("queue", "ring")


class TestBitEquality:
    @pytest.mark.parametrize("nprocs", [2, 4])
    def test_ring_equals_queue_equals_sim(self, nprocs):
        array, mask = _workload()
        sim = pack(array, mask, grid=(nprocs,), spec=SPEC, validate=False,
                   backend="sim")
        by_transport = {
            t: pack(array, mask, grid=(nprocs,), spec=SPEC, validate=False,
                    backend=MpBackend(timeout=120, transport=t))
            for t in TRANSPORT_NAMES
        }
        for t, res in by_transport.items():
            np.testing.assert_array_equal(res.vector, sim.vector, err_msg=t)
            assert res.vector.dtype == sim.vector.dtype

    @pytest.mark.parametrize("codec", ["auto", "sss", "cms", "pickle"])
    def test_every_codec_mode_is_bit_identical(self, codec):
        array, mask = _workload(seed=11)
        sim = pack(array, mask, grid=(4,), spec=SPEC, validate=False,
                   backend="sim")
        mp = pack(array, mask, grid=(4,), spec=SPEC, validate=False,
                  backend=MpBackend(timeout=120, transport="ring",
                                    codec=codec))
        np.testing.assert_array_equal(mp.vector, sim.vector)

    @pytest.mark.parametrize("nprocs", [2, 4])
    def test_unpack_roundtrip_over_ring(self, nprocs):
        array, mask = _workload(seed=23)
        backend = MpBackend(timeout=120, transport="ring")
        packed = pack(array, mask, grid=(nprocs,), spec=SPEC, validate=True,
                      backend=backend)
        restored = unpack(packed.vector, mask, array, grid=(nprocs,),
                          scheme="css", spec=SPEC, validate=True,
                          backend=backend)
        np.testing.assert_array_equal(restored.array, array)


class TestConformanceCorpus:
    def test_corpus_replays_clean_over_tiny_rings(self, monkeypatch):
        # The corpus entries fix their own grids (P=2, 4, and 8 among
        # them); what we vary here is the transport geometry — tiny
        # rings force wraparound and slab spill on real corpus traffic.
        monkeypatch.setenv("REPRO_MP_TRANSPORT", "ring")
        monkeypatch.setenv("REPRO_RING_SLOTS", "4")
        monkeypatch.setenv("REPRO_RING_SLOT_BYTES", "128")
        monkeypatch.setenv("REPRO_RING_SLAB_BYTES", "256")
        failures = [
            (path.name, outcome.detail)
            for path, _bug, outcome in replay_corpus(CORPUS, backend="mp")
            if not outcome.ok
        ]
        assert failures == []


def _eager_exchange_prog(ctx, n):
    # Every rank fires all of its sends before receiving anything — the
    # pattern alltoallv_native uses.  With payloads far larger than the
    # slab ring, every pair hits slab backpressure mid-send; only the
    # cooperative drain (a blocked send consuming its own incoming
    # rings) lets the cycle complete.
    data = np.full(n, float(ctx.rank), dtype=np.float64)
    for k in range(1, ctx.size):
        ctx.send((ctx.rank + k) % ctx.size, data, words=n, tag=7)
    total = 0.0
    for _ in range(ctx.size - 1):
        msg = yield ctx.recv(tag=7)
        total += float(np.asarray(msg.payload).sum())
    return total


class TestSendBackpressure:
    @pytest.mark.parametrize("nprocs", [2, 4])
    def test_all_sends_before_any_recv_exceeding_slab(self, nprocs, monkeypatch):
        # REVIEW scenario: every per-pair payload (32 KiB) dwarfs the
        # slab ring (256 B), and every rank is mid-send at once.  The
        # timeout bounds a regression to a clean MpGangError instead of
        # a hung gang.
        monkeypatch.setenv("REPRO_RING_SLOTS", "4")
        monkeypatch.setenv("REPRO_RING_SLOT_BYTES", "128")
        monkeypatch.setenv("REPRO_RING_SLAB_BYTES", "256")
        n = 4096
        run = MpBackend(timeout=120, transport="ring").run_spmd(
            _eager_exchange_prog, nprocs, rank_args=[(n,)] * nprocs
        )
        expected = [
            float(sum(n * s for s in range(nprocs) if s != me))
            for me in range(nprocs)
        ]
        assert run.results == expected


def _mutate_recv_prog(ctx):
    if ctx.rank == 0:
        ctx.send(1, np.arange(4, dtype=np.float64), words=4, tag=3)
        return 0.0
    msg = yield ctx.recv(0, 3)
    msg.payload[:] *= 2.0  # received payloads are writable on every transport
    return float(msg.payload.sum())


def _self_send_mutate_prog(ctx):
    a = np.arange(4, dtype=np.float64)
    ctx.send(ctx.rank, a, words=4, tag=2)
    a[:] = -1.0  # mutate-after-send must never reach the receiver
    msg = yield ctx.recv(ctx.rank, 2)
    msg.payload[0] += 1.0  # and the copy is writable
    return float(np.asarray(msg.payload).sum())


class TestReceiveContract:
    @pytest.mark.parametrize("transport", TRANSPORT_NAMES)
    def test_received_payloads_are_writable(self, transport):
        run = MpBackend(timeout=60, transport=transport).run_spmd(
            _mutate_recv_prog, 2
        )
        assert run.results == [0.0, 12.0]

    @pytest.mark.parametrize("transport", TRANSPORT_NAMES)
    def test_self_send_delivers_an_independent_copy(self, transport):
        run = MpBackend(timeout=60, transport=transport).run_spmd(
            _self_send_mutate_prog, 1
        )
        assert run.results == [7.0]


def _late_send_prog(ctx):
    # Rank 1 blocks in a ring wait; rank 0 sleeps in real wall time
    # first, so the kill fires while rank 1 is parked on its doorbell.
    if ctx.rank == 0:
        time.sleep(0.3)
        ctx.send(1, np.arange(4, dtype=np.int64), words=4, tag=5)
        return 0
    msg = yield ctx.recv(0, 5)
    return int(np.asarray(msg.payload).sum())


class TestChaosRingWait:
    def test_sigkill_mid_ring_wait_recovers_not_deadlocks(self):
        plan = ChaosPlan(events=(
            ChaosEvent(kind="kill", rank=1, op_index=0, phase="ring_wait"),
        ))
        sup = GangSupervisor(timeout=60, retry=FAST_RETRY, chaos=plan,
                             transport="ring")
        with sup:
            run = sup.run_spmd(_late_send_prog, 2, spec=SPEC)
            assert run.results == [0, 6]
            assert sup.stats.failures.get("rank_death", 0) >= 1
            assert sup.stats.retries >= 1
            assert sup.stats.rebuilds >= 1

    def test_ring_wait_phase_never_fires_on_queue_transport(self):
        # The same plan on the queue transport must be a no-op: the op
        # completes first try, no retries.
        plan = ChaosPlan(events=(
            ChaosEvent(kind="kill", rank=1, op_index=0, phase="ring_wait"),
        ))
        sup = GangSupervisor(timeout=60, retry=FAST_RETRY, chaos=plan,
                             transport="queue")
        with sup:
            run = sup.run_spmd(_late_send_prog, 2, spec=SPEC)
            assert run.results == [0, 6]
            assert sup.stats.retries == 0
