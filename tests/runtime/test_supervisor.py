"""GangSupervisor: warm gangs, chaos recovery, retry/backoff, degradation.

The supervisor's contract — recover from *real* process faults (SIGKILL,
SIGSTOP, poisoned results, deadlocks) by rebuilding the gang and
retrying under a seeded backoff policy, with bit-identical results to a
fault-free run — is asserted here against actual forked processes.  The
autouse fixture in ``conftest.py`` checks every test reaps its children
and leaks no ``/dev/shm`` segments or semaphores.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.core.api import pack
from repro.faults.chaos import ChaosEvent, ChaosPlan
from repro.machine import MachineSpec
from repro.obs import MetricsRegistry, RuntimeProfiler, validate_chrome_trace
from repro.runtime import (
    GangSupervisor,
    MpGangError,
    RetryPolicy,
    SimBackend,
    allreduce,
    default_supervisor,
)

from .conftest import live_gang, settle

SPEC = MachineSpec(tau=10e-6, mu=1e-6, delta=0.1e-6, name="test")

#: Tight deterministic backoff so recovery tests stay fast.
FAST_RETRY = RetryPolicy(max_retries=2, base_delay=0.01, max_delay=0.05,
                         jitter=0.0, seed=0)


def _sum_prog(ctx, x):
    ctx.phase("compute")
    total = yield from allreduce(ctx, float(np.sum(x)), lambda a, b: a + b)
    return total


def _quick_prog(ctx):
    ctx.work(1)
    return ctx.rank


def _deadlock_prog(ctx):
    yield ctx.recv((ctx.rank + 1) % ctx.size, 99)  # never sent


def _boom_prog(ctx):
    if ctx.rank == 1:
        raise ValueError("boom in supervised gang")
    ctx.work(1)
    return ctx.rank


DATA = np.arange(64, dtype=np.float64)
EXPECTED_SUM = float(DATA.sum())


def _halves(r, sh):
    return (sh["x"][r * 32:(r + 1) * 32],)


def _run_sum(sup, nprocs=2):
    return sup.run_spmd(_sum_prog, nprocs, spec=SPEC, shared={"x": DATA},
                        make_rank_args=_halves)


class TestRetryPolicy:
    def test_deterministic_per_seed(self):
        a = list(RetryPolicy(seed=7).delays())
        b = list(RetryPolicy(seed=7).delays())
        c = list(RetryPolicy(seed=8).delays())
        assert a == b
        assert a != c

    def test_delays_bounded_and_growing(self):
        pol = RetryPolicy(max_retries=6, base_delay=0.1, max_delay=1.0,
                          multiplier=2.0, jitter=0.25, seed=0)
        delays = list(pol.delays())
        assert len(delays) == 6
        for i, d in enumerate(delays):
            base = min(1.0, 0.1 * 2.0 ** i)
            assert base * 0.75 <= d <= base * 1.25
        # The capped tail stays near max_delay rather than growing forever.
        assert delays[-1] <= 1.25

    def test_zero_retries_yields_nothing(self):
        assert list(RetryPolicy(max_retries=0).delays()) == []

    @pytest.mark.parametrize("kw", [
        {"max_retries": -1},
        {"base_delay": -0.1},
        {"multiplier": 0.5},
        {"jitter": 1.0},
        {"jitter": -0.1},
    ])
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            RetryPolicy(**kw)


class TestWarmGang:
    def test_warm_reuse_keeps_epoch(self):
        with GangSupervisor(timeout=60) as sup:
            sup.warm(2)
            epoch = sup.stats.gang_epoch
            assert epoch >= 1
            for _ in range(2):
                run = _run_sum(sup)
                assert run.results == [EXPECTED_SUM] * 2
            assert sup.stats.gang_epoch == epoch  # no rebuild
            assert sup.stats.warm_ops == 2
            assert sup.stats.cold_ops == 0
            assert sup.stats.ops == 2

    def test_first_op_without_warm_is_cold(self):
        with GangSupervisor(timeout=60) as sup:
            run = _run_sum(sup)
            assert run.results == [EXPECTED_SUM] * 2
            assert sup.stats.cold_ops == 1
            assert sup.stats.warm_ops == 0

    def test_width_change_rebuilds(self):
        with GangSupervisor(timeout=60) as sup:
            sup.run_spmd(_quick_prog, 2, spec=SPEC)
            e2 = sup.stats.gang_epoch
            run = sup.run_spmd(_quick_prog, 3, spec=SPEC)
            assert run.results == [0, 1, 2]
            assert sup.stats.gang_epoch > e2

    def test_shutdown_reaps_gang(self):
        sup = GangSupervisor(timeout=60)
        sup.warm(2)
        assert len(live_gang()) == 2
        sup.shutdown()
        settle()
        assert live_gang() == []

    def test_rank_args_list_and_time_domain(self):
        with GangSupervisor(timeout=60) as sup:
            run = sup.run_spmd(
                _sum_prog, 2, spec=SPEC,
                rank_args=[(DATA[:32],), (DATA[32:],)],
            )
            assert run.results == [EXPECTED_SUM] * 2
            assert run.time_domain == "wall"


class TestRecovery:
    """A seeded real-process fault on op 0 must recover to the exact
    fault-free answer, with the failure classified and counted."""

    #: phase at which rank 1 is SIGKILLed -> expected failure class.
    KILL_PHASES = {
        "spawn": "spawn_failure",
        "compute": "rank_death",
        "collective": "rank_death",
        "flush": "rank_death",
    }

    @pytest.mark.parametrize("phase", sorted(KILL_PHASES))
    def test_sigkill_recovers_bit_identical(self, phase):
        plan = ChaosPlan(events=(
            ChaosEvent(kind="kill", rank=1, op_index=0, phase=phase),
        ))
        with GangSupervisor(timeout=60, retry=FAST_RETRY, chaos=plan) as sup:
            run = _run_sum(sup)
            assert run.results == [EXPECTED_SUM] * 2
            assert sup.stats.retries >= 1
            assert sup.stats.failures.get(self.KILL_PHASES[phase], 0) >= 1
            # The op still counts once: retries are inside one op.
            assert sup.stats.ops == 1
            kinds = {ev.kind for ev in sup.stats.events}
            assert {"retry", "op_ok"} <= kinds
            if phase == "spawn":
                # The gang died while being built: no established gang
                # was reaped, but a fresh epoch was spawned.
                assert sup.stats.gang_epoch >= 2
            else:
                assert sup.stats.rebuilds >= 1
                assert "rebuild" in kinds

    def test_sigstop_hang_detected_by_heartbeat(self):
        plan = ChaosPlan(events=(
            ChaosEvent(kind="stop", rank=0, op_index=0, phase="compute"),
        ))
        sup = GangSupervisor(timeout=60, retry=FAST_RETRY, chaos=plan,
                             heartbeat_interval=0.05, heartbeat_timeout=1.0)
        with sup:
            run = _run_sum(sup)
            assert run.results == [EXPECTED_SUM] * 2
            assert sup.stats.failures.get("heartbeat_miss", 0) >= 1

    def test_poisoned_result_retried(self):
        plan = ChaosPlan(events=(
            ChaosEvent(kind="poison", rank=1, op_index=0, phase="flush"),
        ))
        with GangSupervisor(timeout=60, retry=FAST_RETRY, chaos=plan) as sup:
            run = _run_sum(sup)
            assert run.results == [EXPECTED_SUM] * 2
            assert sup.stats.failures.get("poisoned_result", 0) >= 1

    def test_deadlock_classified_as_op_timeout(self):
        pol = RetryPolicy(max_retries=1, base_delay=0.01, jitter=0.0)
        with GangSupervisor(timeout=1.0, retry=pol) as sup:
            with pytest.raises(MpGangError, match="retry budget exhausted"):
                sup.run_spmd(_deadlock_prog, 2, spec=SPEC)
            # Every attempt (initial + 1 retry) timed out.
            assert sup.stats.failures.get("op_timeout", 0) == 2

    def test_program_error_not_retried(self):
        with GangSupervisor(timeout=60, retry=FAST_RETRY) as sup:
            with pytest.raises(MpGangError) as err:
                sup.run_spmd(_boom_prog, 2, spec=SPEC)
            assert err.value.rank == 1
            assert "ValueError: boom in supervised gang" in str(err.value)
            assert sup.stats.retries == 0
            assert sup.stats.failures.get("program_error", 0) == 1
            # The gang is rebuilt (the failing worker exited), but no
            # retry of a deterministic program error is attempted.
            run = sup.run_spmd(_quick_prog, 2, spec=SPEC)
            assert run.results == [0, 1]

    def test_later_ops_unaffected_by_op0_chaos(self):
        plan = ChaosPlan(events=(
            ChaosEvent(kind="kill", rank=1, op_index=0, phase="compute"),
        ))
        with GangSupervisor(timeout=60, retry=FAST_RETRY, chaos=plan) as sup:
            _run_sum(sup)
            epoch = sup.stats.gang_epoch
            run = _run_sum(sup)  # op 1: warm, no faults
            assert run.results == [EXPECTED_SUM] * 2
            assert sup.stats.gang_epoch == epoch
            assert sup.stats.warm_ops >= 1


class TestDegradation:
    #: A kill with a budget bigger than the retry allowance: every mp
    #: attempt dies, forcing the exhaustion path.
    PERSISTENT_KILL = ChaosPlan(events=(
        ChaosEvent(kind="kill", rank=1, op_index=0, phase="compute",
                   times=10),
    ))

    def test_exhaustion_raises_by_default(self):
        pol = RetryPolicy(max_retries=1, base_delay=0.01, jitter=0.0)
        sup = GangSupervisor(timeout=60, retry=pol,
                             chaos=self.PERSISTENT_KILL)
        with sup:
            with pytest.raises(MpGangError, match="retry budget exhausted"):
                _run_sum(sup)
            assert sup.stats.fallbacks == 0

    def test_exhaustion_falls_back_to_simulator(self):
        pol = RetryPolicy(max_retries=1, base_delay=0.01, jitter=0.0)
        sup = GangSupervisor(timeout=60, retry=pol,
                             chaos=self.PERSISTENT_KILL,
                             on_exhaustion="fallback")
        with sup:
            run = _run_sum(sup)
            # Degraded answer comes from the simulator: same numbers,
            # honestly labelled with the simulated time domain.
            assert run.results == [EXPECTED_SUM] * 2
            assert run.time_domain == "simulated"
            assert sup.stats.fallbacks == 1
            assert "fallback" in {ev.kind for ev in sup.stats.events}

    def test_bad_on_exhaustion_rejected(self):
        with pytest.raises(ValueError, match="on_exhaustion"):
            GangSupervisor(on_exhaustion="retry-forever")

    def test_bad_heartbeat_config_rejected(self):
        with pytest.raises(ValueError, match="heartbeat"):
            GangSupervisor(heartbeat_interval=1.0, heartbeat_timeout=0.5)


class TestObservability:
    def test_metrics_counters_and_epoch_gauge(self):
        plan = ChaosPlan(events=(
            ChaosEvent(kind="kill", rank=1, op_index=0, phase="compute"),
        ))
        reg = MetricsRegistry()
        with GangSupervisor(timeout=60, retry=FAST_RETRY, chaos=plan) as sup:
            sup.run_spmd(_sum_prog, 2, spec=SPEC, shared={"x": DATA},
                         make_rank_args=_halves, metrics=reg)
            assert reg.value("supervisor.rank_death") >= 1
            assert reg.value("supervisor.retry") >= 1
            assert reg.value("supervisor.rebuild") >= 1
            assert reg.value("supervisor.op_ok") == 1
            assert reg.value("supervisor.gang_epoch") == sup.stats.gang_epoch

    def test_profile_warm_dispatch_and_lifecycle_spans(self):
        with GangSupervisor(timeout=60) as sup:
            sup.warm(2)
            prof = RuntimeProfiler()
            run = sup.run_spmd(_sum_prog, 2, spec=SPEC, shared={"x": DATA},
                               make_rank_args=_halves, profile=prof)
            assert run.results == [EXPECTED_SUM] * 2
            p = prof.profile
            assert p is not None
            assert p.backend == "supervised"
            # Warm dispatch: the "fork" lane is queue latency, not a real
            # fork+import; it must be far below any plausible cold spawn.
            assert p.phase_seconds["fork"] < 0.2
            names = {s[0] for s in p.gang_spans}
            assert "supervisor.op_ok" in names
            for _, t0, t1 in p.gang_spans:
                assert 0.0 <= t0 <= t1
            validate_chrome_trace(p.to_chrome_trace())

    def test_stats_as_dict_is_json(self):
        with GangSupervisor(timeout=60) as sup:
            sup.run_spmd(_quick_prog, 2, spec=SPEC)
            doc = json.loads(json.dumps(sup.stats.as_dict()))
            assert doc["ops"] == 1
            assert doc["gang_epoch"] >= 1
            assert isinstance(doc["events"], list)


class TestFreezeThaw:
    """Programs and arg-makers must survive the dispatch queue even when
    they are closures (plain pickle would refuse them)."""

    def test_closure_program_ships(self):
        scale = 3.0

        def prog(ctx):
            ctx.work(1)
            return ctx.rank * scale

        with GangSupervisor(timeout=60) as sup:
            run = sup.run_spmd(prog, 2, spec=SPEC)
            assert run.results == [0.0, 3.0]

    def test_closure_over_array_ships(self):
        weights = np.array([2.0, 5.0])

        def maker(r, shared):
            return (float(weights[r]),)

        def prog(ctx, w):
            ctx.work(1)
            return w * 10

        with GangSupervisor(timeout=60) as sup:
            run = sup.run_spmd(prog, 2, spec=SPEC, make_rank_args=maker)
            assert run.results == [20.0, 50.0]

    def test_unpicklable_closure_state_rejected_eagerly(self):
        lock = threading.Lock()

        def prog(ctx):
            return lock.locked()

        from repro.runtime import BackendError

        with GangSupervisor(timeout=60) as sup:
            with pytest.raises(BackendError, match="not picklable"):
                sup.run_spmd(prog, 2, spec=SPEC)


class TestApiIntegration:
    def test_pack_via_supervised_backend_matches_sim(self):
        rng = np.random.default_rng(5)
        a = rng.random(96)
        m = rng.random(96) < 0.4
        base = pack(a, m, grid=4, spec=SPEC, backend="sim")
        via = pack(a, m, grid=4, spec=SPEC, backend="supervised")
        np.testing.assert_array_equal(base.vector, via.vector)
        # A second call through the string name reuses the warm gang.
        pack(a, m, grid=4, spec=SPEC, backend="supervised")
        assert default_supervisor().stats.warm_ops >= 1


class TestEmergencyCleanup:
    """Satellite: a host killed by SIGTERM mid-run must unlink its shm
    segments and kill its gang from the signal handler — atexit never
    runs under default SIGTERM disposition."""

    SCRIPT = r"""
import sys, time
import numpy as np
from repro.runtime.supervisor import GangSupervisor
from repro.runtime.mp import _ShmArena

sup = GangSupervisor(timeout=60)
sup.warm(2)
arena = _ShmArena({"a": np.arange(1 << 14, dtype=np.float64)})
names = [seg.name for seg in arena._segments]
pids = [str(p.pid) for p in sup._gang.procs]
print("READY", ",".join(names), ",".join(pids), flush=True)
time.sleep(60)
"""

    def test_sigterm_unlinks_shm_and_kills_gang(self, tmp_path):
        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        env["PYTHONPATH"] = os.path.join(root, "src")
        proc = subprocess.Popen(
            [sys.executable, "-c", self.SCRIPT],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env,
            text=True,
        )
        try:
            line = proc.stdout.readline().split()
            assert line and line[0] == "READY", proc.stderr.read()
            seg_names = line[1].split(",")
            child_pids = [int(p) for p in line[2].split(",")]
            assert seg_names and len(child_pids) == 2
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=15) != 0
        finally:
            proc.kill()
            proc.wait(timeout=15)
            proc.stdout.close()
            proc.stderr.close()
        deadline = time.monotonic() + 10
        pending = lambda: (
            [n for n in seg_names if os.path.exists(f"/dev/shm/{n}")],
            [p for p in child_pids if _alive(p)],
        )
        while time.monotonic() < deadline and any(pending()):
            time.sleep(0.1)
        leaked_segs, leaked_pids = pending()
        assert leaked_segs == [], f"segments survived SIGTERM: {leaked_segs}"
        assert leaked_pids == [], f"gang survived SIGTERM: {leaked_pids}"


def _alive(pid):
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


class TestServerSafety:
    """Long-lived-server contract: concurrent ops serialize through the
    dispatch lock, and close() is terminal (pinned for repro.serve)."""

    def test_concurrent_ops_from_threads_serialize(self):
        sup = GangSupervisor(timeout=60)
        results = [None] * 6
        errors = []

        def worker(i):
            try:
                run = _run_sum(sup)
                results[i] = run.results
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append((i, exc))

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(len(results))]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
        finally:
            sup.close()
        assert not errors, errors
        for res in results:
            assert res is not None
            assert all(r == EXPECTED_SUM for r in res)
        assert sup.stats.ops == len(results)
        settle()

    def test_close_is_terminal(self):
        sup = GangSupervisor(timeout=60)
        _run_sum(sup)
        sup.close()
        assert sup.closed
        with pytest.raises(RuntimeError, match="closed"):
            _run_sum(sup)
        with pytest.raises(RuntimeError, match="closed"):
            sup.warm(2)
        sup.close()  # idempotent
        sup.shutdown()  # still callable; stays a no-op after close
        settle()

    def test_shutdown_keeps_supervisor_usable(self):
        sup = GangSupervisor(timeout=60)
        _run_sum(sup)
        sup.shutdown()
        assert not sup.closed
        run = _run_sum(sup)  # re-forks a fresh gang
        assert all(r == EXPECTED_SUM for r in run.results)
        sup.close()
        settle()

    def test_context_manager_closes(self):
        with GangSupervisor(timeout=60) as sup:
            _run_sum(sup)
        assert sup.closed
        with pytest.raises(RuntimeError, match="closed"):
            _run_sum(sup)
        settle()
