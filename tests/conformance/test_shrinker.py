"""The shrinker: minimizes while preserving failure, respects its budget,
and actually makes cases smaller along the documented axes."""

import numpy as np

from repro.conformance import ConformanceCase, shrink_case

BIG = ConformanceCase(
    op="unpack", seed=12345, shape=(16, 24), grid=(4, 4),
    dist=("cyclic(2)", "cyclic"), scheme="css", mask_kind="stripe",
    density=0.5, dtype="complex128", field_dtype="int32", result_block=3,
    compress_requests=True, prs="direct", m2m_schedule="naive",
    machine="cluster", vector_extra=5,
)


def _weight(case: ConformanceCase) -> int:
    return int(np.prod([max(n, 1) for n in case.shape])) * case.nprocs


class TestShrinker:
    def test_preserves_failure_and_shrinks(self):
        # Synthetic bug: any case running on more than two processors.
        failing = lambda c: c.nprocs > 2  # noqa: E731
        assert failing(BIG)
        shrunk, evals = shrink_case(BIG, failing=failing, max_shrink=400)
        assert failing(shrunk), "shrinking must never lose the failure"
        assert evals <= 400
        assert _weight(shrunk) < _weight(BIG)
        # Everything irrelevant to the predicate got reset to its default.
        assert shrunk.result_block is None
        assert not shrunk.compress_requests
        assert shrunk.vector_extra == 0
        assert shrunk.dtype == "float64" and shrunk.field_dtype is None
        assert shrunk.machine == "cm5" and shrunk.prs == "auto"

    def test_shrinks_distribution_toward_block(self):
        failing = lambda c: c.shape[0] >= 8  # noqa: E731
        shrunk, _ = shrink_case(BIG, failing=failing, max_shrink=400)
        assert failing(shrunk)
        assert all(spec == "block" for spec in shrunk.dist)

    def test_drops_axes(self):
        # A failure independent of rank should shrink to a 1-D case.
        failing = lambda c: True  # noqa: E731
        shrunk, _ = shrink_case(BIG, failing=failing, max_shrink=600)
        assert shrunk.d == 1

    def test_budget_zero_returns_input(self):
        shrunk, evals = shrink_case(BIG, failing=lambda c: True, max_shrink=0)
        assert shrunk == BIG.normalized()
        assert evals == 0

    def test_budget_is_respected(self):
        calls = []

        def failing(case):
            calls.append(case)
            return True

        _, evals = shrink_case(BIG, failing=failing, max_shrink=7)
        assert evals == len(calls) == 7

    def test_result_is_normalized(self):
        shrunk, _ = shrink_case(BIG, failing=lambda c: True, max_shrink=100)
        assert shrunk.pad or shrunk.divisible()
