"""Conformance through the plan cache: cache-on must equal cache-off.

Property: for any generated case, running with a shared plan cache gives
the same oracle verdict as running without one — and a second pass over
the same cases replays compiled plans (nonzero hits) while staying green.
The oracle compares bit-exactly against the serial reference, so these
tests pin the tentpole guarantee: a plan replay is indistinguishable from
a fresh compile in everything but wall clock.
"""

from pathlib import Path

from repro.conformance import generate_cases, replay_corpus, run_case
from repro.core.plan_cache import PlanCache

CORPUS = Path(__file__).parent / "corpus"
SEED = 7
CASES = 25


def test_generated_cases_cache_on_equals_cache_off():
    cache = PlanCache(capacity=256)
    for i, case in enumerate(generate_cases(SEED, CASES)):
        off = run_case(case)
        on = run_case(case, plan_cache=cache)
        assert off.ok, f"case #{i} failed cache-off: {off}"
        assert on.ok, f"case #{i} failed cache-on: {on}"
        assert (off.ok, off.kind) == (on.ok, on.kind), (
            f"case #{i}: verdict differs cache-on vs cache-off "
            f"({on} vs {off})\n{case.describe()}"
        )


def test_generated_cases_second_pass_hits():
    cases = generate_cases(SEED, CASES)
    cache = PlanCache(capacity=256)
    for case in cases:
        assert run_case(case, plan_cache=cache).ok
    compiled = cache.stats().misses
    assert compiled > 0, "no generated case was cacheable"
    for i, case in enumerate(cases):
        outcome = run_case(case, plan_cache=cache)
        assert outcome.ok, f"case #{i} failed on plan replay: {outcome}"
    stats = cache.stats()
    assert stats.hits >= compiled, (
        f"second pass replayed only {stats.hits}/{compiled} compiled plans"
    )


def test_corpus_replay_with_cache_stays_green():
    cache = PlanCache(capacity=256)
    for _ in range(2):
        results = replay_corpus(CORPUS, plan_cache=cache)
        assert results, "empty corpus directory"
        bad = [(p.name, str(o)) for p, _, o in results if not o.ok]
        assert not bad, f"corpus failures under the plan cache: {bad}"
    stats = cache.stats()
    assert stats.hits > 0, "second corpus pass produced zero plan-cache hits"
