"""Regression corpus replay: every bug the fuzzer (or a probe) ever found
stays fixed.  One JSON file per bug under ``corpus/``; each entry is a
minimized :class:`ConformanceCase` that failed before its fix landed and
must pass forever after."""

from pathlib import Path

import pytest

from repro.conformance import load_corpus_case, replay_corpus, run_case

CORPUS = Path(__file__).parent / "corpus"
ENTRIES = sorted(CORPUS.glob("*.json"))


def test_corpus_is_populated():
    # The conformance work fixed at least five distinct bug classes; the
    # corpus pins every one of them.
    assert len(ENTRIES) >= 5


@pytest.mark.parametrize("path", ENTRIES, ids=lambda p: p.stem)
def test_corpus_entry_passes(path):
    case, bug = load_corpus_case(path)
    assert bug, f"{path.name} must describe the bug it pins"
    outcome = run_case(case)
    assert outcome.ok, (
        f"REGRESSION {path.name}: {outcome}\n"
        f"pinned bug: {bug}\n{case.snippet()}"
    )


def test_replay_corpus_helper_agrees():
    results = replay_corpus(CORPUS)
    assert [p for p, _, _ in results] == ENTRIES
    assert all(outcome.ok for _, _, outcome in results)
