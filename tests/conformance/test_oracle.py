"""The conformance oracle itself: serial-reference properties (including
the paper's Section 2 / Figure 1 worked example) and the verdict logic —
a healthy library yields ``ok``, a planted bug is detected and classified."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.api as api
from repro.conformance import CaseOutcome, ConformanceCase, run_case
from repro.serial.reference import mask_ranks, pack_reference, unpack_reference

#: The paper's Figure 1 input: A(16)/M(16), CYCLIC(2) on 4 procs, Size=10.
FIG1_MASK = np.array(
    [1, 0, 1, 1, 0, 1, 1, 1, 0, 0, 1, 1, 0, 1, 0, 1], dtype=bool
)


class TestFigure1Example:
    """Section 2's running example, checked end to end."""

    def test_mask_ranks(self):
        expected = [0, -1, 1, 2, -1, 3, 4, 5, -1, -1, 6, 7, -1, 8, -1, 9]
        assert mask_ranks(FIG1_MASK).tolist() == expected

    def test_pack_reference_selects_in_element_order(self):
        a = np.arange(16.0)
        packed = pack_reference(a, FIG1_MASK)
        assert packed.tolist() == [0, 2, 3, 5, 6, 7, 10, 11, 13, 15]

    def test_unpack_reference_inverts_pack(self):
        a = np.arange(16.0)
        v = pack_reference(a, FIG1_MASK)
        assert np.array_equal(unpack_reference(v, FIG1_MASK, a), a)

    def test_parallel_pack_matches_reference_on_fig1_layout(self):
        # The exact paper configuration: block-cyclic(2) over 4 processors.
        a = np.arange(16.0)
        result = api.pack(a, FIG1_MASK, grid=(4,), block=2, validate=False)
        assert result.size == 10
        assert np.array_equal(result.vector[:10], pack_reference(a, FIG1_MASK))

    def test_fig1_as_conformance_case_layout(self):
        # The same distribution driven through the conformance harness.
        case = ConformanceCase(
            op="roundtrip", seed=6, shape=(16,), grid=(4,),
            dist=("cyclic(2)",), scheme="css", mask_kind="random",
            density=10 / 16,
        )
        assert run_case(case).ok


class TestReferenceProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.booleans(), min_size=0, max_size=40))
    def test_rank_permutation(self, bits):
        mask = np.array(bits, dtype=bool)
        ranks = mask_ranks(mask)
        size = int(mask.sum())
        assert np.array_equal(np.sort(ranks[mask]), np.arange(size))
        assert np.all(ranks[~mask] == -1)
        # Ranks ascend in row-major element order.
        assert np.all(np.diff(ranks[mask]) == 1) or size <= 1

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.booleans(), min_size=1, max_size=40), st.integers(0, 5))
    def test_serial_roundtrip_identity(self, bits, extra):
        mask = np.array(bits, dtype=bool)
        a = np.arange(mask.size, dtype=np.float64)
        v = pack_reference(a, mask)
        # Surplus vector elements beyond Size are legal F90 and ignored.
        v = np.concatenate([v, np.full(extra, -1.0)])
        assert np.array_equal(unpack_reference(v, mask, a), a)


class TestVerdicts:
    def test_ok_cases_per_op(self):
        for op in ("pack", "pack_vector", "unpack", "roundtrip", "ranking"):
            case = ConformanceCase(
                op=op, seed=9, shape=(12,), grid=(3,), dist=("block",),
                scheme="css", mask_kind="random", density=0.5,
            )
            outcome = run_case(case)
            assert outcome.ok, f"{op}: {outcome}"

    def test_planted_pack_bug_is_detected(self, monkeypatch):
        real_pack = api.pack

        def corrupted_pack(*args, **kwargs):
            result = real_pack(*args, **kwargs)
            result.vector[0] += 1  # flip one packed element
            return result

        monkeypatch.setattr(api, "pack", corrupted_pack)
        case = ConformanceCase(
            op="pack", seed=1, shape=(16,), grid=(4,), dist=("block",),
            scheme="sss", mask_kind="all_true", density=1.0,
        )
        outcome = run_case(case)
        assert not outcome.ok
        assert outcome.kind == "mismatch"

    def test_exceptions_are_error_outcomes(self, monkeypatch):
        def broken_unpack(*args, **kwargs):
            raise RuntimeError("planted")

        monkeypatch.setattr(api, "unpack", broken_unpack)
        case = ConformanceCase(
            op="unpack", seed=1, shape=(8,), grid=(2,), dist=("block",),
            scheme="css", mask_kind="random", density=0.5,
        )
        outcome = run_case(case)
        assert not outcome.ok and outcome.kind == "error"
        assert "planted" in outcome.detail

    def test_outcome_str(self):
        assert str(CaseOutcome(True, "ok")) == "ok"
        assert str(CaseOutcome(False, "mismatch", "boom")) == "mismatch: boom"
