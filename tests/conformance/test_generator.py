"""Case generator: determinism, legality, and coverage of the config space."""

import numpy as np
import pytest

from repro.conformance import ConformanceCase, generate_cases
from repro.conformance.cases import parse_dist

CASES = generate_cases(seed=11, n=150)


class TestDeterminism:
    def test_same_seed_same_cases(self):
        again = generate_cases(seed=11, n=150)
        assert [c.to_dict() for c in again] == [c.to_dict() for c in CASES]

    def test_prefix_stability(self):
        # The first k cases of a stream never depend on how many are drawn
        # after them — corpus entries cite (seed, index) pairs.
        assert [c.to_dict() for c in generate_cases(seed=11, n=30)] == [
            c.to_dict() for c in CASES[:30]
        ]

    def test_different_seeds_differ(self):
        other = generate_cases(seed=12, n=150)
        assert [c.to_dict() for c in other] != [c.to_dict() for c in CASES]

    def test_inputs_are_pure_functions_of_the_case(self):
        case = CASES[0]
        assert np.array_equal(case.make_mask(), case.make_mask())
        assert np.array_equal(case.make_array("array"), case.make_array("array"))


class TestLegality:
    def test_every_case_is_normalized(self):
        # pad is forced on whenever the shape violates P*W | N, so every
        # drawn case is runnable without further fixing.
        for case in CASES:
            assert case.pad or case.divisible(), case.describe()

    def test_machine_bounds(self):
        for case in CASES:
            assert 1 <= case.nprocs <= 16
            assert int(np.prod([max(n, 1) for n in case.shape])) <= 4096

    def test_dist_specs_parse(self):
        for case in CASES:
            for spec in case.dist:
                parse_dist(spec)  # must not raise

    def test_ctrl_prs_only_on_cm5(self):
        # The ctrl PRS algorithm needs the CM-5 control network.
        for case in CASES:
            if case.prs == "ctrl":
                assert case.machine == "cm5", case.describe()

    def test_faults_imply_reliable_transport(self):
        for case in CASES:
            if case.fault_plan() is not None:
                assert case.reliable, case.describe()


class TestCoverage:
    """150 draws must visit the corners the fuzzer exists to reach."""

    def test_all_ops_drawn(self):
        assert {c.op for c in CASES} == {
            "pack", "unpack", "pack_vector", "roundtrip", "ranking"
        }

    def test_zero_extents_drawn(self):
        assert any(0 in c.shape for c in CASES)

    def test_degenerate_masks_drawn(self):
        kinds = {c.mask_kind for c in CASES}
        assert {"all_false", "all_true"} <= kinds
        densities = {c.density for c in CASES if c.mask_kind == "random"}
        assert 0.0 in densities and 1.0 in densities

    def test_all_dist_kinds_drawn(self):
        seen = {spec for c in CASES for spec in c.dist}
        assert "block" in seen and "cyclic" in seen
        assert any(s.startswith("cyclic(") for s in seen)

    def test_multidimensional_cases_drawn(self):
        assert {c.d for c in CASES} == {1, 2, 3}

    def test_ragged_result_layouts_drawn(self):
        assert any(c.result_block is not None for c in CASES)

    def test_faulty_cases_drawn(self):
        assert any(c.fault_plan() is not None for c in CASES)

    def test_mixed_dtype_unpacks_drawn(self):
        assert any(
            c.field_dtype is not None and c.field_dtype != c.dtype
            for c in CASES
        )


class TestSerialization:
    @pytest.mark.parametrize("case", CASES[:20], ids=range(20))
    def test_roundtrip(self, case):
        assert ConformanceCase.from_dict(case.to_dict()) == case

    def test_unknown_fields_rejected(self):
        data = CASES[0].to_dict()
        data["no_such_knob"] = 1
        with pytest.raises(ValueError, match="no_such_knob"):
            ConformanceCase.from_dict(data)

    def test_snippet_mentions_the_case(self):
        snippet = CASES[0].snippet()
        assert "ConformanceCase.from_dict(" in snippet
        assert "run_case" in snippet
