"""Pipelined binary-tree PRS — correctness, tree structure, cost regimes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives.pipeline import _lowbit, _parent, optimal_chunk_words, prs_pipeline
from repro.collectives import prs_direct, prs_split
from repro.machine import Machine, MachineSpec

SPEC = MachineSpec(tau=86e-6, mu=0.5e-6, delta=0.1e-6, has_control_network=False)


def oracle(vectors):
    stack = np.vstack(vectors)
    csum = np.cumsum(stack, axis=0)
    reduction = csum[-1]
    prefixes = np.vstack([np.zeros_like(reduction)[None, :], csum[:-1]])
    return prefixes, reduction


def run_pipeline(P, M, seed=0, chunk_words=None, group=None, spec=SPEC):
    rng = np.random.default_rng(seed)
    count = P if group is None else len(group)
    vecs = [rng.integers(0, 50, M).astype(np.int64) for _ in range(count)]

    def prog(ctx):
        if group is not None and ctx.rank not in group:
            return None
        idx = ctx.rank if group is None else list(group).index(ctx.rank)
        r = yield from prs_pipeline(ctx, vecs[idx], group=group, chunk_words=chunk_words)
        return r

    nprocs = P if group is None else max(group) + 1
    res = Machine(nprocs, spec).run(prog)
    return vecs, res


class TestTreeStructure:
    def test_lowbit(self):
        assert _lowbit(1) == 1
        assert _lowbit(6) == 2
        assert _lowbit(8) == 8

    def test_parent_chain_reaches_root(self):
        P = 16
        for m in range(1, P):
            seen = set()
            node = m
            while True:
                assert node not in seen, "cycle in parent chain"
                seen.add(node)
                p = _parent(node, P)
                if p is None:
                    assert node == P // 2
                    break
                assert _lowbit(p) == 2 * _lowbit(node)
                node = p

    def test_every_nonzero_rank_hosts_one_node(self):
        # The binary-indexed-tree bijection: P-1 internal nodes <-> ranks 1..P-1.
        P = 32
        children = set()
        for m in range(1, P):
            lb = _lowbit(m)
            if lb > 1:
                children.add(m - lb // 2)
                children.add(m + lb // 2)
        # Internal children named above are distinct nodes in 1..P-1.
        assert children <= set(range(1, P))


class TestCorrectness:
    @pytest.mark.parametrize("P", [2, 4, 8, 16, 32])
    @pytest.mark.parametrize("M", [1, 2, 7, 64])
    def test_matches_oracle(self, P, M):
        vecs, res = run_pipeline(P, M, seed=P * 131 + M)
        prefixes, reduction = oracle(vecs)
        for i, r in enumerate(res.results):
            np.testing.assert_array_equal(r.prefix, prefixes[i])
            np.testing.assert_array_equal(r.reduction, reduction)
            assert r.algorithm == "pipeline"

    @pytest.mark.parametrize("chunk_words", [1, 3, 16, 1000])
    def test_any_chunk_size(self, chunk_words):
        vecs, res = run_pipeline(8, 50, chunk_words=chunk_words)
        prefixes, reduction = oracle(vecs)
        for i, r in enumerate(res.results):
            np.testing.assert_array_equal(r.prefix, prefixes[i])

    def test_subgroup(self):
        group = (1, 3, 5, 7)
        vecs, res = run_pipeline(4, 12, group=group)
        prefixes, reduction = oracle(vecs)
        for i, rank in enumerate(group):
            np.testing.assert_array_equal(res.results[rank].prefix, prefixes[i])
            np.testing.assert_array_equal(res.results[rank].reduction, reduction)

    def test_single_member(self):
        vecs, res = run_pipeline(1, 9)
        np.testing.assert_array_equal(res.results[0].prefix, np.zeros(9, np.int64))
        np.testing.assert_array_equal(res.results[0].reduction, vecs[0])

    def test_empty_vector(self):
        vecs, res = run_pipeline(4, 0)
        assert res.results[0].prefix.size == 0

    def test_non_power_of_two_rejected(self):
        with pytest.raises(Exception):
            run_pipeline(6, 8)


class TestCostRegimes:
    def _elapsed(self, fn, P, M):
        rng = np.random.default_rng(0)
        vecs = [rng.integers(0, 50, M).astype(np.int64) for _ in range(P)]

        def prog(ctx):
            r = yield from fn(ctx, vecs[ctx.rank])
            return None

        return Machine(P, SPEC).run(prog).elapsed

    def test_beats_split_at_large_p_moderate_m(self):
        # The O(tau log P + mu M) regime: start-ups dominate split's tau*P.
        P, M = 64, 1024
        assert self._elapsed(prs_pipeline, P, M) < self._elapsed(prs_split, P, M)

    def test_split_wins_at_huge_vectors(self):
        # Pipeline moves ~6 chunk-lengths per element vs split's ~3.
        P, M = 16, 65536
        assert self._elapsed(prs_split, P, M) < self._elapsed(prs_pipeline, P, M)

    def test_direct_wins_at_tiny_vectors(self):
        P, M = 64, 8
        assert self._elapsed(prs_direct, P, M) < self._elapsed(prs_pipeline, P, M)

    def test_pipelining_beats_single_chunk(self):
        # Streaming in chunks must beat sending the whole vector through
        # the tree at once (otherwise the pipeline adds nothing).
        P, M = 32, 8192
        one = run_pipeline(P, M, chunk_words=M)[1].elapsed
        auto = run_pipeline(P, M)[1].elapsed
        assert auto < one


class TestChunkSelection:
    def test_optimal_chunk_bounds(self):
        assert optimal_chunk_words(SPEC, 16, 1) == 1
        g = optimal_chunk_words(SPEC, 16, 4096)
        assert 1 <= g <= 4096

    def test_larger_tau_larger_chunks(self):
        small = optimal_chunk_words(SPEC, 16, 65536)
        big = optimal_chunk_words(SPEC.with_(tau=10 * SPEC.tau), 16, 65536)
        assert big > small


@settings(max_examples=30, deadline=None)
@given(
    logp=st.integers(1, 4),
    m=st.integers(0, 40),
    chunk=st.integers(1, 17),
    seed=st.integers(0, 99),
)
def test_property_pipeline_matches_oracle(logp, m, chunk, seed):
    P = 2**logp
    vecs, res = run_pipeline(P, m, seed=seed, chunk_words=chunk)
    if m == 0:
        return
    prefixes, reduction = oracle(vecs)
    for i, r in enumerate(res.results):
        np.testing.assert_array_equal(r.prefix, prefixes[i])
        np.testing.assert_array_equal(r.reduction, reduction)
