"""Software collectives: correctness against numpy, plus cost shapes."""

import numpy as np
import pytest

from repro.collectives import allgather, allreduce, alltoall, bcast, gather, reduce
from repro.machine import Machine, MachineSpec

SPEC = MachineSpec(tau=10e-6, mu=1e-6, delta=0.1e-6, name="test")


def run(nprocs, prog, *args):
    return Machine(nprocs, SPEC).run(prog, *args)


class TestBcast:
    @pytest.mark.parametrize("P", [1, 2, 3, 4, 5, 8, 13, 16])
    def test_all_ranks_get_value(self, P):
        def prog(ctx):
            value = "payload" if ctx.rank == 0 else None
            out = yield from bcast(ctx, value, root=0)
            return out

        res = run(P, prog)
        assert res.results == ["payload"] * P

    @pytest.mark.parametrize("root", [0, 1, 3])
    def test_nonzero_root(self, root):
        def prog(ctx):
            value = ctx.rank if ctx.rank == root else None
            out = yield from bcast(ctx, value, root=root)
            return out

        res = run(4, prog)
        assert res.results == [root] * 4

    def test_subgroup_bcast(self):
        def prog(ctx):
            group = (1, 3, 5)
            if ctx.rank not in group:
                return "untouched"
            value = "hi" if ctx.rank == 1 else None
            out = yield from bcast(ctx, value, root=0, group=group)
            return out

        res = run(6, prog)
        assert res.results == ["untouched", "hi", "untouched", "hi", "untouched", "hi"]

    def test_log_rounds_cost(self):
        # With P = 8 the deepest path sees 3 message legs.
        def prog(ctx):
            out = yield from bcast(ctx, np.zeros(100) if ctx.rank == 0 else None, words=100)
            return out

        res = run(8, prog)
        leg = SPEC.message_time(100)
        assert res.elapsed == pytest.approx(3 * leg, rel=0.01)


class TestReduce:
    @pytest.mark.parametrize("P", [1, 2, 3, 4, 7, 8, 16])
    def test_vector_sum(self, P):
        def prog(ctx):
            v = np.full(5, ctx.rank + 1, dtype=np.int64)
            out = yield from reduce(ctx, v, root=0)
            return None if out is None else out.tolist()

        res = run(P, prog)
        expected = [sum(range(1, P + 1))] * 5
        assert res.results[0] == expected
        assert all(r is None for r in res.results[1:])

    def test_custom_op(self):
        def prog(ctx):
            out = yield from reduce(ctx, ctx.rank + 1, op=lambda a, b: a * b, words=1)
            return out

        res = run(4, prog)
        assert res.results[0] == 24


class TestAllreduce:
    @pytest.mark.parametrize("P", [1, 2, 4, 8, 3, 5, 6])
    def test_everyone_gets_total(self, P):
        def prog(ctx):
            v = np.arange(4, dtype=np.int64) + ctx.rank
            out = yield from allreduce(ctx, v)
            return out.tolist()

        res = run(P, prog)
        base = np.arange(4) * P + sum(range(P))
        for r in res.results:
            assert r == base.tolist()


class TestGather:
    def test_member_order(self):
        def prog(ctx):
            out = yield from gather(ctx, ctx.rank * 10, root=0, words=1)
            return out

        res = run(5, prog)
        assert res.results[0] == [0, 10, 20, 30, 40]

    def test_subgroup_gather_at_nonzero_root(self):
        def prog(ctx):
            group = (0, 2, 4)
            if ctx.rank not in group:
                return None
            out = yield from gather(ctx, ctx.rank, root=1, group=group, words=1)
            return out

        res = run(5, prog)
        assert res.results[2] == [0, 2, 4]
        assert res.results[0] is None and res.results[4] is None


class TestAllgather:
    @pytest.mark.parametrize("P", [1, 2, 3, 4, 8])
    def test_everyone_gets_all(self, P):
        def prog(ctx):
            out = yield from allgather(ctx, np.array([ctx.rank]), words=1)
            return [int(b[0]) for b in out]

        res = run(P, prog)
        for r in res.results:
            assert r == list(range(P))


class TestAlltoall:
    @pytest.mark.parametrize("P", [1, 2, 4, 5, 8])
    def test_transpose(self, P):
        def prog(ctx):
            blocks = [f"{ctx.rank}->{d}" for d in range(P)]
            out = yield from alltoall(ctx, blocks, words=[1] * P)
            return out

        res = run(P, prog)
        for d, received in enumerate(res.results):
            assert received == [f"{s}->{d}" for s in range(P)]

    def test_block_count_checked(self):
        def prog(ctx):
            out = yield from alltoall(ctx, ["too", "few"])
            return out

        with pytest.raises(Exception):
            run(4, prog)

    def test_linear_permutation_cost(self):
        # Every rank sends P-1 remote messages of w words: (P-1)(tau + mu w).
        P, w = 8, 50

        def prog(ctx):
            blocks = [np.zeros(w)] * P
            out = yield from alltoall(ctx, blocks, words=[w] * P)
            return len(out)

        res = run(P, prog)
        expected = (P - 1) * SPEC.message_time(w)
        assert res.elapsed == pytest.approx(expected, rel=0.01)


class TestGroupValidation:
    def test_unsorted_group_rejected(self):
        def prog(ctx):
            out = yield from bcast(ctx, 1, group=(2, 0, 1))
            return out

        with pytest.raises(Exception):
            run(3, prog)

    def test_rank_outside_group_rejected(self):
        def prog(ctx):
            out = yield from bcast(ctx, 1, group=(0, 1))
            return out

        with pytest.raises(Exception):
            run(3, prog)
