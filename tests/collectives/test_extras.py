"""scatter / reduce-scatter / scan / exscan / alltoallv."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives import alltoallv, exscan, reduce_scatter, scan, scatter
from repro.machine import Machine, MachineSpec

SPEC = MachineSpec(tau=10e-6, mu=1e-6, delta=0.1e-6, name="test")


class TestScatter:
    @pytest.mark.parametrize("P", [1, 2, 3, 4, 5, 8, 16])
    def test_each_member_gets_its_block(self, P):
        def prog(ctx):
            blocks = [f"block-{i}" for i in range(P)] if ctx.rank == 0 else None
            out = yield from scatter(ctx, blocks, root=0)
            return out

        res = Machine(P, SPEC).run(prog)
        assert res.results == [f"block-{i}" for i in range(P)]

    @pytest.mark.parametrize("root", [0, 2])
    def test_nonzero_root(self, root):
        P = 4

        def prog(ctx):
            blocks = [i * 10 for i in range(P)] if ctx.rank == root else None
            out = yield from scatter(ctx, blocks, root=root, words=[1] * P)
            return out

        res = Machine(P, SPEC).run(prog)
        assert res.results == [0, 10, 20, 30]

    def test_root_needs_blocks(self):
        def prog(ctx):
            out = yield from scatter(ctx, None, root=0)
            return out

        with pytest.raises(Exception):
            Machine(2, SPEC).run(prog)

    def test_tree_beats_flat_in_startups(self):
        # The root sends log P messages, not P-1.
        P = 16

        def prog(ctx):
            blocks = [np.zeros(4)] * P if ctx.rank == 0 else None
            out = yield from scatter(ctx, blocks, root=0)
            return out

        res = Machine(P, SPEC).run(prog)
        assert res.stats[0].sends == 4  # log2(16)


class TestReduceScatter:
    @pytest.mark.parametrize("P", [2, 4, 8])
    @pytest.mark.parametrize("M", [8, 9, 16, 3])
    def test_matches_numpy(self, P, M):
        rng = np.random.default_rng(P * 10 + M)
        vecs = [rng.integers(0, 50, M).astype(np.int64) for _ in range(P)]
        total = np.sum(vecs, axis=0)
        bounds = np.linspace(0, M, P + 1).astype(int)

        def prog(ctx):
            out = yield from reduce_scatter(ctx, vecs[ctx.rank])
            return out

        res = Machine(P, SPEC).run(prog)
        for i in range(P):
            np.testing.assert_array_equal(
                res.results[i], total[bounds[i] : bounds[i + 1]]
            )

    def test_non_power_of_two_rejected(self):
        def prog(ctx):
            out = yield from reduce_scatter(ctx, np.zeros(6))
            return out

        with pytest.raises(Exception):
            Machine(3, SPEC).run(prog)


class TestScanExscan:
    @pytest.mark.parametrize("P", [1, 2, 3, 5, 8])
    def test_inclusive_scan(self, P):
        def prog(ctx):
            out = yield from scan(ctx, ctx.rank + 1, words=1)
            return out

        res = Machine(P, SPEC).run(prog)
        assert res.results == [sum(range(1, i + 2)) for i in range(P)]

    @pytest.mark.parametrize("P", [1, 2, 4, 7])
    def test_exclusive_scan(self, P):
        def prog(ctx):
            out = yield from exscan(ctx, ctx.rank + 1, words=1, identity=0)
            return out

        res = Machine(P, SPEC).run(prog)
        assert res.results == [sum(range(1, i + 1)) for i in range(P)]

    def test_vector_scan(self):
        def prog(ctx):
            v = np.full(3, ctx.rank, dtype=np.int64)
            out = yield from scan(ctx, v)
            return out.tolist()

        res = Machine(4, SPEC).run(prog)
        assert res.results[3] == [0 + 1 + 2 + 3] * 3

    def test_noncommutative_op_ordering(self):
        # Scan with string concatenation checks operand order strictly.
        def prog(ctx):
            out = yield from scan(ctx, str(ctx.rank), op=lambda a, b: a + b, words=1)
            return out

        res = Machine(4, SPEC).run(prog)
        assert res.results == ["0", "01", "012", "0123"]


class TestAlltoallv:
    def test_variable_sizes(self):
        P = 4

        def prog(ctx):
            blocks = [np.arange(ctx.rank + d) for d in range(P)]
            out = yield from alltoallv(ctx, blocks)
            return [b.size for b in out]

        res = Machine(P, SPEC).run(prog)
        for d in range(P):
            assert res.results[d] == [s + d for s in range(P)]

    def test_none_blocks_skipped(self):
        P = 4

        def prog(ctx):
            blocks = [None] * P
            if ctx.rank == 0:
                blocks[2] = "only"
            out = yield from alltoallv(ctx, blocks)
            return out

        res = Machine(P, SPEC).run(prog)
        assert res.results[2][0] == "only"
        assert res.results[1] == [None, None, None, None]
        # Only one data message crossed the network (plus size announces).
        data_msgs = sum(s.sends for s in res.stats) - P * (P - 1)
        assert data_msgs == 1

    def test_block_count_validated(self):
        def prog(ctx):
            out = yield from alltoallv(ctx, ["x"])
            return out

        with pytest.raises(Exception):
            Machine(3, SPEC).run(prog)


@settings(max_examples=20, deadline=None)
@given(
    logp=st.integers(1, 3),
    m=st.integers(1, 20),
    seed=st.integers(0, 99),
)
def test_property_reduce_scatter_conserves_sum(logp, m, seed):
    P = 2**logp
    rng = np.random.default_rng(seed)
    vecs = [rng.integers(0, 9, m).astype(np.int64) for _ in range(P)]

    def prog(ctx):
        out = yield from reduce_scatter(ctx, vecs[ctx.rank])
        return int(np.sum(out))

    res = Machine(P, SPEC).run(prog)
    assert sum(res.results) == int(np.sum(vecs))
