"""Prefix-reduction-sum: all three algorithms against the numpy oracle."""

import numpy as np
import pytest

from repro.collectives import (
    PRSResult,
    choose_prs_algorithm,
    prefix_reduction_sum,
    prs_ctrl,
    prs_direct,
    prs_split,
)
from repro.machine import Machine, MachineSpec

SPEC = MachineSpec(tau=10e-6, mu=1e-6, delta=0.1e-6, name="test")
NOCTRL = SPEC.with_(has_control_network=False)


def oracle(vectors):
    """(per-member exclusive prefix, reduction) for a list of vectors."""
    stack = np.vstack(vectors)
    csum = np.cumsum(stack, axis=0)
    reduction = csum[-1]
    prefixes = np.vstack([np.zeros_like(reduction)[None, :], csum[:-1]])
    return prefixes, reduction


def make_vectors(P, M, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 50, size=M).astype(np.int64) for _ in range(P)]


def run_prs(algorithm_fn, P, M, spec=SPEC, seed=0, group=None):
    vectors = make_vectors(P if group is None else len(group), M, seed)

    def prog(ctx):
        if group is not None and ctx.rank not in group:
            return None
        idx = ctx.rank if group is None else list(group).index(ctx.rank)
        result = yield from algorithm_fn(ctx, vectors[idx], group)
        return result

    nprocs = P if group is None else max(group) + 1
    res = Machine(nprocs, spec).run(prog)
    return vectors, res


@pytest.mark.parametrize("algo_fn", [prs_direct, prs_split])
@pytest.mark.parametrize("P,M", [(1, 8), (2, 8), (3, 7), (4, 16), (5, 3), (8, 64), (16, 10)])
class TestSoftwarePRS:
    def test_matches_oracle(self, algo_fn, P, M):
        vectors, res = run_prs(algo_fn, P, M, spec=NOCTRL)
        prefixes, reduction = oracle(vectors)
        for i, r in enumerate(res.results):
            assert isinstance(r, PRSResult)
            np.testing.assert_array_equal(r.prefix, prefixes[i])
            np.testing.assert_array_equal(r.reduction, reduction)


class TestCtrlPRS:
    @pytest.mark.parametrize("P,M", [(1, 4), (2, 8), (4, 16), (7, 5)])
    def test_matches_oracle(self, P, M):
        vectors, res = run_prs(prs_ctrl, P, M)
        prefixes, reduction = oracle(vectors)
        for i, r in enumerate(res.results):
            np.testing.assert_array_equal(r.prefix, prefixes[i])
            np.testing.assert_array_equal(r.reduction, reduction)

    def test_requires_control_network(self):
        with pytest.raises(Exception):
            run_prs(prs_ctrl, 2, 4, spec=NOCTRL)

    def test_cost_linear_in_m(self):
        _, res_small = run_prs(prs_ctrl, 4, 10)
        _, res_big = run_prs(prs_ctrl, 4, 1000)
        t_small, t_big = res_small.elapsed, res_big.elapsed
        # cost = latency + ctrl_word * 2M: slope check.
        slope = (t_big - t_small) / (2 * (1000 - 10))
        assert slope == pytest.approx(SPEC.ctrl_word, rel=0.01)


class TestSubgroupPRS:
    def test_prs_on_grid_row(self):
        group = (2, 3, 4)
        vectors, res = run_prs(prs_direct, 5, 6, spec=NOCTRL, group=group)
        prefixes, reduction = oracle(vectors)
        for i, rank in enumerate(group):
            r = res.results[rank]
            np.testing.assert_array_equal(r.prefix, prefixes[i])
            np.testing.assert_array_equal(r.reduction, reduction)

    def test_concurrent_disjoint_groups(self):
        # Two halves run PRS simultaneously without cross-talk.
        rng = np.random.default_rng(1)
        vecs = [rng.integers(0, 9, size=5).astype(np.int64) for _ in range(6)]

        def prog(ctx):
            group = (0, 1, 2) if ctx.rank < 3 else (3, 4, 5)
            result = yield from prs_direct(ctx, vecs[ctx.rank], group)
            return result

        res = Machine(6, NOCTRL).run(prog)
        for group in [(0, 1, 2), (3, 4, 5)]:
            prefixes, reduction = oracle([vecs[r] for r in group])
            for i, rank in enumerate(group):
                np.testing.assert_array_equal(res.results[rank].prefix, prefixes[i])
                np.testing.assert_array_equal(res.results[rank].reduction, reduction)


class TestCostShapes:
    def test_direct_scales_with_log_p_times_m(self):
        M = 256
        _, res4 = run_prs(prs_direct, 4, M, spec=NOCTRL)
        _, res16 = run_prs(prs_direct, 16, M, spec=NOCTRL)
        # Volume term doubles when log P doubles (2 -> 4).
        assert res16.elapsed > 1.5 * res4.elapsed

    def test_split_beats_direct_for_large_p_and_m(self):
        # The paper's headline claim for the split algorithm.
        P, M = 16, 4096
        _, res_d = run_prs(prs_direct, P, M, spec=NOCTRL)
        _, res_s = run_prs(prs_split, P, M, spec=NOCTRL)
        assert res_s.elapsed < res_d.elapsed

    def test_direct_beats_split_for_tiny_vectors(self):
        P, M = 16, 4
        _, res_d = run_prs(prs_direct, P, M, spec=NOCTRL)
        _, res_s = run_prs(prs_split, P, M, spec=NOCTRL)
        assert res_d.elapsed < res_s.elapsed


class TestAutoSelection:
    def test_ctrl_preferred_for_short_vectors(self):
        def prog(ctx):
            return choose_prs_algorithm(ctx, 16, 50, "auto")

        res = Machine(2, SPEC).run(prog)
        assert res.results == ["ctrl", "ctrl"]

    def test_software_preferred_for_long_vectors(self):
        # The CM-5 control network processes scans element-serially, so a
        # long vector goes to the data-network algorithms (the reason the
        # paper's 2-D experiments used direct/split).
        def prog(ctx):
            return choose_prs_algorithm(ctx, 16, 100_000, "auto")

        res = Machine(2, SPEC).run(prog)
        assert res.results[0] in ("direct", "split")

    def test_paper_heuristic_without_ctrl(self):
        def prog(ctx):
            return (
                choose_prs_algorithm(ctx, 4, 1000, "auto"),
                choose_prs_algorithm(ctx, 16, 8, "auto"),
                choose_prs_algorithm(ctx, 16, 1000, "auto"),
            )

        res = Machine(1, NOCTRL).run(prog)
        assert res.results[0] == ("direct", "direct", "split")

    def test_explicit_request_honoured(self):
        def prog(ctx):
            result = yield from prefix_reduction_sum(
                ctx, np.ones(8, dtype=np.int64), algorithm="direct"
            )
            return result.algorithm

        res = Machine(4, SPEC).run(prog)
        assert res.results == ["direct"] * 4

    def test_unknown_algorithm_rejected(self):
        def prog(ctx):
            result = yield from prefix_reduction_sum(
                ctx, np.ones(4, dtype=np.int64), algorithm="bogus"
            )
            return result

        with pytest.raises(Exception):
            Machine(2, SPEC).run(prog)


class TestPRSProperties:
    def test_prefix_plus_vec_consistency(self):
        # F_{i+1} - F_i == V_i elementwise; F_0 == 0; R == F_{P-1} + V_{P-1}.
        P, M = 8, 32
        vectors, res = run_prs(prs_split, P, M, spec=NOCTRL, seed=7)
        prefs = [r.prefix for r in res.results]
        np.testing.assert_array_equal(prefs[0], np.zeros(M, dtype=np.int64))
        for i in range(P - 1):
            np.testing.assert_array_equal(prefs[i + 1] - prefs[i], vectors[i])
        np.testing.assert_array_equal(
            res.results[0].reduction, prefs[-1] + vectors[-1]
        )

    def test_empty_vector(self):
        vectors, res = run_prs(prs_direct, 4, 0, spec=NOCTRL)
        for r in res.results:
            assert r.prefix.size == 0
            assert r.reduction.size == 0
