"""ASCII chart renderer."""

import pytest

from repro.analysis.charts import ascii_chart


class TestAsciiChart:
    def test_basic_render(self):
        out = ascii_chart(
            [1, 2, 4], {"a": [0.001, 0.002, 0.004], "b": [0.004, 0.002, 0.001]}
        )
        assert "o=a" in out and "x=b" in out
        assert "(log y)" in out
        assert "o" in out and "x" in out

    def test_title(self):
        out = ascii_chart([1], {"s": [0.001]}, title="My Figure")
        assert out.startswith("My Figure")

    def test_collision_glyph(self):
        out = ascii_chart([1], {"a": [0.001], "b": [0.001]})
        assert "!" in out

    def test_none_points_skipped(self):
        out = ascii_chart([1, 2], {"a": [None, 0.002]})
        assert "o" in out

    def test_empty_data(self):
        assert ascii_chart([], {}) == "(no data)"
        assert ascii_chart([1], {"a": [None]}) == "(no data)"

    def test_linear_axis(self):
        out = ascii_chart([1, 2], {"a": [0.001, 0.010]}, logy=False)
        assert "(log y)" not in out

    def test_monotone_series_rows_monotone(self):
        # A strictly rising series must occupy non-decreasing rows left to
        # right (visual sanity of the renderer).
        vals = [0.001 * (2**i) for i in range(6)]
        out = ascii_chart(list(range(6)), {"a": vals}, width=60, height=10)
        rows = {}
        lines = [l.split("|", 1)[1] for l in out.splitlines() if "|" in l]
        for r, line in enumerate(lines):
            for c, ch in enumerate(line):
                if ch == "o":
                    rows[c] = r
        cols = sorted(rows)
        heights = [rows[c] for c in cols]
        assert heights == sorted(heights, reverse=True)

    def test_flat_series(self):
        out = ascii_chart([1, 2], {"a": [0.005, 0.005]})
        assert "o" in out
