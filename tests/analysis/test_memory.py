"""Section 6.1 memory-footprint model."""

import numpy as np
import pytest

from repro.analysis.memory import (
    MemoryFootprint,
    pack_memory_words,
    ranking_working_words,
)
from repro.analysis.model import workload_quantities
from repro.core.schemes import Scheme
from repro.hpf import GridLayout


class TestWorkingArrays:
    def test_1d(self):
        layout = GridLayout.create((64,), (4,), block=2)  # T_0 = 8
        assert ranking_working_words(layout) == 2 * 8

    def test_2d(self):
        layout = GridLayout.create((16, 16), (2, 2), block=(2, 2))
        # |PS_0| = L_1 * T_0 = 8 * 4 = 32; |PS_1| = T_1 = 4.
        assert ranking_working_words(layout) == 2 * (32 + 4)

    def test_cyclic_needs_more_than_block(self):
        cyc = GridLayout.create((1024,), (4,), block=1)
        blk = GridLayout.create((1024,), (4,), block=256)
        assert ranking_working_words(cyc) > ranking_working_words(blk)


class TestSchemeStorage:
    def test_sss_scales_with_selected(self):
        layout = GridLayout.create((1024,), (4,), block=16)
        sparse = pack_memory_words(layout, Scheme.SSS, e_i=10, e_a=10)
        dense = pack_memory_words(layout, Scheme.SSS, e_i=200, e_a=200)
        assert dense.bookkeeping == 20 * sparse.bookkeeping

    def test_css_storage_is_density_independent(self):
        layout = GridLayout.create((1024,), (4,), block=16)
        sparse = pack_memory_words(layout, Scheme.CSS, e_i=10, e_a=10)
        dense = pack_memory_words(layout, Scheme.CSS, e_i=200, e_a=200)
        assert sparse.bookkeeping == dense.bookkeeping == 16  # C = L/W

    def test_crossover_matches_paper_intuition(self):
        # Compact storage is the memory winner once (d+3) E_i > C —
        # i.e., for dense masks / large blocks.
        layout = GridLayout.create((1024,), (4,), block=64)  # C = 4
        sss = pack_memory_words(layout, Scheme.SSS, e_i=128, e_a=128)
        css = pack_memory_words(layout, Scheme.CSS, e_i=128, e_a=128)
        assert css.bookkeeping < sss.bookkeeping

    def test_cms_message_buffers_smaller_when_segments_few(self):
        layout = GridLayout.create((1024,), (4,), block=64)
        css = pack_memory_words(layout, Scheme.CSS, e_i=100, e_a=100)
        cms = pack_memory_words(layout, Scheme.CMS, e_i=100, e_a=100, gs_i=5, gr_i=5)
        assert cms.send_buffers < css.send_buffers

    def test_total_is_sum(self):
        layout = GridLayout.create((64,), (4,), block=4)
        f = pack_memory_words(layout, "cms", e_i=8, e_a=8, gs_i=2, gr_i=2)
        assert f.total == f.working + f.bookkeeping + f.send_buffers + f.recv_buffers


class TestWithMeasuredQuantities:
    def test_integrates_with_workload_quantities(self):
        rng = np.random.default_rng(0)
        mask = rng.random(256) < 0.5
        layout = GridLayout.create((256,), (4,), block=8)
        q = workload_quantities(mask, layout)
        for r in range(4):
            f = pack_memory_words(
                layout, "cms",
                e_i=int(q.e_i[r]), e_a=int(q.e_a[r]),
                gs_i=int(q.gs[r]), gr_i=int(q.gr[r]),
            )
            assert f.total > 0
            assert f.send_buffers == int(q.e_i[r]) + 2 * int(q.gs[r])
