"""The closed-form model must charge exactly what the simulator charges."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.model import predict_pack_local_seconds, workload_quantities
from repro.core.api import aggregate_time, pack
from repro.core.schemes import Scheme
from repro.hpf import GridLayout, VectorLayout
from repro.machine import MachineSpec

SPEC = MachineSpec(tau=10e-6, mu=1e-6, delta=0.1e-6, name="test")


class TestWorkloadQuantities:
    def test_conservation(self):
        rng = np.random.default_rng(0)
        mask = rng.random(256) < 0.4
        layout = GridLayout.create((256,), (4,), block=4)
        q = workload_quantities(mask, layout)
        assert q.e_i.sum() == mask.sum() == q.size
        assert q.e_a.sum() == q.size
        assert q.gs.sum() == q.gr.sum()

    def test_segments_bounded_by_elements(self):
        rng = np.random.default_rng(1)
        mask = rng.random((16, 16)) < 0.6
        layout = GridLayout.create((16, 16), (2, 2), block=(2, 2))
        q = workload_quantities(mask, layout)
        assert np.all(q.gs <= q.e_i)

    def test_scan2_bounds(self):
        rng = np.random.default_rng(2)
        mask = rng.random(128) < 0.5
        layout = GridLayout.create((128,), (4,), block=8)
        q = workload_quantities(mask, layout)
        assert np.all(q.scan2_early <= q.scan2_full)
        assert np.all(q.scan2_full <= q.L)

    def test_c_and_l(self):
        layout = GridLayout.create((8, 16), (2, 2), block=(2, 4))
        q = workload_quantities(np.ones((8, 16), bool), layout)
        assert q.L == 32
        assert q.C == 8  # L / W_0


class TestModelMatchesSimulator:
    @pytest.mark.parametrize("scheme", ["sss", "css", "cms"])
    @pytest.mark.parametrize("block", [1, 4, 16])
    def test_1d_exact_agreement(self, scheme, block):
        rng = np.random.default_rng(3)
        a = rng.random(128)
        m = rng.random(128) < 0.5
        layout = GridLayout.create((128,), (4,), block=block)
        predicted = predict_pack_local_seconds(m, layout, scheme, SPEC)
        res = pack(a, m, grid=4, block=block, scheme=scheme, spec=SPEC)
        simulated = aggregate_time(res.run, "local")
        assert simulated == pytest.approx(predicted, rel=1e-9)

    @pytest.mark.parametrize("scheme", ["sss", "css", "cms"])
    def test_2d_exact_agreement(self, scheme):
        rng = np.random.default_rng(4)
        a = rng.random((16, 16))
        m = rng.random((16, 16)) < 0.3
        layout = GridLayout.create((16, 16), (2, 2), block=(2, 2))
        predicted = predict_pack_local_seconds(m, layout, scheme, SPEC)
        res = pack(a, m, grid=(2, 2), block=(2, 2), scheme=scheme, spec=SPEC)
        simulated = aggregate_time(res.run, "local")
        assert simulated == pytest.approx(predicted, rel=1e-9)

    def test_full_scan_variant_agrees(self):
        rng = np.random.default_rng(5)
        a = rng.random(128)
        m = rng.random(128) < 0.5
        layout = GridLayout.create((128,), (4,), block=8)
        predicted = predict_pack_local_seconds(
            m, layout, Scheme.CSS, SPEC, early_exit_scan=False
        )
        res = pack(a, m, grid=4, block=8, scheme="css", spec=SPEC,
                   early_exit_scan=False)
        assert aggregate_time(res.run, "local") == pytest.approx(predicted, rel=1e-9)


@settings(max_examples=20, deadline=None)
@given(
    w=st.integers(1, 8),
    density=st.floats(0, 1),
    scheme=st.sampled_from(["sss", "css", "cms"]),
    seed=st.integers(0, 99),
)
def test_property_model_simulator_agreement(w, density, scheme, seed):
    rng = np.random.default_rng(seed)
    n = 4 * w * 4
    a = rng.random(n)
    m = rng.random(n) < density
    layout = GridLayout.create((n,), (4,), block=w)
    predicted = predict_pack_local_seconds(m, layout, scheme, SPEC)
    res = pack(a, m, grid=4, block=w, scheme=scheme, spec=SPEC)
    assert aggregate_time(res.run, "local") == pytest.approx(predicted, rel=1e-9)
