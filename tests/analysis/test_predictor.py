"""Total-time predictor: estimates must track the simulator."""

import numpy as np
import pytest

from repro.analysis.predictor import (
    predict_m2m_seconds,
    predict_pack_seconds,
    predict_prs_seconds,
)
from repro.core.api import pack
from repro.hpf import GridLayout
from repro.machine import CM5, MachineSpec

SPEC = MachineSpec(tau=10e-6, mu=1e-6, delta=0.1e-6, name="test")


def simulate(a, m, grid, block, scheme, spec=SPEC, **kw):
    return pack(a, m, grid=grid, block=block, scheme=scheme, spec=spec, **kw)


class TestPRSPrediction:
    @pytest.mark.parametrize("block", [1, 8, 64])
    @pytest.mark.parametrize("prs", ["ctrl", "direct", "split"])
    def test_within_factor_of_simulation_1d(self, block, prs):
        rng = np.random.default_rng(0)
        a = rng.random(4096)
        m = rng.random(4096) < 0.5
        layout = GridLayout.create((4096,), (16,), block=block)
        predicted = predict_prs_seconds(layout, SPEC, prs=prs)
        res = simulate(a, m, 16, block, "css", prs=prs)
        simulated = res.prs_ms / 1e3
        assert predicted == pytest.approx(simulated, rel=1.0), (
            f"prs={prs} W={block}: predicted {predicted}, simulated {simulated}"
        )

    def test_single_proc_dim_contributes_nothing(self):
        from repro.collectives.prefix import estimate_prs_seconds

        layout = GridLayout.create((64, 64), (1, 4), block="cyclic")
        # Dimension 1 has one processor: only dimension 0's PRS counts,
        # over a vector of T_0 * L_1 entries.
        p = predict_prs_seconds(layout, SPEC, prs="ctrl")
        m = layout.dims[0].t * layout.dims[1].l
        assert p == pytest.approx(estimate_prs_seconds(SPEC, "ctrl", 4, m))


class TestM2MPrediction:
    @pytest.mark.parametrize("scheme", ["css", "cms"])
    @pytest.mark.parametrize("block", [2, 32])
    def test_within_factor_of_simulation(self, scheme, block):
        rng = np.random.default_rng(1)
        a = rng.random(4096)
        m = rng.random(4096) < 0.5
        layout = GridLayout.create((4096,), (16,), block=block)
        predicted = predict_m2m_seconds(m, layout, scheme, SPEC)
        res = simulate(a, m, 16, block, scheme)
        simulated = res.m2m_ms / 1e3
        assert 0.3 * simulated < predicted < 3.0 * simulated


class TestTotalPrediction:
    @pytest.mark.parametrize("scheme", ["sss", "css", "cms"])
    def test_total_tracks_simulation(self, scheme):
        rng = np.random.default_rng(2)
        a = rng.random(4096)
        m = rng.random(4096) < 0.7
        layout = GridLayout.create((4096,), (16,), block=16)
        pred = predict_pack_seconds(m, layout, scheme, SPEC)
        res = simulate(a, m, 16, 16, scheme)
        assert pred.total == pytest.approx(res.total_ms / 1e3, rel=0.6)
        # Local part is exact by construction.
        assert pred.local == pytest.approx(res.local_ms / 1e3, rel=1e-9)

    def test_predictor_ranks_schemes_like_simulator(self):
        """The predictor must agree with the simulator on the best scheme —
        the property a compiler runtime would rely on."""
        rng = np.random.default_rng(3)
        a = rng.random(8192)
        m = rng.random(8192) < 0.9
        layout = GridLayout.create((8192,), (16,), block=64)
        pred_best = min(
            ("sss", "css", "cms"),
            key=lambda s: predict_pack_seconds(m, layout, s, CM5).total,
        )
        sim_best = min(
            ("sss", "css", "cms"),
            key=lambda s: simulate(a, m, 16, 64, s, spec=CM5).total_ms,
        )
        assert pred_best == sim_best

    def test_prediction_decomposition_nonnegative(self):
        m = np.zeros(256, dtype=bool)
        layout = GridLayout.create((256,), (4,), block=8)
        pred = predict_pack_seconds(m, layout, "cms", SPEC)
        assert pred.local > 0  # scans still happen
        assert pred.prs >= 0 and pred.m2m >= 0
        assert pred.total == pred.local + pred.prs + pred.m2m
