"""Calibration machinery: the shipped defaults must survive a re-fit."""

import math

import pytest

from repro.analysis.calibration import (
    PAPER_TARGETS_1D,
    beta_distance,
    fit_local_cost_model,
    score_model,
)
from repro.machine import LocalCostModel


class TestBetaDistance:
    def test_exact_match(self):
        assert beta_distance(8, 8) == 0.0

    def test_one_power_of_two(self):
        assert beta_distance(16, 8) == pytest.approx(1.0)
        assert beta_distance(4, 8) == pytest.approx(1.0)

    def test_infinities(self):
        inf = float("inf")
        assert beta_distance(inf, inf) == 0.0
        assert beta_distance(inf, 64) > 0
        assert beta_distance(64, inf) > 0


class TestScoring:
    def test_default_model_scores_reasonably(self):
        score, table = score_model(LocalCostModel(), PAPER_TARGETS_1D)
        # Within ~2 powers of two of the published cells on average.
        assert score < 2.0
        assert len(table) == 12

    def test_degenerate_model_scores_worse(self):
        # rand == seq removes the whole SSS/CSS trade-off.
        flat = LocalCostModel(seq=1.0, rand=1.0, vec=1.0, seg=1.0, slice_overhead=1.0)
        flat_score, _ = score_model(flat, PAPER_TARGETS_1D)
        default_score, _ = score_model(LocalCostModel(), PAPER_TARGETS_1D)
        assert default_score < flat_score


class TestFit:
    def test_fit_recovers_defaults_neighbourhood(self):
        result = fit_local_cost_model(
            rand_grid=(1.0, 1.5, 3.0), slice_grid=(1.0, 5.0), seg_grid=(3.0,)
        )
        # The shipped defaults (rand=1.5, slice_overhead=5) must win the
        # grid that contains them.
        assert result.local.rand == 1.5
        assert result.local.slice_overhead == 5.0
        assert result.score < 2.0

    def test_fit_result_usable_as_spec(self):
        result = fit_local_cost_model(
            rand_grid=(1.5,), slice_grid=(5.0,), seg_grid=(3.0,)
        )
        spec = result.spec()
        assert spec.local.rand == 1.5
        assert spec.tau > 0
