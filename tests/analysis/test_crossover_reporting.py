"""Crossover (beta) computation and report formatting."""

import math

import pytest

from repro.analysis.crossover import beta1_table, beta2_table, find_crossover
from repro.analysis.reporting import fmt_ms, fmt_value, format_series, format_table
from repro.core.schemes import Scheme
from repro.machine import CM5


class TestFindCrossover:
    def test_beta1_exceeds_one_always(self):
        # Paper: "Both beta1 and beta2 are always greater than 1" — SSS
        # is unbeatable for cyclic distributions.
        for kind in (0.3, 0.9, "half"):
            b = find_crossover((16384,), (16,), kind, Scheme.SSS, Scheme.CSS, CM5)
            assert b > 1

    def test_beta1_decreases_with_density(self):
        b_low = find_crossover((16384,), (16,), 0.1, Scheme.SSS, Scheme.CSS, CM5)
        b_high = find_crossover((16384,), (16,), 0.9, Scheme.SSS, Scheme.CSS, CM5)
        assert b_high <= b_low

    def test_beta1_sparse_2d_small_is_infinite(self):
        # Paper Table I: 2-D local size 16, 10% density -> infinity.
        b = find_crossover((64, 64), (4, 4), 0.1, Scheme.SSS, Scheme.CSS, CM5)
        assert math.isinf(b)

    def test_beta2_exceeds_one(self):
        for kind in (0.3, 0.9):
            b = find_crossover((16384,), (16,), kind, Scheme.CSS, Scheme.CMS, CM5)
            assert b > 1


class TestTables:
    def test_beta1_table_keys(self):
        t = beta1_table([(16384,)], (16,), [0.5, "half"])
        assert set(t) == {((16384,), 0.5), ((16384,), "half")}

    def test_beta2_table_runs(self):
        t = beta2_table([(16384,)], (16,), [0.5])
        assert ((16384,), 0.5) in t


class TestReporting:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, None]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "2.50" in out and "-" in out

    def test_format_table_title(self):
        out = format_table(["x"], [[1]], title="My Table")
        assert out.startswith("My Table")

    def test_fmt_value_inf_and_ints(self):
        assert fmt_value(float("inf")) == "inf"
        assert fmt_value(4.0) == "4"
        assert fmt_value(4.25) == "4.25"
        assert fmt_value(None) == "-"

    def test_fmt_ms(self):
        assert fmt_ms(0.01234) == "12.34"

    def test_format_series(self):
        out = format_series(
            "t", "W", [1, 2], {"sss": [0.001, 0.002], "css": [0.003, None]}
        )
        assert "sss (ms)" in out
        assert "1.00" in out and "3.00" in out
