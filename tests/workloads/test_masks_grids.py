"""Workload generators: masks and experiment grids."""

import numpy as np
import pytest

from repro.workloads import (
    PAPER_1D_SIZES,
    PAPER_2D_SIZES,
    PAPER_DENSITIES,
    block_size_sweep,
    half_mask_1d,
    lt_mask_2d,
    make_mask,
    paper_configs_1d,
    paper_configs_2d,
    random_mask,
)


class TestRandomMask:
    def test_deterministic(self):
        a = random_mask((64,), 0.5, seed=1)
        b = random_mask((64,), 0.5, seed=1)
        np.testing.assert_array_equal(a, b)

    def test_seed_and_density_vary_mask(self):
        a = random_mask((64,), 0.5, seed=1)
        b = random_mask((64,), 0.5, seed=2)
        c = random_mask((64,), 0.3, seed=1)
        assert not np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_density_approximate(self):
        m = random_mask((100_000,), 0.3, seed=0)
        assert abs(m.mean() - 0.3) < 0.01

    @pytest.mark.parametrize("density", [0.0, 1.0])
    def test_extremes(self, density):
        m = random_mask((100,), density)
        assert m.mean() == density

    def test_bad_density(self):
        with pytest.raises(ValueError):
            random_mask((8,), 1.5)


class TestStructuredMasks:
    def test_half_mask(self):
        m = half_mask_1d(10)
        np.testing.assert_array_equal(m, [1, 1, 1, 1, 1, 0, 0, 0, 0, 0])

    def test_lt_mask_selects_lower_triangle(self):
        m = lt_mask_2d((4, 4))
        assert m.sum() == 6  # strictly below the diagonal
        assert not m[0, 0] and m[1, 0] and not m[0, 1]

    def test_lt_mask_needs_2d(self):
        with pytest.raises(ValueError):
            lt_mask_2d((4,))

    def test_make_mask_front_door(self):
        np.testing.assert_array_equal(make_mask((10,), "half"), half_mask_1d(10))
        np.testing.assert_array_equal(make_mask((4, 4), "lt"), lt_mask_2d((4, 4)))
        np.testing.assert_array_equal(
            make_mask((64,), "30%", seed=3), random_mask((64,), 0.3, seed=3)
        )
        np.testing.assert_array_equal(
            make_mask((64,), 0.3, seed=3), random_mask((64,), 0.3, seed=3)
        )
        with pytest.raises(ValueError):
            make_mask((8,), "diagonal")
        with pytest.raises(ValueError):
            make_mask((4, 4), "half")


class TestClusteredMask:
    def test_density_approximate(self):
        from repro.workloads import clustered_mask

        m = clustered_mask((50_000,), 0.3, run_length=16, seed=0)
        assert abs(m.mean() - 0.3) < 0.05

    def test_runs_are_long(self):
        from repro.workloads import clustered_mask

        m = clustered_mask((50_000,), 0.5, run_length=64, seed=1)
        # Mean true-run length ~ run_length; count runs via transitions.
        flat = m.ravel().astype(int)
        starts = int(np.sum((flat[1:] == 1) & (flat[:-1] == 0))) + int(flat[0])
        mean_run = flat.sum() / max(starts, 1)
        assert mean_run > 16  # far longer than Bernoulli's ~2 at 50%

    def test_deterministic(self):
        from repro.workloads import clustered_mask

        a = clustered_mask((256,), 0.5, seed=3)
        b = clustered_mask((256,), 0.5, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_extremes_and_validation(self):
        from repro.workloads import clustered_mask

        assert clustered_mask((16,), 0.0).sum() == 0
        assert clustered_mask((16,), 1.0).sum() == 16
        with pytest.raises(ValueError):
            clustered_mask((16,), 2.0)
        with pytest.raises(ValueError):
            clustered_mask((16,), 0.5, run_length=0)

    def test_make_mask_front_door(self):
        from repro.workloads import clustered_mask, make_mask

        np.testing.assert_array_equal(
            make_mask((128,), "clustered:0.4", seed=5),
            clustered_mask((128,), 0.4, seed=5),
        )

    def test_clustered_mask_breaks_block_self_send(self):
        """Paper Section 7: at block distribution the self-send dominance
        'will not happen' if the selected elements are not randomly
        distributed.  Clustered masks send a larger share off-processor."""
        import repro
        from repro.workloads import clustered_mask

        rng = np.random.default_rng(0)
        a = rng.random(4096)
        rnd = random_mask((4096,), 0.5, seed=6)
        clu = clustered_mask((4096,), 0.5, run_length=256, seed=6)
        r_rnd = repro.pack(a, rnd, grid=16, block="block", scheme="css")
        r_clu = repro.pack(a, clu, grid=16, block="block", scheme="css")
        # Clustered trues make processor contributions uneven, so more
        # data must cross the network to fill the block result vector.
        assert r_clu.total_words > 1.5 * r_rnd.total_words


class TestBlockSweep:
    def test_endpoints(self):
        s = block_size_sweep(16384, 16)
        assert s[0] == 1
        assert s[-1] == 1024  # L = N/P

    def test_powers_of_two_dividing_l(self):
        s = block_size_sweep(4096, 16)
        for w in s:
            assert (4096 // 16) % w == 0

    def test_subsampling_keeps_endpoints(self):
        s = block_size_sweep(16384, 16, max_points=4)
        assert len(s) == 4
        assert s[0] == 1 and s[-1] == 1024

    def test_small_local(self):
        assert block_size_sweep(16, 16) == (1,)


class TestPaperConfigs:
    def test_1d_covers_paper_sizes(self):
        configs = list(paper_configs_1d(block_points=3))
        sizes = {c.shape[0] for c in configs}
        assert sizes == set(PAPER_1D_SIZES)
        assert all(c.grid == (16,) for c in configs)

    def test_1d_includes_structured_mask(self):
        kinds = {c.mask_kind for c in paper_configs_1d(block_points=2)}
        assert "half" in kinds
        assert set(PAPER_DENSITIES) <= kinds

    def test_2d_square_blocks(self):
        for c in paper_configs_2d(block_points=3):
            assert c.block[0] == c.block[1]
            assert c.shape[0] == c.shape[1]
            assert c.shape[0] in PAPER_2D_SIZES

    def test_local_size(self):
        c = next(iter(paper_configs_1d(sizes=(16384,), block_points=2)))
        assert c.local_size == 1024

    def test_labels_readable(self):
        c = next(iter(paper_configs_2d(sizes=(64,), block_points=2)))
        assert "N=64x64" in c.label()
