"""Unit tests for message composition/decomposition and selected-element
bookkeeping."""

import numpy as np
import pytest

from repro.core.messages import (
    PairMessage,
    SegmentMessage,
    compose_pair_messages,
    compose_segment_messages,
    decompose_pair_message,
    decompose_segment_message,
)
from repro.core.ranking import ranking_program
from repro.core.schemes import PackConfig, Scheme
from repro.core.storage import SelectedElements, extract_selected
from repro.hpf import GridLayout, VectorLayout
from repro.machine import Machine, MachineSpec

SPEC = MachineSpec(tau=10e-6, mu=1e-6, delta=0.1e-6, name="test")


def make_selected(ranks, values=None, dests=None, slice_ids=None):
    ranks = np.asarray(ranks, dtype=np.int64)
    n = ranks.size
    return SelectedElements(
        positions=np.arange(n, dtype=np.int64),
        values=np.asarray(values if values is not None else ranks * 1.0),
        ranks=ranks,
        dests=np.asarray(dests if dests is not None else np.zeros(n), dtype=np.int64),
        slice_ids=np.asarray(
            slice_ids if slice_ids is not None else np.zeros(n), dtype=np.int64
        ),
    )


class TestSegmentBreaks:
    def test_single_slice_single_dest_is_one_segment(self):
        sel = make_selected([5, 6, 7], dests=[1, 1, 1], slice_ids=[0, 0, 0])
        assert sel.segment_count == 1

    def test_slice_change_breaks(self):
        sel = make_selected([5, 6, 9], dests=[1, 1, 1], slice_ids=[0, 0, 1])
        assert sel.segment_count == 2

    def test_dest_change_breaks_within_slice(self):
        # A slice's run can straddle a result-vector block boundary.
        sel = make_selected([5, 6, 7], dests=[1, 1, 2], slice_ids=[0, 0, 0])
        assert sel.segment_count == 2

    def test_empty(self):
        sel = make_selected([])
        assert sel.segment_count == 0


class TestPairMessages:
    def test_grouped_by_dest(self):
        sel = make_selected([1, 2, 3, 4], dests=[0, 0, 2, 2])
        msgs = compose_pair_messages(sel)
        assert set(msgs) == {0, 2}
        np.testing.assert_array_equal(msgs[0].ranks, [1, 2])
        np.testing.assert_array_equal(msgs[2].ranks, [3, 4])
        assert msgs[0].words == 4

    def test_nonmonotone_dests_handled(self):
        # Cyclic result vectors interleave destinations.
        sel = make_selected([0, 1, 2, 3], dests=[0, 1, 0, 1])
        msgs = compose_pair_messages(sel)
        np.testing.assert_array_equal(msgs[0].ranks, [0, 2])
        np.testing.assert_array_equal(msgs[1].ranks, [1, 3])

    def test_decompose_maps_to_locals(self):
        vec = VectorLayout.block(n=10, p=2)  # blocks of 5
        msg = PairMessage(ranks=np.array([5, 7, 9]), values=np.array([1.0, 2.0, 3.0]))
        pos, vals = decompose_pair_message(msg, vec)
        np.testing.assert_array_equal(pos, [0, 2, 4])
        np.testing.assert_array_equal(vals, [1.0, 2.0, 3.0])


class TestSegmentMessages:
    def test_consecutive_ranks_compress(self):
        sel = make_selected([5, 6, 7], dests=[1, 1, 1], slice_ids=[0, 0, 0])
        msgs = compose_segment_messages(sel)
        msg = msgs[1]
        np.testing.assert_array_equal(msg.bases, [5])
        np.testing.assert_array_equal(msg.counts, [3])
        assert msg.words == 5  # 3 values + 2 header

    def test_pair_vs_segment_word_counts(self):
        sel = make_selected(
            [5, 6, 10, 11], dests=[0, 0, 0, 0], slice_ids=[0, 0, 1, 1]
        )
        pair_words = sum(m.words for m in compose_pair_messages(sel).values())
        seg_words = sum(m.words for m in compose_segment_messages(sel).values())
        assert pair_words == 8
        assert seg_words == 8  # 4 values + 2 segments * 2 header

    def test_decompose_expands(self):
        vec = VectorLayout.block(n=12, p=2)  # blocks of 6
        msg = SegmentMessage(
            bases=np.array([6, 10]),
            counts=np.array([2, 2]),
            values=np.array([1.0, 2.0, 3.0, 4.0]),
        )
        pos, vals = decompose_segment_message(msg, vec)
        np.testing.assert_array_equal(pos, [0, 1, 4, 5])
        np.testing.assert_array_equal(vals, [1.0, 2.0, 3.0, 4.0])

    def test_empty_message(self):
        vec = VectorLayout.block(n=4, p=2)
        msg = SegmentMessage(
            bases=np.empty(0, dtype=np.int64),
            counts=np.empty(0, dtype=np.int64),
            values=np.empty(0),
        )
        pos, vals = decompose_segment_message(msg, vec)
        assert pos.size == 0 and vals.size == 0


class TestExtractSelected:
    def _run_extract(self, mask, grid, block):
        mask = np.asarray(mask, dtype=bool)
        layout = GridLayout.create(mask.shape, grid, block)
        blocks = layout.scatter(mask)
        arr_blocks = layout.scatter(np.arange(mask.size, dtype=float).reshape(mask.shape))

        def prog(ctx, mb, ab):
            r = yield from ranking_program(ctx, mb, layout, scheme=Scheme.CSS, prs="ctrl")
            vec = VectorLayout.block(r.size, ctx.size)
            return extract_selected(ab, mb, r, layout, vec)

        run = Machine(layout.nprocs, SPEC).run(
            prog, rank_args=list(zip(blocks, arr_blocks))
        )
        return run.results

    def test_ranks_ascending_per_rank(self):
        rng = np.random.default_rng(0)
        mask = rng.random((8, 8)) < 0.6
        for sel in self._run_extract(mask, (2, 2), (2, 2)):
            if sel.count > 1:
                assert np.all(np.diff(sel.ranks) > 0)

    def test_values_are_global_flat_indices(self):
        # Array = arange, so each selected value IS its global flat index,
        # and sorting all (rank, value) pairs must reproduce the oracle.
        rng = np.random.default_rng(1)
        mask = rng.random((8, 8)) < 0.5
        pairs = []
        for sel in self._run_extract(mask, (2, 2), (1, 1)):
            pairs.extend(zip(sel.ranks.tolist(), sel.values.tolist()))
        pairs.sort()
        expected = np.flatnonzero(mask.ravel())
        np.testing.assert_array_equal([v for _, v in pairs], expected)

    def test_slice_property_consecutive_ranks(self):
        # Within one slice, selected ranks are consecutive — the CMS
        # invariant (Section 6.2).
        rng = np.random.default_rng(2)
        mask = rng.random(64) < 0.7
        for sel in self._run_extract(mask, (4,), 4):
            for s in np.unique(sel.slice_ids):
                r = sel.ranks[sel.slice_ids == s]
                assert np.all(np.diff(r) == 1)


class TestPackConfig:
    def test_scheme_parsing(self):
        assert PackConfig(scheme="sss").scheme is Scheme.SSS
        assert PackConfig(scheme=Scheme.CMS).scheme is Scheme.CMS

    def test_bad_values_rejected(self):
        with pytest.raises(ValueError):
            PackConfig(scheme="nope")
        with pytest.raises(ValueError):
            PackConfig(prs="bogus")
        with pytest.raises(ValueError):
            PackConfig(m2m_schedule="ring")
        with pytest.raises(ValueError):
            PackConfig(result_block=0)

    def test_scheme_predicates(self):
        assert Scheme.SSS.stores_records
        assert not Scheme.CSS.stores_records
        assert Scheme.CMS.uses_segments
        assert not Scheme.CSS.uses_segments
