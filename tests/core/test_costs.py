"""Unit tests for the Section 6.4 charge formulas (StepCosts)."""

import pytest

from repro.core.costs import StepCosts
from repro.core.schemes import Scheme
from repro.machine import LocalCostModel

LOCAL = LocalCostModel(seq=1.0, rand=2.0, vec=1.5, seg=3.0, slice_overhead=5.0)


def costs(scheme, d=1):
    return StepCosts(local=LOCAL, scheme=Scheme.parse(scheme), d=d)


class TestInitialScan:
    def test_all_schemes_pay_streaming_scan(self):
        for s in ("sss", "css", "cms"):
            assert costs(s).initial_scan(L=100, E_i=0) == pytest.approx(100.0)

    def test_sss_stores_d_plus_3_items(self):
        # d=1: 4 items per element at rand cost.
        assert costs("sss", d=1).initial_scan(100, 10) == pytest.approx(
            100 + 2.0 * 4 * 10
        )
        # d=3: 6 items — "as the rank increases, memory access increases".
        assert costs("sss", d=3).initial_scan(100, 10) == pytest.approx(
            100 + 2.0 * 6 * 10
        )

    def test_compact_schemes_store_nothing_at_scan(self):
        assert costs("css").initial_scan(100, 50) == pytest.approx(100.0)


class TestCounterCopy:
    def test_only_compact_schemes_copy(self):
        assert costs("sss").counter_copy(64) == 0.0
        assert costs("css").counter_copy(64) == pytest.approx(64.0)
        assert costs("cms").counter_copy(64) == pytest.approx(64.0)


class TestFinalStep:
    def test_sss_rereads_records(self):
        assert costs("sss").final_rank_elements(C=10, E_i=20, Gs_i=5) == (
            pytest.approx(2.0 * 2 * 20)
        )

    def test_compact_walks_slices(self):
        assert costs("css").final_rank_elements(C=10, E_i=20, Gs_i=5) == (
            pytest.approx(5.0 * 10 + 2.0 * 5)
        )


class TestSecondScan:
    def test_sss_has_none(self):
        assert costs("sss").second_scan(C=10, scan2=100) == 0.0

    def test_compact_pays_overhead_plus_touched(self):
        assert costs("css").second_scan(C=10, scan2=100) == pytest.approx(
            5.0 * 10 + 100
        )


class TestMessaging:
    def test_pair_compose_decompose(self):
        assert costs("css").compose(E_i=30, Gs_i=0) == pytest.approx(2.0 * 60)
        assert costs("css").decompose(E_a=30, Gr_i=0) == pytest.approx(2.0 * 60)

    def test_segment_compose_decompose(self):
        assert costs("cms").compose(E_i=30, Gs_i=4) == pytest.approx(30 + 3.0 * 4)
        assert costs("cms").decompose(E_a=30, Gr_i=4) == pytest.approx(30 + 3.0 * 4)

    def test_message_words(self):
        assert costs("css").message_words(10, 3) == 20
        assert costs("cms").message_words(10, 3) == 16

    def test_paper_comparison_cms_vs_css_words(self):
        # Section 6.4.2: CMS message smaller iff Gs < E/2.
        c = costs("cms")
        assert c.message_words(10, 4) < costs("css").message_words(10, 4)
        assert c.message_words(10, 6) > costs("css").message_words(10, 6)


class TestUnpackCharges:
    def test_request_costs_differ_by_scheme(self):
        sss = costs("sss").unpack_requests(E_i=20, Gs_i=5)
        css = costs("css").unpack_requests(E_i=20, Gs_i=5)
        assert sss == pytest.approx(2.0 * 20)
        assert css == pytest.approx(20 + 2.0 * 5)

    def test_serve_and_place_are_scattered(self):
        assert costs("css").unpack_serve(10) == pytest.approx(2.0 * 10)
        assert costs("css").unpack_place(10) == pytest.approx(2.0 * 10)

    def test_field_merge_streams(self):
        assert costs("css").field_merge(100) == pytest.approx(100.0)
