"""The COUNT intrinsic (reduction-only sibling of PACK)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import count
from repro.machine import MachineSpec

SPEC = MachineSpec(tau=10e-6, mu=1e-6, delta=0.1e-6, name="test")
NOCTRL = SPEC.with_(has_control_network=False)


class TestCount:
    @pytest.mark.parametrize("density", [0.0, 0.3, 1.0])
    def test_1d(self, density):
        rng = np.random.default_rng(0)
        m = rng.random(64) < density
        assert count(m, grid=4, block=2, spec=SPEC) == int(m.sum())

    def test_2d(self):
        rng = np.random.default_rng(1)
        m = rng.random((8, 16)) < 0.5
        assert count(m, grid=(2, 4), block="cyclic", spec=SPEC) == int(m.sum())

    def test_single_processor(self):
        m = np.array([True, False, True])
        assert count(m, grid=1, block=3, spec=SPEC) == 2

    @pytest.mark.parametrize("spec", [SPEC, NOCTRL])
    def test_with_and_without_control_network(self, spec):
        rng = np.random.default_rng(2)
        m = rng.random(64) < 0.7
        assert count(m, grid=8, block=4, spec=spec) == int(m.sum())

    def test_distribution_insensitive_cost(self):
        """Unlike ranking, COUNT's cost does not depend on the block size
        (no per-tile arrays) — the reason it is so much cheaper."""
        from repro.core import count_program
        from repro.hpf import GridLayout
        from repro.machine import Machine

        rng = np.random.default_rng(3)
        m = rng.random(1024) < 0.5

        def run(block):
            layout = GridLayout.create((1024,), (4,), block=block)
            blocks = layout.scatter(m)
            res = Machine(4, SPEC).run(
                count_program, rank_args=[(b, layout) for b in blocks]
            )
            return res.elapsed

        assert run(1) == pytest.approx(run(256))

    def test_count_cheaper_than_ranking(self):
        import repro

        rng = np.random.default_rng(4)
        m = rng.random(1024) < 0.5
        r = repro.ranking(m, grid=4, block=2, spec=SPEC)
        from repro.core import count_program
        from repro.hpf import GridLayout
        from repro.machine import Machine

        layout = GridLayout.create((1024,), (4,), block=2)
        res = Machine(4, SPEC).run(
            count_program, rank_args=[(b, layout) for b in layout.scatter(m)]
        )
        assert res.elapsed < r.run.elapsed


@settings(max_examples=40, deadline=None)
@given(
    p=st.integers(1, 6),
    w=st.integers(1, 4),
    density=st.floats(0, 1),
    seed=st.integers(0, 99),
)
def test_property_count_matches_numpy(p, w, density, seed):
    n = p * w * 3
    rng = np.random.default_rng(seed)
    m = rng.random(n) < density
    assert count(m, grid=p, block=w, spec=SPEC) == int(m.sum())
