"""Arbitrary shapes via mask-false padding (lifting the divisibility
assumption)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.core.padding import crop, pad_array, pad_mask, padded_shape
from repro.hpf import BLOCK, CYCLIC, BlockCyclic
from repro.machine import MachineSpec

SPEC = MachineSpec(tau=10e-6, mu=1e-6, delta=0.1e-6, name="test")


class TestPaddedShape:
    def test_already_divisible_untouched(self):
        shape, blocks = padded_shape((64,), (4,), 4)
        assert shape == (64,) and blocks == (4,)

    def test_rounds_up_to_pw(self):
        shape, blocks = padded_shape((1000,), (16,), 8)
        assert shape == (1024,)  # next multiple of 128

    def test_block_spec_uses_padded_extent(self):
        shape, blocks = padded_shape((1000,), (16,), "block")
        assert shape[0] % (16 * blocks[0]) == 0
        assert blocks[0] == 63  # ceil(1000/16)

    def test_cyclic_spec(self):
        shape, blocks = padded_shape((13,), (4,), "cyclic")
        assert shape == (16,) and blocks == (1,)

    def test_dist_objects(self):
        shape, blocks = padded_shape((10, 13), (2, 4), (BLOCK, CYCLIC))
        assert blocks == (5, 1)
        assert shape == (10, 16)
        shape, blocks = padded_shape((10,), (2,), [BlockCyclic(3)])
        assert shape == (12,) and blocks == (3,)

    def test_bad_specs(self):
        with pytest.raises(ValueError):
            padded_shape((8,), (2, 2), 1)
        with pytest.raises(ValueError):
            padded_shape((8,), (2,), "diagonal")
        with pytest.raises(ValueError):
            padded_shape((8,), (2,), True)


class TestPadHelpers:
    def test_pad_and_crop_roundtrip(self):
        a = np.arange(6.0).reshape(2, 3)
        padded = pad_array(a, (4, 4))
        assert padded.shape == (4, 4)
        np.testing.assert_array_equal(crop(padded, (2, 3)), a)

    def test_mask_padding_is_false(self):
        m = np.ones((2, 2), dtype=bool)
        padded = pad_mask(m, (3, 3))
        assert padded.sum() == 4  # no new trues

    def test_noop_paths(self):
        a = np.zeros((2, 2))
        assert pad_array(a, (2, 2)) is a
        assert crop(a, (2, 2)) is a


class TestPaddedPack:
    @pytest.mark.parametrize("n", [13, 100, 1000, 4095])
    def test_odd_1d_sizes(self, n):
        rng = np.random.default_rng(n)
        a = rng.random(n)
        m = rng.random(n) < 0.5
        res = repro.pack(a, m, grid=16, block=8, pad=True, spec=SPEC)
        np.testing.assert_array_equal(res.vector, repro.pack_reference(a, m))

    def test_odd_2d_shape(self):
        rng = np.random.default_rng(1)
        a = rng.random((30, 50))
        m = rng.random((30, 50)) < 0.4
        res = repro.pack(a, m, grid=(2, 4), block=(4, 4), pad=True, spec=SPEC)
        np.testing.assert_array_equal(res.vector, repro.pack_reference(a, m))

    def test_fails_loudly_without_pad(self):
        with pytest.raises(ValueError):
            repro.pack(np.zeros(1000), np.zeros(1000, bool), grid=16, block=8,
                       spec=SPEC)

    def test_padding_with_vector_argument(self):
        rng = np.random.default_rng(2)
        a = rng.random(100)
        m = rng.random(100) < 0.5
        v = np.full(80, -1.0)
        res = repro.pack(a, m, grid=4, block=8, pad=True, spec=SPEC, vector=v)
        np.testing.assert_array_equal(res.vector, repro.pack_reference(a, m, v))


class TestPaddedUnpack:
    @pytest.mark.parametrize("n", [13, 100, 999])
    def test_odd_sizes_cropped_back(self, n):
        rng = np.random.default_rng(n)
        m = rng.random(n) < 0.5
        v = rng.random(int(m.sum()))
        f = rng.random(n)
        res = repro.unpack(v, m, f, grid=4, block=8, pad=True, spec=SPEC)
        assert res.array.shape == (n,)
        np.testing.assert_array_equal(res.array, repro.unpack_reference(v, m, f))

    def test_2d(self):
        rng = np.random.default_rng(3)
        m = rng.random((9, 21)) < 0.5
        v = rng.random(int(m.sum()))
        f = rng.random((9, 21))
        res = repro.unpack(v, m, f, grid=(2, 2), block=(2, 2), pad=True, spec=SPEC)
        np.testing.assert_array_equal(res.array, repro.unpack_reference(v, m, f))


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(1, 200),
    density=st.floats(0, 1),
    w=st.integers(1, 8),
    seed=st.integers(0, 99),
)
def test_property_padded_pack_any_size(n, density, w, seed):
    rng = np.random.default_rng(seed)
    a = rng.random(n)
    m = rng.random(n) < density
    res = repro.pack(a, m, grid=4, block=w, pad=True, spec=SPEC)
    np.testing.assert_array_equal(res.vector, repro.pack_reference(a, m))
