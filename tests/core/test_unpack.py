"""UNPACK correctness: schemes, two-phase communication, F90 semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import pack, unpack
from repro.machine import MachineSpec
from repro.serial import unpack_reference

SPEC = MachineSpec(tau=10e-6, mu=1e-6, delta=0.1e-6, name="test")
SCHEMES = ["sss", "css"]


def do_unpack(vector, mask, field, grid, block, scheme, **kw):
    return unpack(
        vector, mask, field, grid=grid, block=block, scheme=scheme, spec=SPEC, **kw
    )


class TestSchemes:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("block", [1, 2, 4, 16])
    def test_1d(self, scheme, block):
        rng = np.random.default_rng(0)
        m = rng.random(64) < 0.5
        v = rng.random(int(m.sum()))
        f = rng.random(64)
        res = do_unpack(v, m, f, grid=4, block=block, scheme=scheme)
        np.testing.assert_array_equal(res.array, unpack_reference(v, m, f))

    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("block", [(1, 1), (2, 2), (4, 8)])
    def test_2d(self, scheme, block):
        rng = np.random.default_rng(1)
        m = rng.random((16, 16)) < 0.4
        v = rng.random(int(m.sum()))
        f = rng.random((16, 16))
        res = do_unpack(v, m, f, grid=(2, 2), block=block, scheme=scheme)
        np.testing.assert_array_equal(res.array, unpack_reference(v, m, f))

    def test_cms_rejected_for_unpack(self):
        m = np.ones(16, dtype=bool)
        with pytest.raises(Exception):
            do_unpack(np.zeros(16), m, np.zeros(16), grid=4, block=2, scheme="cms")


class TestF90Semantics:
    def test_surplus_vector_elements_ignored(self):
        # F90: V may be longer than the true count; extras are unused.
        m = np.array([True, False, True, False, True, False, True, False])
        v = np.arange(10.0)  # 4 needed, 6 surplus
        f = np.full(8, -1.0)
        res = do_unpack(v, m, f, grid=2, block=2, scheme="css")
        np.testing.assert_array_equal(res.array, [0, -1, 1, -1, 2, -1, 3, -1])

    def test_vector_too_short_rejected(self):
        m = np.ones(8, dtype=bool)
        with pytest.raises(Exception):
            do_unpack(np.zeros(4), m, np.zeros(8), grid=2, block=2, scheme="css")

    def test_empty_mask_returns_field(self):
        m = np.zeros(16, dtype=bool)
        f = np.arange(16.0)
        res = do_unpack(np.zeros(0), m, f, grid=4, block=2, scheme="css")
        np.testing.assert_array_equal(res.array, f)

    def test_full_mask_returns_vector(self):
        m = np.ones(16, dtype=bool)
        v = np.arange(16.0) * 3
        res = do_unpack(v, m, np.zeros(16), grid=4, block=2, scheme="css")
        np.testing.assert_array_equal(res.array, v)

    def test_pack_unpack_roundtrip(self):
        rng = np.random.default_rng(2)
        a = rng.random((8, 16))
        m = rng.random((8, 16)) < 0.5
        packed = pack(a, m, grid=(2, 2), block=(2, 2), scheme="cms", spec=SPEC)
        restored = do_unpack(
            packed.vector, m, np.zeros_like(a), grid=(2, 2), block=(2, 2), scheme="css"
        )
        np.testing.assert_array_equal(np.where(m, a, 0.0), restored.array)


class TestTwoPhaseCommunication:
    def test_unpack_needs_more_communication_rounds_than_pack(self):
        # Section 4.2: UNPACK's redistribution is two-phase (request +
        # reply), so it issues ~1.5x the messages of PACK's single phase
        # (both include one count-announce round) and strictly more
        # communication time.  Word volume is equal: PACK pairs carry
        # (rank, datum); UNPACK carries the rank in the request and the
        # datum in the reply.
        rng = np.random.default_rng(3)
        m = rng.random(256) < 0.5
        a = rng.random(256)
        v = rng.random(int(m.sum()))
        f = np.zeros(256)
        p = pack(a, m, grid=4, block=2, scheme="css", spec=SPEC)
        u = do_unpack(v, m, f, grid=4, block=2, scheme="css")
        p_msgs = sum(s.sends for s in p.run.stats)
        u_msgs = sum(s.sends for s in u.run.stats)
        assert u_msgs >= 1.5 * p_msgs
        assert u.m2m_ms > p.m2m_ms
        assert u.run.total_words == p.run.total_words

    def test_unpack_total_exceeds_pack_total(self):
        rng = np.random.default_rng(4)
        m = rng.random(256) < 0.5
        a = rng.random(256)
        v = rng.random(int(m.sum()))
        p = pack(a, m, grid=4, block=2, scheme="css", spec=SPEC)
        u = do_unpack(v, m, np.zeros(256), grid=4, block=2, scheme="css")
        assert u.total_ms > p.total_ms

    def test_phase_names(self):
        rng = np.random.default_rng(5)
        m = rng.random(64) < 0.5
        v = rng.random(int(m.sum()))
        u = do_unpack(v, m, np.zeros(64), grid=4, block=2, scheme="css")
        names = set(u.run.phase_names())
        for expected in [
            "unpack.ranking.initial",
            "unpack.requests",
            "unpack.comm.request",
            "unpack.serve",
            "unpack.comm.reply",
            "unpack.place",
            "unpack.merge",
        ]:
            assert expected in names, f"missing phase {expected}"


class TestDtypes:
    @pytest.mark.parametrize("dtype", [np.float64, np.int64, np.float32])
    def test_dtype_flows_through(self, dtype):
        rng = np.random.default_rng(6)
        m = rng.random(32) < 0.5
        v = (rng.random(int(m.sum())) * 50).astype(dtype)
        f = np.zeros(32, dtype=dtype)
        res = do_unpack(v, m, f, grid=4, block=2, scheme="css")
        assert res.array.dtype == dtype


@settings(max_examples=25, deadline=None)
@given(
    p=st.integers(1, 4),
    w=st.integers(1, 3),
    t=st.integers(1, 3),
    density=st.floats(0, 1),
    scheme=st.sampled_from(SCHEMES),
    seed=st.integers(0, 999),
)
def test_property_unpack_matches_oracle(p, w, t, density, scheme, seed):
    n = p * w * t * 2
    rng = np.random.default_rng(seed)
    m = rng.random(n) < density
    v = rng.random(int(m.sum()) + int(rng.integers(0, 3)))  # sometimes surplus
    f = rng.random(n)
    res = do_unpack(v, m, f, grid=(p,), block=w, scheme=scheme)
    np.testing.assert_array_equal(res.array, unpack_reference(v, m, f))
