"""Ranking-stage correctness: the Figure 1 worked example (exact
intermediate values), n-dimensional oracle checks, and properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ranking import ranking_program, slice_scan_lengths, slice_view
from repro.core.schemes import Scheme
from repro.core.api import ranking
from repro.hpf import GridLayout
from repro.machine import Machine, MachineSpec
from repro.serial import mask_ranks

SPEC = MachineSpec(tau=10e-6, mu=1e-6, delta=0.1e-6, name="test")

#: The library's canonical reconstruction of the paper's Figure 1 input:
#: A(16)/M(16) distributed block-cyclic(2) on 4 processors, Size = 10.
FIG1_MASK = np.array(
    [1, 0, 1, 1, 0, 1, 1, 1, 0, 0, 1, 1, 0, 1, 0, 1], dtype=bool
)


def run_ranking(mask, grid, block, scheme=Scheme.CSS, prs="ctrl", spec=SPEC):
    mask = np.asarray(mask, dtype=bool)
    layout = GridLayout.create(mask.shape, grid, block)
    blocks = layout.scatter(mask)

    def prog(ctx, mb):
        result = yield from ranking_program(ctx, mb, layout, scheme=scheme, prs=prs)
        return result

    run = Machine(layout.nprocs, spec).run(
        prog, rank_args=[(b,) for b in blocks]
    )
    return layout, run


class TestFigure1Example:
    """Exact hand-derived values for the paper's 1-D running example."""

    def test_size_is_ten(self):
        _, run = run_ranking(FIG1_MASK, grid=(4,), block=2)
        assert all(r.size == 10 for r in run.results)

    def test_initial_slice_counts(self):
        # PS_0 = RS_0 after the local scan: per-(proc, tile) true counts.
        _, run = run_ranking(FIG1_MASK, grid=(4,), block=2)
        counts = [r.slice_counts.tolist() for r in run.results]
        assert counts == [[1, 0], [2, 2], [1, 1], [2, 1]]

    def test_final_base_rank_array(self):
        # PS_f[tile] = global rank of the first selected element of the
        # slice: prefix over procs + exclusive scan over tiles.
        _, run = run_ranking(FIG1_MASK, grid=(4,), block=2)
        ps_f = [r.ps_f.tolist() for r in run.results]
        assert ps_f == [[0, 6], [1, 6], [3, 8], [4, 9]]

    def test_element_ranks(self):
        layout, run = run_ranking(FIG1_MASK, grid=(4,), block=2)
        expected = mask_ranks(FIG1_MASK)
        got = layout.gather(
            [
                np.where(
                    layout.scatter(FIG1_MASK)[r],
                    run.results[r].element_ranks(layout.local_shape),
                    -1,
                )
                for r in range(4)
            ]
        )
        np.testing.assert_array_equal(got, expected)

    def test_e_i_per_processor(self):
        _, run = run_ranking(FIG1_MASK, grid=(4,), block=2)
        assert [r.e_i for r in run.results] == [1, 4, 2, 3]


def _check_against_oracle(mask, grid, block, prs="ctrl"):
    mask = np.asarray(mask, dtype=bool)
    result = ranking(mask, grid=grid, block=block, prs=prs, spec=SPEC)
    np.testing.assert_array_equal(result.ranks, mask_ranks(mask))
    assert result.size == int(mask.sum())


class TestOneDimensional:
    @pytest.mark.parametrize("block", [1, 2, 4, 8, 16])
    def test_all_block_sizes(self, block):
        rng = np.random.default_rng(1)
        _check_against_oracle(rng.random(64) < 0.5, grid=(4,), block=block)

    @pytest.mark.parametrize("density", [0.0, 0.1, 0.5, 0.9, 1.0])
    def test_densities(self, density):
        rng = np.random.default_rng(2)
        _check_against_oracle(rng.random(64) < density, grid=(4,), block=2)

    def test_single_processor(self):
        rng = np.random.default_rng(3)
        _check_against_oracle(rng.random(32) < 0.5, grid=(1,), block=8)

    @pytest.mark.parametrize("prs", ["ctrl", "direct", "split"])
    def test_prs_algorithms_agree(self, prs):
        rng = np.random.default_rng(4)
        _check_against_oracle(rng.random(64) < 0.3, grid=(8,), block=2, prs=prs)


class TestTwoDimensional:
    @pytest.mark.parametrize(
        "block", [(1, 1), (2, 2), (4, 4), (1, 4), (4, 1), (2, 8)]
    )
    def test_block_combinations(self, block):
        rng = np.random.default_rng(5)
        _check_against_oracle(rng.random((16, 16)) < 0.4, grid=(2, 2), block=block)

    @pytest.mark.parametrize("grid", [(1, 4), (4, 1), (2, 2), (2, 4)])
    def test_grid_shapes(self, grid):
        rng = np.random.default_rng(6)
        _check_against_oracle(rng.random((8, 16)) < 0.4, grid=grid, block="cyclic")

    def test_lower_triangular_mask(self):
        # The paper's structured 2-D mask: true iff dim-1 index > dim-0 index
        # (numpy: row index > column index in our axis convention? paper dim 1
        # is the slower axis). true if global index on dim 1 > that on dim 0.
        n = 16
        i1, i0 = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
        mask = i1 > i0
        _check_against_oracle(mask, grid=(2, 2), block=(2, 2))


class TestThreeDimensional:
    def test_3d_cyclic(self):
        rng = np.random.default_rng(7)
        _check_against_oracle(rng.random((4, 4, 8)) < 0.5, grid=(2, 2, 2), block="cyclic")

    def test_3d_mixed(self):
        rng = np.random.default_rng(8)
        _check_against_oracle(
            rng.random((4, 8, 8)) < 0.3, grid=(1, 2, 4), block=(2, 2, 1)
        )

    def test_4d(self):
        rng = np.random.default_rng(9)
        _check_against_oracle(
            rng.random((2, 4, 4, 4)) < 0.5, grid=(1, 2, 1, 2), block=(1, 2, 2, 1)
        )


class TestSizeConsistency:
    def test_size_identical_on_all_ranks(self):
        rng = np.random.default_rng(10)
        mask = rng.random((8, 8)) < 0.5
        _, run = run_ranking(mask, grid=(2, 2), block=(2, 2))
        sizes = {r.size for r in run.results}
        assert sizes == {int(mask.sum())}

    def test_e_i_sums_to_size(self):
        rng = np.random.default_rng(11)
        mask = rng.random((8, 8)) < 0.7
        _, run = run_ranking(mask, grid=(2, 2), block=(1, 1))
        assert sum(r.e_i for r in run.results) == int(mask.sum())


class TestSliceHelpers:
    def test_slice_view_shape(self):
        layout = GridLayout.create((8, 16), (2, 2), block=(2, 4))
        local = np.zeros(layout.local_shape, dtype=bool)
        v = slice_view(local, layout)
        assert v.shape == (4, 2, 4)  # (L_1, T_0, W_0)

    def test_scan_lengths_early_exit(self):
        view = np.array([[True, False, True, False], [False, False, False, False]])
        out = slice_scan_lengths(view, early_exit=True)
        np.testing.assert_array_equal(out, [3, 0])

    def test_scan_lengths_full(self):
        view = np.array([[True, False, False, False], [False, False, False, False]])
        out = slice_scan_lengths(view, early_exit=False)
        np.testing.assert_array_equal(out, [4, 0])

    def test_scan_lengths_all_true(self):
        view = np.ones((3, 5), dtype=bool)
        np.testing.assert_array_equal(slice_scan_lengths(view, True), [5, 5, 5])


class TestCostCharging:
    def test_sss_charges_more_initial_work_than_css(self):
        rng = np.random.default_rng(12)
        mask = rng.random(64) < 0.9
        _, run_sss = run_ranking(mask, grid=(4,), block=4, scheme=Scheme.SSS)
        _, run_css = run_ranking(mask, grid=(4,), block=4, scheme=Scheme.CSS)
        # SSS stores d+3 items per selected element during the scan.
        sss_initial = max(s.phase_times.get("ranking.initial", 0) for s in run_sss.stats)
        css_initial = max(s.phase_times.get("ranking.initial", 0) for s in run_css.stats)
        assert sss_initial > css_initial

    def test_phase_names_present(self):
        mask = np.ones(64, dtype=bool)
        _, run = run_ranking(mask, grid=(4,), block=4)
        names = set(run.phase_names())
        assert "ranking.initial" in names
        assert "ranking.prs.dim0" in names
        assert "ranking.intermediate.dim0" in names
        assert "ranking.final" in names

    def test_more_tiles_cost_more(self):
        # Cyclic distribution (W=1, many tiles) must charge more ranking
        # local time than block (one tile) — the paper's headline shape.
        rng = np.random.default_rng(13)
        mask = rng.random(1024) < 0.5
        _, run_cyc = run_ranking(mask, grid=(4,), block=1)
        _, run_blk = run_ranking(mask, grid=(4,), block=256)
        t_cyc = max(s.clock for s in run_cyc.stats)
        t_blk = max(s.clock for s in run_blk.stats)
        assert t_cyc > t_blk


@settings(max_examples=40, deadline=None)
@given(
    p=st.integers(1, 4),
    w=st.integers(1, 4),
    t=st.integers(1, 4),
    density=st.floats(0.0, 1.0),
    seed=st.integers(0, 99),
)
def test_property_1d_ranking_matches_oracle(p, w, t, density, seed):
    n = p * w * t
    rng = np.random.default_rng(seed)
    mask = rng.random(n) < density
    _check_against_oracle(mask, grid=(p,), block=w)


@settings(max_examples=25, deadline=None)
@given(
    p1=st.integers(1, 3),
    p0=st.integers(1, 3),
    w1=st.integers(1, 3),
    w0=st.integers(1, 3),
    density=st.floats(0.0, 1.0),
    seed=st.integers(0, 99),
)
def test_property_2d_ranking_matches_oracle(p1, p0, w1, w0, density, seed):
    shape = (p1 * w1 * 2, p0 * w0 * 2)
    rng = np.random.default_rng(seed)
    mask = rng.random(shape) < density
    _check_against_oracle(mask, grid=(p1, p0), block=(w1, w0))
