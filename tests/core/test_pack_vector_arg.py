"""Fortran 90's optional VECTOR argument to PACK.

``PACK(ARRAY, MASK, VECTOR)`` sizes the result to ``VECTOR`` and fills the
positions past the packed elements from it — the form HPF programs use to
produce fixed-size compactions.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import pack
from repro.machine import MachineSpec
from repro.serial import pack_reference

SPEC = MachineSpec(tau=10e-6, mu=1e-6, delta=0.1e-6, name="test")


class TestSerialVectorArg:
    def test_pads_tail(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        m = np.array([True, False, True, False])
        v = np.array([-1.0, -2.0, -3.0, -4.0, -5.0])
        out = pack_reference(a, m, v)
        np.testing.assert_array_equal(out, [1.0, 3.0, -3.0, -4.0, -5.0])

    def test_exact_size_vector(self):
        a = np.arange(4.0)
        m = np.ones(4, dtype=bool)
        out = pack_reference(a, m, np.zeros(4))
        np.testing.assert_array_equal(out, a)

    def test_too_small_rejected(self):
        a = np.arange(4.0)
        with pytest.raises(ValueError):
            pack_reference(a, np.ones(4, bool), np.zeros(2))

    def test_rank_checked(self):
        a = np.arange(4.0)
        with pytest.raises(ValueError):
            pack_reference(a, np.ones(4, bool), np.zeros((2, 2)))


class TestParallelVectorArg:
    @pytest.mark.parametrize("scheme", ["sss", "css", "cms"])
    @pytest.mark.parametrize("block", [1, 2, 8])
    def test_matches_serial(self, scheme, block):
        rng = np.random.default_rng(0)
        a = rng.random(64)
        m = rng.random(64) < 0.4
        v = -np.arange(1.0, 41.0)
        res = pack(a, m, grid=4, block=block, scheme=scheme, spec=SPEC, vector=v)
        np.testing.assert_array_equal(res.vector, pack_reference(a, m, v))
        assert res.size == int(m.sum())

    def test_2d(self):
        rng = np.random.default_rng(1)
        a = rng.random((8, 8))
        m = rng.random((8, 8)) < 0.3
        v = np.full(50, 9.0)
        res = pack(a, m, grid=(2, 2), block=(2, 2), spec=SPEC, vector=v)
        np.testing.assert_array_equal(res.vector, pack_reference(a, m, v))

    @pytest.mark.parametrize("variant", ["selected", "whole"])
    def test_with_redistribution_pre_pass(self, variant):
        rng = np.random.default_rng(2)
        a = rng.random(64)
        m = rng.random(64) < 0.5
        v = np.full(48, -7.0)
        res = pack(a, m, grid=4, block="cyclic", spec=SPEC,
                   redistribute=variant, vector=v)
        np.testing.assert_array_equal(res.vector, pack_reference(a, m, v))

    def test_empty_mask_gives_vector_back(self):
        a = np.arange(16.0)
        m = np.zeros(16, dtype=bool)
        v = np.arange(10.0) * -1
        res = pack(a, m, grid=4, block=2, spec=SPEC, vector=v)
        np.testing.assert_array_equal(res.vector, v)

    def test_undersized_vector_rejected(self):
        a = np.arange(16.0)
        m = np.ones(16, dtype=bool)
        with pytest.raises(Exception):
            pack(a, m, grid=4, block=2, spec=SPEC, vector=np.zeros(4))

    def test_nonvector_pad_rejected(self):
        a = np.arange(16.0)
        m = np.ones(16, dtype=bool)
        with pytest.raises(ValueError):
            pack(a, m, grid=4, block=2, spec=SPEC, vector=np.zeros((4, 4)))


@settings(max_examples=25, deadline=None)
@given(
    w=st.integers(1, 4),
    density=st.floats(0, 1),
    surplus=st.integers(0, 10),
    scheme=st.sampled_from(["sss", "css", "cms"]),
    seed=st.integers(0, 99),
)
def test_property_vector_arg_matches_serial(w, density, surplus, scheme, seed):
    n = 4 * w * 4
    rng = np.random.default_rng(seed)
    a = rng.random(n)
    m = rng.random(n) < density
    v = rng.random(int(m.sum()) + surplus)
    res = pack(a, m, grid=4, block=w, scheme=scheme, spec=SPEC, vector=v)
    np.testing.assert_array_equal(res.vector, pack_reference(a, m, v))
