"""aggregate_time and result-object accessors."""

import numpy as np
import pytest

import repro
from repro.core.api import aggregate_time
from repro.machine import MachineSpec

SPEC = MachineSpec(tau=10e-6, mu=1e-6, delta=0.1e-6, name="test")


@pytest.fixture(scope="module")
def pack_result():
    rng = np.random.default_rng(0)
    a = rng.random(512)
    m = rng.random(512) < 0.5
    return repro.pack(a, m, grid=4, block=8, scheme="cms", spec=SPEC)


class TestAggregateTime:
    def test_total_is_elapsed(self, pack_result):
        assert aggregate_time(pack_result.run, "total") == pack_result.run.elapsed

    def test_components_do_not_exceed_total(self, pack_result):
        run = pack_result.run
        local = aggregate_time(run, "local")
        prs = aggregate_time(run, "prs")
        m2m = aggregate_time(run, "m2m")
        total = aggregate_time(run, "total")
        assert local <= total and prs <= total and m2m <= total
        # The three are disjoint classifications of phase time, so their
        # per-rank sums bound the per-rank clocks; maxima may interleave
        # but the sum of maxima bounds total from above.
        assert total <= local + prs + m2m + 1e-12

    def test_local_excludes_prs_and_comm(self, pack_result):
        run = pack_result.run
        # Phase-level check: local = sum of non-communication phases for
        # the busiest rank.
        for s in run.stats:
            comm = sum(
                t for name, t in s.phase_times.items()
                if ".prs." in name or ".comm" in name
            )
            everything = sum(s.phase_times.values())
            assert everything == pytest.approx(s.clock)
            assert comm <= s.clock

    def test_ms_accessors_consistent(self, pack_result):
        assert pack_result.total_ms == pytest.approx(
            aggregate_time(pack_result.run, "total") * 1e3
        )
        assert pack_result.local_ms == pytest.approx(
            aggregate_time(pack_result.run, "local") * 1e3
        )

    def test_times_dict_in_ms(self, pack_result):
        times = pack_result.times
        assert sum(times.values()) >= pack_result.total_ms * 0.99
        assert all(v >= 0 for v in times.values())

    def test_str_representations(self, pack_result):
        s = str(pack_result)
        assert "PackResult" in s and "cms" in s


class TestPhaseAdditivity:
    def test_phase_times_sum_to_clock(self):
        """Property: every rank's phase times partition its clock."""
        rng = np.random.default_rng(1)
        a = rng.random(256)
        m = rng.random(256) < 0.3
        for scheme in ("sss", "css", "cms"):
            res = repro.pack(a, m, grid=4, block=2, scheme=scheme, spec=SPEC)
            for s in res.run.stats:
                assert sum(s.phase_times.values()) == pytest.approx(s.clock)
