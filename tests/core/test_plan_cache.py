"""The plan/execute split and the geometry-keyed plan cache.

The contract under test: a cache hit skips the mask-dependent compile
(ranking, send-vector derivation, rescan, and for UNPACK the whole
request exchange) yet the run is **bit-identical** to a cache-off run —
same result arrays, same simulated elapsed time, same per-phase
breakdown, same message-traffic counters.  The cache is a wall-clock
optimisation only; any observable difference is a bug.
"""

import numpy as np
import pytest

from repro.core.api import pack, ranking, unpack
from repro.core.multi import pack_many
from repro.core.pack import _check_vector_geometry
from repro.core.plan import Plan, mask_fingerprint, plan_key
from repro.core.plan_cache import (
    PlanCache,
    default_plan_cache,
    reset_default_plan_cache,
    resolve_plan_cache,
)
from repro.obs import MetricsRegistry, clear_layout_caches, layout_cache_stats
from repro.serial.reference import mask_ranks, pack_reference, unpack_reference

N = 512
P = 4


def _workload(seed=0, n=N, density=0.5):
    rng = np.random.default_rng(seed)
    array = rng.random(n)
    mask = rng.random(n) < density
    return array, mask


def _run_equal(a, b):
    """Bit-identity of two runs: time, phases, traffic."""
    assert a.elapsed == b.elapsed
    assert a.phase_breakdown() == b.phase_breakdown()
    assert a.total_words == b.total_words
    assert a.total_messages == b.total_messages


# ------------------------------------------------------------- hit identity
def test_pack_hit_is_bit_identical_to_cache_off():
    array, mask = _workload()
    cache = PlanCache()
    off = pack(array, mask, P, scheme="cms", validate=False)
    miss = pack(array, mask, P, scheme="cms", validate=False, plan_cache=cache)
    hit = pack(array, mask, P, scheme="cms", validate=False, plan_cache=cache)

    assert off.plan_info is None
    assert miss.plan_info["cache"] == "miss"
    assert miss.plan_info["compile_ms"] > 0
    assert hit.plan_info["cache"] == "hit"
    assert hit.plan_info["compile_ms"] == 0.0
    assert hit.plan_info["fingerprint"] == miss.plan_info["fingerprint"]

    expected = pack_reference(array, mask)
    for r in (off, miss, hit):
        np.testing.assert_array_equal(r.vector, expected)
        assert r.size == int(mask.sum())
    _run_equal(off.run, miss.run)
    _run_equal(off.run, hit.run)


@pytest.mark.parametrize("scheme", ["sss", "css"])
def test_unpack_hit_is_bit_identical_to_cache_off(scheme):
    _, mask = _workload(seed=1)
    rng = np.random.default_rng(2)
    vector = rng.random(int(mask.sum()))
    field = np.full(mask.size, -1.0)
    cache = PlanCache()
    kw = dict(scheme=scheme, validate=False)
    off = unpack(vector, mask, field, P, **kw)
    miss = unpack(vector, mask, field, P, plan_cache=cache, **kw)
    hit = unpack(vector, mask, field, P, plan_cache=cache, **kw)

    assert miss.plan_info["cache"] == "miss"
    assert hit.plan_info["cache"] == "hit"
    assert hit.plan_info["compile_ms"] == 0.0

    expected = unpack_reference(vector, mask, field)
    for r in (off, miss, hit):
        np.testing.assert_array_equal(r.array, expected)
    _run_equal(off.run, miss.run)
    _run_equal(off.run, hit.run)


def test_ranking_hit_is_bit_identical_to_cache_off():
    _, mask = _workload(seed=3)
    cache = PlanCache()
    off = ranking(mask, P, validate=False)
    miss = ranking(mask, P, validate=False, plan_cache=cache)
    hit = ranking(mask, P, validate=False, plan_cache=cache)

    assert miss.plan_info["cache"] == "miss"
    assert hit.plan_info["cache"] == "hit"
    expected = mask_ranks(mask)
    for r in (off, miss, hit):
        np.testing.assert_array_equal(r.ranks, expected)
    _run_equal(off.run, miss.run)
    _run_equal(off.run, hit.run)


def test_hit_with_different_array_same_mask():
    """The plan depends on the mask and geometry, never on the values."""
    a1, mask = _workload(seed=4)
    a2 = np.arange(N, dtype=np.float64)
    cache = PlanCache()
    pack(a1, mask, P, validate=False, plan_cache=cache)
    hit = pack(a2, mask, P, validate=False, plan_cache=cache)
    assert hit.plan_info["cache"] == "hit"
    np.testing.assert_array_equal(hit.vector, pack_reference(a2, mask))


# --------------------------------------------------------- cache coherency
def test_flipped_mask_bit_misses_never_stale():
    array, mask = _workload(seed=5)
    cache = PlanCache()
    pack(array, mask, P, validate=False, plan_cache=cache)

    flipped = mask.copy()
    flipped[N // 3] = not flipped[N // 3]
    assert mask_fingerprint(flipped) != mask_fingerprint(mask)
    r = pack(array, flipped, P, validate=False, plan_cache=cache)
    assert r.plan_info["cache"] == "miss"
    np.testing.assert_array_equal(r.vector, pack_reference(array, flipped))


def test_different_geometry_misses():
    array, mask = _workload(seed=6)
    cache = PlanCache()
    pack(array, mask, P, scheme="cms", validate=False, plan_cache=cache)
    for kw in (
        dict(scheme="sss"),
        dict(scheme="cms", result_block=8),
        dict(scheme="cms", m2m_schedule="direct"),
    ):
        r = pack(array, mask, P, validate=False, plan_cache=cache, **kw)
        assert r.plan_info["cache"] == "miss", kw
        np.testing.assert_array_equal(r.vector, pack_reference(array, mask))
    assert cache.stats().hits == 0


def test_ops_do_not_share_entries():
    """A pack plan must never serve unpack or ranking with the same mask."""
    array, mask = _workload(seed=7)
    vector = np.arange(int(mask.sum()), dtype=np.float64)
    cache = PlanCache()
    pack(array, mask, P, scheme="css", validate=False, plan_cache=cache)
    u = unpack(vector, mask, array, P, scheme="css", validate=False,
               plan_cache=cache)
    k = ranking(mask, P, scheme="css", validate=False, plan_cache=cache)
    assert u.plan_info["cache"] == "miss"
    assert k.plan_info["cache"] == "miss"
    assert cache.stats().hits == 0
    assert len(cache) == 3


def test_faults_and_reliability_bypass():
    from repro.faults import FaultPlan

    array, mask = _workload(seed=8)
    cache = PlanCache()
    plan = FaultPlan(seed=0, drop_rate=0.05)
    r = pack(array, mask, P, faults=plan, reliability=True, validate=False,
             plan_cache=cache)
    assert r.plan_info == {"cache": "off", "compile_ms": None}
    assert len(cache) == 0


# ----------------------------------------------------------- gang sharing
def test_gang_pack_shares_plan_with_solo_pack():
    array, mask = _workload(seed=9)
    others = [np.arange(N, dtype=np.float64), -array]
    cache = PlanCache()

    solo = pack(array, mask, P, scheme="cms", validate=False, plan_cache=cache)
    assert solo.plan_info["cache"] == "miss"
    vectors, _ = pack_many([array] + others, mask, P, scheme="cms",
                           validate=False, plan_cache=cache)
    assert cache.stats().hits == 1  # the gang replayed the solo plan
    for arr, vec in zip([array] + others, vectors):
        np.testing.assert_array_equal(vec, pack_reference(arr, mask))

    # And the reverse: a plan the gang compiled serves solo PACK.
    _, mask2 = _workload(seed=10)
    pack_many([array], mask2, P, scheme="cms", validate=False,
              plan_cache=cache)
    r = pack(array, mask2, P, scheme="cms", validate=False, plan_cache=cache)
    assert r.plan_info["cache"] == "hit"
    np.testing.assert_array_equal(r.vector, pack_reference(array, mask2))


# ------------------------------------------------------- cache mechanics
def test_lru_eviction_and_stats():
    array, _ = _workload()
    cache = PlanCache(capacity=2)
    masks = [np.arange(N) % k == 0 for k in (2, 3, 5)]
    for m in masks:
        pack(array, m, P, validate=False, plan_cache=cache)
    s = cache.stats()
    assert len(cache) == 2
    assert (s.misses, s.evictions) == (3, 1)
    # The first mask's entry was the LRU victim: it misses again.
    r = pack(array, masks[0], P, validate=False, plan_cache=cache)
    assert r.plan_info["cache"] == "miss"
    # The most recent one still hits.
    r = pack(array, masks[2], P, validate=False, plan_cache=cache)
    assert r.plan_info["cache"] == "hit"


def test_default_cache_resolution():
    reset_default_plan_cache()
    try:
        assert resolve_plan_cache(None) is None
        assert resolve_plan_cache(False) is None
        assert resolve_plan_cache("off") is None
        assert resolve_plan_cache(True) is default_plan_cache()
        assert resolve_plan_cache("on") is default_plan_cache()
        own = PlanCache()
        assert resolve_plan_cache(own) is own
        with pytest.raises(ValueError):
            resolve_plan_cache("bogus")
    finally:
        reset_default_plan_cache()


def test_plan_serialization_roundtrip():
    array, mask = _workload(seed=11)
    cache = PlanCache()
    pack(array, mask, P, validate=False, plan_cache=cache)
    vector = np.arange(int(mask.sum()), dtype=np.float64)
    unpack(vector, mask, array, P, scheme="css", validate=False,
           plan_cache=cache)
    ranking(mask, P, validate=False, plan_cache=cache)
    for key in cache.keys():
        plan = cache.peek(key)
        doc = plan.to_dict()
        again = Plan.from_dict(doc)
        assert again.to_dict() == doc
        assert again.nprocs == plan.nprocs
        assert again.key == plan.key


def test_plan_metrics_counters():
    array, mask = _workload(seed=12)
    cache = PlanCache()
    reg = MetricsRegistry()
    pack(array, mask, P, validate=False, plan_cache=cache, metrics=reg)
    pack(array, mask, P, validate=False, plan_cache=cache, metrics=reg)
    assert reg.value("plan_cache.miss") == 1
    assert reg.value("plan_cache.hit") == 1
    hist = reg.get("plan.compile_ms")
    assert hist is not None and hist.count == 2


# ------------------------------------------------- satellite regressions
def test_oversized_vector_without_pad_is_a_valueerror():
    """n_result > Size with no pad vector: a named ValueError up front,
    not a bare AssertionError from the placement arithmetic."""
    with pytest.raises(ValueError) as ei:
        _check_vector_geometry(rank=2, size=4, n_result=9, pad_block=None)
    msg = str(ei.value)
    assert "rank 2" in msg
    assert "9" in msg and "4" in msg
    assert "pad" in msg
    # Legal geometries stay silent.
    _check_vector_geometry(rank=0, size=4, n_result=4, pad_block=None)
    _check_vector_geometry(
        rank=0, size=4, n_result=9, pad_block=np.zeros(3)
    )


def test_layout_cache_stats_and_clear():
    from repro.hpf.grid import GridLayout
    from repro.hpf.vector import VectorLayout

    clear_layout_caches()
    layout = GridLayout.create((N,), (P,), None)
    layout.global_flat_index(0)
    layout.global_flat_index(0)  # second call must be a hit
    VectorLayout(n=N, p=P, w=N // P).globals_(1)
    stats = layout_cache_stats()
    assert set(stats) >= {"hpf.grid.flat_index", "hpf.vector.globals",
                          "hpf.dimlayout.globals"}
    assert stats["hpf.grid.flat_index"]["entries"] == 1
    assert stats["hpf.grid.flat_index"]["hits"] == 1
    assert stats["hpf.vector.globals"]["entries"] == 1
    clear_layout_caches()
    assert all(s["entries"] == 0 for s in layout_cache_stats().values())


# -------------------------------------------------------------- mp backend
def test_mp_backend_hit_matches_reference():
    array, mask = _workload(seed=13, n=256)
    cache = PlanCache()
    miss = pack(array, mask, 2, validate=False, backend="mp",
                plan_cache=cache)
    hit = pack(array, mask, 2, validate=False, backend="mp",
               plan_cache=cache)
    assert miss.plan_info["cache"] == "miss"
    assert hit.plan_info["cache"] == "hit"
    assert hit.plan_info["compile_ms"] == 0.0
    expected = pack_reference(array, mask)
    np.testing.assert_array_equal(miss.vector, expected)
    np.testing.assert_array_equal(hit.vector, expected)
