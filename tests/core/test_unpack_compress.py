"""The compress-requests UNPACK extension (run-length-encoded requests)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import unpack
from repro.machine import MachineSpec
from repro.serial import unpack_reference

SPEC = MachineSpec(tau=10e-6, mu=1e-6, delta=0.1e-6, name="test")


def do(v, m, f, block, compress, scheme="css"):
    return unpack(
        v, m, f, grid=4, block=block, scheme=scheme, spec=SPEC,
        compress_requests=compress,
    )


class TestCompressedRequests:
    @pytest.mark.parametrize("block", [1, 4, 32])
    @pytest.mark.parametrize("density", [0.1, 0.5, 0.9])
    def test_results_identical(self, block, density):
        rng = np.random.default_rng(0)
        m = rng.random(256) < density
        v = rng.random(int(m.sum()))
        f = rng.random(256)
        plain = do(v, m, f, block, compress=False)
        comp = do(v, m, f, block, compress=True)
        np.testing.assert_array_equal(plain.array, comp.array)
        np.testing.assert_array_equal(comp.array, unpack_reference(v, m, f))

    def test_dense_masks_save_request_words(self):
        rng = np.random.default_rng(1)
        m = rng.random(1024) < 0.9
        v = rng.random(int(m.sum()))
        f = np.zeros(1024)
        plain = do(v, m, f, 32, compress=False)
        comp = do(v, m, f, 32, compress=True)
        assert comp.run.total_words < plain.run.total_words

    def test_cyclic_distribution_gains_nothing(self):
        # W=1: singleton segments -> 2 words per request vs 1 uncompressed,
        # the same degradation CMS shows for PACK at cyclic.
        rng = np.random.default_rng(2)
        m = rng.random(256) < 0.9
        v = rng.random(int(m.sum()))
        f = np.zeros(256)
        plain = do(v, m, f, 1, compress=False)
        comp = do(v, m, f, 1, compress=True)
        assert comp.run.total_words >= plain.run.total_words

    def test_sss_ignores_compression(self):
        # The flag only applies to the compact storage scheme (SSS stores
        # explicit records and sends explicit rank lists).
        rng = np.random.default_rng(3)
        m = rng.random(256) < 0.5
        v = rng.random(int(m.sum()))
        f = np.zeros(256)
        plain = do(v, m, f, 8, compress=False, scheme="sss")
        flagged = do(v, m, f, 8, compress=True, scheme="sss")
        assert plain.run.total_words == flagged.run.total_words
        np.testing.assert_array_equal(plain.array, flagged.array)


@settings(max_examples=20, deadline=None)
@given(
    w=st.integers(1, 6),
    density=st.floats(0, 1),
    seed=st.integers(0, 99),
)
def test_property_compressed_unpack_matches_oracle(w, density, seed):
    n = 4 * w * 6
    rng = np.random.default_rng(seed)
    m = rng.random(n) < density
    v = rng.random(int(m.sum()))
    f = rng.random(n)
    res = do(v, m, f, w, compress=True)
    np.testing.assert_array_equal(res.array, unpack_reference(v, m, f))
