"""UNPACK-with-redistribution: correct, but infeasible — as the paper says."""

import numpy as np
import pytest

from repro.core.redistribution import unpack_red_program
from repro.core.schemes import PackConfig
from repro.core.unpack import input_vector_layout, unpack_program
from repro.hpf import GridLayout
from repro.machine import Machine, MachineSpec
from repro.serial import unpack_reference

SPEC = MachineSpec(tau=10e-6, mu=1e-6, delta=0.1e-6, name="test")


def run_unpack(program, n, block, density=0.5, seed=0, grid=(4,), spec=SPEC):
    rng = np.random.default_rng(seed)
    shape = (n,) if isinstance(n, int) else n
    m = rng.random(shape) < density
    v = rng.random(int(m.sum()))
    f = rng.random(shape)
    layout = GridLayout.create(shape, grid, block=block)
    config = PackConfig(scheme="css")
    vl = input_vector_layout(v.size, layout.nprocs, config)
    res = Machine(layout.nprocs, spec).run(
        program,
        rank_args=[
            (vb, mb, fb, layout, v.size, config)
            for vb, mb, fb in zip(
                vl.scatter(v), layout.scatter(m), layout.scatter(f)
            )
        ],
    )
    out = layout.gather([r.array_block for r in res.results])
    np.testing.assert_array_equal(out, unpack_reference(v, m, f))
    return res


class TestUnpackRedCorrectness:
    @pytest.mark.parametrize("density", [0.1, 0.5, 0.9])
    def test_1d_cyclic(self, density):
        run_unpack(unpack_red_program, 128, "cyclic", density)

    def test_2d_cyclic(self):
        run_unpack(unpack_red_program, (16, 16), "cyclic", 0.4, grid=(2, 2))

    def test_result_returned_in_original_distribution(self):
        # The gather above uses the ORIGINAL layout — if the program
        # forgot the return redistribution this would already fail; make
        # the intent explicit with a block-cyclic(2) layout too.
        run_unpack(unpack_red_program, 128, 2, 0.5)


class TestPaperInfeasibilityClaim:
    def test_redistributed_unpack_loses_to_direct(self):
        """Section 6.3: 'this redistribution scheme will not be a feasible
        option for UNPACK' — two redistribution steps dwarf the ranking
        savings, at any density, even on 2-D arrays where the PACK
        pre-passes win."""
        for shape, grid in [((16384,), (16,)), ((256, 256), (4, 4))]:
            for density in (0.1, 0.9):
                direct = run_unpack(
                    unpack_program, shape, "cyclic", density, grid=grid
                )
                red = run_unpack(
                    unpack_red_program, shape, "cyclic", density, grid=grid
                )
                assert red.elapsed > direct.elapsed, (
                    f"{shape} @ {density}: redistributed UNPACK should lose"
                )

    def test_two_redistribution_steps_charged(self):
        res = run_unpack(unpack_red_program, 128, "cyclic", 0.5)
        names = set()
        for s in res.stats:
            names.update(s.phase_times)
        assert "unpack.red.mask" in names
        assert "unpack.red.field" in names
        assert "unpack.red.return" in names
