"""The vectorized codecs and cached index maps equal loop references.

The perf rewrite vectorized message composition/decomposition (repeat /
cumsum-offset expansion, slice-copy fast paths) and cached the layout
index maps.  Each optimized routine is compared here against a
straightforward loop implementation of the original definition, over
random masks and layouts: all three schemes' encodings (pair for
SSS/CSS, segment for CMS), d = 1..3 grids, block and block-cyclic result
vectors (cyclic exercises the non-monotone destination paths and the
multi-tile local-index math).
"""

import numpy as np
import pytest

from repro.core.messages import (
    PairMessage,
    SegmentMessage,
    compose_pair_messages,
    compose_segment_messages,
    decompose_pair_message,
    decompose_segment_message,
    expand_segments,
    gather_segments,
    place_pair_message,
    place_segment_message,
)
from repro.core.ranking import ranking_program
from repro.core.storage import extract_selected
from repro.hpf.grid import GridLayout
from repro.hpf.vector import VectorLayout
from repro.machine.engine import Machine

# (shape, grid, block) cases covering d = 1..3, pure block and cyclic dims.
GRIDS = [
    ((256,), (4,), None),
    ((256,), (4,), 16),  # block-cyclic dim 0
    ((16, 32), (2, 4), None),
    ((16, 32), (2, 4), (4, 4)),
    ((8, 8, 8), (2, 2, 2), None),
]
DENSITIES = [0.0, 0.15, 0.6, 1.0]


def _selected_per_rank(layout, mask, vec):
    """SelectedElements of every rank for a global mask (runs the real
    ranking stage, so rank vectors are exactly what PACK composes from)."""
    array = np.arange(layout.n, dtype=np.int64).reshape(layout.shape)
    mask_blocks = layout.scatter(mask)
    array_blocks = layout.scatter(array)
    rankings = Machine(layout.nprocs).run(
        ranking_program, rank_args=[(mb, layout) for mb in mask_blocks]
    ).results
    return [
        extract_selected(ab, mb, rk, layout, vec)
        for ab, mb, rk in zip(array_blocks, mask_blocks, rankings)
    ]


def _vec_layouts(size, nprocs):
    out = [VectorLayout.block(max(size, 0), nprocs)]
    if size > 0:
        out.append(VectorLayout.cyclic(size, nprocs, w=3))
    return out


def ref_expand(bases, counts):
    parts = [int(b) + np.arange(int(c), dtype=np.int64)
             for b, c in zip(bases, counts)]
    return (np.concatenate(parts) if parts else np.empty(0, dtype=np.int64))


def ref_compose_pair(sel):
    out = {}
    for i in range(sel.count):
        d = int(sel.dests[i])
        out.setdefault(d, ([], []))
        out[d][0].append(int(sel.ranks[i]))
        out[d][1].append(sel.values[i])
    return {
        d: PairMessage(ranks=np.array(r, dtype=sel.ranks.dtype),
                       values=np.array(v, dtype=sel.values.dtype))
        for d, (r, v) in out.items()
    }


def ref_compose_segment(sel):
    """Element walk accumulating maximal same-slice same-destination runs."""
    segs: dict[int, list] = {}
    for i in range(sel.count):
        d = int(sel.dests[i])
        runs = segs.setdefault(d, [])
        new_seg = (
            i == 0
            or sel.slice_ids[i] != sel.slice_ids[i - 1]
            or sel.dests[i] != sel.dests[i - 1]
        )
        if new_seg:
            runs.append([int(sel.ranks[i]), 0, []])
        runs[-1][1] += 1
        runs[-1][2].append(sel.values[i])
    out = {}
    for d, runs in segs.items():
        out[d] = SegmentMessage(
            bases=np.array([r[0] for r in runs], dtype=np.int64),
            counts=np.array([r[1] for r in runs], dtype=np.int64),
            values=np.array([v for r in runs for v in r[2]],
                            dtype=sel.values.dtype),
        )
    return out


def ref_local(vec, g):
    return (g // (vec.p * vec.w)) * vec.w + g % vec.w


def _assert_pair_equal(a, b):
    assert sorted(a) == sorted(b)
    for d in a:
        np.testing.assert_array_equal(a[d].ranks, b[d].ranks)
        np.testing.assert_array_equal(a[d].values, b[d].values)


def _assert_segment_equal(a, b):
    assert sorted(a) == sorted(b)
    for d in a:
        np.testing.assert_array_equal(a[d].bases, b[d].bases)
        np.testing.assert_array_equal(a[d].counts, b[d].counts)
        np.testing.assert_array_equal(a[d].values, b[d].values)


class TestExpandSegments:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_runs(self, seed):
        rng = np.random.default_rng(seed)
        k = int(rng.integers(0, 40))
        bases = rng.integers(0, 1000, size=k)
        counts = rng.integers(0, 9, size=k)  # zero-length runs included
        np.testing.assert_array_equal(
            expand_segments(bases, counts), ref_expand(bases, counts)
        )

    def test_empty(self):
        assert expand_segments(np.empty(0), np.empty(0)).size == 0


class TestComposeEquivalence:
    @pytest.mark.parametrize("shape,grid,block", GRIDS)
    @pytest.mark.parametrize("density", DENSITIES)
    def test_all_layouts_and_densities(self, shape, grid, block, density):
        layout = GridLayout.create(shape, grid, block)
        rng = np.random.default_rng(hash((shape, grid, density)) % 2**32)
        mask = rng.random(shape) < density
        size = int(mask.sum())
        for vec in _vec_layouts(size, layout.nprocs):
            for sel in _selected_per_rank(layout, mask, vec):
                # Pair encoding (SSS / CSS) and segment encoding (CMS).
                _assert_pair_equal(
                    compose_pair_messages(sel), ref_compose_pair(sel)
                )
                _assert_segment_equal(
                    compose_segment_messages(sel), ref_compose_segment(sel)
                )


class TestPlaceAndGatherEquivalence:
    @pytest.mark.parametrize("shape,grid,block", GRIDS)
    def test_roundtrip_places_every_element(self, shape, grid, block):
        """Composing on all ranks and placing at each destination fills the
        destination blocks exactly as elementwise reference placement."""
        layout = GridLayout.create(shape, grid, block)
        rng = np.random.default_rng(42)
        mask = rng.random(shape) < 0.5
        size = int(mask.sum())
        for vec in _vec_layouts(size, layout.nprocs):
            selected = _selected_per_rank(layout, mask, vec)
            for encode, place, decompose in (
                (compose_pair_messages, place_pair_message,
                 decompose_pair_message),
                (compose_segment_messages, place_segment_message,
                 decompose_segment_message),
            ):
                inboxes: dict[int, list] = {}
                for sel in selected:
                    for d, msg in encode(sel).items():
                        inboxes.setdefault(d, []).append(msg)
                for d in range(layout.nprocs):
                    got = np.full(vec.local_size(d), -1, dtype=np.int64)
                    want = np.full(vec.local_size(d), -1, dtype=np.int64)
                    for msg in inboxes.get(d, []):
                        n = place(got, msg, vec)
                        assert n == msg.count
                        pos, vals = decompose(msg, vec)
                        for p, v in zip(pos.tolist(), vals.tolist()):
                            want[p] = v
                    np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("seed", range(4))
    def test_gather_segments_vs_reference(self, seed):
        rng = np.random.default_rng(seed)
        n, p = 480, 4
        for vec in (VectorLayout.block(n, p), VectorLayout.cyclic(n, p, w=5)):
            rank = int(rng.integers(0, p))
            block = rng.integers(0, 1000, size=vec.local_size(rank))
            mine = vec.globals_(rank)
            # Random (base, length) runs of globals owned by this rank:
            # consecutive local elements have consecutive globals within a
            # block, so pick run starts and clip lengths to the block end.
            k = int(rng.integers(1, 12))
            starts_l = rng.integers(0, vec.local_size(rank), size=k)
            bases, lengths = [], []
            for sl in starts_l.tolist():
                g = int(mine[sl])
                room = vec.w - g % vec.w
                bases.append(g)
                lengths.append(int(rng.integers(1, room + 1)))
            got = gather_segments(block, np.array(bases), np.array(lengths), vec)
            want = block[ref_expand(ref_local(vec, np.array(bases)), lengths)]
            np.testing.assert_array_equal(got, want)

    def test_slice_and_fancy_paths_agree(self):
        """Both sides of the _SLICE_RATIO switch produce identical blocks."""
        vec = VectorLayout.block(1000, 2)
        block_a = np.zeros(500, dtype=np.int64)
        block_b = np.zeros(500, dtype=np.int64)
        # One long segment (slice path) vs the same data as many short
        # segments (fancy-index path).
        long_msg = SegmentMessage(
            bases=np.array([0]), counts=np.array([300]),
            values=np.arange(300, dtype=np.int64),
        )
        short_msg = SegmentMessage(
            bases=np.arange(0, 300, 5), counts=np.full(60, 5),
            values=np.arange(300, dtype=np.int64),
        )
        assert place_segment_message(block_a, long_msg, vec) == 300
        assert place_segment_message(block_b, short_msg, vec) == 300
        np.testing.assert_array_equal(block_a, block_b)
        np.testing.assert_array_equal(
            gather_segments(block_a, long_msg.bases, long_msg.counts, vec),
            gather_segments(block_b, short_msg.bases, short_msg.counts, vec),
        )


class TestLayoutIndexMapCaches:
    """Cached globals_/locals_/flat-index maps equal their definitions."""

    @pytest.mark.parametrize("n,p,w", [(64, 4, 16), (64, 4, 4), (60, 4, 4)])
    def test_vector_maps(self, n, p, w):
        vec = VectorLayout(n=n, p=p, w=w)
        g = np.arange(n, dtype=np.int64)
        np.testing.assert_array_equal(vec.owners(g), (g // w) % p)
        np.testing.assert_array_equal(vec.locals_(g), ref_local(vec, g))
        seen = np.zeros(n, dtype=bool)
        for r in range(p):
            mine = vec.globals_(r)
            assert not mine.flags.writeable  # cached maps are frozen
            assert np.array_equal(vec.owners(mine), np.full(mine.size, r))
            np.testing.assert_array_equal(
                vec.locals_(mine), np.arange(mine.size)
            )
            seen[mine] = True
        assert seen.all()

    @pytest.mark.parametrize("shape,grid,block", GRIDS)
    def test_grid_flat_index_matches_ix_gather(self, shape, grid, block):
        layout = GridLayout.create(shape, grid, block)
        flat_global = np.arange(layout.n, dtype=np.int64).reshape(shape)
        for r in range(layout.nprocs):
            idx = layout.local_global_indices(r)
            want = flat_global[np.ix_(*idx)]
            got = layout.global_flat_index(r)
            assert not got.flags.writeable
            np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("shape,grid,block", GRIDS)
    def test_scatter_views_equal_copies(self, shape, grid, block):
        layout = GridLayout.create(shape, grid, block)
        rng = np.random.default_rng(0)
        a = rng.integers(0, 100, size=shape)
        for bc, bv in zip(layout.scatter(a, copy=True),
                          layout.scatter(a, copy=False)):
            np.testing.assert_array_equal(bc, bv)
        size = 100
        for vec in _vec_layouts(size, 4):
            v = rng.integers(0, 100, size=size)
            for bc, bv in zip(vec.scatter(v, copy=True),
                              vec.scatter(v, copy=False)):
                np.testing.assert_array_equal(bc, bv)
