"""Section 6.3 pre-passes: Red.1 (selected data) and Red.2 (whole arrays)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import pack
from repro.core.redistribution import block_layout_of
from repro.hpf import GridLayout
from repro.machine import MachineSpec
from repro.serial import pack_reference

SPEC = MachineSpec(tau=10e-6, mu=1e-6, delta=0.1e-6, name="test")


class TestBlockLayoutOf:
    def test_1d(self):
        cyc = GridLayout.create((16,), (4,), block="cyclic")
        blk = block_layout_of(cyc)
        assert blk.dims[0].w == 4
        assert blk.dims[0].is_block

    def test_2d(self):
        cyc = GridLayout.create((8, 16), (2, 4), block="cyclic")
        blk = block_layout_of(cyc)
        assert blk.dims[1].w == 4 and blk.dims[0].w == 4
        assert all(d.is_block for d in blk.dims)


class TestRed1:
    @pytest.mark.parametrize("density", [0.1, 0.5, 0.9])
    def test_1d_matches_oracle(self, density):
        rng = np.random.default_rng(0)
        a = rng.random(128)
        m = rng.random(128) < density
        res = pack(a, m, grid=4, block="cyclic", scheme="cms",
                   redistribute="selected", spec=SPEC)
        np.testing.assert_array_equal(res.vector, pack_reference(a, m))

    def test_2d_matches_oracle(self):
        rng = np.random.default_rng(1)
        a = rng.random((16, 16))
        m = rng.random((16, 16)) < 0.3
        res = pack(a, m, grid=(2, 2), block="cyclic", scheme="cms",
                   redistribute="selected", spec=SPEC)
        np.testing.assert_array_equal(res.vector, pack_reference(a, m))

    def test_empty_mask(self):
        a = np.arange(64.0)
        m = np.zeros(64, dtype=bool)
        res = pack(a, m, grid=4, block="cyclic", redistribute="selected", spec=SPEC)
        assert res.size == 0

    def test_red1_volume_scales_with_density(self):
        # Red.1 moves only selected data: sparse masks ship fewer words.
        rng = np.random.default_rng(2)
        a = rng.random(256)
        m_lo = rng.random(256) < 0.1
        m_hi = rng.random(256) < 0.9
        lo = pack(a, m_lo, grid=4, block="cyclic", redistribute="selected", spec=SPEC)
        hi = pack(a, m_hi, grid=4, block="cyclic", redistribute="selected", spec=SPEC)
        assert lo.run.total_words < hi.run.total_words


class TestRed2:
    @pytest.mark.parametrize("density", [0.1, 0.5, 0.9])
    def test_1d_matches_oracle(self, density):
        rng = np.random.default_rng(3)
        a = rng.random(128)
        m = rng.random(128) < density
        res = pack(a, m, grid=4, block="cyclic", scheme="cms",
                   redistribute="whole", spec=SPEC)
        np.testing.assert_array_equal(res.vector, pack_reference(a, m))

    def test_2d_matches_oracle(self):
        rng = np.random.default_rng(4)
        a = rng.random((16, 16))
        m = rng.random((16, 16)) < 0.7
        res = pack(a, m, grid=(2, 2), block="cyclic", scheme="cms",
                   redistribute="whole", spec=SPEC)
        np.testing.assert_array_equal(res.vector, pack_reference(a, m))

    def test_red2_volume_density_insensitive(self):
        # Red.2 always moves the whole A and M: volume independent of mask.
        rng = np.random.default_rng(5)
        a = rng.random(256)
        m_lo = rng.random(256) < 0.1
        m_hi = rng.random(256) < 0.9
        lo = pack(a, m_lo, grid=4, block="cyclic", redistribute="whole", spec=SPEC)
        hi = pack(a, m_hi, grid=4, block="cyclic", redistribute="whole", spec=SPEC)
        # Only the final CMS pack's segment counts differ slightly.
        pre_lo = lo.times.get("pack.red.array", 0) + lo.times.get("pack.red.mask", 0)
        pre_hi = hi.times.get("pack.red.array", 0) + hi.times.get("pack.red.mask", 0)
        assert pre_lo == pytest.approx(pre_hi, rel=0.05)


class TestPrePassPhases:
    def test_red1_phases(self):
        rng = np.random.default_rng(6)
        a = rng.random(64)
        m = rng.random(64) < 0.5
        res = pack(a, m, grid=4, block="cyclic", redistribute="selected", spec=SPEC)
        names = set(res.run.phase_names())
        assert "pack.red.detect" in names
        assert "pack.red.comm" in names
        assert "pack.red.build" in names

    def test_red2_phases(self):
        rng = np.random.default_rng(7)
        a = rng.random(64)
        m = rng.random(64) < 0.5
        res = pack(a, m, grid=4, block="cyclic", redistribute="whole", spec=SPEC)
        names = set(res.run.phase_names())
        assert "pack.red.array" in names
        assert "pack.red.mask" in names

    def test_bad_redistribute_value(self):
        with pytest.raises(ValueError):
            pack(np.zeros(8), np.zeros(8, bool), grid=2, block="cyclic",
                 redistribute="sideways", spec=SPEC)


@settings(max_examples=20, deadline=None)
@given(
    density=st.floats(0, 1),
    seed=st.integers(0, 99),
    variant=st.sampled_from(["selected", "whole"]),
)
def test_property_pre_passes_match_oracle(density, seed, variant):
    rng = np.random.default_rng(seed)
    a = rng.random((8, 8))
    m = rng.random((8, 8)) < density
    res = pack(a, m, grid=(2, 2), block="cyclic", redistribute=variant, spec=SPEC)
    np.testing.assert_array_equal(res.vector, pack_reference(a, m))
