"""Plan cache coverage of the redistribution pre-passes (Red.1 / Red.2).

The contract matches the direct-PACK plan tests: a hit skips the
mask-dependent compile work yet the run is bit-identical to a cache-off
run — same vector, same simulated elapsed time, same phase breakdown,
same traffic.  For Red.1 the plan stores the detect/dest maps but the
data exchange always runs for real with identical payloads; for Red.2
the array and mask redistributes always run for real (the traffic is
the algorithm) and only the inner pack prefix replays.
"""

import numpy as np
import pytest

from repro.core.api import pack
from repro.core.plan import Plan, Red1RankPlan, Red2RankPlan
from repro.core.plan_cache import PlanCache
from repro.serial.reference import pack_reference

N = 512
P = 4


def _workload(seed=0, density=0.4):
    rng = np.random.default_rng(seed)
    return rng.random(N), rng.random(N) < density


def _run_equal(a, b):
    assert a.elapsed == b.elapsed
    assert a.phase_breakdown() == b.phase_breakdown()
    assert a.total_words == b.total_words
    assert a.total_messages == b.total_messages


@pytest.mark.parametrize("mode", ["selected", "whole"])
def test_redistribute_hit_is_bit_identical_to_cache_off(mode):
    array, mask = _workload()
    cache = PlanCache()
    kw = dict(redistribute=mode, validate=False)
    off = pack(array, mask, P, **kw)
    miss = pack(array, mask, P, plan_cache=cache, **kw)
    hit = pack(array, mask, P, plan_cache=cache, **kw)

    assert off.plan_info is None
    assert miss.plan_info["cache"] == "miss"
    assert miss.plan_info["compile_ms"] > 0
    assert hit.plan_info["cache"] == "hit"
    assert hit.plan_info["compile_ms"] == 0.0

    expected = pack_reference(array, mask)
    for r in (off, miss, hit):
        np.testing.assert_array_equal(r.vector, expected)
    _run_equal(off.run, miss.run)
    _run_equal(off.run, hit.run)


@pytest.mark.parametrize("mode", ["selected", "whole"])
def test_redistribute_hit_with_different_array_same_mask(mode):
    """Red plans depend on the mask and geometry, never on the values."""
    a1, mask = _workload(seed=1)
    a2 = np.arange(N, dtype=np.float64)
    cache = PlanCache()
    pack(a1, mask, P, redistribute=mode, validate=False, plan_cache=cache)
    hit = pack(a2, mask, P, redistribute=mode, validate=False,
               plan_cache=cache)
    assert hit.plan_info["cache"] == "hit"
    np.testing.assert_array_equal(hit.vector, pack_reference(a2, mask))


def test_redistribute_modes_have_distinct_entries():
    """pack / pack_red1 / pack_red2 never share entries: the same mask
    compiles three independent plans (their prefixes differ entirely)."""
    array, mask = _workload(seed=2)
    cache = PlanCache()
    for mode in (None, "selected", "whole"):
        r = pack(array, mask, P, redistribute=mode, validate=False,
                 plan_cache=cache)
        assert r.plan_info["cache"] == "miss", mode
    assert cache.stats().hits == 0
    assert sorted(k.op for k in cache.keys()) == [
        "pack", "pack_red1", "pack_red2",
    ]


@pytest.mark.parametrize("mode,kind", [("selected", Red1RankPlan),
                                       ("whole", Red2RankPlan)])
def test_red_plan_serialization_roundtrip(mode, kind):
    array, mask = _workload(seed=3)
    cache = PlanCache()
    pack(array, mask, P, redistribute=mode, validate=False, plan_cache=cache)
    (key,) = cache.keys()
    plan = cache.peek(key)
    assert all(isinstance(rp, kind) for rp in plan.ranks)

    clone = Plan.from_dict(plan.to_dict())
    assert clone.key == key
    assert clone.nbytes == plan.nbytes

    # The deserialized plan must replay exactly like the original.
    fresh = PlanCache()
    fresh.put(clone.key, clone)
    orig = pack(array, mask, P, redistribute=mode, validate=False,
                plan_cache=cache)
    replayed = pack(array, mask, P, redistribute=mode, validate=False,
                    plan_cache=fresh)
    assert orig.plan_info["cache"] == "hit"
    assert replayed.plan_info["cache"] == "hit"
    np.testing.assert_array_equal(replayed.vector, orig.vector)
    _run_equal(orig.run, replayed.run)
