"""Direct-API regression tests for the bugs pinned by the conformance
corpus (``tests/conformance/corpus/*.json``) plus the UNPACK / empty-PACK
edge-case contracts.

Each test cites its corpus entry; the corpus replay proves the minimized
case stays fixed, these tests state the user-facing contract in API terms.
"""

import numpy as np
import pytest

from repro.core.api import pack, unpack
from repro.core.unpack import unpack_program
from repro.hpf import GridLayout
from repro.machine import Machine, MachineSpec, ProgramError
from repro.serial.reference import pack_reference, unpack_reference

SPEC = MachineSpec(tau=10e-6, mu=1e-6, delta=0.1e-6, name="test")


class TestResultBlockGrouping:
    """Corpus: unpack-result-block-grouping / unpack-3d-mixed-dist-result-block.

    Block-cyclic input vector layouts revisit destination ranks; the
    request grouping must tolerate non-monotone destination sequences.
    """

    @pytest.mark.parametrize("scheme", ["sss", "css"])
    @pytest.mark.parametrize("result_block", [1, 2, 3])
    def test_cyclic_input_vector_layouts(self, scheme, result_block):
        rng = np.random.default_rng(7)
        mask = np.ones(16, dtype=bool)
        field = rng.random(16)
        vector = rng.random(16)
        result = unpack(
            vector, mask, field, grid=(4,), block=2, scheme=scheme,
            result_block=result_block, spec=SPEC, validate=False,
        )
        assert np.array_equal(result.array, unpack_reference(vector, mask, field))

    @pytest.mark.parametrize("result_block", [1, 2])
    def test_compressed_requests_with_revisited_destinations(self, result_block):
        # Corpus: unpack-result-block-compress — compressed (base, length)
        # request runs must split at destination-rank discontinuities.
        rng = np.random.default_rng(5)
        mask = rng.random(16) < 0.9
        field = rng.random(16)
        vector = rng.random(int(mask.sum()))
        result = unpack(
            vector, mask, field, grid=(4,), block=2, scheme="css",
            compress_requests=True, result_block=result_block,
            spec=SPEC, validate=False,
        )
        assert np.array_equal(result.array, unpack_reference(vector, mask, field))

    def test_3d_mixed_distributions(self):
        rng = np.random.default_rng(2)
        shape = (4, 4, 8)
        mask = np.ones(shape, dtype=bool)
        field = rng.random(shape)
        vector = rng.random(int(mask.sum()))
        result = unpack(
            vector, mask, field, grid=(2, 2, 2),
            block=["block", "cyclic", 2], scheme="sss", result_block=1,
            spec=SPEC, validate=False,
        )
        assert np.array_equal(result.array, unpack_reference(vector, mask, field))


class TestDtypePromotion:
    """Corpus: unpack-dtype-promotion — promotion is a global decision."""

    def test_float_vector_into_int_field(self):
        rng = np.random.default_rng(3)
        mask = rng.random(16) < 0.5
        field = rng.integers(-50, 50, 16).astype(np.int64)
        vector = rng.random(int(mask.sum()))
        result = unpack(vector, mask, field, grid=(4,), block=2,
                        spec=SPEC, validate=False)
        expected = unpack_reference(vector, mask, field)
        assert result.array.dtype == expected.dtype == np.float64
        assert np.array_equal(result.array, expected)

    def test_promotion_with_empty_vector_blocks(self):
        # The old bug: ranks whose vector block was empty skipped promotion
        # and disagreed with the others.  A sparse mask on many ranks
        # leaves most vector blocks empty.
        mask = np.zeros(16, dtype=bool)
        mask[0] = True
        field = np.arange(16, dtype=np.int64)
        result = unpack(np.array([0.5]), mask, field, grid=(4,), block=2,
                        spec=SPEC, validate=False)
        assert result.array.dtype == np.float64
        assert result.array[0] == 0.5
        assert np.array_equal(result.array[1:], field[1:].astype(np.float64))

    def test_serial_reference_promotes_identically(self):
        field = np.arange(4, dtype=np.int64)
        out = unpack_reference(np.array([1.5]), np.array([1, 0, 0, 0], bool),
                               field)
        assert out.dtype == np.float64 and out[0] == 1.5


class TestShortVectorContract:
    """len(V) < Size must raise a clear ValueError — never truncate."""

    def test_host_level_error(self):
        mask = np.ones(8, dtype=bool)
        field = np.zeros(8)
        with pytest.raises(ValueError, match="8"):
            unpack(np.zeros(5), mask, field, grid=(2,), spec=SPEC)

    def test_pack_vector_argument_too_short(self):
        mask = np.ones(8, dtype=bool)
        with pytest.raises(ValueError, match="VECTOR has 5"):
            pack(np.arange(8.0), mask, grid=(2,), vector=np.zeros(5), spec=SPEC)

    def test_non_rank1_vector_rejected(self):
        mask = np.ones(8, dtype=bool)
        with pytest.raises(ValueError, match="rank 1"):
            unpack(np.zeros((4, 2)), mask, np.zeros(8), grid=(2,), spec=SPEC)

    def test_every_rank_raises_in_spmd_program(self):
        # SPMD users calling unpack_program directly (bypassing the host
        # check) must get the ValueError on every rank, not a hang.
        mask = np.ones(8, dtype=bool)
        layout = GridLayout.create(mask.shape, (2,), "block")
        mask_blocks = layout.scatter(mask)
        field_blocks = layout.scatter(np.zeros(8))
        from repro.core.schemes import PackConfig, Scheme
        from repro.core.unpack import input_vector_layout

        config = PackConfig(scheme=Scheme.parse("css"))
        vec = input_vector_layout(5, 2, config)
        v = np.zeros(5)

        def prog(ctx, mb, fb, blk):
            result = yield from unpack_program(ctx, blk, mb, fb, layout, 5,
                                               config)
            return result

        with pytest.raises(ProgramError) as err:
            Machine(2, SPEC).run(
                prog,
                rank_args=[
                    (mask_blocks[r], field_blocks[r], v[vec.globals_(r)])
                    for r in range(2)
                ],
            )
        assert "cannot fill" in str(err.value)

    def test_surplus_vector_elements_ignored(self):
        # len(V) > Size stays legal F90: the surplus is ignored.
        rng = np.random.default_rng(0)
        mask = rng.random(16) < 0.5
        field = rng.random(16)
        vector = rng.random(int(mask.sum()) + 4)
        result = unpack(vector, mask, field, grid=(4,), block=2,
                        spec=SPEC, validate=False)
        assert np.array_equal(result.array, unpack_reference(vector, mask, field))


class TestEmptyAndZeroExtent:
    """Corpus: pack-zero-extent-pad / unpack-zero-extent-pad."""

    def test_pack_all_false_returns_empty_vector_everywhere(self):
        a = np.arange(16.0)
        mask = np.zeros(16, dtype=bool)
        result = pack(a, mask, grid=(4,), block=2, spec=SPEC, validate=False)
        assert result.size == 0
        assert result.vector.shape == (0,)
        assert result.vector.dtype == a.dtype

    def test_pack_zero_extent_with_pad(self):
        a = np.zeros((0,))
        mask = np.zeros((0,), dtype=bool)
        result = pack(a, mask, grid=(2,), pad=True, spec=SPEC, validate=False)
        assert result.size == 0 and result.vector.shape == (0,)

    def test_unpack_zero_extent_axis_with_pad(self):
        shape = (4, 0)
        mask = np.zeros(shape, dtype=bool)
        field = np.zeros(shape)
        result = unpack(np.zeros(0), mask, field, grid=(2, 2),
                        block=["block", "cyclic"], pad=True, spec=SPEC,
                        validate=False)
        assert result.array.shape == shape

    def test_pack_reference_empty_agrees(self):
        assert pack_reference(np.arange(4.0), np.zeros(4, bool)).shape == (0,)
