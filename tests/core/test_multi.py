"""Gang PACK: k arrays under one mask share one ranking."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.core.multi import pack_many
from repro.machine import MachineSpec
from repro.serial import pack_reference

SPEC = MachineSpec(tau=10e-6, mu=1e-6, delta=0.1e-6, name="test")


class TestGangCorrectness:
    @pytest.mark.parametrize("scheme", ["sss", "css", "cms"])
    def test_each_vector_matches_solo_pack(self, scheme):
        rng = np.random.default_rng(0)
        arrays = [rng.random(128) for _ in range(3)]
        m = rng.random(128) < 0.5
        vectors, _run = pack_many(arrays, m, grid=4, block=4, scheme=scheme,
                                  spec=SPEC)
        for a, v in zip(arrays, vectors):
            np.testing.assert_array_equal(v, pack_reference(a, m))

    def test_2d(self):
        rng = np.random.default_rng(1)
        arrays = [rng.random((16, 16)) for _ in range(2)]
        m = rng.random((16, 16)) < 0.3
        vectors, _ = pack_many(arrays, m, grid=(2, 2), block=(2, 2), spec=SPEC)
        for a, v in zip(arrays, vectors):
            np.testing.assert_array_equal(v, pack_reference(a, m))

    def test_mixed_dtypes(self):
        rng = np.random.default_rng(2)
        arrays = [rng.random(64), (rng.random(64) * 100).astype(np.int64)]
        m = rng.random(64) < 0.5
        vectors, _ = pack_many(arrays, m, grid=4, block=2, spec=SPEC)
        assert vectors[0].dtype == np.float64
        assert vectors[1].dtype == np.int64

    def test_empty_gang_rejected(self):
        with pytest.raises(ValueError):
            pack_many([], np.ones(8, bool), grid=2, block=2, spec=SPEC)

    def test_single_array_gang(self):
        rng = np.random.default_rng(3)
        a = rng.random(64)
        m = rng.random(64) < 0.7
        vectors, _ = pack_many([a], m, grid=4, block=2, spec=SPEC)
        np.testing.assert_array_equal(vectors[0], pack_reference(a, m))


class TestAmortization:
    def test_gang_cheaper_than_solo_packs(self):
        """k gang-packed arrays must cost well under k solo packs — the
        ranking, PRS, send-vector and rescan stages are shared."""
        rng = np.random.default_rng(4)
        k = 4
        arrays = [rng.random(2048) for _ in range(k)]
        m = rng.random(2048) < 0.5

        _vectors, gang_run = pack_many(arrays, m, grid=16, block=4,
                                       scheme="css", spec=SPEC)
        solo_total = sum(
            repro.pack(a, m, grid=16, block=4, scheme="css", spec=SPEC).run.elapsed
            for a in arrays
        )
        assert gang_run.elapsed < 0.75 * solo_total

    def test_ranking_charged_once(self):
        rng = np.random.default_rng(5)
        arrays = [rng.random(512) for _ in range(3)]
        m = rng.random(512) < 0.5
        _v, run = pack_many(arrays, m, grid=4, block=4, scheme="css", spec=SPEC)
        names = set(run.phase_names())
        # One ranking phase set; three per-array comm/compose phases.
        assert "gang.ranking.initial" in names
        assert {f"gang.comm.{k}" for k in range(3)} <= names
        assert "gang.ranking.initial.1" not in names


@settings(max_examples=15, deadline=None)
@given(
    k=st.integers(1, 4),
    density=st.floats(0, 1),
    w=st.integers(1, 4),
    seed=st.integers(0, 99),
)
def test_property_gang_matches_solo(k, density, w, seed):
    rng = np.random.default_rng(seed)
    n = 4 * w * 4
    arrays = [rng.random(n) for _ in range(k)]
    m = rng.random(n) < density
    vectors, _ = pack_many(arrays, m, grid=4, block=w, spec=SPEC)
    for a, v in zip(arrays, vectors):
        np.testing.assert_array_equal(v, pack_reference(a, m))
