"""PACK correctness and behaviour across schemes / distributions / masks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import pack
from repro.machine import MachineSpec
from repro.serial import pack_reference

SPEC = MachineSpec(tau=10e-6, mu=1e-6, delta=0.1e-6, name="test")
SCHEMES = ["sss", "css", "cms"]


def do_pack(array, mask, grid, block, scheme, **kw):
    # validate=True re-checks against the serial oracle internally.
    return pack(array, mask, grid=grid, block=block, scheme=scheme, spec=SPEC, **kw)


class TestSchemesAgree:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("block", [1, 2, 4, 16])
    def test_1d(self, scheme, block):
        rng = np.random.default_rng(0)
        a = rng.random(64)
        m = rng.random(64) < 0.5
        res = do_pack(a, m, grid=4, block=block, scheme=scheme)
        np.testing.assert_array_equal(res.vector, pack_reference(a, m))

    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("block", [(1, 1), (2, 2), (4, 8)])
    def test_2d(self, scheme, block):
        rng = np.random.default_rng(1)
        a = rng.random((16, 16))
        m = rng.random((16, 16)) < 0.3
        res = do_pack(a, m, grid=(2, 2), block=block, scheme=scheme)
        np.testing.assert_array_equal(res.vector, pack_reference(a, m))

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_3d(self, scheme):
        rng = np.random.default_rng(2)
        a = rng.random((4, 8, 8))
        m = rng.random((4, 8, 8)) < 0.5
        res = do_pack(a, m, grid=(2, 2, 2), block="cyclic", scheme=scheme)
        assert res.size == int(m.sum())


class TestMaskEdgeCases:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_empty_mask(self, scheme):
        a = np.arange(32.0)
        m = np.zeros(32, dtype=bool)
        res = do_pack(a, m, grid=4, block=2, scheme=scheme)
        assert res.size == 0
        assert res.vector.size == 0

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_full_mask(self, scheme):
        a = np.arange(32.0)
        m = np.ones(32, dtype=bool)
        res = do_pack(a, m, grid=4, block=2, scheme=scheme)
        np.testing.assert_array_equal(res.vector, a)

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_single_true(self, scheme):
        a = np.arange(32.0)
        m = np.zeros(32, dtype=bool)
        m[17] = True
        res = do_pack(a, m, grid=4, block=2, scheme=scheme)
        np.testing.assert_array_equal(res.vector, [17.0])

    def test_paper_half_mask_1d(self):
        # The paper's structured 1-D mask: true iff global index < N/2.
        n = 128
        a = np.arange(float(n))
        m = np.arange(n) < n // 2
        for scheme in SCHEMES:
            res = do_pack(a, m, grid=4, block=2, scheme=scheme)
            np.testing.assert_array_equal(res.vector, a[: n // 2])

    def test_paper_lt_mask_2d(self):
        n = 16
        i1, i0 = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
        m = i1 > i0
        a = np.arange(float(n * n)).reshape(n, n)
        for scheme in SCHEMES:
            res = do_pack(a, m, grid=(2, 2), block=(2, 2), scheme=scheme)
            np.testing.assert_array_equal(res.vector, pack_reference(a, m))


class TestDtypes:
    @pytest.mark.parametrize("dtype", [np.float64, np.float32, np.int64, np.int32])
    def test_dtype_preserved(self, dtype):
        rng = np.random.default_rng(3)
        a = (rng.random(32) * 100).astype(dtype)
        m = rng.random(32) < 0.5
        res = do_pack(a, m, grid=4, block=2, scheme="cms")
        assert res.vector.dtype == dtype


class TestMessageVolumes:
    def test_cms_sends_fewer_words_at_large_blocks(self):
        # With large blocks and a dense mask, segments are long, so CMS
        # (E + 2 Gs words) beats pairs (2 E words) — Section 6.2.  (At the
        # full BLOCK distribution the comparison is vacuous: nearly all
        # data is self-addressed and costs no words at all — the paper's
        # own caveat about block distribution.)
        rng = np.random.default_rng(4)
        a = rng.random(1024)
        m = rng.random(1024) < 0.9
        res_css = do_pack(a, m, grid=4, block=64, scheme="css")
        res_cms = do_pack(a, m, grid=4, block=64, scheme="cms")
        assert res_cms.total_words < res_css.total_words

    def test_block_distribution_mostly_self_addressed(self):
        # Paper, Section 7: "when an input array is distributed in block,
        # each processor will send most parts of the message to itself."
        rng = np.random.default_rng(40)
        a = rng.random(1024)
        m = rng.random(1024) < 0.9
        res_blk = do_pack(a, m, grid=4, block=256, scheme="css")
        res_cyc = do_pack(a, m, grid=4, block=1, scheme="css")
        assert res_blk.total_words < res_cyc.total_words / 2

    def test_cms_degrades_at_cyclic_distribution(self):
        # W=1: every slice holds at most one element, so every segment is a
        # singleton and CMS pays 3 words/element vs 2 for pairs.
        rng = np.random.default_rng(5)
        a = rng.random(256)
        m = rng.random(256) < 0.9
        res_css = do_pack(a, m, grid=4, block=1, scheme="css")
        res_cms = do_pack(a, m, grid=4, block=1, scheme="cms")
        assert res_cms.total_words > res_css.total_words

    def test_sss_and_css_same_words(self):
        # Both use pair encoding; only the local-computation cost differs.
        rng = np.random.default_rng(6)
        a = rng.random(256)
        m = rng.random(256) < 0.5
        res_sss = do_pack(a, m, grid=4, block=8, scheme="sss")
        res_css = do_pack(a, m, grid=4, block=8, scheme="css")
        assert res_sss.total_words == res_css.total_words


class TestSimulatedTimes:
    def test_cyclic_costs_more_local_time_than_block(self):
        rng = np.random.default_rng(7)
        a = rng.random(1024)
        m = rng.random(1024) < 0.5
        res_cyc = do_pack(a, m, grid=4, block=1, scheme="css")
        res_blk = do_pack(a, m, grid=4, block=256, scheme="css")
        assert res_cyc.local_ms > res_blk.local_ms

    def test_times_positive_and_decomposed(self):
        rng = np.random.default_rng(8)
        a = rng.random(256)
        m = rng.random(256) < 0.5
        res = do_pack(a, m, grid=4, block=8, scheme="cms")
        assert res.total_ms > 0
        assert res.local_ms > 0
        assert res.prs_ms >= 0
        assert res.m2m_ms > 0
        # Components are parts of (not exceeding) the total.
        assert res.local_ms <= res.total_ms + 1e-9
        assert "pack.ranking.initial" in res.times

    def test_deterministic(self):
        rng = np.random.default_rng(9)
        a = rng.random(256)
        m = rng.random(256) < 0.5
        r1 = do_pack(a, m, grid=4, block=8, scheme="cms")
        r2 = do_pack(a, m, grid=4, block=8, scheme="cms")
        assert r1.total_ms == r2.total_ms
        assert r1.times == r2.times


class TestResultVectorDistribution:
    def test_custom_result_block(self):
        # Section 6.2: the result vector need not be BLOCK; smaller blocks
        # increase the segment count.
        rng = np.random.default_rng(10)
        a = rng.random(256)
        m = rng.random(256) < 0.7
        res = do_pack(a, m, grid=4, block=16, scheme="cms", result_block=4)
        np.testing.assert_array_equal(res.vector, pack_reference(a, m))

    def test_smaller_result_blocks_mean_more_segments(self):
        rng = np.random.default_rng(11)
        a = rng.random(256)
        m = rng.random(256) < 0.9
        res_blk = do_pack(a, m, grid=4, block=16, scheme="cms")
        res_cyc4 = do_pack(a, m, grid=4, block=16, scheme="cms", result_block=4)
        assert res_cyc4.total_words > res_blk.total_words


class TestScanMethods:
    def test_early_exit_never_slower(self):
        rng = np.random.default_rng(12)
        a = rng.random(512)
        m = rng.random(512) < 0.3
        res_early = do_pack(a, m, grid=4, block=32, scheme="css", early_exit_scan=True)
        res_full = do_pack(a, m, grid=4, block=32, scheme="css", early_exit_scan=False)
        assert res_early.local_ms <= res_full.local_ms
        np.testing.assert_array_equal(res_early.vector, res_full.vector)


class TestValidationAndErrors:
    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            do_pack(np.zeros(8), np.zeros(8, bool), grid=2, block=2, scheme="xyz")

    def test_shape_grid_mismatch(self):
        with pytest.raises(ValueError):
            do_pack(np.zeros((8, 8)), np.zeros((8, 8), bool), grid=4, block=2, scheme="cms")

    def test_m2m_schedules_agree(self):
        rng = np.random.default_rng(13)
        a = rng.random(128)
        m = rng.random(128) < 0.5
        r1 = do_pack(a, m, grid=4, block=4, scheme="cms", m2m_schedule="linear")
        r2 = do_pack(a, m, grid=4, block=4, scheme="cms", m2m_schedule="naive")
        np.testing.assert_array_equal(r1.vector, r2.vector)


@settings(max_examples=30, deadline=None)
@given(
    p=st.integers(1, 4),
    w=st.integers(1, 4),
    t=st.integers(1, 4),
    density=st.floats(0, 1),
    scheme=st.sampled_from(SCHEMES),
    seed=st.integers(0, 999),
)
def test_property_1d_pack_matches_oracle(p, w, t, density, scheme, seed):
    n = p * w * t * 2
    rng = np.random.default_rng(seed)
    a = rng.random(n)
    m = rng.random(n) < density
    res = do_pack(a, m, grid=(p,), block=w, scheme=scheme)
    np.testing.assert_array_equal(res.vector, pack_reference(a, m))


@settings(max_examples=20, deadline=None)
@given(
    p1=st.integers(1, 2),
    p0=st.integers(1, 3),
    w1=st.integers(1, 3),
    w0=st.integers(1, 3),
    density=st.floats(0, 1),
    scheme=st.sampled_from(SCHEMES),
    seed=st.integers(0, 999),
)
def test_property_2d_pack_matches_oracle(p1, p0, w1, w0, density, scheme, seed):
    shape = (p1 * w1 * 2, p0 * w0 * 2)
    rng = np.random.default_rng(seed)
    a = rng.random(shape)
    m = rng.random(shape) < density
    res = do_pack(a, m, grid=(p1, p0), block=(w1, w0), scheme=scheme)
    np.testing.assert_array_equal(res.vector, pack_reference(a, m))
