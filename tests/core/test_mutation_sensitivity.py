"""Mutation sensitivity: the oracle checks must catch broken substeps.

A reproduction's test suite is only as good as its ability to notice a
wrong algorithm.  These tests *break* individual steps of the ranking
pipeline (the subtle ones a porter is most likely to get wrong) and
assert the oracle validation fails loudly — guarding against the suite
silently weakening under refactors.
"""

import numpy as np
import pytest

import sys

import repro
from repro.core.ranking import ranking_program as original_ranking_program
from repro.machine import MachineSpec

# `repro.core.pack` the *module* is shadowed by the `pack` function on the
# package, so fetch module objects for monkeypatching via sys.modules.
PACK_MOD = sys.modules["repro.core.pack"]

SPEC = MachineSpec(tau=10e-6, mu=1e-6, delta=0.1e-6, name="test")

RNG = np.random.default_rng(0)
A = RNG.random(256)
M = RNG.random(256) < 0.5
A2 = RNG.random((16, 16))
M2 = RNG.random((16, 16)) < 0.5


def expect_detection(**kw):
    # Detection may surface as the oracle-mismatch AssertionError or as an
    # internal invariant tripping mid-run (wrapped in ProgramError); what
    # must never happen is a silent return.
    with pytest.raises(Exception):
        repro.pack(A, M, grid=4, block=4, spec=SPEC, **kw)


class TestRankingMutations:
    def test_inclusive_instead_of_exclusive_in_slice(self, monkeypatch):
        """Using inclusive in-slice ranks (off-by-one a porter could make)
        must be caught by validation."""
        def broken(ctx, local_mask, grid, **kw):
            result = yield from original_ranking_program(ctx, local_mask, grid, **kw)
            result.initial = result.initial + np.asarray(local_mask, dtype=np.int64).reshape(
                result.initial.shape
            )
            return result

        monkeypatch.setattr(PACK_MOD, "ranking_program", broken)
        expect_detection()

    def test_dropped_final_collapse(self, monkeypatch):
        """Skipping the PS_i += PS_{i+1} collapse (only visible for d >= 2)
        must be caught."""
        def broken(ctx, local_mask, grid, **kw):
            result = yield from original_ranking_program(ctx, local_mask, grid, **kw)
            if grid.d >= 2:
                # Undo the dimension-1 contribution crudely.
                result.ps_f = result.ps_f - result.ps_f.min()
            return result

        monkeypatch.setattr(PACK_MOD, "ranking_program", broken)
        with pytest.raises(Exception):
            repro.pack(A2, M2, grid=(2, 2), block=(2, 2), spec=SPEC)

    def test_wrong_size_detected(self, monkeypatch):
        def broken(ctx, local_mask, grid, **kw):
            result = yield from original_ranking_program(ctx, local_mask, grid, **kw)
            result.size += 1
            return result

        monkeypatch.setattr(PACK_MOD, "ranking_program", broken)
        with pytest.raises(Exception):
            repro.pack(A, M, grid=4, block=4, spec=SPEC)


class TestMessageMutations:
    def test_segment_base_off_by_one(self, monkeypatch):
        from repro.core import messages as messages_mod

        original = messages_mod.compose_segment_messages

        def broken(sel):
            out = original(sel)
            return {
                d: type(m)(bases=m.bases + 1, counts=m.counts, values=m.values)
                for d, m in out.items()
            }

        monkeypatch.setattr(PACK_MOD, "compose_segment_messages", broken)
        # Shifted bases scatter into wrong result slots -> oracle mismatch
        # (or an out-of-range placement error).
        with pytest.raises(Exception):
            repro.pack(A, M, grid=4, block=4, scheme="cms", spec=SPEC)

    def test_pair_rank_corruption(self, monkeypatch):
        from repro.core import messages as messages_mod

        original = messages_mod.compose_pair_messages

        def broken(sel):
            out = original(sel)
            corrupted = {}
            for d, m in out.items():
                ranks = m.ranks.copy()
                if ranks.size >= 2:
                    ranks[0], ranks[1] = ranks[1], ranks[0]
                corrupted[d] = type(m)(ranks=ranks, values=m.values)
            return corrupted

        monkeypatch.setattr(PACK_MOD, "compose_pair_messages", broken)
        with pytest.raises(Exception):
            repro.pack(A, M, grid=4, block=4, scheme="css", spec=SPEC)


class TestLayoutMutations:
    def test_wrong_owner_map_detected(self, monkeypatch):
        """A wrong owner function misroutes the scatter; gather/validate
        must notice."""
        from repro.hpf.dimlayout import DimLayout

        original = DimLayout.globals_

        def broken(self, p, l=None):
            out = original(self, p, l)
            return out[::-1].copy() if out.size > 1 else out

        monkeypatch.setattr(DimLayout, "globals_", broken)
        with pytest.raises(Exception):
            repro.pack(A, M, grid=4, block=4, spec=SPEC)
