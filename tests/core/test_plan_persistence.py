"""PlanCache.save / load: plans compiled in one process serve the next.

The serve subsystem's ``--plan-cache-file`` rides on this: a server (or
`repro plan`) persists its cache on drain and the next start loads it,
so the first request of a steady workload replays instead of compiling.
The bar is the same bit-identity the in-memory cache guarantees.
"""

import numpy as np
import pytest

from repro.core.api import pack, ranking, unpack
from repro.core.plan_cache import PlanCache
from repro.serial.reference import pack_reference

N = 512
P = 4


def _workload(seed=0, density=0.5):
    rng = np.random.default_rng(seed)
    return rng.random(N), rng.random(N) < density


def _run_equal(a, b):
    assert a.elapsed == b.elapsed
    assert a.phase_breakdown() == b.phase_breakdown()
    assert a.total_words == b.total_words


def _fill(cache):
    """Compile one plan of every op kind into ``cache``."""
    array, mask = _workload()
    vector = np.arange(int(mask.sum()), dtype=np.float64)
    pack(array, mask, P, scheme="cms", validate=False, plan_cache=cache)
    unpack(vector, mask, array, P, scheme="css", validate=False,
           plan_cache=cache)
    ranking(mask, P, scheme="css", validate=False, plan_cache=cache)
    pack(array, mask, P, redistribute="selected", validate=False,
         plan_cache=cache)
    pack(array, mask, P, redistribute="whole", validate=False,
         plan_cache=cache)
    return array, mask, vector


def test_save_load_roundtrip_all_plan_kinds(tmp_path):
    cache = PlanCache()
    _fill(cache)
    path = tmp_path / "plans.json"
    assert cache.save(path) == 5

    loaded = PlanCache.load(path)
    assert len(loaded) == 5
    assert set(loaded.keys()) == set(cache.keys())
    for key in cache.keys():
        assert loaded.peek(key).nbytes == cache.peek(key).nbytes


def test_loaded_plans_replay_bit_identical(tmp_path):
    cache = PlanCache()
    array, mask, _ = _fill(cache)
    path = tmp_path / "plans.json"
    cache.save(path)

    fresh = PlanCache.load(path)
    baseline = pack(array, mask, P, scheme="cms", validate=False,
                    plan_cache=cache)
    revived = pack(array, mask, P, scheme="cms", validate=False,
                   plan_cache=fresh)
    assert baseline.plan_info["cache"] == "hit"
    assert revived.plan_info["cache"] == "hit"
    np.testing.assert_array_equal(revived.vector, pack_reference(array, mask))
    _run_equal(baseline.run, revived.run)


def test_save_preserves_lru_order(tmp_path):
    """Loading more plans than capacity must keep the most-recent tail."""
    cache = PlanCache()
    array, _ = _workload()
    masks = [np.arange(N) % k == 0 for k in (2, 3, 5)]
    for m in masks:
        pack(array, m, P, validate=False, plan_cache=cache)
    path = tmp_path / "plans.json"
    cache.save(path)

    small = PlanCache(capacity=2)
    small.load_into(path)
    kept = set(small.keys())
    full = cache.keys()  # LRU order, oldest first
    assert kept == set(full[-2:])


def test_load_rejects_unknown_schema(tmp_path):
    path = tmp_path / "plans.json"
    path.write_text('{"schema": 99, "plans": []}')
    with pytest.raises(ValueError, match="unsupported schema"):
        PlanCache.load(path)


def test_save_is_atomic_overwrite(tmp_path):
    """A second save replaces the file; no temp debris is left behind."""
    cache = PlanCache()
    array, mask = _workload()
    pack(array, mask, P, validate=False, plan_cache=cache)
    path = tmp_path / "plans.json"
    cache.save(path)
    cache.save(path)
    assert PlanCache.load(path).keys() == cache.keys()
    assert [p.name for p in tmp_path.iterdir()] == ["plans.json"]
