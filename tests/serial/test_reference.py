"""The serial oracle itself must be trustworthy: test it independently."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serial import mask_ranks, pack_reference, pack_size, unpack_reference


class TestPackReference:
    def test_1d_basic(self):
        a = np.array([10, 20, 30, 40])
        m = np.array([True, False, True, True])
        np.testing.assert_array_equal(pack_reference(a, m), [10, 30, 40])

    def test_row_major_order_2d(self):
        a = np.array([[1, 2], [3, 4]])
        m = np.array([[False, True], [True, True]])
        # Row-major: (0,1), (1,0), (1,1).
        np.testing.assert_array_equal(pack_reference(a, m), [2, 3, 4])

    def test_empty_and_full(self):
        a = np.arange(6).reshape(2, 3)
        assert pack_reference(a, np.zeros((2, 3), bool)).size == 0
        np.testing.assert_array_equal(
            pack_reference(a, np.ones((2, 3), bool)), np.arange(6)
        )

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pack_reference(np.zeros(3), np.zeros(4, dtype=bool))

    def test_result_is_a_copy(self):
        a = np.arange(4.0)
        v = pack_reference(a, np.ones(4, bool))
        v[0] = 99
        assert a[0] == 0


class TestUnpackReference:
    def test_basic(self):
        m = np.array([True, False, True])
        out = unpack_reference(np.array([7, 8]), m, np.zeros(3, dtype=int))
        np.testing.assert_array_equal(out, [7, 0, 8])

    def test_surplus_ignored(self):
        m = np.array([True, False])
        out = unpack_reference(np.array([1, 2, 3]), m, np.zeros(2, dtype=int))
        np.testing.assert_array_equal(out, [1, 0])

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            unpack_reference(np.array([1]), np.ones(3, bool), np.zeros(3))

    def test_nonvector_rejected(self):
        with pytest.raises(ValueError):
            unpack_reference(np.ones((2, 2)), np.ones((2, 2), bool), np.zeros((2, 2)))

    def test_field_not_mutated(self):
        f = np.zeros(3)
        unpack_reference(np.array([5.0]), np.array([True, False, False]), f)
        assert f[0] == 0


class TestMaskRanks:
    def test_basic(self):
        m = np.array([True, False, True, True])
        np.testing.assert_array_equal(mask_ranks(m), [0, -1, 1, 2])

    def test_2d_row_major(self):
        m = np.array([[False, True], [True, False]])
        np.testing.assert_array_equal(mask_ranks(m), [[-1, 0], [1, -1]])

    def test_pack_size(self):
        assert pack_size(np.array([True, True, False])) == 2


@settings(max_examples=100, deadline=None)
@given(
    n=st.integers(1, 40),
    density=st.floats(0, 1),
    seed=st.integers(0, 999),
)
def test_property_pack_unpack_inverse(n, density, seed):
    """UNPACK(PACK(a, m), m, a) == a for any array and mask."""
    rng = np.random.default_rng(seed)
    a = rng.random(n)
    m = rng.random(n) < density
    v = pack_reference(a, m)
    assert v.size == pack_size(m)
    restored = unpack_reference(v, m, a)
    np.testing.assert_array_equal(restored, a)


@settings(max_examples=100, deadline=None)
@given(n=st.integers(1, 40), density=st.floats(0, 1), seed=st.integers(0, 999))
def test_property_ranks_enumerate_trues(n, density, seed):
    rng = np.random.default_rng(seed)
    m = rng.random(n) < density
    r = mask_ranks(m)
    trues = np.sort(r[m])
    np.testing.assert_array_equal(trues, np.arange(m.sum()))
    assert np.all(r[~m] == -1)
