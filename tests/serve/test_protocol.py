"""Wire protocol: parse/encode round-trips and input rejection."""

import json

import numpy as np
import pytest

from repro.serve.protocol import (
    ProtocolError,
    decode_array,
    encode_array,
    encode_response,
    error_body,
    parse_request,
)

MASK = np.arange(16) % 3 == 0
ARRAY = np.arange(16, dtype=np.float64)


def _payload(**over):
    doc = {
        "id": "r1",
        "op": "pack",
        "grid": [2],
        "scheme": "cms",
        "mask": encode_array(MASK),
        "array": encode_array(ARRAY),
    }
    doc.update(over)
    return doc


class TestArrays:
    @pytest.mark.parametrize("a", [
        np.arange(12, dtype=np.float64).reshape(3, 4),
        np.array([], dtype=np.int32),
        (np.arange(8) % 2 == 0),
    ])
    def test_roundtrip(self, a):
        back = decode_array(encode_array(a))
        assert back.dtype == a.dtype
        assert back.shape == a.shape
        np.testing.assert_array_equal(back, a)

    def test_bad_blob_rejected(self):
        with pytest.raises(ProtocolError):
            decode_array({"dtype": "float64", "shape": [2]})
        with pytest.raises(ProtocolError):
            decode_array({"dtype": "float64", "shape": [2], "data": "!!!"})
        with pytest.raises(ProtocolError):
            decode_array("not a blob")


class TestParse:
    def test_valid_pack(self):
        req = parse_request(json.dumps(_payload()))
        assert (req.id, req.op, req.grid, req.scheme) == \
            ("r1", "pack", (2,), "cms")
        np.testing.assert_array_equal(req.mask, MASK)
        np.testing.assert_array_equal(req.array, ARRAY)
        assert req.redistribute is None
        assert req.validate is False
        assert req.fingerprint

    def test_valid_unpack_and_ranking(self):
        k = int(MASK.sum())
        un = parse_request(json.dumps({
            "id": "u", "op": "unpack", "grid": [2], "scheme": "css",
            "mask": encode_array(MASK),
            "vector": encode_array(np.arange(k, dtype=float)),
            "field": encode_array(np.zeros(16)),
        }))
        assert un.vector.size == k
        rk = parse_request(json.dumps({
            "id": "k", "op": "ranking", "grid": [2],
            "mask": encode_array(MASK),
        }))
        assert rk.scheme == "css"  # non-pack default

    @pytest.mark.parametrize("line,why", [
        (b"{nope", "not valid JSON"),
        (b"[1,2]", "JSON object"),
        (json.dumps(_payload(id="")), "string 'id'"),
        (json.dumps({k: v for k, v in _payload().items() if k != "id"}),
         "string 'id'"),
        (json.dumps(_payload(op="compress")), "op must be one of"),
        (json.dumps(_payload(grid=[])), "grid"),
        (json.dumps(_payload(grid=[0])), "grid"),
        (json.dumps({k: v for k, v in _payload().items() if k != "mask"}),
         "mask"),
        (json.dumps({k: v for k, v in _payload().items() if k != "array"}),
         "'array' payload"),
        (json.dumps(_payload(scheme="xyz")), "scheme"),
        (json.dumps(_payload(options={"redistribute": "bogus"})),
         "redistribute"),
        (json.dumps(_payload(op="ranking", scheme="cms")), "sss/css"),
    ])
    def test_rejects(self, line, why):
        with pytest.raises(ProtocolError, match=why):
            parse_request(line)

    def test_shape_mismatch_rejected_before_decode(self):
        bad = _payload(array=encode_array(np.zeros(8)))
        with pytest.raises(ProtocolError, match="shape"):
            parse_request(json.dumps(bad))

    def test_redistribute_only_on_pack(self):
        k = int(MASK.sum())
        doc = {
            "id": "u", "op": "unpack", "grid": [2], "scheme": "css",
            "mask": encode_array(MASK),
            "vector": encode_array(np.arange(k, dtype=float)),
            "field": encode_array(np.zeros(16)),
            "options": {"redistribute": "selected"},
        }
        with pytest.raises(ProtocolError, match="'pack' only"):
            parse_request(json.dumps(doc))


class TestBatchKey:
    def test_same_geometry_same_key(self):
        a = parse_request(json.dumps(_payload(id="a")))
        b = parse_request(json.dumps(_payload(
            id="b", array=encode_array(-ARRAY))))
        assert a.batch_key() == b.batch_key() is not None

    def test_key_separates_mask_scheme_grid_validate(self):
        base = parse_request(json.dumps(_payload()))
        other_mask = parse_request(json.dumps(_payload(
            mask=encode_array(~MASK), array=encode_array(ARRAY))))
        other_scheme = parse_request(json.dumps(_payload(scheme="sss")))
        other_grid = parse_request(json.dumps(_payload(grid=[4])))
        validated = parse_request(json.dumps(_payload(
            options={"validate": True})))
        keys = {r.batch_key() for r in
                (base, other_mask, other_scheme, other_grid, validated)}
        assert len(keys) == 5

    def test_solo_only_requests_have_no_key(self):
        k = int(MASK.sum())
        un = parse_request(json.dumps({
            "id": "u", "op": "unpack", "grid": [2], "scheme": "css",
            "mask": encode_array(MASK),
            "vector": encode_array(np.arange(k, dtype=float)),
            "field": encode_array(np.zeros(16)),
        }))
        red = parse_request(json.dumps(_payload(
            options={"redistribute": "selected"})))
        padded = parse_request(json.dumps(_payload(
            vector=encode_array(np.zeros(10)))))
        assert un.batch_key() is None
        assert red.batch_key() is None
        assert padded.batch_key() is None

    def test_ranking_coalescible(self):
        a = parse_request(json.dumps(
            _payload(id="a", op="ranking", scheme="css", array=None)))
        b = parse_request(json.dumps(
            _payload(id="b", op="ranking", scheme="css", array=None)))
        assert a.batch_key() == b.batch_key() is not None


def test_encode_response_and_error_body():
    line = encode_response({"id": "x", "ok": True})
    assert line.endswith(b"\n")
    assert json.loads(line) == {"id": "x", "ok": True}
    body = error_body("x", "overloaded", "busy")
    assert body["ok"] is False
    assert body["error"]["code"] == "overloaded"
