"""Batcher: window coalescing, compatibility keying, size caps, errors.

The engine is faked with a recorder so these tests pin the *grouping*
decisions — which requests ran together — without running the simulator.
All tests drive the event loop with ``asyncio.run`` (no pytest-asyncio
in this environment).
"""

import asyncio
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.serve.batcher import Batcher, PendingRequest
from repro.serve.protocol import Request

MASK_A = np.arange(16) % 2 == 0
MASK_B = np.arange(16) % 3 == 0


def _req(rid, op="pack", fingerprint="fa", mask=MASK_A, **over):
    kw = dict(
        id=rid, op=op, grid=(2,), block=None, scheme="cms",
        mask=mask, array=np.arange(16, dtype=float),
        fingerprint=fingerprint,
    )
    kw.update(over)
    return Request(**kw)


class _Recorder:
    """Stand-in engine: records each group's ids, returns ok bodies."""

    def __init__(self, fail=False):
        self.groups = []
        self.fail = fail

    def __call__(self, reqs):
        self.groups.append([r.id for r in reqs])
        if self.fail:
            raise RuntimeError("engine exploded")
        return [{"id": r.id, "ok": True} for r in reqs]


def _drive(submits, *, max_delay=0.01, max_batch=8, fail=False):
    """Submit PendingRequests, drain, return (recorder, resolved bodies)."""
    rec = _Recorder(fail=fail)

    async def main():
        with ThreadPoolExecutor(max_workers=2) as pool:
            b = Batcher(rec, pool, asyncio.Semaphore(2),
                        max_delay=max_delay, max_batch=max_batch)
            preqs = []
            for req in submits:
                p = PendingRequest(
                    req=req, future=asyncio.get_running_loop().create_future()
                )
                b.submit(p)
                preqs.append(p)
            await b.drain()
            return [p.future.result() for p in preqs], preqs

    bodies, preqs = asyncio.run(main())
    return rec, bodies, preqs


def test_compatible_requests_coalesce_into_one_group():
    rec, bodies, preqs = _drive([_req("a"), _req("b"), _req("c")])
    assert rec.groups == [["a", "b", "c"]]
    assert all(b["ok"] for b in bodies)
    assert all(p.batch_size == 3 and p.coalesced for p in preqs)


def test_incompatible_keys_form_separate_groups():
    rec, _, _ = _drive([
        _req("a"), _req("b", fingerprint="fb", mask=MASK_B), _req("c"),
    ])
    assert sorted(map(sorted, rec.groups)) == [["a", "c"], ["b"]]


def test_max_batch_flushes_immediately():
    # A long window that would stall the test if the size cap didn't fire.
    rec, _, preqs = _drive(
        [_req(f"r{i}") for i in range(5)], max_delay=30.0, max_batch=4
    )
    # Group of 4 flushed at the cap; the drain flushed the leftover.
    assert sorted(map(len, rec.groups)) == [1, 4]
    assert {p.batch_size for p in preqs} == {1, 4}


def test_solo_key_dispatches_without_waiting():
    k = int(MASK_A.sum())
    un = _req("u", op="unpack", array=None,
              vector=np.arange(k, dtype=float),
              field_array=np.zeros(16))
    assert un.batch_key() is None
    rec, _, preqs = _drive([un, _req("p")], max_delay=0.005)
    assert sorted(map(sorted, rec.groups)) == [["p"], ["u"]]
    assert not preqs[0].coalesced


def test_max_batch_one_disables_coalescing():
    rec, _, _ = _drive([_req("a"), _req("b")], max_batch=1)
    assert sorted(map(sorted, rec.groups)) == [["a"], ["b"]]


def test_window_expiry_flushes_partial_group():
    rec = _Recorder()

    async def main():
        with ThreadPoolExecutor(max_workers=1) as pool:
            b = Batcher(rec, pool, asyncio.Semaphore(1),
                        max_delay=0.02, max_batch=8)
            p = PendingRequest(
                req=_req("only"),
                future=asyncio.get_running_loop().create_future(),
            )
            b.submit(p)
            # Wait out the window without calling drain: the timer alone
            # must flush the group.
            body = await asyncio.wait_for(p.future, timeout=5.0)
            return body

    body = asyncio.run(main())
    assert body["ok"]
    assert rec.groups == [["only"]]


def test_engine_exception_resolves_every_future_with_internal_error():
    class _Boom:
        def __call__(self, reqs):
            raise RuntimeError("kaput")

    async def main():
        pool = ThreadPoolExecutor(max_workers=1)
        # Simulate executor-level failure: shut the pool so run_in_executor
        # itself raises.
        pool.shutdown(wait=True)
        b = Batcher(_Boom(), pool, asyncio.Semaphore(1),
                    max_delay=0.001, max_batch=4)
        ps = [
            PendingRequest(
                req=_req(f"r{i}"),
                future=asyncio.get_running_loop().create_future(),
            )
            for i in range(2)
        ]
        for p in ps:
            b.submit(p)
        await b.drain()
        return [p.future.result() for p in ps]

    bodies = asyncio.run(main())
    for body in bodies:
        assert body["ok"] is False
        assert body["error"]["code"] == "internal"


def test_semaphore_bounds_concurrent_batches():
    inflight = {"now": 0, "peak": 0}
    import threading

    lock = threading.Lock()

    def slow_engine(reqs):
        with lock:
            inflight["now"] += 1
            inflight["peak"] = max(inflight["peak"], inflight["now"])
        import time

        time.sleep(0.02)
        with lock:
            inflight["now"] -= 1
        return [{"id": r.id, "ok": True} for r in reqs]

    async def main():
        with ThreadPoolExecutor(max_workers=4) as pool:
            b = Batcher(slow_engine, pool, asyncio.Semaphore(1),
                        max_delay=0.0, max_batch=1)
            ps = []
            for i in range(4):
                p = PendingRequest(
                    req=_req(f"r{i}"),
                    future=asyncio.get_running_loop().create_future(),
                )
                b.submit(p)
                ps.append(p)
            await b.drain()
            assert all(p.future.result()["ok"] for p in ps)

    asyncio.run(main())
    assert inflight["peak"] == 1


def test_validation():
    with pytest.raises(ValueError):
        Batcher(lambda r: [], None, None, max_batch=0)
    with pytest.raises(ValueError):
        Batcher(lambda r: [], None, None, max_delay=-1.0)
