"""End-to-end serve tests over real sockets.

The headline contract: responses from a coalesced batch are
**bit-identical** to the same requests served solo — coalescing is a
throughput optimization, never an observable semantic change.  Checked
on the simulator backend and on real forked processes (mp).
"""

import asyncio
import json
import time

import numpy as np
import pytest

from repro.serial.reference import mask_ranks, pack_reference, unpack_reference
from repro.serve import PackUnpackServer, ServeConfig, encode_array
from repro.serve.protocol import decode_array

N = 64
RNG = np.random.default_rng(42)
MASK = RNG.random(N) < 0.4
ARRAYS = [RNG.standard_normal(N) for _ in range(4)]


async def _client(host, port, payloads):
    """Pipelined in-loop client: one write burst, responses by id."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(b"".join(
        (json.dumps(p) + "\n").encode() for p in payloads
    ))
    await writer.drain()
    by_id = {}
    for _ in payloads:
        line = await asyncio.wait_for(reader.readline(), timeout=60.0)
        assert line, "server closed early"
        body = json.loads(line)
        by_id[body["id"]] = body
    writer.close()
    await writer.wait_closed()
    return [by_id[p["id"]] for p in payloads]


def _pack_payloads(arrays, mask=MASK, **options):
    return [
        {"id": f"r{k}", "op": "pack", "grid": [2], "scheme": "cms",
         "mask": encode_array(mask), "array": encode_array(a),
         "options": options}
        for k, a in enumerate(arrays)
    ]


def _serve(cfg, fn):
    """Run ``await fn(server)`` against a started server, then drain."""

    async def main():
        srv = PackUnpackServer(cfg)
        await srv.start()
        try:
            return await fn(srv)
        finally:
            await srv.drain()

    return asyncio.run(main())


# ------------------------------------------------------------- correctness
def test_roundtrip_ops_against_reference():
    k = int(MASK.sum())
    vec = np.arange(k, dtype=np.float64)
    field = np.full(N, -1.0)
    payloads = _pack_payloads(ARRAYS[:2]) + [
        {"id": "un", "op": "unpack", "grid": [2], "scheme": "css",
         "mask": encode_array(MASK), "vector": encode_array(vec),
         "field": encode_array(field)},
        {"id": "rk", "op": "ranking", "grid": [2], "scheme": "css",
         "mask": encode_array(MASK)},
    ]

    async def fn(srv):
        return await _client(srv.host, srv.port, payloads)

    bodies = _serve(ServeConfig(), fn)
    for body, arr in zip(bodies[:2], ARRAYS[:2]):
        assert body["ok"], body
        np.testing.assert_array_equal(
            decode_array(body["result"]), pack_reference(arr, MASK))
        assert body["size"] == k
    np.testing.assert_array_equal(
        decode_array(bodies[2]["result"]),
        unpack_reference(vec, MASK, field))
    np.testing.assert_array_equal(
        decode_array(bodies[3]["result"]), mask_ranks(MASK))


def test_bad_request_line_keeps_connection_serving():
    async def fn(srv):
        reader, writer = await asyncio.open_connection(srv.host, srv.port)
        good = _pack_payloads(ARRAYS[:1])[0]
        writer.write(b'{"id": "bad", "op": "pack"}\n')
        writer.write((json.dumps(good) + "\n").encode())
        await writer.drain()
        bodies = [json.loads(await reader.readline()) for _ in range(2)]
        writer.close()
        await writer.wait_closed()
        return {b["id"]: b for b in bodies}

    by_id = _serve(ServeConfig(), fn)
    assert by_id["bad"]["error"]["code"] == "bad_request"
    assert by_id["r0"]["ok"]


def test_coalesced_requests_report_their_batch():
    async def fn(srv):
        return await _client(
            srv.host, srv.port, _pack_payloads(ARRAYS))

    bodies = _serve(
        ServeConfig(max_delay=0.05, max_batch=len(ARRAYS)), fn)
    for body in bodies:
        assert body["batch"] == {"size": len(ARRAYS), "coalesced": True}
        assert set(body["timing"]) == {"queue_ms", "execute_ms", "total_ms"}


# ------------------------------------------------------------ bit identity
def _serve_and_collect(backend, max_batch, max_delay):
    payloads = _pack_payloads(ARRAYS, validate=False)

    async def fn(srv):
        return await _client(srv.host, srv.port, payloads)

    return _serve(
        ServeConfig(backend=backend, max_batch=max_batch,
                    max_delay=max_delay), fn)


@pytest.mark.parametrize("backend", ["sim", pytest.param("mp")])
def test_coalesced_bit_identical_to_solo(backend):
    coalesced = _serve_and_collect(backend, max_batch=len(ARRAYS),
                                   max_delay=0.1)
    solo = _serve_and_collect(backend, max_batch=1, max_delay=0.0)

    assert any(b["batch"]["coalesced"] for b in coalesced)
    assert not any(b["batch"]["coalesced"] for b in solo)
    for bc, bs, arr in zip(coalesced, solo, ARRAYS):
        assert bc["ok"] and bs["ok"]
        # Byte-for-byte identical payloads, both equal to the reference.
        assert bc["result"]["data"] == bs["result"]["data"]
        assert bc["result"]["dtype"] == bs["result"]["dtype"]
        np.testing.assert_array_equal(
            decode_array(bc["result"]), pack_reference(arr, MASK))


# --------------------------------------------------- backpressure and drain
def _slow(engine, delay):
    real = engine.execute

    def execute(reqs):
        time.sleep(delay)
        return real(reqs)

    return execute


def test_overload_sheds_with_structured_error():
    async def fn(srv):
        srv.engine.execute = _slow(srv.engine, 0.1)
        srv.batcher._execute = srv.engine.execute
        return await _client(
            srv.host, srv.port,
            _pack_payloads([RNG.standard_normal(N) for _ in range(8)]))

    bodies = _serve(
        ServeConfig(max_queue=2, max_inflight=1, max_batch=1), fn)
    shed = [b for b in bodies if not b["ok"]]
    ok = [b for b in bodies if b["ok"]]
    assert shed, "expected at least one shed under a full queue"
    assert all(b["error"]["code"] == "overloaded" for b in shed)
    # Admitted requests still complete correctly under overload.
    assert ok and all(b["size"] == int(MASK.sum()) for b in ok)


def test_drain_finishes_inflight_and_refuses_new():
    async def fn(srv):
        srv.engine.execute = _slow(srv.engine, 0.15)
        srv.batcher._execute = srv.engine.execute
        reader, writer = await asyncio.open_connection(srv.host, srv.port)
        p1, p2 = _pack_payloads(ARRAYS[:2])
        writer.write((json.dumps(p1) + "\n").encode())
        await writer.drain()
        await asyncio.sleep(0.03)  # p1 admitted and executing
        srv.admission.begin_drain()
        writer.write((json.dumps(p2) + "\n").encode())
        await writer.drain()
        bodies = {}
        for _ in range(2):
            body = json.loads(await reader.readline())
            bodies[body["id"]] = body
        writer.close()
        await writer.wait_closed()
        return bodies

    bodies = _serve(ServeConfig(max_batch=1), fn)
    assert bodies["r0"]["ok"], "in-flight request must finish during drain"
    assert bodies["r1"]["error"]["code"] == "shutting_down"


def test_drain_is_idempotent_and_closes_listener():
    async def fn(srv):
        await srv.drain()
        await srv.drain()  # second call is a no-op
        with pytest.raises(OSError):
            await asyncio.open_connection(srv.host, srv.port)
        return True

    assert _serve(ServeConfig(), fn)


# ------------------------------------------------------ supervised backend
def test_supervised_server_uses_one_warm_gang_and_closes_it():
    cfg = ServeConfig(backend="supervised", warm=2, max_batch=4,
                      max_delay=0.05, timeout=60.0)

    async def fn(srv):
        sup = srv.engine.backend
        assert sup._gang is not None, "warm= must pre-fork the gang"
        epoch_before = sup._gang.epoch
        bodies = await _client(
            srv.host, srv.port, _pack_payloads(ARRAYS, validate=False))
        assert all(b["ok"] for b in bodies)
        for b, arr in zip(bodies, ARRAYS):
            np.testing.assert_array_equal(
                decode_array(b["result"]), pack_reference(arr, MASK))
        # Still the same warm gang: no re-fork happened mid-service.
        assert sup._gang is not None and sup._gang.epoch == epoch_before
        return sup

    sup = asyncio.run(_supervised_run(cfg, fn))
    assert sup.closed
    assert sup._gang is None


async def _supervised_run(cfg, fn):
    srv = PackUnpackServer(cfg)
    await srv.start()
    try:
        return await fn(srv)
    finally:
        await srv.drain()


def test_supervised_solo_ops_ship_through_the_gang():
    """Solo (uncoalesced) pack/unpack/ranking must run on the warm gang:
    the rank-args closures api.py builds are shipped to real worker
    processes, so nothing unpicklable (e.g. the PlanCache lock) may leak
    into their cells."""
    cfg = ServeConfig(backend="supervised", warm=2, max_batch=1,
                      timeout=60.0)
    k = int(MASK.sum())
    vec = np.arange(k, dtype=np.float64)
    field = np.full(N, -1.0)
    payloads = [
        _pack_payloads(ARRAYS[:1])[0],
        {"id": "un", "op": "unpack", "grid": [2], "scheme": "css",
         "mask": encode_array(MASK), "vector": encode_array(vec),
         "field": encode_array(field)},
        {"id": "rk", "op": "ranking", "grid": [2], "scheme": "css",
         "mask": encode_array(MASK)},
    ]

    async def fn(srv):
        return await _client(srv.host, srv.port, payloads)

    bodies = asyncio.run(_supervised_run(cfg, fn))
    by_id = {b["id"]: b for b in bodies}
    assert all(b["ok"] for b in bodies), by_id
    np.testing.assert_array_equal(
        decode_array(by_id["r0"]["result"]),
        pack_reference(ARRAYS[0], MASK))
    np.testing.assert_array_equal(
        decode_array(by_id["un"]["result"]),
        unpack_reference(vec, MASK, field))
    np.testing.assert_array_equal(
        decode_array(by_id["rk"]["result"]), mask_ranks(MASK))
