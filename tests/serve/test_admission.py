"""Admission control: queue bounds, shedding, drain refusal, counters."""

import asyncio

import pytest

from repro.obs import MetricsRegistry
from repro.serve.admission import AdmissionController


def _ctl(**kw):
    # Constructed inside a running loop: the controller owns an
    # asyncio.Semaphore, which binds to the loop on first await.
    out = {}

    async def make():
        out["ctl"] = AdmissionController(**kw)

    asyncio.run(make())
    return out["ctl"]


def test_admits_until_max_queue_then_sheds():
    ctl = _ctl(max_queue=3)
    assert [ctl.try_admit() for _ in range(3)] == [None, None, None]
    assert ctl.inflight == 3
    assert ctl.try_admit() == "overloaded"
    assert ctl.try_admit() == "overloaded"
    assert (ctl.admitted, ctl.shed) == (3, 2)
    assert ctl.inflight == 3  # sheds never consume slots


def test_release_frees_slots():
    ctl = _ctl(max_queue=1)
    assert ctl.try_admit() is None
    assert ctl.try_admit() == "overloaded"
    ctl.release()
    assert ctl.inflight == 0
    assert ctl.try_admit() is None


def test_drain_refuses_new_but_keeps_inflight_slots():
    ctl = _ctl(max_queue=8)
    assert ctl.try_admit() is None
    ctl.begin_drain()
    assert ctl.draining
    assert ctl.try_admit() == "shutting_down"
    assert ctl.refused_draining == 1
    assert ctl.inflight == 1  # the admitted request still owns its slot
    ctl.release()
    assert ctl.inflight == 0


def test_metrics_wiring():
    m = MetricsRegistry()
    ctl = _ctl(max_queue=1, metrics=m)
    ctl.try_admit()
    ctl.try_admit()  # shed
    assert m.value("serve.admitted") == 1
    assert m.value("serve.shed") == 1
    assert m.value("serve.inflight") == 1
    ctl.release()
    assert m.value("serve.inflight") == 0


def test_semaphore_width_matches_max_inflight():
    ctl = _ctl(max_inflight=3)
    assert ctl.batch_semaphore._value == 3


@pytest.mark.parametrize("kw", [{"max_queue": 0}, {"max_inflight": 0}])
def test_validation(kw):
    with pytest.raises(ValueError):
        _ctl(**kw)
