"""MetricsRegistry primitives and the engine's metric instrumentation."""

import pytest

from repro.machine import Machine, MachineSpec, Tracer
from repro.obs import (
    DEFAULT_TIME_BUCKETS,
    DEFAULT_WORD_BUCKETS,
    MetricsRegistry,
    current_global_metrics,
    disable_global_metrics,
    enable_global_metrics,
)
from repro.obs.registry import Histogram

SPEC = MachineSpec(tau=10e-6, mu=1e-6, delta=0.1e-6, name="test")


class TestCounterGauge:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("x")
        reg.inc("x", 4)
        assert reg.value("x") == 5

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.inc("x", -1)

    def test_gauge_set_and_add(self):
        reg = MetricsRegistry()
        reg.set("g", 3.0)
        reg.gauge("g").add(-1.0)
        assert reg.value("g") == 2.0

    def test_unknown_value_is_zero(self):
        assert MetricsRegistry().value("nope") == 0.0


class TestHistogram:
    def test_bucket_edges_are_inclusive_upper(self):
        h = Histogram("h", (1, 4, 16))
        for v in (0, 1, 2, 4, 5, 16, 17):
            h.observe(v)
        # (..,1], (1,4], (4,16], overflow
        assert h.counts == [2, 2, 2, 1]
        assert h.count == 7
        assert h.min == 0 and h.max == 17

    def test_snapshot_keys_and_stats(self):
        h = Histogram("h", (1, 10))
        h.observe(5)
        snap = h.snapshot()
        assert snap["type"] == "histogram"
        assert set(snap["buckets"]) == {"le_1", "le_10", "overflow"}
        assert snap["buckets"]["le_10"] == 1
        assert snap["count"] == 1 and snap["mean"] == 5.0

    def test_empty_snapshot_min_max_none(self):
        snap = Histogram("h", (1,)).snapshot()
        assert snap["min"] is None and snap["max"] is None
        assert snap["mean"] == 0.0

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", (4, 1))
        with pytest.raises(ValueError):
            Histogram("h", ())

    def test_default_buckets_by_name_suffix(self):
        reg = MetricsRegistry()
        assert reg.histogram("wait_seconds").bounds == DEFAULT_TIME_BUCKETS
        assert reg.histogram("message_words").bounds == DEFAULT_WORD_BUCKETS


class TestRegistry:
    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.inc("x")
        with pytest.raises(ValueError, match="Counter"):
            reg.observe("x", 1.0)
        with pytest.raises(ValueError, match="Counter"):
            reg.gauge("x")

    def test_histogram_value_raises(self):
        reg = MetricsRegistry()
        reg.observe("h", 1.0)
        with pytest.raises(ValueError, match="histogram"):
            reg.value("h")

    def test_rebucketing_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("h", (1, 2))
        with pytest.raises(ValueError, match="already registered"):
            reg.histogram("h", (1, 2, 3))
        # Same buckets (or none) are fine.
        assert reg.histogram("h", (1, 2)) is reg.histogram("h")

    def test_names_len_contains_clear(self):
        reg = MetricsRegistry()
        reg.inc("b")
        reg.inc("a")
        assert reg.names() == ["a", "b"]
        assert len(reg) == 2 and "a" in reg
        reg.clear()
        assert len(reg) == 0

    def test_snapshot_is_json_serializable(self):
        import json

        reg = MetricsRegistry()
        reg.inc("c", 2)
        reg.set("g", 1.5)
        reg.observe("h", 3.0)
        text = json.dumps(reg.snapshot())
        assert '"counter"' in text and '"histogram"' in text

    def test_merge_folds_all_kinds(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for reg in (a, b):
            reg.inc("c", 2)
            reg.observe("h", 5.0)
        b.set("g", 7.0)
        a.merge(b)
        assert a.value("c") == 4
        assert a.value("g") == 7.0
        h = a.get("h")
        assert h.count == 2 and h.sum == 10.0

    def test_merge_rejects_non_registry(self):
        with pytest.raises(TypeError):
            MetricsRegistry().merge({"c": 1})


def _comm_prog(ctx):
    ctx.phase("talk")
    ctx.send((ctx.rank + 1) % ctx.size, None, words=10, tag=1)
    msg = yield ctx.recv(source=(ctx.rank - 1) % ctx.size, tag=1)
    return msg.words


class TestEngineInstrumentation:
    def test_send_recv_metrics(self):
        reg = MetricsRegistry()
        Machine(4, SPEC, metrics=reg).run(_comm_prog)
        assert reg.value("machine.sends") == 4
        assert reg.value("machine.recvs") == 4
        assert reg.value("machine.words_sent") == 40
        assert reg.get("machine.message_words").count == 4

    def test_collective_metrics(self):
        from repro.machine import Barrier

        def prog(ctx):
            ctx.work(100 * ctx.rank)  # skew so the barrier waits
            yield Barrier(range(ctx.size))
            return None

        reg = MetricsRegistry()
        Machine(3, SPEC, metrics=reg).run(prog)
        # One count per collective *fire* (per group), not per participant.
        assert reg.value("machine.collectives") == 1
        assert reg.get("machine.collective_group_size").max == 3
        assert reg.get("machine.collective_skew_seconds").count > 0

    def test_no_metrics_no_clock_change(self):
        """The determinism invariant: instrumentation (metrics, tracer, or
        both) must not move any simulated clock."""
        plain = Machine(4, SPEC).run(_comm_prog)
        clocks = [s.clock for s in plain.stats]
        observed = Machine(
            4, SPEC, tracer=Tracer(), metrics=MetricsRegistry()
        ).run(_comm_prog)
        assert [s.clock for s in observed.stats] == clocks
        assert observed.results == plain.results


class TestGlobalRegistry:
    def test_disabled_by_default(self):
        assert current_global_metrics() is None
        machine = Machine(2, SPEC)
        assert machine.metrics is None

    def test_enable_routes_new_machines(self):
        reg = enable_global_metrics()
        try:
            assert current_global_metrics() is reg
            Machine(2, SPEC).run(_comm_prog)
            assert reg.value("machine.sends") == 2
        finally:
            disable_global_metrics()
        assert current_global_metrics() is None

    def test_explicit_registry_wins_over_global(self):
        global_reg = enable_global_metrics()
        try:
            mine = MetricsRegistry()
            Machine(2, SPEC, metrics=mine).run(_comm_prog)
            assert mine.value("machine.sends") == 2
            assert global_reg.value("machine.sends") == 0
        finally:
            disable_global_metrics()
