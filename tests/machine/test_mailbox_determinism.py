"""The indexed mailbox and port booking match the seed scan bit-for-bit.

The perf rewrite replaced two O(n)-scan structures on the engine's hot
path — the per-receive mailbox scan and the receive-port first-fit scan —
with indexed equivalents (per-channel heaps + lazy-deletion global heap;
bisected interval lists).  Matching is part of the determinism contract:
the winner of every receive must be the pending message with the smallest
``(arrival_time, seq)`` among those the pattern matches, and a port
booking must land in the earliest first-fit gap.  These tests pin that by
running the same workloads against straightforward reference
implementations of the seed semantics and requiring bit-identical
results: same matched sequence numbers op-by-op, and identical
RunResults (clocks, idle time, phase times, payload bytes) end-to-end —
including ANY-source receives, timed receives, port contention, and
fault-injected chaos runs.
"""

import random
from bisect import bisect_right

import numpy as np
import pytest

from repro.core.api import pack, unpack
from repro.faults import FaultPlan
from repro.machine import engine as engine_mod
from repro.machine.engine import Machine
from repro.machine.mailbox import Mailbox
from repro.machine.ops import ANY, TIMEOUT, Message, Recv
from repro.machine.spec import CM5

PORT = CM5.with_(rx_port=True)


class ReferenceMailbox:
    """The seed mailbox: a list scanned in full on every match."""

    def __init__(self, rank: int):
        self.rank = rank
        self._pending: list[Message] = []

    def __len__(self) -> int:
        return len(self._pending)

    def deposit(self, msg: Message) -> None:
        if msg.dest != self.rank:
            raise ValueError(f"message for {msg.dest} deposited at rank {self.rank}")
        self._pending.append(msg)

    def match(self, pattern: Recv) -> Message | None:
        best = None
        best_i = -1
        for i, msg in enumerate(self._pending):
            if not pattern.matches(msg):
                continue
            key = (msg.arrival_time, msg.seq)
            if best is None or key < (best.arrival_time, best.seq):
                best = msg
                best_i = i
        if best is not None:
            del self._pending[best_i]
        return best

    def would_match(self, pattern: Recv) -> bool:
        return any(pattern.matches(m) for m in self._pending)

    def peek_all(self):
        return tuple(sorted(self._pending, key=lambda m: m.seq))


def reference_reserve_port(self, dest, ready, transfer):
    """The seed booking: first-fit scan over the whole schedule from the
    start (intervals disjoint, never coalesced)."""
    starts, ends = self._port_busy[dest]
    start = ready
    for j in range(len(starts)):
        if starts[j] >= start + transfer:
            break
        if ends[j] > start:
            start = ends[j]
    end = start + transfer
    i = bisect_right(starts, start)
    starts.insert(i, start)
    ends.insert(i, end)
    return end


def _msg(source, dest, tag, arrival, seq):
    return Message(
        source=source, dest=dest, tag=tag, payload=seq, words=1,
        send_time=arrival, arrival_time=arrival, seq=seq,
    )


def _random_pattern(rng):
    source = ANY if rng.random() < 0.4 else rng.randrange(4)
    tag = ANY if rng.random() < 0.4 else rng.randrange(3)
    return Recv(source=source, tag=tag)


class TestMailboxAgainstReferenceScan:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_op_sequences_match_op_by_op(self, seed):
        """Interleaved deposits and matches: both mailboxes must return
        the same message (by seq) for every pattern, including arrival
        times deposited out of order (port gap-filling, delay faults)."""
        rng = random.Random(seed)
        fast, ref = Mailbox(0), ReferenceMailbox(0)
        seq = 0
        for _ in range(400):
            if rng.random() < 0.55 or len(ref) == 0:
                seq += 1
                # Arrival times deliberately non-monotone in deposit order.
                m = _msg(rng.randrange(4), 0, rng.randrange(3),
                         arrival=rng.choice([0.0, 1.0, 2.0, rng.random() * 3]),
                         seq=seq)
                fast.deposit(m)
                ref.deposit(m)
            else:
                pat = _random_pattern(rng)
                assert fast.would_match(pat) == ref.would_match(pat)
                got_fast = fast.match(pat)
                got_ref = ref.match(pat)
                assert (got_fast is None) == (got_ref is None)
                if got_fast is not None:
                    assert got_fast.seq == got_ref.seq
            assert len(fast) == len(ref)
        # Drain fully wildcard: the complete order must agree.
        drain = Recv(source=ANY, tag=ANY)
        while len(ref):
            assert fast.match(drain).seq == ref.match(drain).seq
        assert fast.match(drain) is None

    def test_peek_all_agrees(self):
        fast, ref = Mailbox(0), ReferenceMailbox(0)
        for seq, (src, tag, t) in enumerate(
            [(1, 0, 2.0), (2, 1, 1.0), (1, 1, 1.0), (3, 0, 0.5)], start=1
        ):
            m = _msg(src, 0, tag, t, seq)
            fast.deposit(m)
            ref.deposit(m)
        fast.match(Recv(source=2, tag=ANY))
        ref.match(Recv(source=2, tag=ANY))
        assert [m.seq for m in fast.peek_all()] == [m.seq for m in ref.peek_all()]


def _fingerprint(res):
    """Everything observable about a run, hashable for exact comparison."""
    payload = []
    for r in res.results:
        if isinstance(r, np.ndarray):
            payload.append((r.tobytes(), str(r.dtype)))
        else:
            payload.append(repr(r))
    return (
        tuple(payload),
        tuple(s.clock for s in res.stats),
        tuple(s.idle_time for s in res.stats),
        tuple(s.sends for s in res.stats),
        tuple(s.recvs for s in res.stats),
        tuple(s.words_sent for s in res.stats),
        tuple(s.words_received for s in res.stats),
        tuple(tuple(sorted(s.phase_times.items())) for s in res.stats),
    )


def _run_both(monkeypatch, run_fn):
    """Run once with the indexed structures, once with the references."""
    fast = run_fn()
    monkeypatch.setattr(engine_mod, "Mailbox", ReferenceMailbox)
    monkeypatch.setattr(Machine, "_reserve_port", reference_reserve_port)
    ref = run_fn()
    monkeypatch.undo()
    return fast, ref


class TestEngineRunsBitIdentical:
    def test_any_source_fan_in(self, monkeypatch):
        """ANY-source receives drain a fan-in in (arrival, seq) order."""

        def prog(ctx):
            got = []
            if ctx.rank == 0:
                for _ in range(3 * (ctx.size - 1)):
                    msg = yield ctx.recv(source=ANY, tag=ANY)
                    got.append((msg.source, msg.tag, msg.payload))
            else:
                for i in range(3):
                    ctx.work(ctx.rank * 50 * (i + 1))
                    ctx.send(0, (ctx.rank, i), words=4 + ctx.rank, tag=i)
            return got

        def run():
            return _fingerprint(Machine(6, CM5).run(prog))

        fast, ref = _run_both(monkeypatch, run)
        assert fast == ref

    def test_mixed_wildcard_patterns_under_port_contention(self, monkeypatch):
        """Half-wildcard receives while the rx port reorders arrivals."""

        def prog(ctx):
            got = []
            if ctx.rank == 0:
                for tag in (2, 1, 0):  # tag-specific, any source
                    for _ in range(ctx.size - 1):
                        msg = yield ctx.recv(source=ANY, tag=tag)
                        got.append((msg.source, msg.payload))
                for src in range(1, ctx.size):  # source-specific, any tag
                    msg = yield ctx.recv(source=src, tag=ANY)
                    got.append((src, msg.payload))
            else:
                ctx.work(ctx.rank * 37)
                for tag in range(3):
                    ctx.send(0, ctx.rank * 10 + tag, words=64, tag=tag)
                ctx.send(0, "last", words=8, tag=9)
            return got

        def run():
            return _fingerprint(Machine(5, PORT).run(prog))

        fast, ref = _run_both(monkeypatch, run)
        assert fast == ref

    def test_timed_receives(self, monkeypatch):
        """Timeouts fire identically: same expiries, same late deliveries."""

        def prog(ctx):
            events = []
            if ctx.rank == 0:
                # Rank 2 never sends: the wait can only end by expiry.
                msg = yield Recv(source=2, timeout=1e-6)
                events.append("timeout" if msg is TIMEOUT else msg.payload)
                msg = yield Recv(source=1)
                events.append(msg.payload)
            elif ctx.rank == 1:
                ctx.work(10_000_000)
                ctx.send(0, "late", words=2)
            return events

        def run():
            return _fingerprint(Machine(3, CM5).run(prog))

        fast, ref = _run_both(monkeypatch, run)
        assert fast == ref

    def test_pack_macro_run(self, monkeypatch):
        rng = np.random.default_rng(7)
        array = np.arange(1024, dtype=np.int64)
        mask = rng.random(1024) < 0.4

        def run():
            res = pack(array, mask, 8, scheme="cms", spec=PORT,
                       m2m_schedule="direct", validate=True)
            return (res.vector.tobytes(), res.total_ms,
                    _fingerprint(res.run)[1:])

        fast, ref = _run_both(monkeypatch, run)
        assert fast == ref

    def test_unpack_macro_run(self, monkeypatch):
        rng = np.random.default_rng(8)
        mask = rng.random(1024) < 0.3
        vec = np.arange(int(mask.sum()), dtype=np.int64)
        field = np.full(1024, -1, dtype=np.int64)

        def run():
            res = unpack(vec, mask, field, 8, scheme="css", validate=True)
            return (res.array.tobytes(), res.total_ms,
                    _fingerprint(res.run)[1:])

        fast, ref = _run_both(monkeypatch, run)
        assert fast == ref

    def test_chaos_run_with_faults(self, monkeypatch):
        """Fault-injected runs (drops, dups, delays + reliable transport
        retransmit timers) exercise timed receives and out-of-order
        arrivals; the seeded decision stream must be consumed identically."""
        rng = np.random.default_rng(9)
        array = np.arange(512, dtype=np.int64)
        mask = rng.random(512) < 0.5
        plan = FaultPlan(seed=11, drop_rate=0.08, dup_rate=0.03,
                         delay_rate=0.05, delay_seconds=5e-5)

        def run():
            res = pack(array, mask, 4, scheme="cms", faults=plan,
                       reliability=True, validate=True)
            return (res.vector.tobytes(), res.total_ms,
                    _fingerprint(res.run)[1:])

        fast, ref = _run_both(monkeypatch, run)
        assert fast == ref
