"""ProcStats / RunResult accounting and Context helpers."""

import numpy as np
import pytest

from repro.machine import Machine, MachineSpec, PhaseError, payload_words
from repro.machine.stats import ProcStats, RunResult, merge_phase_tables

SPEC = MachineSpec(tau=10e-6, mu=1e-6, delta=1e-6, name="test")


class TestProcStats:
    def test_phase_attribution(self):
        s = ProcStats(0)
        s.set_phase("a")
        s.advance(1.0)
        s.set_phase("b")
        s.advance(2.0)
        s.advance(0.5)
        assert s.phase_times == {"a": 1.0, "b": 2.5}
        assert s.clock == 3.5

    def test_advance_to_counts_idle(self):
        s = ProcStats(0)
        s.advance(1.0)
        s.advance_to(3.0)
        assert s.clock == 3.0
        assert s.idle_time == 2.0
        s.advance_to(2.0)  # past: no-op
        assert s.clock == 3.0

    def test_negative_advance_rejected(self):
        s = ProcStats(0)
        with pytest.raises(PhaseError):
            s.advance(-1.0)

    def test_empty_phase_name_rejected(self):
        s = ProcStats(0)
        with pytest.raises(PhaseError):
            s.set_phase("")

    def test_snapshot_fields(self):
        s = ProcStats(3)
        s.advance(1.0)
        snap = s.snapshot()
        assert snap["rank"] == 3 and snap["clock"] == 1.0
        assert "phase_times" in snap


class TestRunResult:
    def _run(self):
        def prog(ctx):
            ctx.phase("compute.a")
            ctx.work(1000 * (ctx.rank + 1))
            ctx.phase("compute.b")
            ctx.work(500)
            ctx.phase("io")
            ctx.work(100)
            return ctx.rank
            yield

        return Machine(3, SPEC).run(prog)

    def test_phase_time_prefix_aggregation(self):
        res = self._run()
        # compute = a + b for the slowest rank (rank 2): 3000 + 500 ops.
        assert res.phase_time("compute") == pytest.approx(SPEC.work_time(3500))
        assert res.phase_time("compute.a") == pytest.approx(SPEC.work_time(3000))
        assert res.phase_time("io") == pytest.approx(SPEC.work_time(100))
        # Prefix matching is component-wise, not substring.
        with pytest.raises(PhaseError, match="compute"):
            res.phase_time("comp")

    def test_phase_time_unknown_prefix_lists_known(self):
        res = self._run()
        with pytest.raises(PhaseError) as exc:
            res.phase_time("nosuch.phase")
        msg = str(exc.value)
        assert "nosuch.phase" in msg
        assert "compute" in msg and "io" in msg

    def test_elapsed_is_max_clock(self):
        res = self._run()
        assert res.elapsed == pytest.approx(SPEC.work_time(3600))

    def test_phase_names_and_breakdown(self):
        res = self._run()
        assert res.phase_names() == ["compute.a", "compute.b", "io"]
        bd = res.phase_breakdown()
        assert set(bd) == {"compute.a", "compute.b", "io"}

    def test_load_imbalance(self):
        res = self._run()
        # ops: 1600, 2600, 3600 -> max/mean = 3600/2600.
        assert res.load_imbalance() == pytest.approx(3600 / 2600)

    def test_traffic_counters_zero_without_comm(self):
        res = self._run()
        assert res.total_words == 0
        assert res.total_messages == 0
        assert res.max_words_sent() == 0

    def test_summary_renders(self):
        res = self._run()
        text = res.summary()
        assert "ranks=3" in text and "compute.a" in text


class TestMergePhaseTables:
    def test_elementwise_max(self):
        merged = merge_phase_tables([{"a": 1.0, "b": 2.0}, {"a": 3.0, "c": 1.0}])
        assert merged == {"a": 3.0, "b": 2.0, "c": 1.0}

    def test_empty(self):
        assert merge_phase_tables([]) == {}


class TestPayloadWords:
    def test_numpy_counts_elements(self):
        assert payload_words(np.zeros((3, 4))) == 12

    def test_none_is_zero(self):
        assert payload_words(None) == 0

    def test_bytes_rounded_up(self):
        assert payload_words(b"12345") == 2

    def test_containers_recurse(self):
        assert payload_words([np.zeros(3), np.zeros(2)]) == 5
        assert payload_words({"a": np.zeros(4), "b": 1}) == 5

    def test_scalar_is_one(self):
        assert payload_words(42) == 1
        assert payload_words(3.14) == 1


class TestContextValidation:
    def test_negative_work_rejected(self):
        def prog(ctx):
            ctx.work(-5)
            return None
            yield

        with pytest.raises(Exception):
            Machine(1, SPEC).run(prog)

    def test_bad_recv_source_rejected(self):
        def prog(ctx):
            yield ctx.recv(source=42)

        with pytest.raises(Exception):
            Machine(2, SPEC).run(prog)

    def test_local_copy_charges_optionally(self):
        def prog(ctx, charge):
            ctx.local_copy(100, charge=charge)
            return ctx.stats.local_ops
            yield

        free = Machine(1, SPEC).run(prog, False)
        charged = Machine(1, SPEC).run(prog, True)
        assert free.results[0] == 0
        assert charged.results[0] == 100
