"""Receiver-port contention model and the [9] scheduling rationale."""

import numpy as np
import pytest

from repro.machine import Machine, MachineSpec
from repro.machine.m2m import exchange

SPEC = MachineSpec(tau=10e-6, mu=1e-6, delta=0.1e-6, name="test")
PORT = SPEC.with_(rx_port=True)


def full_exchange(P, words, spec, schedule):
    """All-to-all of `words`-word messages under a given schedule."""

    def prog(ctx):
        outgoing = {d: ("x", None) for d in range(P) if d != ctx.rank}
        received = yield from exchange(
            ctx,
            {d: "x" for d in range(P) if d != ctx.rank},
            words={d: words for d in range(P) if d != ctx.rank},
            schedule=schedule,
        )
        return sorted(received)

    return Machine(P, spec).run(prog)


class TestPortModel:
    def test_uncontended_cost_unchanged(self):
        """A lone message costs exactly the same with the port model on."""

        def prog(ctx):
            if ctx.rank == 0:
                ctx.send(1, None, words=100)
                return None
            msg = yield ctx.recv(source=0)
            return ctx.clock

        off = Machine(2, SPEC).run(prog)
        on = Machine(2, PORT).run(prog)
        assert off.results[1] == on.results[1]

    def test_hotspot_serializes(self):
        """Simultaneous messages to one destination queue on its port."""
        P, w = 8, 1000

        def prog(ctx):
            if ctx.rank == 0:
                times = []
                for _ in range(P - 1):
                    msg = yield ctx.recv()
                    times.append(ctx.clock)
                return times
            ctx.send(0, None, words=w)
            return None

        off = Machine(P, SPEC).run(prog)
        on = Machine(P, PORT).run(prog)
        # Without contention all arrive together; with it, spaced mu*w.
        assert max(off.results[0]) == pytest.approx(SPEC.message_time(w))
        assert max(on.results[0]) == pytest.approx(
            SPEC.message_time(w) + (P - 2) * SPEC.mu * w
        )

    def test_self_messages_skip_the_port(self):
        def prog(ctx):
            ctx.send(ctx.rank, None, words=1000, tag=1)
            msg = yield ctx.recv(source=ctx.rank, tag=1)
            return ctx.clock

        res = Machine(2, PORT).run(prog)
        assert res.results[0] == pytest.approx(SPEC.message_time(1000))


class TestSchedulingUnderContention:
    def test_linear_permutation_avoids_hotspots(self):
        """The [9] rationale: under port contention the ascending-order
        'direct' schedule serializes on each destination in turn, while
        the linear permutation keeps every port busy with exactly one
        message per step."""
        P, w = 8, 2000
        linear = full_exchange(P, w, PORT, "linear").elapsed
        direct = full_exchange(P, w, PORT, "direct").elapsed
        assert direct > 1.4 * linear

    def test_schedules_equivalent_without_contention(self):
        """Under the paper's contention-free model the schedules tie (to
        within the count-detection overhead)."""
        P, w = 8, 2000
        linear = full_exchange(P, w, SPEC, "linear").elapsed
        direct = full_exchange(P, w, SPEC, "direct").elapsed
        assert direct == pytest.approx(linear, rel=0.1)

    def test_all_schedules_deliver_everything(self):
        for schedule in ("linear", "naive", "direct"):
            res = full_exchange(5, 10, PORT, schedule)
            for r in range(5):
                assert res.results[r] == [s for s in range(5) if s != r]

    def test_pack_runs_under_contention(self):
        """End to end: PACK on a contended machine still validates, and
        the linear schedule is not slower than the direct one."""
        import repro

        rng = np.random.default_rng(0)
        a = rng.random(1024)
        m = rng.random(1024) < 0.7
        spec = repro.CM5.with_(rx_port=True)
        lin = repro.pack(a, m, grid=16, block=4, scheme="cms", spec=spec,
                         m2m_schedule="linear")
        dire = repro.pack(a, m, grid=16, block=4, scheme="cms", spec=spec,
                          m2m_schedule="direct")
        np.testing.assert_array_equal(lin.vector, dire.vector)
        assert lin.m2m_ms <= dire.m2m_ms * 1.05
