"""Many-to-many personalized communication: schedules, counts, costs."""

import numpy as np
import pytest

from repro.machine import Machine, MachineSpec
from repro.machine.m2m import exchange, exchange_counts

SPEC = MachineSpec(tau=10e-6, mu=1e-6, delta=0.1e-6, name="test")
NOCTRL = SPEC.with_(has_control_network=False)


def run_exchange(P, pattern, spec=SPEC, **kw):
    """pattern: dict rank -> {dest: (payload, words)}."""

    def prog(ctx):
        mine = pattern.get(ctx.rank, {})
        outgoing = {d: p for d, (p, _w) in mine.items()}
        words = {d: w for d, (_p, w) in mine.items()}
        received = yield from exchange(ctx, outgoing, words=words, **kw)
        return received

    return Machine(P, spec).run(prog)


class TestExchangeDelivery:
    @pytest.mark.parametrize("schedule", ["linear", "naive"])
    @pytest.mark.parametrize("spec", [SPEC, NOCTRL])
    def test_full_pattern(self, schedule, spec):
        P = 4
        pattern = {
            s: {d: (f"{s}->{d}", 1) for d in range(P)} for s in range(P)
        }
        res = run_exchange(P, pattern, spec=spec, schedule=schedule)
        for d in range(P):
            got = res.results[d]
            assert got == {s: f"{s}->{d}" for s in range(P)}

    @pytest.mark.parametrize("schedule", ["linear", "naive"])
    def test_sparse_pattern(self, schedule):
        P = 5
        pattern = {0: {3: ("x", 10)}, 2: {3: ("y", 5)}}
        res = run_exchange(P, pattern, schedule=schedule)
        assert res.results[3] == {0: "x", 2: "y"}
        assert res.results[1] == {}

    def test_self_message_free_and_delivered(self):
        P = 3
        pattern = {1: {1: ("self", 100)}}
        res = run_exchange(P, pattern)
        assert res.results[1] == {1: "self"}
        # Self messages never touch the network.
        assert res.stats[1].words_sent == 0

    def test_empty_everything(self):
        res = run_exchange(4, {})
        assert all(r == {} for r in res.results)


class TestScheduleCosts:
    def test_linear_skips_empty_steps(self):
        P = 8
        pattern = {0: {1: ("x", 50)}}
        res_lin = run_exchange(P, pattern, spec=SPEC, schedule="linear")
        res_nai = run_exchange(P, pattern, spec=SPEC, schedule="naive")
        # Naive contacts every partner: P(P-1) messages; linear sends only
        # the one data message (counts ride the control network).
        assert res_nai.total_messages == P * (P - 1)
        assert res_lin.total_messages == 1
        assert res_lin.elapsed < res_nai.elapsed

    def test_linear_without_ctrl_uses_count_round(self):
        P = 4
        pattern = {0: {1: ("x", 50)}}
        res = run_exchange(P, pattern, spec=NOCTRL, schedule="linear")
        # P*(P-1) single-word count messages + 1 data message.
        assert res.total_messages == P * (P - 1) + 1
        assert res.results[1] == {0: "x"}

    def test_self_copy_charge_knob(self):
        P = 2
        pattern = {0: {0: ("self", 1000)}}
        free = run_exchange(P, pattern, self_copy_charge=False)
        charged = run_exchange(P, pattern, self_copy_charge=True)
        assert charged.stats[0].local_ops > free.stats[0].local_ops

    def test_unknown_schedule_rejected(self):
        with pytest.raises(Exception):
            run_exchange(2, {}, schedule="ring")


class TestExchangeCounts:
    @pytest.mark.parametrize("spec", [SPEC, NOCTRL])
    def test_counts_delivered(self, spec):
        P = 4
        counts_by_rank = {0: {1: 7, 2: 3}, 3: {1: 2}}

        def prog(ctx):
            incoming = yield from exchange_counts(
                ctx, counts_by_rank.get(ctx.rank, {})
            )
            return incoming

        res = Machine(P, spec).run(prog)
        assert res.results[1] == {0: 7, 3: 2}
        assert res.results[2] == {0: 3}
        assert res.results[0] == {}

    def test_self_count_included(self):
        def prog(ctx):
            incoming = yield from exchange_counts(ctx, {ctx.rank: 5})
            return incoming

        res = Machine(2, SPEC).run(prog)
        assert res.results[0] == {0: 5}

    def test_zero_counts_filtered(self):
        def prog(ctx):
            incoming = yield from exchange_counts(ctx, {1 - ctx.rank: 0})
            return incoming

        res = Machine(2, SPEC).run(prog)
        assert res.results == [{}, {}]


class TestNoAnnounceMode:
    def test_handshake_without_announce(self):
        P = 3
        pattern = {0: {1: ("x", 4)}}

        def prog(ctx):
            mine = pattern.get(ctx.rank, {})
            outgoing = {d: p for d, (p, _w) in mine.items()}
            words = {d: w for d, (_p, w) in mine.items()}
            received = yield from exchange(
                ctx, outgoing, words=words, announce=False
            )
            return received

        res = Machine(P, SPEC).run(prog)
        assert res.results[1] == {0: "x"}
        # Every pair exchanged a (possibly empty) handshake message.
        assert res.total_messages == P * (P - 1)


class TestNumpyPayloads:
    def test_array_payloads_roundtrip(self):
        P = 4
        pattern = {
            s: {d: (np.arange(s * 10 + d, s * 10 + d + 3), 3) for d in range(P)}
            for s in range(P)
        }
        res = run_exchange(P, pattern)
        for d in range(P):
            for s in range(P):
                np.testing.assert_array_equal(
                    res.results[d][s], np.arange(s * 10 + d, s * 10 + d + 3)
                )
