"""Engine robustness: late-wake guard, timed receives, watchdog, crash
attribution, wait-for graphs, straggler scaling."""

import pytest

from repro.faults import FaultPlan
from repro.machine import (
    ANY,
    CollectiveOp,
    DeadlockError,
    Machine,
    MachineSpec,
    Message,
    Recv,
    TIMEOUT,
)
from repro.machine.engine import _PendingCollective
from repro.machine.errors import (
    CollectiveMismatchError,
    RankFailureError,
    WatchdogError,
)
from repro.machine.mailbox import Mailbox
from repro.obs import MetricsRegistry

SPEC = MachineSpec(tau=10e-6, mu=1e-6, delta=0.1e-6, name="test")


def _msg(source=0, dest=1, tag=0, seq=1, arrival=1.0):
    return Message(
        source=source, dest=dest, tag=tag, payload=None, words=1,
        send_time=0.0, arrival_time=arrival, seq=seq,
    )


class TestWouldMatch:
    def test_empty_mailbox_matches_nothing(self):
        assert not Mailbox(1).would_match(Recv(source=ANY, tag=ANY))

    def test_source_and_tag_selectivity(self):
        box = Mailbox(1)
        box.deposit(_msg(source=3, tag=7))
        assert box.would_match(Recv(source=3, tag=7))
        assert box.would_match(Recv(source=ANY, tag=7))
        assert box.would_match(Recv(source=3, tag=ANY))
        assert not box.would_match(Recv(source=2, tag=7))
        assert not box.would_match(Recv(source=3, tag=8))

    def test_does_not_consume(self):
        box = Mailbox(1)
        box.deposit(_msg())
        pattern = Recv(source=ANY, tag=ANY)
        assert box.would_match(pattern) and box.would_match(pattern)
        assert len(box) == 1
        assert box.match(pattern) is not None
        assert not box.would_match(pattern)


class SleepyMachine(Machine):
    """Deposits messages without ever waking a blocked receiver, to prove
    the scheduler's late-wake guard recovers on its own."""

    def _deposit(self, source, dest, tag, payload, words, send_clock,
                 extra_delay=0.0):
        self._seq += 1
        msg = Message(
            source=source, dest=dest, tag=tag, payload=payload, words=words,
            send_time=send_clock, arrival_time=send_clock + extra_delay,
            seq=self._seq,
        )
        self._mailboxes[dest].deposit(msg)
        return msg.arrival_time


class TestLateWakeGuard:
    def test_blocked_recv_recovers_without_wake(self):
        # Rank 0 blocks first; rank 1's send deposits silently, then rank 1
        # blocks too.  With nobody runnable the loop must notice rank 0's
        # mailbox would match and re-queue it (and later rank 1 likewise).
        def prog(ctx):
            if ctx.rank == 0:
                msg = yield ctx.recv(source=1)
                ctx.send(1, msg.payload * 2, words=1)
                return "zero"
            ctx.send(0, 21, words=1)
            reply = yield ctx.recv(source=0)
            return reply.payload

        res = SleepyMachine(2, SPEC).run(prog)
        assert res.results == ["zero", 42]

    def test_normal_machine_same_results(self):
        def prog(ctx):
            if ctx.rank == 0:
                msg = yield ctx.recv(source=1)
                return msg.payload
            ctx.send(0, "data", words=1)
            return None

        assert SleepyMachine(2, SPEC).run(prog).results == \
            Machine(2, SPEC).run(prog).results


class TestDoubleJoinGuard:
    def _op(self, **kw):
        defaults = dict(group=(0, 1, 2), kind="sum", payload=0)
        defaults.update(kw)
        return CollectiveOp(**defaults)

    def test_double_join_rejected(self):
        pending = _PendingCollective(self._op())
        pending.join(0, self._op())
        with pytest.raises(CollectiveMismatchError, match="twice"):
            pending.join(0, self._op())

    def test_mismatched_kind_and_group_rejected(self):
        pending = _PendingCollective(self._op())
        with pytest.raises(CollectiveMismatchError):
            pending.join(1, self._op(kind="max"))
        with pytest.raises(CollectiveMismatchError):
            pending.join(1, self._op(group=(0, 1)))


class TestTimedRecv:
    def test_timeout_fires_when_nothing_can_progress(self):
        reg = MetricsRegistry()

        def prog(ctx):
            got = yield Recv(source=ANY, timeout=1e-3)
            return (got is TIMEOUT, ctx.clock)

        res = Machine(1, SPEC, metrics=reg).run(prog)
        timed_out, clock = res.results[0]
        assert timed_out
        assert clock == pytest.approx(1e-3)
        assert reg.snapshot()["machine.recv_timeouts"]["value"] == 1

    def test_timeout_is_conservative(self):
        # Rank 1 takes far longer than the timeout to send, but stays
        # runnable the whole time, so the timed recv must NOT expire: a
        # timeout never races a message a runnable rank was going to send.
        def prog(ctx):
            if ctx.rank == 0:
                got = yield Recv(source=1, timeout=1e-6)
                return got if got is TIMEOUT else got.payload
            ctx.work(10_000_000)  # ~1 s of local work at delta=0.1us
            ctx.send(0, "late", words=1)
            return None

        res = Machine(2, SPEC).run(prog)
        assert res.results[0] == "late"

    def test_earliest_deadline_fires_first(self):
        order = []

        def prog(ctx):
            timeout = 2e-3 if ctx.rank == 0 else 1e-3
            yield Recv(source=ANY, timeout=timeout)
            order.append(ctx.rank)
            return None

        Machine(2, SPEC).run(prog)
        assert order == [1, 0]

    def test_timeout_must_be_positive(self):
        with pytest.raises(ValueError):
            Recv(source=ANY, timeout=0.0)


class TestWatchdog:
    def test_step_budget(self):
        def prog(ctx):
            peer = 1 - ctx.rank
            for i in range(1000):
                ctx.send(peer, i, words=1)
                yield ctx.recv(source=peer)
            return None

        with pytest.raises(WatchdogError) as exc:
            Machine(2, SPEC, step_budget=50).run(prog)
        assert exc.value.kind == "steps"
        assert exc.value.limit == 50

    def test_time_budget(self):
        def prog(ctx):
            ctx.work(10_000_000)  # ~1 s at delta=0.1us
            return None
            yield  # pragma: no cover

        with pytest.raises(WatchdogError) as exc:
            Machine(1, SPEC, time_budget=1e-3).run(prog)
        assert exc.value.kind == "time"

    def test_budgets_validated(self):
        with pytest.raises(ValueError):
            Machine(1, SPEC, step_budget=0)
        with pytest.raises(ValueError):
            Machine(1, SPEC, time_budget=0.0)

    def test_generous_budget_is_invisible(self):
        def prog(ctx):
            ctx.send(1 - ctx.rank, ctx.rank, words=1)
            msg = yield ctx.recv(source=1 - ctx.rank)
            return msg.payload

        res = Machine(2, SPEC, step_budget=10_000, time_budget=10.0).run(prog)
        assert res.results == [1, 0]


class TestStuckAttribution:
    def test_deadlock_carries_wait_for_graph(self):
        def prog(ctx):
            msg = yield ctx.recv(source=1 - ctx.rank)
            return msg

        with pytest.raises(DeadlockError) as exc:
            Machine(2, SPEC).run(prog)
        assert exc.value.wait_for == {0: (1,), 1: (0,)}

    def test_crash_raises_rank_failure_not_deadlock(self):
        def prog(ctx):
            if ctx.rank == 1:
                ctx.send(0, "never-sent", words=1)
                yield ctx.recv(source=0)
                return None
            msg = yield ctx.recv(source=1)
            return msg.payload

        plan = FaultPlan(crash_at={1: 0})
        with pytest.raises(RankFailureError) as exc:
            Machine(2, SPEC, faults=plan).run(prog)
        assert exc.value.crashed == {1: 0}
        assert 1 in exc.value.pending
        assert "blocked on rank 1" in exc.value.pending[1]

    def test_rank_failure_is_a_deadlock_subclass_boundary(self):
        # RankFailureError must NOT be caught by code expecting a plain
        # DeadlockError: attribution is the whole point.
        assert not issubclass(RankFailureError, DeadlockError)

    def test_crash_at_later_step(self):
        # Step 1 = the rank's second generator resumption: rank 0 runs
        # its first slice, blocks, and dies on being woken.
        resumed_twice = []

        def prog(ctx):
            if ctx.rank == 0:
                msg = yield ctx.recv(source=1)
                resumed_twice.append(ctx.rank)
                ctx.send(1, msg.payload, words=1)
                return None
            ctx.send(0, "wake", words=1)
            msg = yield ctx.recv(source=0)
            return msg.payload

        plan = FaultPlan(crash_at={0: 1})
        with pytest.raises(RankFailureError) as exc:
            Machine(2, SPEC, faults=plan).run(prog)
        assert exc.value.crashed == {0: 1}
        assert resumed_twice == []  # the crash preempted the resumption

    def test_crash_with_no_stuck_survivors_is_silent(self):
        # A crashed rank only surfaces as RankFailureError when somebody
        # needed it; an independent survivor finishes normally.
        def prog(ctx):
            ctx.work(10)
            return ctx.rank
            yield  # pragma: no cover

        res = Machine(2, SPEC, faults=FaultPlan(crash_at={1: 0})).run(prog)
        assert res.results[0] == 0
        assert res.results[1] is None  # never ran


class TestStragglers:
    def test_work_scaled_only_on_straggler(self):
        def prog(ctx):
            ctx.work(1_000_000)
            return ctx.clock
            yield  # pragma: no cover

        base = Machine(2, SPEC).run(prog)
        slow = Machine(2, SPEC, faults=FaultPlan(stragglers={1: 3.0})).run(prog)
        assert slow.results[0] == pytest.approx(base.results[0])
        assert slow.results[1] == pytest.approx(3.0 * base.results[1])

    def test_communication_costs_unchanged(self):
        def prog(ctx):
            if ctx.rank == 0:
                ctx.send(1, "x", words=100)
                return None
                yield  # pragma: no cover
            msg = yield ctx.recv(source=0)
            return ctx.clock

        base = Machine(2, SPEC).run(prog)
        slow = Machine(2, SPEC, faults=FaultPlan(stragglers={0: 5.0})).run(prog)
        assert slow.results[1] == pytest.approx(base.results[1])
