"""Execution tracing: event capture, queries, rendering."""

import numpy as np
import pytest

from repro.machine import Barrier, Machine, MachineSpec, Tracer
from repro.machine.m2m import exchange

SPEC = MachineSpec(tau=10e-6, mu=1e-6, delta=0.1e-6, name="test")


def traced_run(nprocs, prog, *args, capture_phases=True):
    tracer = Tracer(capture_phases=capture_phases)
    machine = Machine(nprocs, SPEC, tracer=tracer)
    res = machine.run(prog, *args)
    return tracer, res


class TestEventCapture:
    def test_send_recv_events(self):
        def prog(ctx):
            if ctx.rank == 0:
                ctx.send(1, "x", words=7, tag=3)
                return None
            msg = yield ctx.recv(source=0, tag=3)
            return msg.payload

        tracer, _ = traced_run(2, prog)
        sends = tracer.events_of_kind("send")
        recvs = tracer.events_of_kind("recv")
        assert len(sends) == 1 and len(recvs) == 1
        assert sends[0].detail == {"dest": 1, "tag": 3, "words": 7}
        assert recvs[0].detail == {"source": 0, "tag": 3, "words": 7}
        assert recvs[0].time >= sends[0].time

    def test_phase_events(self):
        def prog(ctx):
            ctx.phase("a")
            ctx.work(10)
            ctx.phase("b")
            return None
            yield

        tracer, _ = traced_run(2, prog)
        assert tracer.phase_sequence(0) == ["a", "b"]
        assert tracer.phase_sequence(1) == ["a", "b"]

    def test_phase_capture_can_be_disabled(self):
        def prog(ctx):
            ctx.phase("a")
            return None
            yield

        tracer, _ = traced_run(2, prog, capture_phases=False)
        assert tracer.events_of_kind("phase") == []

    def test_collective_events(self):
        def prog(ctx):
            yield Barrier(range(ctx.size))
            return None

        tracer, _ = traced_run(3, prog)
        colls = tracer.events_of_kind("collective")
        assert len(colls) == 3
        assert all(e.detail == {"op": "barrier", "group_size": 3} for e in colls)

    def test_no_tracer_no_cost(self):
        def prog(ctx):
            ctx.send((ctx.rank + 1) % ctx.size, None, words=1)
            msg = yield ctx.recv()
            return msg.words

        plain = Machine(2, SPEC).run(prog)
        tracer, traced = traced_run(2, prog)
        assert [s.clock for s in plain.stats] == [s.clock for s in traced.stats]


class TestQueries:
    def _ring_trace(self, P=4):
        def prog(ctx):
            ctx.send((ctx.rank + 1) % ctx.size, None, words=ctx.rank + 1)
            msg = yield ctx.recv(source=(ctx.rank - 1) % ctx.size)
            return msg.words

        return traced_run(P, prog)

    def test_message_pairs(self):
        tracer, _ = self._ring_trace()
        pairs = tracer.message_pairs()
        assert (0, 1, 1) in pairs and (3, 0, 4) in pairs
        assert len(pairs) == 4

    def test_communication_matrix(self):
        tracer, _ = self._ring_trace()
        m = tracer.communication_matrix(4)
        assert m[0, 1] == 1 and m[3, 0] == 4
        assert m.sum() == 1 + 2 + 3 + 4

    def test_events_of_rank_and_sorted(self):
        tracer, _ = self._ring_trace()
        mine = tracer.events_of_rank(2)
        assert all(e.rank == 2 for e in mine)
        times = [e.time for e in tracer.sorted_events()]
        assert times == sorted(times)

    def test_clear_and_len(self):
        tracer, _ = self._ring_trace()
        assert len(tracer) > 0
        tracer.clear()
        assert len(tracer) == 0

    def test_summary_text(self):
        tracer, _ = self._ring_trace()
        s = tracer.summary()
        assert "sends=4" in s and "words=10" in s

    def test_summary_of_empty_tracer(self):
        assert Tracer().summary() == "no events recorded"

    def test_events_of_kind_empty_tracer(self):
        assert Tracer().events_of_kind("send") == []

    def test_events_of_kind_rejects_non_string(self):
        with pytest.raises(TypeError):
            Tracer().events_of_kind(3)

    def test_event_to_dict(self):
        tracer, _ = self._ring_trace()
        d = tracer.events_of_kind("send")[0].to_dict()
        assert set(d) == {"time", "rank", "kind", "detail"}
        assert d["kind"] == "send"
        assert isinstance(d["detail"], dict)
        # The detail is a copy: mutating it leaves the event untouched.
        d["detail"]["dest"] = -1
        assert tracer.events_of_kind("send")[0].detail["dest"] != -1


class TestScheduleVisibility:
    def test_linear_permutation_structure_visible(self):
        """The linear schedule's step-k structure shows in the trace: rank
        r's k-th data send goes to (r + k) mod P."""

        def prog(ctx):
            outgoing = {d: "x" for d in range(ctx.size) if d != ctx.rank}
            received = yield from exchange(
                ctx, outgoing, words={d: 1 for d in outgoing}
            )
            return len(received)

        tracer, _ = traced_run(4, prog)
        sends_r0 = [
            e.detail["dest"]
            for e in tracer.events_of_rank(0)
            if e.kind == "send" and e.detail["tag"] == 902
        ]
        assert sends_r0 == [1, 2, 3]

    def test_timeline_renders(self):
        def prog(ctx):
            ctx.phase("compute")
            ctx.work(100 * (ctx.rank + 1))
            ctx.phase("exchange")
            ctx.send((ctx.rank + 1) % ctx.size, None, words=10)
            msg = yield ctx.recv(source=(ctx.rank - 1) % ctx.size)
            return None

        tracer, _ = traced_run(3, prog)
        art = tracer.timeline(3)
        assert "r0" in art and "compute" in art and "exchange" in art

    def test_timeline_without_phases(self):
        tracer = Tracer()
        assert "no phase events" in tracer.timeline(2)


class TestChromeTrace:
    def _traced(self):
        def prog(ctx):
            ctx.phase("compute")
            ctx.work(100)
            ctx.phase("talk")
            ctx.send((ctx.rank + 1) % ctx.size, None, words=10, tag=4)
            msg = yield ctx.recv(source=(ctx.rank - 1) % ctx.size, tag=4)
            return None

        tracer = Tracer()
        Machine(3, SPEC, tracer=tracer).run(prog)
        return tracer

    def test_exports_valid_structure(self):
        import json

        events = self._traced().to_chrome_trace(3)
        json.dumps(events)  # serializable
        kinds = {e["ph"] for e in events}
        assert {"M", "X", "s", "f"} <= kinds

    def test_phase_durations_cover_ranks(self):
        events = self._traced().to_chrome_trace(3)
        phase_events = [e for e in events if e["ph"] == "X"]
        assert {e["tid"] for e in phase_events} == {0, 1, 2}
        assert {e["name"] for e in phase_events} == {"compute", "talk"}

    def test_flows_pair_sends_with_recvs(self):
        events = self._traced().to_chrome_trace(3)
        starts = [e for e in events if e["ph"] == "s"]
        ends = [e for e in events if e["ph"] == "f"]
        assert len(starts) == len(ends) == 3
        assert {e["id"] for e in starts} == {e["id"] for e in ends}
