"""Unit tests for MachineSpec and LocalCostModel."""

import pytest

from repro.machine import CM5, ETHERNET_CLUSTER, IDEAL, LocalCostModel, MachineSpec


class TestMachineSpec:
    def test_default_is_cm5_profile(self):
        assert CM5.name == "cm5"
        assert CM5.has_control_network
        assert CM5.tau > 0 and CM5.mu > 0 and CM5.delta > 0

    def test_message_time_is_affine_in_words(self):
        spec = MachineSpec(tau=10e-6, mu=1e-6)
        assert spec.message_time(0) == pytest.approx(10e-6)
        assert spec.message_time(100) == pytest.approx(10e-6 + 100e-6)

    def test_message_time_rejects_negative_size(self):
        with pytest.raises(ValueError):
            CM5.message_time(-1)

    def test_work_time_scales_with_delta(self):
        spec = MachineSpec(delta=2e-6)
        assert spec.work_time(5) == pytest.approx(10e-6)
        assert spec.work_time(0) == 0.0

    def test_work_time_rejects_negative_ops(self):
        with pytest.raises(ValueError):
            CM5.work_time(-3)

    def test_ctrl_time_requires_control_network(self):
        spec = CM5.without_control_network()
        with pytest.raises(ValueError):
            spec.ctrl_time(10)

    def test_ctrl_time_is_affine(self):
        spec = MachineSpec(ctrl_latency=5e-6, ctrl_word=1e-6)
        assert spec.ctrl_time(7) == pytest.approx(5e-6 + 7e-6)

    def test_negative_constants_rejected(self):
        with pytest.raises(ValueError):
            MachineSpec(tau=-1.0)
        with pytest.raises(ValueError):
            MachineSpec(ctrl_latency=-1.0)

    def test_with_returns_modified_copy(self):
        spec = CM5.with_(tau=1e-3)
        assert spec.tau == 1e-3
        assert spec.mu == CM5.mu
        assert CM5.tau != 1e-3  # original untouched

    def test_spec_is_hashable_and_frozen(self):
        with pytest.raises(Exception):
            CM5.tau = 0.0  # type: ignore[misc]
        assert hash(CM5) == hash(MachineSpec())

    def test_presets_are_distinct(self):
        names = {CM5.name, ETHERNET_CLUSTER.name, IDEAL.name}
        assert len(names) == 3
        assert not ETHERNET_CLUSTER.has_control_network


class TestLocalCostModel:
    def test_defaults_positive(self):
        m = LocalCostModel()
        assert m.seq > 0 and m.rand > 0 and m.vec > 0 and m.seg > 0

    def test_rand_exceeds_seq(self):
        # Scattered bookkeeping must cost more than streaming scans for the
        # paper's scheme crossovers to exist at all.
        m = LocalCostModel()
        assert m.rand > m.seq

    def test_scaled(self):
        m = LocalCostModel(seq=1, rand=2, vec=3, seg=4).scaled(2.0)
        assert (m.seq, m.rand, m.vec, m.seg) == (2, 4, 6, 8)
