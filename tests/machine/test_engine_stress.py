"""Engine stress tests: randomized communication patterns, conservation
invariants, and scale."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import ANY, Machine, MachineSpec
from repro.machine.m2m import exchange

SPEC = MachineSpec(tau=10e-6, mu=1e-6, delta=0.1e-6, name="test")


class TestRandomizedPatterns:
    @settings(max_examples=25, deadline=None)
    @given(
        p=st.integers(2, 8),
        seed=st.integers(0, 999),
        rounds=st.integers(1, 4),
    )
    def test_random_m2m_rounds_never_deadlock(self, p, seed, rounds):
        """Any sequence of valid m2m exchanges completes, delivers exactly
        what was sent, and conserves words."""
        rng = np.random.default_rng(seed)
        plans = []
        for _ in range(rounds):
            matrix = rng.integers(0, 5, size=(p, p))  # words from s to d
            plans.append(matrix)

        def prog(ctx):
            got = []
            for matrix in plans:
                outgoing = {
                    d: ("data", int(matrix[ctx.rank, d]))
                    for d in range(p)
                    if matrix[ctx.rank, d] > 0
                }
                received = yield from exchange(
                    ctx,
                    {d: v[0] for d, v in outgoing.items()},
                    words={d: v[1] for d, v in outgoing.items()},
                )
                got.append(sorted(received))
            return got

        res = Machine(p, SPEC).run(prog)
        for r in range(p):
            for i, matrix in enumerate(plans):
                expected = sorted(s for s in range(p) if matrix[s, r] > 0)
                assert res.results[r][i] == expected
        # Word conservation: sent == received (self messages excluded
        # from both counters).
        assert sum(s.words_sent for s in res.stats) == sum(
            s.words_received for s in res.stats
        )

    @settings(max_examples=20, deadline=None)
    @given(p=st.integers(2, 6), seed=st.integers(0, 999))
    def test_random_send_recv_dag(self, p, seed):
        """Random sender->receiver assignments with matching recv counts
        complete and deliver every payload exactly once."""
        rng = np.random.default_rng(seed)
        n_msgs = int(rng.integers(1, 12))
        sends = [(int(rng.integers(0, p)), int(rng.integers(0, p))) for _ in range(n_msgs)]
        incoming = [sum(1 for _s, d in sends if d == r) for r in range(p)]

        def prog(ctx):
            for i, (s, d) in enumerate(sends):
                if s == ctx.rank:
                    ctx.send(d, i, words=1, tag=5)
            got = []
            for _ in range(incoming[ctx.rank]):
                msg = yield ctx.recv(source=ANY, tag=5)
                got.append(msg.payload)
            return sorted(got)

        res = Machine(p, SPEC).run(prog)
        delivered = sorted(x for r in res.results for x in r)
        assert delivered == list(range(n_msgs))


class TestScale:
    def test_256_rank_ring(self):
        def prog(ctx):
            ctx.send((ctx.rank + 1) % ctx.size, ctx.rank, words=1)
            msg = yield ctx.recv(source=(ctx.rank - 1) % ctx.size)
            return msg.payload

        res = Machine(256, SPEC).run(prog)
        assert res.results == [(r - 1) % 256 for r in range(256)]

    def test_many_sequential_collectives(self):
        from repro.machine import Barrier

        def prog(ctx):
            for _ in range(50):
                yield Barrier(range(ctx.size))
            return ctx.stats.ctrl_ops

        res = Machine(8, SPEC).run(prog)
        assert all(r == 50 for r in res.results)

    def test_deep_message_queues(self):
        """Thousands of queued messages on one channel drain in order."""
        n = 2000

        def prog(ctx):
            if ctx.rank == 0:
                for i in range(n):
                    ctx.send(1, i, words=1)
                return None
            out = []
            for _ in range(n):
                msg = yield ctx.recv(source=0)
                out.append(msg.payload)
            return out

        res = Machine(2, SPEC).run(prog)
        assert res.results[1] == list(range(n))


class TestClockInvariants:
    @settings(max_examples=15, deadline=None)
    @given(p=st.integers(2, 6), seed=st.integers(0, 99))
    def test_recv_never_precedes_send(self, p, seed):
        """Causality: every received message's arrival time is at most the
        receiver's clock at completion, and at least the sender's send
        time."""
        from repro.machine import Tracer

        rng = np.random.default_rng(seed)
        work = [int(rng.integers(0, 500)) for _ in range(p)]

        def prog(ctx):
            ctx.work(work[ctx.rank])
            ctx.send((ctx.rank + 1) % ctx.size, None, words=int(rng.integers(1, 50)))
            msg = yield ctx.recv(source=(ctx.rank - 1) % ctx.size)
            return (msg.send_time, msg.arrival_time, ctx.clock)

        tracer = Tracer()
        res = Machine(p, SPEC, tracer=tracer).run(prog)
        for send_t, arrive_t, clock in res.results:
            assert send_t <= arrive_t <= clock + 1e-15

    def test_elapsed_monotone_in_work(self):
        def prog(ctx, ops):
            ctx.work(ops)
            return None
            yield

        small = Machine(4, SPEC).run(prog, 100).elapsed
        big = Machine(4, SPEC).run(prog, 10000).elapsed
        assert big > small
