"""Interconnect topologies and the hop-aware cost model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import (
    CM5,
    Crossbar,
    Hypercube,
    Machine,
    MachineSpec,
    Mesh2D,
    Ring,
    make_topology,
)

SPEC = MachineSpec(tau=10e-6, mu=1e-6, delta=0.1e-6, name="test")


class TestCrossbar:
    def test_unit_distance(self):
        t = Crossbar(8)
        assert t.hops(0, 0) == 0
        assert t.hops(0, 7) == 1
        assert t.diameter == 1

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            Crossbar(4).hops(0, 4)


class TestRing:
    def test_minimal_routing(self):
        t = Ring(8)
        assert t.hops(0, 1) == 1
        assert t.hops(0, 7) == 1  # wraps
        assert t.hops(0, 4) == 4
        assert t.diameter == 4

    def test_symmetry(self):
        t = Ring(7)
        for s in range(7):
            for d in range(7):
                assert t.hops(s, d) == t.hops(d, s)


class TestMesh2D:
    def test_manhattan(self):
        t = Mesh2D(16, rows=4, cols=4)
        assert t.hops(0, 15) == 6  # (0,0) -> (3,3)
        assert t.hops(0, 3) == 3
        assert t.hops(5, 5) == 0
        assert t.diameter == 6

    def test_torus_wraps(self):
        t = Mesh2D(16, rows=4, cols=4, torus=True)
        assert t.hops(0, 15) == 2  # (0,0) -> (3,3) wraps both ways
        assert t.diameter == 4

    def test_shape_validated(self):
        with pytest.raises(ValueError):
            Mesh2D(16, rows=3, cols=4)


class TestHypercube:
    def test_hamming_distance(self):
        t = Hypercube(16)
        assert t.dimension == 4
        assert t.hops(0b0000, 0b1111) == 4
        assert t.hops(0b0101, 0b0100) == 1
        assert t.diameter == 4

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            Hypercube(12)


class TestMakeTopology:
    def test_kinds(self):
        assert isinstance(make_topology("crossbar", 8), Crossbar)
        assert isinstance(make_topology("ring", 8), Ring)
        assert isinstance(make_topology("hypercube", 8), Hypercube)
        m = make_topology("mesh", 16)
        assert (m.rows, m.cols) == (4, 4)
        t = make_topology("torus", 8, rows=2)
        assert (t.rows, t.cols, t.torus) == (2, 4, True)

    def test_nonsquare_mesh_needs_dims(self):
        with pytest.raises(ValueError):
            make_topology("mesh", 8)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_topology("butterfly", 8)


class TestHopAwareCosts:
    def test_send_pays_per_hop(self):
        spec = SPEC.with_topology(Mesh2D(4, rows=2, cols=2), tau_hop=100e-6)

        def prog(ctx):
            if ctx.rank == 0:
                ctx.send(3, None, words=10)  # 2 hops on the 2x2 mesh
                return ctx.clock
            if ctx.rank == 3:
                yield ctx.recv(source=0)
            return None

        res = Machine(4, spec).run(prog)
        expected = spec.tau + 2 * spec.tau_hop + 10 * spec.mu
        assert res.results[0] == pytest.approx(expected)

    def test_crossbar_default_no_hop_cost(self):
        def prog(ctx):
            if ctx.rank == 0:
                ctx.send(1, None, words=10)
                return ctx.clock
            yield ctx.recv(source=0)
            return None

        res = Machine(2, SPEC).run(prog)
        assert res.results[0] == pytest.approx(SPEC.message_time(10))

    def test_paper_portability_claim(self):
        """PACK totals across crossbar / mesh / hypercube differ by only a
        few percent at wormhole-era tau_hop — Section 2's argument."""
        import repro

        rng = np.random.default_rng(0)
        a = rng.random(1024)
        m = rng.random(1024) < 0.5
        totals = {}
        for name, topo in [
            ("crossbar", None),
            ("mesh", Mesh2D(16, rows=4, cols=4)),
            ("hypercube", Hypercube(16)),
        ]:
            spec = CM5 if topo is None else CM5.with_topology(topo, tau_hop=5e-6)
            res = repro.pack(a, m, grid=16, block=8, scheme="cms", spec=spec)
            totals[name] = res.total_ms
        base = totals["crossbar"]
        for name, t in totals.items():
            assert t == pytest.approx(base, rel=0.25), f"{name} diverges: {totals}"
        # And the orderings follow the average distances.
        assert totals["crossbar"] <= totals["hypercube"] <= totals["mesh"]


@settings(max_examples=50, deadline=None)
@given(
    kind=st.sampled_from(["crossbar", "ring", "hypercube"]),
    logp=st.integers(1, 5),
    seed=st.integers(0, 99),
)
def test_property_metric_axioms(kind, logp, seed):
    """hops is a metric: identity, symmetry, triangle inequality."""
    n = 2**logp
    t = make_topology(kind, n)
    rng = np.random.default_rng(seed)
    xs = rng.integers(0, n, size=6)
    for x in xs:
        assert t.hops(int(x), int(x)) == 0
    for x, y in zip(xs, xs[::-1]):
        assert t.hops(int(x), int(y)) == t.hops(int(y), int(x))
    a, b, c = int(xs[0]), int(xs[1]), int(xs[2])
    assert t.hops(a, c) <= t.hops(a, b) + t.hops(b, c)
