"""Engine semantics: send/recv matching, clocks, determinism, deadlock."""

import numpy as np
import pytest

from repro.machine import (
    ANY,
    Barrier,
    CM5,
    CollectiveOp,
    DeadlockError,
    Machine,
    MachineSpec,
    ProgramError,
    Recv,
)

SPEC = MachineSpec(tau=10e-6, mu=1e-6, delta=0.1e-6, name="test")


class TestBasicExecution:
    def test_single_rank_returns_value(self):
        def prog(ctx):
            ctx.work(10)
            return ctx.rank * 7
            yield  # pragma: no cover - makes this a generator

        res = Machine(1, SPEC).run(prog)
        assert res.results == [0]

    def test_plain_function_program(self):
        def prog(ctx):
            ctx.work(5)
            return ctx.rank + 100

        res = Machine(3, SPEC).run(prog)
        assert res.results == [100, 101, 102]

    def test_all_ranks_run(self):
        def prog(ctx):
            return ctx.rank
            yield

        res = Machine(8, SPEC).run(prog)
        assert res.results == list(range(8))

    def test_shared_and_per_rank_args(self):
        def prog(ctx, a, b):
            return a + b + ctx.rank
            yield

        res = Machine(2, SPEC).run(prog, 10, 20)
        assert res.results == [30, 31]
        res = Machine(2, SPEC).run(prog, rank_args=[(1, 2), (3, 4)])
        assert res.results == [3, 8]

    def test_rank_args_length_checked(self):
        def prog(ctx, a):
            return a
            yield

        with pytest.raises(ValueError):
            Machine(3, SPEC).run(prog, rank_args=[(1,), (2,)])

    def test_zero_procs_rejected(self):
        with pytest.raises(ValueError):
            Machine(0, SPEC)


class TestPointToPoint:
    def test_ping(self):
        def prog(ctx):
            if ctx.rank == 0:
                ctx.send(1, "hello", words=5)
                return None
            msg = yield ctx.recv(source=0)
            return msg.payload

        res = Machine(2, SPEC).run(prog)
        assert res.results[1] == "hello"

    def test_ping_pong_clocks(self):
        def prog(ctx):
            if ctx.rank == 0:
                ctx.send(1, "ping", words=10)
                msg = yield ctx.recv(source=1)
                return msg.payload
            msg = yield ctx.recv(source=0)
            ctx.send(0, "pong", words=10)
            return msg.payload

        res = Machine(2, SPEC).run(prog)
        assert res.results == ["pong", "ping"]
        # Each direction costs tau + 10 mu; rank 0's clock sees both legs.
        leg = SPEC.message_time(10)
        assert res.stats[0].clock == pytest.approx(2 * leg)
        assert res.stats[1].clock == pytest.approx(2 * leg)

    def test_fifo_per_channel(self):
        def prog(ctx):
            if ctx.rank == 0:
                for i in range(5):
                    ctx.send(1, i, words=1)
                return None
            got = []
            for _ in range(5):
                msg = yield ctx.recv(source=0)
                got.append(msg.payload)
            return got

        res = Machine(2, SPEC).run(prog)
        assert res.results[1] == [0, 1, 2, 3, 4]

    def test_tag_selective_receive(self):
        def prog(ctx):
            if ctx.rank == 0:
                ctx.send(1, "a", words=1, tag=7)
                ctx.send(1, "b", words=1, tag=8)
                return None
            m8 = yield ctx.recv(source=0, tag=8)
            m7 = yield ctx.recv(source=0, tag=7)
            return (m8.payload, m7.payload)

        res = Machine(2, SPEC).run(prog)
        assert res.results[1] == ("b", "a")

    def test_any_source_takes_earliest_arrival(self):
        def prog(ctx):
            if ctx.rank == 0:
                # Big message: arrives late despite earlier send order below.
                ctx.work(1)  # tiny skew
                ctx.send(2, "slow", words=100000)
                return None
            if ctx.rank == 1:
                ctx.send(2, "fast", words=1)
                return None
            a = yield ctx.recv(source=ANY)
            b = yield ctx.recv(source=ANY)
            return (a.payload, b.payload)

        res = Machine(3, SPEC).run(prog)
        assert res.results[2] == ("fast", "slow")

    def test_receive_waits_for_arrival_time(self):
        def prog(ctx):
            if ctx.rank == 0:
                ctx.send(1, None, words=1000)
                return None
            msg = yield ctx.recv(source=0)
            return ctx.clock

        res = Machine(2, SPEC).run(prog)
        assert res.results[1] == pytest.approx(SPEC.message_time(1000))
        assert res.stats[1].idle_time == pytest.approx(SPEC.message_time(1000))

    def test_send_to_bad_rank_raises(self):
        def prog(ctx):
            ctx.send(99, None, words=1)
            return None
            yield

        with pytest.raises(ProgramError):
            Machine(2, SPEC).run(prog)

    def test_numpy_payload_words_inferred(self):
        def prog(ctx):
            if ctx.rank == 0:
                ctx.send(1, np.zeros(17))
                return None
            msg = yield ctx.recv(source=0)
            return msg.words

        res = Machine(2, SPEC).run(prog)
        assert res.results[1] == 17


class TestDeadlockDetection:
    def test_mutual_recv_deadlocks(self):
        def prog(ctx):
            msg = yield ctx.recv(source=1 - ctx.rank)
            return msg

        with pytest.raises(DeadlockError) as exc:
            Machine(2, SPEC).run(prog)
        assert 0 in exc.value.blocked and 1 in exc.value.blocked

    def test_missing_sender_deadlocks(self):
        def prog(ctx):
            if ctx.rank == 0:
                return None
                yield
            msg = yield ctx.recv(source=0)
            return msg

        with pytest.raises(DeadlockError):
            Machine(2, SPEC).run(prog)

    def test_wrong_tag_deadlocks(self):
        def prog(ctx):
            if ctx.rank == 0:
                ctx.send(1, "x", words=1, tag=1)
                return None
            msg = yield ctx.recv(source=0, tag=2)
            return msg

        with pytest.raises(DeadlockError):
            Machine(2, SPEC).run(prog)


class TestCollectives:
    def test_barrier_synchronizes_clocks(self):
        def prog(ctx):
            ctx.work(1000 * (ctx.rank + 1))
            yield Barrier(range(ctx.size))
            return ctx.clock

        res = Machine(4, SPEC).run(prog)
        # All ranks leave the barrier at the same time.
        assert len({round(c, 12) for c in res.results}) == 1
        assert res.results[0] >= SPEC.work_time(4000)

    def test_collective_combine_and_result_routing(self):
        def combine(payloads):
            total = sum(payloads.values())
            return ({r: total + r for r in payloads}, len(payloads))

        def prog(ctx):
            out = yield CollectiveOp(
                group=tuple(range(ctx.size)), kind="sum", payload=ctx.rank, combine=combine
            )
            return out

        res = Machine(4, SPEC).run(prog)
        assert res.results == [6, 7, 8, 9]

    def test_collective_group_mismatch_raises(self):
        def prog(ctx):
            group = (0, 1) if ctx.rank == 0 else (0, 1, 2)
            yield CollectiveOp(group=group, kind="x", payload=None)
            return None

        with pytest.raises(Exception):
            Machine(3, SPEC).run(prog)

    def test_subgroup_collectives_do_not_interfere(self):
        def combine(payloads):
            return ({r: sorted(payloads) for r in payloads}, 0)

        def prog(ctx):
            half = (0, 1) if ctx.rank < 2 else (2, 3)
            out = yield CollectiveOp(group=half, kind="who", payload=None, combine=combine)
            return tuple(out)

        res = Machine(4, SPEC).run(prog)
        assert res.results == [(0, 1), (0, 1), (2, 3), (2, 3)]

    def test_collective_without_control_network_needs_cost(self):
        spec = SPEC.with_(has_control_network=False)

        def prog(ctx):
            yield Barrier(range(ctx.size))
            return None

        with pytest.raises(Exception):
            Machine(2, spec).run(prog)

        def prog2(ctx):
            yield CollectiveOp(
                group=tuple(range(ctx.size)), kind="barrier", cost_seconds=1e-6
            )
            return None

        res = Machine(2, spec).run(prog2)
        assert res.elapsed == pytest.approx(1e-6)


class TestDeterminism:
    def test_identical_runs_identical_stats(self):
        def prog(ctx):
            rng = np.random.default_rng(ctx.rank)
            data = rng.random(10)
            ctx.send((ctx.rank + 1) % ctx.size, data)
            msg = yield ctx.recv(source=(ctx.rank - 1) % ctx.size)
            ctx.work(int(msg.payload.sum() * 100))
            return float(msg.payload.sum())

        r1 = Machine(5, SPEC).run(prog)
        r2 = Machine(5, SPEC).run(prog)
        assert r1.results == r2.results
        assert [s.clock for s in r1.stats] == [s.clock for s in r2.stats]
        assert [s.words_sent for s in r1.stats] == [s.words_sent for s in r2.stats]

    def test_machine_reusable_with_fresh_state(self):
        def prog(ctx):
            ctx.work(100)
            return ctx.clock
            yield

        m = Machine(2, SPEC)
        a = m.run(prog)
        b = m.run(prog)
        assert a.results == b.results


class TestErrorPropagation:
    def test_program_exception_wrapped(self):
        def prog(ctx):
            if ctx.rank == 1:
                raise RuntimeError("boom")
            return None
            yield

        with pytest.raises(ProgramError) as exc:
            Machine(2, SPEC).run(prog)
        assert exc.value.rank == 1

    def test_bad_yield_rejected(self):
        def prog(ctx):
            yield "not an op"

        with pytest.raises(ProgramError):
            Machine(1, SPEC).run(prog)
