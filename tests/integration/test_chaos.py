"""End-to-end chaos: PACK/UNPACK stay oracle-correct on a faulty network
when the reliable transport is on, reproduce bit-for-bit per seed, and
attribute rank crashes as RankFailureError."""

import numpy as np
import pytest

from repro.core.api import pack, unpack
from repro.faults import FaultPlan
from repro.faults.reliable import RELIABLE_TAG
from repro.machine import DeadlockError, ProgramError
from repro.machine.errors import RankFailureError
from repro.machine.spec import CM5, ETHERNET_CLUSTER
from repro.obs import MetricsRegistry
from repro.serial.reference import pack_reference, unpack_reference

N = 512
PROCS = 4


def _mask(seed, density=0.5, n=N):
    rng = np.random.default_rng(seed)
    return rng.random(n) < density


def _array(n=N):
    return np.arange(n, dtype=np.int64)


class TestPackUnderChaos:
    @pytest.mark.parametrize("drop", [0.01, 0.05, 0.1])
    def test_oracle_correct_across_drop_rates(self, drop):
        mask = _mask(1)
        array = _array()
        plan = FaultPlan(seed=0, drop_rate=drop)
        # validate=True checks against the serial numpy oracle internally;
        # assert explicitly anyway so the contract is visible here.
        res = pack(array, mask, PROCS, scheme="cms", faults=plan,
                   reliability=True, validate=True)
        assert np.array_equal(res.vector, pack_reference(array, mask))

    @pytest.mark.parametrize("scheme", ["sss", "css", "cms"])
    def test_all_schemes_survive_faults(self, scheme):
        mask = _mask(2, density=0.3)
        array = _array()
        plan = FaultPlan(seed=3, drop_rate=0.05, dup_rate=0.02,
                         corrupt_rate=0.02)
        res = pack(array, mask, PROCS, scheme=scheme, faults=plan,
                   reliability=True, validate=True)
        assert res.size == int(mask.sum())

    def test_unreliable_run_fails_loudly(self):
        # Without the reliable transport a heavy drop rate must not give
        # silently wrong data: the run dies (deadlock on the lost message
        # or a program error from a corrupted payload).
        mask = _mask(1)
        plan = FaultPlan(seed=0, drop_rate=0.5)
        with pytest.raises((DeadlockError, ProgramError)):
            pack(_array(), mask, PROCS, scheme="cms", faults=plan,
                 validate=False)

    def test_bitwise_reproducible_per_seed(self):
        mask = _mask(4)
        array = _array()
        plan = FaultPlan(seed=11, drop_rate=0.08, dup_rate=0.02)

        def one_run():
            reg = MetricsRegistry()
            res = pack(array, mask, PROCS, scheme="cms", faults=plan,
                       reliability=True, metrics=reg, validate=True)
            snap = reg.snapshot()
            return (
                res.vector.tobytes(),
                res.total_ms,
                [s.clock for s in res.run.stats],
                {k: v for k, v in sorted(snap.items())},
            )

        assert one_run() == one_run()

    def test_different_seeds_differ(self):
        mask = _mask(4)
        array = _array()

        def elapsed(seed):
            res = pack(array, mask, PROCS, scheme="cms",
                       faults=FaultPlan(seed=seed, drop_rate=0.2),
                       reliability=True, validate=True)
            return res.total_ms

        # Same answer either way, but the fault pattern (and so the
        # simulated time) depends on the seed.
        assert elapsed(0) != elapsed(1)


class TestUnpackUnderChaos:
    @pytest.mark.parametrize("compress", [False, True])
    def test_oracle_correct(self, compress):
        mask = _mask(5)
        field_array = np.full(N, -1, dtype=np.int64)
        vector = np.arange(int(mask.sum()), dtype=np.int64)
        plan = FaultPlan(seed=2, drop_rate=0.05, dup_rate=0.02)
        res = unpack(vector, mask, field_array, PROCS, scheme="css",
                     compress_requests=compress, faults=plan,
                     reliability=True, validate=True)
        expected = unpack_reference(vector, mask, field_array)
        assert np.array_equal(res.array, expected)


class TestCrashAttribution:
    def test_crash_surfaces_as_rank_failure(self):
        # Step 1 = rank 1's second generator resumption, well inside any
        # pack run; the survivors must name the dead rank, not report a
        # bare deadlock.
        mask = _mask(6)
        plan = FaultPlan(seed=0, crash_at={1: 1})
        with pytest.raises(RankFailureError) as exc:
            pack(_array(), mask, PROCS, scheme="cms", faults=plan,
                 validate=False)
        assert 1 in exc.value.crashed


class TestNonControlNetworkSpec:
    def test_faults_scoped_to_reliable_tag(self):
        # ETHERNET_CLUSTER has no reliable control network: PRS runs over
        # unprotected point-to-point messages, so faults must be scoped
        # to the reliable transport's tag (the redistribution traffic).
        mask = _mask(7)
        array = _array()
        plan = FaultPlan(seed=1, drop_rate=0.1,
                         target_tags=(RELIABLE_TAG,))
        res = pack(array, mask, PROCS, scheme="cms",
                   spec=ETHERNET_CLUSTER, faults=plan, reliability=True,
                   validate=True)
        assert np.array_equal(res.vector, pack_reference(array, mask))


class TestReliabilityOverhead:
    def test_zero_drop_overhead_bounded(self):
        # At drop 0 the reliable transport (headers + NIC acks, no
        # retransmits) adds < 15% simulated time.  The extra cost is one
        # ack round-trip per exchange — a constant — so the bound needs
        # a realistically sized problem to amortize it.
        n = 8192
        mask = _mask(8, n=n)
        array = _array(n)
        base = pack(array, mask, PROCS, scheme="cms", validate=True)
        rel = pack(array, mask, PROCS, scheme="cms", reliability=True,
                   faults=FaultPlan(seed=0, drop_rate=0.0), validate=True)
        assert rel.total_ms <= base.total_ms * 1.15

    def test_no_retransmits_without_faults(self):
        reg = MetricsRegistry()
        mask = _mask(8)
        pack(_array(), mask, PROCS, scheme="cms", reliability=True,
             metrics=reg, validate=True)
        snap = reg.snapshot()
        assert snap.get("reliable.retransmits", {"value": 0})["value"] == 0
        assert snap.get("machine.recv_timeouts", {"value": 0})["value"] == 0
