"""Golden-value regression tests.

The simulator is deterministic, so canonical configurations have exact
simulated times.  These pins protect the calibrated cost model: an
accidental change to any charge formula, message size, or scheduling
detail moves a golden value and fails here — with a clear instruction to
either fix the regression or consciously re-baseline (and re-check
EXPERIMENTS.md, whose recorded tables depend on the same constants).
"""

import numpy as np
import pytest

import repro
from repro.workloads import random_mask

# Canonical 1-D workload: N=4096, P=16, CYCLIC(8), 50% mask (seed 7).
A1 = np.arange(4096.0)
M1 = random_mask((4096,), 0.5, seed=7)

GOLDEN_PACK = {
    # scheme -> (total_ms, local_ms, words)
    "sss": (1.9024, 0.2504, 3948),
    "css": (1.8315, 0.1795, 3948),
    "cms": (1.75635, 0.14475, 2954),
}


class TestGoldenPack:
    @pytest.mark.parametrize("scheme", sorted(GOLDEN_PACK))
    def test_1d_canonical(self, scheme):
        total, local, words = GOLDEN_PACK[scheme]
        res = repro.pack(A1, M1, grid=16, block=8, scheme=scheme)
        assert res.total_ms == pytest.approx(total, abs=1e-4)
        assert res.local_ms == pytest.approx(local, abs=1e-4)
        assert res.total_words == words

    def test_scheme_ordering_pinned(self):
        # CMS < CSS < SSS at this configuration — the Figure 4 ordering.
        t = {
            s: repro.pack(A1, M1, grid=16, block=8, scheme=s).total_ms
            for s in GOLDEN_PACK
        }
        assert t["cms"] < t["css"] < t["sss"]

    def test_2d_canonical(self):
        a = np.arange(64 * 64, dtype=float).reshape(64, 64)
        m = random_mask((64, 64), 0.3, seed=9)
        res = repro.pack(a, m, grid=(4, 4), block=(4, 4), scheme="cms")
        assert res.size == 1221
        assert res.total_ms == pytest.approx(1.36285, abs=1e-4)


class TestGoldenUnpack:
    def test_1d_canonical(self):
        v = np.arange(float(M1.sum()))
        res = repro.unpack(v, M1, np.zeros(4096), grid=16, block=8, scheme="css")
        assert res.total_ms == pytest.approx(3.1116, abs=1e-4)


class TestGoldenStability:
    def test_repeated_runs_bit_identical(self):
        r1 = repro.pack(A1, M1, grid=16, block=8, scheme="cms")
        r2 = repro.pack(A1, M1, grid=16, block=8, scheme="cms")
        assert r1.total_ms == r2.total_ms
        assert r1.times == r2.times

    def test_mask_workload_pinned(self):
        # The golden values depend on the mask generator staying stable.
        assert int(M1.sum()) == 2106
        assert M1[:8].tolist() == [False, True, True, True, True, True, False, True]
