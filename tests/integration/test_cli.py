"""The top-level ``python -m repro`` command line."""

import csv
import json

import pytest

from repro.__main__ import main


class TestInfo:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "cm5" in out
        assert "pipeline" in out


class TestPackCommand:
    def test_default_pack(self, capsys):
        assert main(["pack", "--n", "256", "--procs", "4", "--block", "4"]) == 0
        out = capsys.readouterr().out
        assert "Size =" in out and "total" in out

    def test_2d_shape_and_phases(self, capsys):
        assert main([
            "pack", "--shape", "16x16", "--grid", "2x2", "--block", "2",
            "--scheme", "sss", "--phases",
        ]) == 0
        out = capsys.readouterr().out
        assert "pack.ranking.initial" in out

    def test_structured_mask(self, capsys):
        assert main(["pack", "--shape", "16x16", "--grid", "2x2",
                     "--block", "2", "--mask", "lt"]) == 0
        assert "Size = 120" in capsys.readouterr().out

    def test_redistribute_variant(self, capsys):
        assert main(["pack", "--n", "256", "--procs", "4", "--block",
                     "cyclic", "--redistribute", "selected"]) == 0

    def test_machine_profiles(self, capsys):
        for m in ("cm5", "cluster", "ideal"):
            assert main(["pack", "--n", "256", "--procs", "4",
                         "--block", "4", "--machine", m]) == 0


class TestUnpackCommand:
    def test_default_unpack(self, capsys):
        assert main(["unpack", "--n", "256", "--procs", "4", "--block", "4"]) == 0
        out = capsys.readouterr().out
        assert "UNPACK" in out and "Size =" in out


class TestTraceCommand:
    def test_trace_emits_valid_chrome_json(self, capsys, tmp_path):
        out = tmp_path / "t.trace.json"
        assert main(["trace", "--nprocs", "4", "--n", "256", "--block", "4",
                     "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "ranks=4" in text and "perfetto" in text
        doc = json.loads(out.read_text())
        events = doc["traceEvents"]
        from repro.obs.chrome_trace import validate_chrome_trace

        assert validate_chrome_trace(events) == len(events)
        threads = [e for e in events
                   if e["ph"] == "M" and e["name"] == "thread_name"]
        assert len(threads) == 4

    def test_trace_other_ops(self, capsys, tmp_path):
        for op in ("unpack", "ranking"):
            out = tmp_path / f"{op}.trace.json"
            assert main(["trace", "--op", op, "--n", "128", "--procs", "4",
                         "--block", "4", "--out", str(out)]) == 0
            assert json.loads(out.read_text())["traceEvents"]


class TestMetricsCommand:
    def test_metrics_prints_table(self, capsys):
        assert main(["metrics", "--n", "256", "--procs", "4",
                     "--block", "4"]) == 0
        out = capsys.readouterr().out
        assert "machine.sends" in out and "pack.calls" in out
        assert "histogram" in out

    def test_metrics_exports_json_and_report(self, capsys, tmp_path):
        mpath = tmp_path / "m.json"
        rpath = tmp_path / "r.json"
        assert main(["metrics", "--op", "unpack", "--n", "256", "--procs", "4",
                     "--block", "4", "--out", str(mpath),
                     "--report-out", str(rpath)]) == 0
        assert json.loads(mpath.read_text())["metrics"]["machine.sends"]["value"] > 0
        assert json.loads(rpath.read_text())["op"] == "unpack"


class TestObservabilityFlags:
    def test_pack_with_all_artifacts(self, capsys, tmp_path):
        trace = tmp_path / "p.trace.json"
        metrics = tmp_path / "p.csv"
        report = tmp_path / "p.report.json"
        assert main(["pack", "--n", "256", "--procs", "4", "--block", "4",
                     "--trace-out", str(trace), "--metrics-out", str(metrics),
                     "--report-out", str(report)]) == 0
        assert json.loads(trace.read_text())["traceEvents"]
        rows = list(csv.reader(metrics.read_text().splitlines()))
        assert rows[0] == ["metric", "field", "value"] and len(rows) > 5
        assert json.loads(report.read_text())["op"] == "pack"

    def test_unpack_with_metrics_out(self, capsys, tmp_path):
        out = tmp_path / "u.json"
        assert main(["unpack", "--n", "256", "--procs", "4", "--block", "4",
                     "--metrics-out", str(out)]) == 0
        assert "unpack.calls" in json.loads(out.read_text())["metrics"]

    def test_plain_run_has_no_profiler_output(self, capsys):
        assert main(["pack", "--n", "256", "--procs", "4", "--block", "4"]) == 0
        out = capsys.readouterr().out
        assert "[trace" not in out and "[metrics" not in out


class TestExperimentsDelegate:
    def test_delegates(self, capsys):
        assert main(["experiments", "sensitivity"]) == 0
        out = capsys.readouterr().out
        assert "Sensitivity studies" in out

    def test_metrics_out_snapshots_global_registry(self, capsys, tmp_path):
        out = tmp_path / "exp.json"
        assert main(["experiments", "--metrics-out", str(out),
                     "sensitivity"]) == 0
        doc = json.loads(out.read_text())
        assert doc["metrics"]["machine.sends"]["value"] > 0
        # The global registry was torn down afterwards.
        from repro.obs import current_global_metrics

        assert current_global_metrics() is None


class TestErrors:
    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_no_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestGeometryErrors:
    """Malformed --shape/--grid/--block exit 2 with one line on stderr,
    never a traceback."""

    def _expect_error(self, capsys, argv, needle):
        assert main(argv) == 2
        captured = capsys.readouterr()
        assert needle in captured.err
        assert captured.err.startswith("error: ")
        assert captured.err.count("\n") == 1  # exactly one line
        assert "Traceback" not in captured.err

    def test_non_integer_block(self, capsys):
        self._expect_error(
            capsys, ["pack", "--n", "64", "--procs", "4", "--block", "foo"],
            "--block expects an integer",
        )

    def test_negative_block(self, capsys):
        self._expect_error(
            capsys, ["pack", "--n", "64", "--procs", "4", "--block", "0"],
            "--block must be >= 1",
        )

    def test_malformed_grid(self, capsys):
        self._expect_error(
            capsys, ["pack", "--shape", "8x8", "--grid", "3xx2"],
            "--grid expects INTxINT",
        )

    def test_grid_rank_mismatch(self, capsys):
        self._expect_error(
            capsys, ["pack", "--shape", "8x8", "--grid", "2x2x2"],
            "--grid rank 3 does not match --shape rank 2",
        )

    def test_malformed_shape(self, capsys):
        self._expect_error(
            capsys, ["unpack", "--shape", "8xlarge", "--grid", "2"],
            "--shape expects INTxINT",
        )

    def test_nondividing_block_is_one_line(self, capsys):
        # Library-level geometry validation surfaces the same way.
        self._expect_error(
            capsys, ["pack", "--n", "60", "--procs", "16", "--block", "8"],
            "P*W must divide N",
        )


class TestConformCommand:
    def test_clean_fuzz_run_exits_zero(self, capsys):
        assert main(["conform", "--cases", "10", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "10 cases, seed 2: 0 failure(s)" in out

    def test_corpus_replay(self, capsys):
        from pathlib import Path

        corpus = Path(__file__).parents[1] / "conformance" / "corpus"
        assert main(["conform", "--cases", "2", "--seed", "3",
                     "--corpus", str(corpus)]) == 0
        out = capsys.readouterr().out
        assert "0 failure(s)" in out and "corpus:" in out

    def test_failure_exits_one_with_minimized_repro(self, capsys, monkeypatch):
        import repro.core.api as api

        real_pack = api.pack

        def corrupted_pack(*args, **kwargs):
            result = real_pack(*args, **kwargs)
            if result.vector.size:
                result.vector[0] += 1
            return result

        monkeypatch.setattr(api, "pack", corrupted_pack)
        assert main(["conform", "--cases", "25", "--seed", "4",
                     "--max-shrink", "60"]) == 1
        out = capsys.readouterr().out
        assert "failure(s)" in out
        assert "repro snippet" in out and "ConformanceCase.from_dict" in out
