"""The top-level ``python -m repro`` command line."""

import pytest

from repro.__main__ import main


class TestInfo:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "cm5" in out
        assert "pipeline" in out


class TestPackCommand:
    def test_default_pack(self, capsys):
        assert main(["pack", "--n", "256", "--procs", "4", "--block", "4"]) == 0
        out = capsys.readouterr().out
        assert "Size =" in out and "total" in out

    def test_2d_shape_and_phases(self, capsys):
        assert main([
            "pack", "--shape", "16x16", "--grid", "2x2", "--block", "2",
            "--scheme", "sss", "--phases",
        ]) == 0
        out = capsys.readouterr().out
        assert "pack.ranking.initial" in out

    def test_structured_mask(self, capsys):
        assert main(["pack", "--shape", "16x16", "--grid", "2x2",
                     "--block", "2", "--mask", "lt"]) == 0
        assert "Size = 120" in capsys.readouterr().out

    def test_redistribute_variant(self, capsys):
        assert main(["pack", "--n", "256", "--procs", "4", "--block",
                     "cyclic", "--redistribute", "selected"]) == 0

    def test_machine_profiles(self, capsys):
        for m in ("cm5", "cluster", "ideal"):
            assert main(["pack", "--n", "256", "--procs", "4",
                         "--block", "4", "--machine", m]) == 0


class TestUnpackCommand:
    def test_default_unpack(self, capsys):
        assert main(["unpack", "--n", "256", "--procs", "4", "--block", "4"]) == 0
        out = capsys.readouterr().out
        assert "UNPACK" in out and "Size =" in out


class TestExperimentsDelegate:
    def test_delegates(self, capsys):
        assert main(["experiments", "sensitivity"]) == 0
        out = capsys.readouterr().out
        assert "Sensitivity studies" in out


class TestErrors:
    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_no_command(self):
        with pytest.raises(SystemExit):
            main([])
