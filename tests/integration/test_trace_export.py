"""Chrome-trace export, metrics exporters and RunReport on a real PACK.

The golden workload is a 4-rank 1-D PACK; the key invariant is that the
exported phase slices are an *exact* partition of each rank's timeline,
so per-rank per-phase durations must sum to ``ProcStats.phase_times``.
"""

import csv
import json

import numpy as np
import pytest

import repro
from repro.obs import PhaseProfiler
from repro.obs.chrome_trace import validate_chrome_trace, write_chrome_trace
from repro.obs.exporters import snapshot_rows, write_metrics

NPROCS = 4


@pytest.fixture(scope="module")
def golden():
    """One 4-rank PACK run under a full profiler, shared by the module."""
    rng = np.random.default_rng(7)
    a = rng.random(256)
    m = rng.random(256) < 0.4
    profiler = PhaseProfiler()
    result = repro.pack(a, m, grid=(NPROCS,), block=16, profiler=profiler)
    return profiler, result


@pytest.fixture(scope="module")
def events(golden):
    profiler, _ = golden
    from repro.obs.chrome_trace import build_chrome_trace

    return build_chrome_trace(
        profiler.tracer, run=profiler.run, nprocs=NPROCS
    )


class TestChromeTraceSchema:
    def test_validates_and_serializes(self, events):
        n = validate_chrome_trace(events)
        assert n == len(events) > 0
        json.dumps(events)

    def test_one_thread_per_rank(self, events):
        names = [e for e in events if e["ph"] == "M" and e["name"] == "thread_name"]
        assert len(names) == NPROCS
        assert {e["args"]["name"] for e in names} == {
            f"rank {r}" for r in range(NPROCS)
        }
        assert {e["tid"] for e in names} == set(range(NPROCS))

    def test_phase_slices_match_phase_times(self, golden, events):
        profiler, _ = golden
        run = profiler.run
        tol = 1e-6  # us; the slices are exact up to float summation
        for r in range(NPROCS):
            sums: dict[str, float] = {}
            for e in events:
                if e["ph"] == "X" and e["tid"] == r:
                    sums[e["name"]] = sums.get(e["name"], 0.0) + e["dur"]
            expected = {
                name: t * 1e6
                for name, t in run.stats[r].phase_times.items()
                if t > 0
            }
            assert set(expected) <= set(sums)
            for name, want in expected.items():
                assert sums[name] == pytest.approx(want, abs=tol), (r, name)
            # ... and the slices partition the rank's whole timeline.
            assert sum(sums.values()) == pytest.approx(
                run.stats[r].clock * 1e6, abs=tol
            )

    def test_flow_events_cover_every_message(self, golden, events):
        profiler, _ = golden
        pairs = profiler.tracer.message_pairs()
        starts = [e for e in events if e["ph"] == "s"]
        ends = [e for e in events if e["ph"] == "f"]
        assert len(starts) == len(ends) == len(pairs) > 0
        assert {e["id"] for e in starts} == {e["id"] for e in ends}

    def test_write_object_form(self, golden, tmp_path):
        profiler, _ = golden
        path = tmp_path / "pack.trace.json"
        n = write_chrome_trace(
            path, profiler.tracer, run=profiler.run, nprocs=NPROCS,
            metadata={"workload": "golden"},
        )
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == n
        assert doc["otherData"]["workload"] == "golden"
        assert doc["displayTimeUnit"] == "ms"


class TestRunReport:
    def test_report_fields(self, golden):
        profiler, result = golden
        rep = profiler.report
        assert rep.op == "pack" and rep.nprocs == NPROCS
        assert rep.elapsed == pytest.approx(result.run.elapsed)
        assert rep.total_messages == result.run.total_messages
        assert rep.phase_times == result.run.phase_breakdown()
        assert 1.0 <= rep.load_imbalance

    def test_phase_time_prefix(self, golden):
        profiler, result = golden
        rep = profiler.report
        total_pack = sum(
            t for n, t in rep.phase_times.items() if n.split(".")[0] == "pack"
        )
        assert rep.phase_time("pack") == pytest.approx(total_pack)

    def test_traffic_matrix_totals(self, golden):
        profiler, _ = golden
        tm = profiler.report.traffic_matrix
        assert len(tm) == NPROCS and all(len(row) == NPROCS for row in tm)
        assert sum(map(sum, tm)) == profiler.run.total_words

    def test_to_json_and_summary(self, golden, tmp_path):
        profiler, _ = golden
        path = tmp_path / "report.json"
        profiler.report.to_json(path)
        doc = json.loads(path.read_text())
        assert doc["op"] == "pack" and doc["nprocs"] == NPROCS
        assert "metrics" in doc and "traffic_matrix_words" in doc
        text = profiler.report.summary()
        assert "pack" in text and "ranks" in text


class TestMetricsExport:
    def test_json_export(self, golden, tmp_path):
        profiler, _ = golden
        path = tmp_path / "m.json"
        write_metrics(path, profiler.metrics)
        doc = json.loads(path.read_text())
        assert doc["metrics"]["machine.sends"]["value"] > 0
        # pack.calls increments once per rank (the program is SPMD).
        assert doc["metrics"]["pack.calls"]["value"] == NPROCS

    def test_csv_export(self, golden, tmp_path):
        profiler, _ = golden
        path = tmp_path / "m.csv"
        write_metrics(path, profiler.metrics)
        rows = list(csv.reader(path.read_text().splitlines()))
        assert rows[0] == ["metric", "field", "value"]
        metrics = {r[0] for r in rows[1:]}
        assert "machine.sends" in metrics and "machine.message_words" in metrics

    def test_snapshot_rows_explode_histograms(self, golden):
        profiler, _ = golden
        rows = snapshot_rows(profiler.metrics)
        fields = {f for m, f, v in rows if m == "machine.message_words"}
        assert {"count", "sum", "mean"} <= fields
        assert any(f.startswith("bucket_le_") for f in fields)


class TestProfilerLifecycle:
    def test_flags_disable_components(self):
        p = PhaseProfiler(trace=False, metrics=False)
        assert p.tracer is None and p.metrics is None

    def test_unpack_and_ranking_reports(self):
        rng = np.random.default_rng(3)
        a = rng.random(128)
        m = rng.random(128) < 0.5
        p = PhaseProfiler()
        repro.unpack(rng.random(int(m.sum())), m, a, grid=(4,), block=8,
                     profiler=p)
        assert p.report.op == "unpack"
        p2 = PhaseProfiler()
        repro.ranking(m, grid=(4,), block=8, profiler=p2)
        assert p2.report.op == "ranking"

    def test_profiler_and_raw_observers_conflict(self):
        rng = np.random.default_rng(3)
        a = rng.random(64)
        m = rng.random(64) < 0.5
        from repro.machine import Tracer

        with pytest.raises(ValueError, match="not both"):
            repro.pack(a, m, grid=(4,), block=4,
                       profiler=PhaseProfiler(), tracer=Tracer())
