"""High-rank arrays: the paper's algorithms for d in {3, 4, 5}.

The paper evaluates d in {1, 2}; its algorithm is stated for arbitrary d.
These tests exercise the full pipeline at ranks the original could not
measure, including mixed distributions per dimension and single-processor
dimensions interleaved with parallel ones.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.machine import MachineSpec
from repro.serial import pack_reference, unpack_reference

SPEC = MachineSpec(tau=10e-6, mu=1e-6, delta=0.1e-6, name="test")


class TestRank4And5:
    def test_4d_pack_all_schemes(self):
        rng = np.random.default_rng(0)
        shape = (4, 4, 4, 8)
        a = rng.random(shape)
        m = rng.random(shape) < 0.4
        for scheme in ("sss", "css", "cms"):
            res = repro.pack(a, m, grid=(2, 1, 2, 2), block=(1, 2, 1, 2),
                             scheme=scheme, spec=SPEC)
            np.testing.assert_array_equal(res.vector, pack_reference(a, m))

    def test_5d_pack(self):
        rng = np.random.default_rng(1)
        shape = (2, 4, 2, 4, 4)
        a = rng.random(shape)
        m = rng.random(shape) < 0.5
        res = repro.pack(a, m, grid=(1, 2, 2, 1, 2), block="cyclic", spec=SPEC)
        np.testing.assert_array_equal(res.vector, pack_reference(a, m))

    def test_4d_unpack(self):
        rng = np.random.default_rng(2)
        shape = (2, 4, 4, 4)
        m = rng.random(shape) < 0.5
        v = rng.random(int(m.sum()))
        f = rng.random(shape)
        res = repro.unpack(v, m, f, grid=(2, 2, 1, 2), block=(1, 1, 2, 2),
                           scheme="css", spec=SPEC)
        np.testing.assert_array_equal(res.array, unpack_reference(v, m, f))

    def test_4d_ranking_phase_structure(self):
        rng = np.random.default_rng(3)
        shape = (4, 4, 4, 4)
        m = rng.random(shape) < 0.5
        res = repro.ranking(m, grid=(2, 2, 2, 2), block="cyclic", spec=SPEC)
        names = set(res.run.phase_names())
        # One PRS round per dimension.
        assert {f"ranking.prs.dim{i}" for i in range(4)} <= names

    def test_single_proc_dims_skip_prs(self):
        rng = np.random.default_rng(4)
        shape = (4, 8, 8)
        m = rng.random(shape) < 0.5
        res = repro.ranking(m, grid=(1, 2, 2), block="cyclic", spec=SPEC)
        names = set(res.run.phase_names())
        # Paper dim 2 (numpy axis 0) has one processor: no messages, but
        # the intermediate local substeps still run.
        assert "ranking.intermediate.dim2" in names


@settings(max_examples=15, deadline=None)
@given(
    p=st.tuples(st.integers(1, 2), st.integers(1, 2), st.integers(1, 2)),
    w=st.tuples(st.integers(1, 2), st.integers(1, 2), st.integers(1, 2)),
    density=st.floats(0, 1),
    scheme=st.sampled_from(["sss", "css", "cms"]),
    seed=st.integers(0, 99),
)
def test_property_3d_pack(p, w, density, scheme, seed):
    shape = tuple(pi * wi * 2 for pi, wi in zip(p, w))
    rng = np.random.default_rng(seed)
    a = rng.random(shape)
    m = rng.random(shape) < density
    res = repro.pack(a, m, grid=p, block=w, scheme=scheme, spec=SPEC)
    np.testing.assert_array_equal(res.vector, pack_reference(a, m))
