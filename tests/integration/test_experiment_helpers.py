"""Experiment-harness helpers: size scaling, caching, labels."""

import numpy as np
import pytest

from repro.experiments.common import (
    array_for,
    mask_for,
    mask_label,
    run_pack,
    run_unpack,
    scale_shape,
)


class TestScaleShape:
    def test_full_size_untouched(self):
        assert scale_shape((65536,), fast=False) == (65536,)
        assert scale_shape((512, 512), fast=False) == (512, 512)

    def test_fast_1d_divides_by_16(self):
        assert scale_shape((65536,), fast=True) == (4096,)

    def test_fast_2d_divides_per_edge(self):
        assert scale_shape((512, 512), fast=True) == (128, 128)

    def test_fast_floors(self):
        # Never shrinks below the floors that keep layouts valid.
        assert scale_shape((1024,), fast=True)[0] >= 256
        assert scale_shape((64, 64), fast=True)[0] >= 32


class TestCaching:
    def test_masks_cached_and_immutable(self):
        a = mask_for((256,), 0.5)
        b = mask_for((256,), 0.5)
        assert a is b
        with pytest.raises(ValueError):
            a[0] = True  # read-only

    def test_arrays_cached(self):
        assert array_for((256,)) is array_for((256,))

    def test_different_kinds_different_masks(self):
        assert not np.array_equal(mask_for((256,), 0.1), mask_for((256,), 0.9))


class TestLabels:
    def test_density_label(self):
        assert mask_label(0.3) == "30%"
        assert mask_label(0.9) == "90%"

    def test_structured_labels(self):
        assert mask_label("half") == "HALF"
        assert mask_label("lt") == "LT"


class TestRunHelpers:
    def test_run_pack_returns_result(self):
        res = run_pack((256,), (4,), 4, 0.5, "cms")
        assert res.size == int(mask_for((256,), 0.5).sum())

    def test_run_unpack_returns_result(self):
        res = run_unpack((256,), (4,), 4, 0.5, "css")
        assert res.array.shape == (256,)
