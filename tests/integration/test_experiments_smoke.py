"""Smoke tests: every experiment driver runs end to end (fast mode) and its
report contains the paper-shaped sections it promises."""

import pytest

from repro.experiments import ALL, fig3, fig4, fig5, prs, scaling, table1, table2


class TestExperimentRegistry:
    def test_all_experiments_registered(self):
        assert set(ALL) == {
            "table1",
            "table2",
            "fig3",
            "fig4",
            "fig5",
            "prs",
            "scaling",
            "sensitivity",
            "topology",
        }

    def test_every_module_has_run(self):
        for mod in ALL.values():
            assert callable(mod.run)


class TestTable1:
    def test_report(self):
        out = table1.run(fast=True)
        assert "Table I" in out
        assert "1-D arrays, P = 16" in out
        assert "2-D arrays, P = 4 x 4" in out
        assert "beta2" in out
        assert "(paper)" in out

    def test_data(self):
        d = table1.data(fast=True)
        assert "1d" in d and "2d" in d
        # beta1 > 1 everywhere.
        for table in d.values():
            for v in table.values():
                assert v > 1


class TestTable2:
    def test_report_and_shape(self):
        out = table2.run(fast=True)
        assert "Table II" in out
        assert "Red.1" in out and "Red.2" in out

    def test_1d_claims(self):
        # At paper-like 1-D sizes both pre-passes must lose to SSS.
        rows = table2.rows_for((16384,), (16,))
        for _d, sss, red1, red2 in rows:
            assert sss < red1 < red2


class TestFigures:
    def test_fig3_report(self):
        out = fig3.run(fast=True, densities=(0.5,))
        assert "Figure 3" in out
        assert "sss (ms)" in out

    def test_fig3_series_shapes(self):
        sweep, data = fig3.series((4096,), (16,), 0.9, block_points=4)
        # Local computation decreases as W grows, for every scheme.
        for name, ys in data.items():
            assert ys[0] > ys[-1], f"{name} did not fall with W"
        # SSS best at cyclic W=1; CMS best at block.
        assert data["sss"][0] < data["css"][0]
        assert data["cms"][-1] <= data["css"][-1]

    def test_fig4_report(self):
        out = fig4.run(fast=True, densities=(0.5,))
        assert "Figure 4" in out

    def test_fig5_report(self):
        out = fig5.run(fast=True, densities=(0.5,))
        assert "Figure 5" in out
        assert "cms" not in out  # UNPACK has no CMS curve


class TestPRS:
    def test_report(self):
        out = prs.run(fast=True)
        assert "direct (ms)" in out and "split (ms)" in out

    def test_algorithm_crossover(self):
        small = prs.prs_times(4, 16, spec=prs.SPEC.without_control_network())
        large = prs.prs_times(16, 4096, spec=prs.SPEC.without_control_network())
        assert small["direct"] < small["split"]
        assert large["split"] < large["direct"]


class TestScaling:
    def test_report(self):
        out = scaling.run(fast=True)
        assert "Weak scaling" in out

    def test_local_flat_comm_grows(self):
        rows = scaling.weak_scaling_rows(4096, 128, fast=True)
        # rows: [label, P, total, local, prs, m2m]
        small_1d, big_1d = rows[0], rows[1]
        assert big_1d[3] == pytest.approx(small_1d[3], rel=0.25)  # local flat
        assert big_1d[5] > 2 * small_1d[5]  # m2m grows with P


class TestTopology:
    def test_report(self):
        from repro.experiments import topology

        out = topology.run(fast=True)
        assert "crossbar" in out and "hypercube" in out

    def test_drift_orders_by_distance(self):
        from repro.experiments.topology import topology_rows

        rows = topology_rows((4096,), (16,), 16, tau_hop=5e-6)
        by_name = {name: (avg, total) for name, avg, total, _ in rows}
        assert by_name["crossbar"][1] <= by_name["hypercube"][1]
        assert by_name["hypercube"][1] <= by_name["ring"][1]


class TestSensitivity:
    def test_report(self):
        from repro.experiments import sensitivity

        out = sensitivity.run(fast=True)
        assert "Machine balance" in out and "Array rank study" in out

    def test_cms_margin_grows_with_mu(self):
        from repro.experiments.common import SPEC
        from repro.experiments.sensitivity import balance_rows

        rows = {r[0]: r for r in balance_rows((4096,), (16,), SPEC)}
        base_margin = rows["cm5 (baseline)"][1] - rows["cm5 (baseline)"][3]
        slow_margin = rows["1/4 bandwidth"][1] - rows["1/4 bandwidth"][3]
        assert slow_margin > base_margin  # sss - cms gap widens

    def test_higher_rank_costs_more_prs(self):
        from repro.experiments.sensitivity import rank_rows

        rows = rank_rows(4096)
        prs = {r[0].split()[0]: r[4] for r in rows}
        assert prs["1-D"] < prs["2-D"] < prs["3-D"]


class TestCLI:
    def test_main_runs(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_bad_name_rejected(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["bogus"])
