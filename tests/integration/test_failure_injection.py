"""Failure injection: the library must *detect* broken invariants, not
silently produce wrong answers.

These tests deliberately sabotage pieces of the pipeline — dying ranks,
corrupted messages, inconsistent SPMD calls, wrong-sized blocks — and
assert the failure surfaces as a loud, attributable error.
"""

import numpy as np
import pytest

import repro
from repro.core.api import pack
from repro.core.pack import pack_program
from repro.core.schemes import PackConfig
from repro.hpf import GridLayout
from repro.machine import DeadlockError, Machine, MachineSpec, ProgramError

SPEC = MachineSpec(tau=10e-6, mu=1e-6, delta=0.1e-6, name="test")


def _layout_and_blocks(n=64, p=4, w=2, density=0.5, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.random(n)
    m = rng.random(n) < density
    layout = GridLayout.create((n,), (p,), block=w)
    return layout, layout.scatter(a), layout.scatter(m), a, m


class TestDyingRanks:
    def test_rank_dies_before_communicating(self):
        layout, ab, mb, *_ = _layout_and_blocks()

        def prog(ctx, a, m):
            if ctx.rank == 2:
                return None  # dies silently before the collective phases
            result = yield from pack_program(ctx, a, m, layout, PackConfig())
            return result

        with pytest.raises(DeadlockError):
            Machine(4, SPEC).run(prog, rank_args=list(zip(ab, mb)))

    def test_rank_raises_mid_pack(self):
        layout, ab, mb, *_ = _layout_and_blocks()

        def prog(ctx, a, m):
            if ctx.rank == 1:
                raise RuntimeError("node failure")
            result = yield from pack_program(ctx, a, m, layout, PackConfig())
            return result

        with pytest.raises(ProgramError) as exc:
            Machine(4, SPEC).run(prog, rank_args=list(zip(ab, mb)))
        assert exc.value.rank == 1


class TestCorruptedData:
    def test_validation_catches_corrupted_block(self):
        """If a rank's local data is silently corrupted after scatter, the
        host-level oracle validation must fire."""
        rng = np.random.default_rng(1)
        a = rng.random(64)
        m = rng.random(64) < 0.5

        original_local_block = GridLayout.local_block
        corrupted = {"done": False}

        def corrupting_local_block(self, arr, rank, copy=True):
            block = original_local_block(self, arr, rank, copy=copy)
            if not corrupted["done"] and rank == 0 and block.dtype == np.float64:
                corrupted["done"] = True
                block = block + 1.0  # corrupt rank 0's array block only
            return block

        GridLayout.local_block = corrupting_local_block
        try:
            with pytest.raises(AssertionError, match="mismatch"):
                pack(a, m, grid=4, block=2, scheme="cms", spec=SPEC)
        finally:
            GridLayout.local_block = original_local_block

    def test_wrong_block_shape_rejected_immediately(self):
        layout, ab, mb, *_ = _layout_and_blocks()

        def prog(ctx, a, m):
            bad = a[:-1]  # wrong local shape
            result = yield from pack_program(ctx, bad, m, layout, PackConfig())
            return result

        with pytest.raises(ProgramError):
            Machine(4, SPEC).run(prog, rank_args=list(zip(ab, mb)))


class TestInconsistentSPMD:
    def test_divergent_scheme_still_correct_or_detected(self):
        """Ranks disagreeing on the scheme is an SPMD bug; schemes share
        wire formats only within a scheme, so the run must either deadlock
        or raise — never return a wrong vector silently."""
        layout, ab, mb, a, m = _layout_and_blocks()

        def prog(ctx, ab_, mb_):
            scheme = "cms" if ctx.rank == 0 else "css"
            result = yield from pack_program(
                ctx, ab_, mb_, layout, PackConfig(scheme=scheme)
            )
            return result

        with pytest.raises((DeadlockError, ProgramError, Exception)):
            res = Machine(4, SPEC).run(prog, rank_args=list(zip(ab, mb)))
            # If it completed, the gathered vector must NOT silently match:
            # decoding segment messages as pairs garbles positions.
            from repro.core.pack import result_vector_layout

            vec = result_vector_layout(res.results[0].size, 4, PackConfig())
            got = vec.gather([r.vector_block for r in res.results])
            if np.array_equal(got, repro.pack_reference(a, m)):
                raise AssertionError("divergent schemes produced a silent pass")
            raise RuntimeError("detected: divergent result")

    def test_divergent_prs_choice_detected(self):
        layout, ab, mb, *_ = _layout_and_blocks()

        def prog(ctx, ab_, mb_):
            prs = "direct" if ctx.rank == 0 else "split"
            result = yield from pack_program(
                ctx, ab_, mb_, layout, PackConfig(prs=prs)
            )
            return result

        with pytest.raises((DeadlockError, ProgramError, Exception)):
            Machine(4, SPEC.without_control_network()).run(
                prog, rank_args=list(zip(ab, mb))
            )
            raise RuntimeError("detected")


class TestResourceSanity:
    def test_empty_machine_configs_rejected(self):
        with pytest.raises(ValueError):
            Machine(0, SPEC)
        with pytest.raises(ValueError):
            GridLayout.create((0,), (1,), block=1)

    def test_undersized_unpack_vector_rejected_on_every_rank(self):
        m = np.ones(16, dtype=bool)
        with pytest.raises(Exception):
            repro.unpack(np.zeros(4), m, np.zeros(16), grid=4, block=2, spec=SPEC)
