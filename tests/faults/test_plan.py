"""FaultPlan validation, noop detection, and injector determinism."""

import pytest

from repro.faults import Corrupted, FaultPlan
from repro.obs import MetricsRegistry


class TestPlanValidation:
    def test_defaults_are_noop(self):
        plan = FaultPlan()
        assert plan.is_noop
        assert not plan.faults_messages

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(dup_rate=-0.1)

    def test_crash_steps_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(crash_at={0: -1})

    def test_straggler_factors_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(stragglers={0: 0.5})

    def test_any_fault_kind_defeats_noop(self):
        assert not FaultPlan(drop_rate=0.1).is_noop
        assert not FaultPlan(crash_at={1: 0}).is_noop
        assert not FaultPlan(stragglers={1: 2.0}).is_noop

    def test_describe_mentions_active_faults(self):
        text = FaultPlan(seed=3, drop_rate=0.25).describe()
        assert "drop" in text and "0.25" in text

    def test_mappings_frozen(self):
        plan = FaultPlan(crash_at={1: 2})
        with pytest.raises(TypeError):
            plan.crash_at[2] = 0


class TestInjectorDecisions:
    def _decide(self, plan, n=200):
        inj = plan.build(nprocs=4)
        return [
            len(inj.deliveries(0, 1, tag=0, payload=i, words=4)) for i in range(n)
        ]

    def test_same_seed_same_decisions(self):
        a = self._decide(FaultPlan(seed=5, drop_rate=0.3, dup_rate=0.2))
        b = self._decide(FaultPlan(seed=5, drop_rate=0.3, dup_rate=0.2))
        assert a == b

    def test_different_seed_differs(self):
        a = self._decide(FaultPlan(seed=5, drop_rate=0.3))
        b = self._decide(FaultPlan(seed=6, drop_rate=0.3))
        assert a != b

    def test_fixed_field_order(self):
        # The drop pattern must be identical whether or not other fault
        # kinds are enabled: the stream is consumed in fixed field order.
        a = self._decide(FaultPlan(seed=9, drop_rate=0.3))
        b = [
            min(n, 1)  # ignore duplicates, look only at dropped-or-not
            for n in self._decide(FaultPlan(seed=9, drop_rate=0.3, dup_rate=0.5))
        ]
        assert [min(n, 1) for n in a] == b

    def test_drop_rate_roughly_honoured(self):
        fates = self._decide(FaultPlan(seed=0, drop_rate=0.4), n=2000)
        dropped = fates.count(0)
        assert 0.3 < dropped / 2000 < 0.5

    def test_corruption_wraps_payload(self):
        inj = FaultPlan(seed=1, corrupt_rate=1.0).build(nprocs=2)
        copies = inj.deliveries(0, 1, tag=0, payload="data", words=4)
        payload, _delay, corrupted = copies[0]
        assert isinstance(payload, Corrupted)
        assert payload.original == "data"
        assert corrupted

    def test_delay_adds_latency(self):
        inj = FaultPlan(seed=1, delay_rate=1.0, delay_seconds=0.5).build(2)
        [(_, delay, _c)] = inj.deliveries(0, 1, tag=0, payload=1, words=4)
        assert delay == 0.5

    def test_min_words_filter(self):
        inj = FaultPlan(seed=1, drop_rate=1.0, min_words=10).build(2)
        assert len(inj.deliveries(0, 1, tag=0, payload=1, words=4)) == 1
        assert len(inj.deliveries(0, 1, tag=0, payload=1, words=10)) == 0

    def test_target_tags_filter(self):
        inj = FaultPlan(seed=1, drop_rate=1.0, target_tags=(7,)).build(2)
        assert len(inj.deliveries(0, 1, tag=3, payload=1, words=4)) == 1
        assert len(inj.deliveries(0, 1, tag=7, payload=1, words=4)) == 0

    def test_metrics_counted(self):
        reg = MetricsRegistry()
        inj = FaultPlan(seed=1, drop_rate=1.0).build(2, metrics=reg)
        inj.deliveries(0, 1, tag=0, payload=1, words=4)
        assert reg.snapshot()["faults.drops"]["value"] == 1

    def test_straggler_scales_dense(self):
        inj = FaultPlan(seed=0, stragglers={2: 3.0}).build(4)
        assert inj.work_scales == [1.0, 1.0, 3.0, 1.0]
        assert FaultPlan(seed=0, drop_rate=0.1).build(4).work_scales is None
