"""Reliable transport: checksums, retransmit, dedup, corruption rejection."""

import numpy as np
import pytest

from repro.faults import Corrupted, FaultPlan
from repro.faults.reliable import (
    RELIABLE_TAG,
    ReliabilityConfig,
    ReliableEndpoint,
    checksum,
)
from repro.machine import Machine, MachineSpec, ProgramError
from repro.machine.errors import ReliabilityError
from repro.obs import MetricsRegistry

SPEC = MachineSpec(tau=10e-6, mu=1e-6, delta=0.1e-6, name="test")


def _counter(reg, name):
    entry = reg.snapshot().get(name)
    return 0 if entry is None else entry["value"]


class TestChecksum:
    def test_deterministic_and_type_sensitive(self):
        a = np.arange(16, dtype=np.int64)
        assert checksum(a) == checksum(a.copy())
        assert checksum(a) != checksum(a.astype(np.float64))
        assert checksum(a) != checksum(a.reshape(4, 4))

    def test_covers_library_payload_shapes(self):
        payloads = [
            None, 0, 1.5, "text", b"raw",
            (1, np.arange(3)), [1, 2], {"k": np.ones(2), 3: "v"},
        ]
        digests = [checksum(p) for p in payloads]
        assert len(set(digests)) == len(digests)
        assert all(0 <= d <= 0xFFFFFFFF for d in digests)

    def test_corrupted_never_verifies(self):
        for payload in [np.arange(8), "x", (1, 2), None]:
            assert checksum(Corrupted(payload)) != checksum(payload)


class TestConfig:
    def test_coerce(self):
        assert ReliabilityConfig.coerce(None) is None
        assert ReliabilityConfig.coerce(False) is None
        assert ReliabilityConfig.coerce(True) == ReliabilityConfig()
        cfg = ReliabilityConfig(max_retries=3)
        assert ReliabilityConfig.coerce(cfg) is cfg
        with pytest.raises(TypeError):
            ReliabilityConfig.coerce(7)

    def test_validation(self):
        with pytest.raises(ValueError):
            ReliabilityConfig(max_retries=-1)
        with pytest.raises(ValueError):
            ReliabilityConfig(timeout=0.0)

    def test_endpoint_cached_on_context(self):
        cfg = ReliabilityConfig()
        seen = []

        def prog(ctx):
            a = ReliableEndpoint.of(ctx, cfg)
            b = ReliableEndpoint.of(ctx, cfg)
            seen.append(a is b)
            return None
            yield  # pragma: no cover

        Machine(1, SPEC).run(prog)
        assert seen == [True]


def _ping(plan, config=None, payload="hello", metrics=None):
    """Rank 0 reliably sends ``payload`` to rank 1; returns rank 1's copy."""
    cfg = config or ReliabilityConfig()

    def prog(ctx):
        endpoint = ReliableEndpoint.of(ctx, cfg)
        if ctx.rank == 0:
            yield from endpoint.send(1, payload, words=8)
            return None
        got = yield from endpoint.recv(0)
        return got

    res = Machine(2, SPEC, faults=plan, metrics=metrics).run(prog)
    return res.results[1]


class TestStopAndWait:
    def test_clean_network_no_retransmits(self):
        reg = MetricsRegistry()
        assert _ping(None, metrics=reg) == "hello"
        assert _counter(reg, "reliable.retransmits") == 0
        assert _counter(reg, "reliable.timeouts") == 0
        assert _counter(reg, "machine.auto_acks") == 1

    def test_drop_triggers_retransmit(self):
        # Seed chosen so at least one data copy is dropped; the timed
        # recv fires (conservatively) and the retransmit gets through.
        reg = MetricsRegistry()
        plan = FaultPlan(seed=3, drop_rate=0.6)
        assert _ping(plan, metrics=reg) == "hello"
        assert _counter(reg, "reliable.retransmits") >= 1
        assert _counter(reg, "reliable.timeouts") >= 1

    def test_duplicate_deduped(self):
        # Two back-to-back payloads: the duplicate of the first is still
        # in the mailbox when the receiver reads for the second, so the
        # dedup path actually runs (a lone recv returns on the first
        # copy and never parses its duplicate).
        reg = MetricsRegistry()
        cfg = ReliabilityConfig()

        def prog(ctx):
            endpoint = ReliableEndpoint.of(ctx, cfg)
            if ctx.rank == 0:
                yield from endpoint.send(1, "first", words=4)
                yield from endpoint.send(1, "second", words=4)
                return None
            a = yield from endpoint.recv(0)
            b = yield from endpoint.recv(0)
            return (a, b)

        plan = FaultPlan(seed=1, dup_rate=1.0)
        res = Machine(2, SPEC, faults=plan, metrics=reg).run(prog)
        assert res.results[1] == ("first", "second")
        assert _counter(reg, "reliable.dup_dropped") >= 1

    def test_corruption_rejected_by_checksum(self):
        # Every copy arrives damaged until retries run out of luck — use a
        # 50% corruption rate so a clean copy eventually lands.
        reg = MetricsRegistry()
        plan = FaultPlan(seed=3, corrupt_rate=0.5)
        payload = np.arange(32)
        got = _ping(plan, payload=payload, metrics=reg)
        assert np.array_equal(got, payload)
        assert _counter(reg, "reliable.corrupt_rejected") >= 1

    def test_retries_exhausted_raises(self):
        plan = FaultPlan(seed=0, drop_rate=1.0)
        cfg = ReliabilityConfig(max_retries=2)
        with pytest.raises(ProgramError) as exc:
            _ping(plan, config=cfg)
        cause = exc.value.__cause__
        assert isinstance(cause, ReliabilityError)
        assert cause.attempts == 3
        assert (cause.rank, cause.dest) == (0, 1)

    def test_ping_pong_survives_loss_across_seeds(self):
        cfg = ReliabilityConfig()

        def prog(ctx):
            endpoint = ReliableEndpoint.of(ctx, cfg)
            if ctx.rank == 0:
                yield from endpoint.send(1, ("ping", 1), words=4)
                return (yield from endpoint.recv(1))
            got = yield from endpoint.recv(0)
            yield from endpoint.send(0, ("pong", got[1] + 1), words=4)
            return got

        for seed in range(6):
            plan = FaultPlan(seed=seed, drop_rate=0.3, dup_rate=0.1)
            res = Machine(2, SPEC, faults=plan).run(prog)
            assert res.results == [("pong", 2), ("ping", 1)]

    def test_acks_flow_after_receiver_finished(self):
        # The receiver's program ends right after its recv; the transport
        # ack for any retransmitted copy is generated by the engine (the
        # node's NIC), so the sender still terminates.  This is the
        # two-army hazard that program-level acks cannot solve.
        cfg = ReliabilityConfig()

        def prog(ctx):
            endpoint = ReliableEndpoint.of(ctx, cfg)
            if ctx.rank == 0:
                yield from endpoint.send(1, "final", words=4)
                return "sent"
            return (yield from endpoint.recv(0))

        retransmitted = 0
        for seed in range(8):
            reg = MetricsRegistry()
            plan = FaultPlan(seed=seed, drop_rate=0.4)
            res = Machine(2, SPEC, faults=plan, metrics=reg).run(prog)
            assert res.results == ["sent", "final"]
            retransmitted += _counter(reg, "reliable.retransmits")
        assert retransmitted >= 1  # the sweep did exercise recovery


class TestExchange:
    def _all_to_all(self, nprocs, plan, metrics=None, config=None):
        cfg = config or ReliabilityConfig()

        def prog(ctx):
            endpoint = ReliableEndpoint.of(ctx, cfg)
            outgoing = {
                d: ctx.rank * 100 + d for d in range(ctx.size) if d != ctx.rank
            }
            words = {d: 2 for d in outgoing}
            got = yield from endpoint.exchange(
                outgoing, words, expected=range(ctx.size)
            )
            return got

        res = Machine(nprocs, SPEC, faults=plan, metrics=metrics).run(prog)
        for rank, got in enumerate(res.results):
            assert got == {
                s: s * 100 + rank for s in range(nprocs) if s != rank
            }, f"rank {rank} received wrong payloads"
        return res

    def test_clean_network(self):
        reg = MetricsRegistry()
        self._all_to_all(4, None, metrics=reg)
        assert _counter(reg, "reliable.retransmits") == 0

    def test_lossy_network_across_seeds(self):
        # A generous retry budget: at these rates a packet can lose many
        # rounds in a row (seed 0 loses nine straight on one channel with
        # the default budget of 8 — that raise is correct behavior, but
        # here the point is delivery under survivable loss).
        cfg = ReliabilityConfig(max_retries=24)
        for seed in range(4):
            plan = FaultPlan(seed=seed, drop_rate=0.2, dup_rate=0.05,
                             corrupt_rate=0.05)
            self._all_to_all(4, plan, config=cfg)

    def test_exchange_is_deterministic(self):
        plan = FaultPlan(seed=7, drop_rate=0.25)
        a = self._all_to_all(4, plan)
        b = self._all_to_all(4, plan)
        assert [s.clock for s in a.stats] == [s.clock for s in b.stats]

    def test_sequence_numbers_span_rounds(self):
        # Two successive exchanges on one cached endpoint must not reuse
        # sequence numbers, or round 2's data would be deduped as round
        # 1's duplicates.
        cfg = ReliabilityConfig()

        def prog(ctx):
            endpoint = ReliableEndpoint.of(ctx, cfg)
            peer = 1 - ctx.rank
            first = yield from endpoint.exchange(
                {peer: ("round", 1, ctx.rank)}, {peer: 2}, expected=[peer]
            )
            second = yield from endpoint.exchange(
                {peer: ("round", 2, ctx.rank)}, {peer: 2}, expected=[peer]
            )
            return (first[peer], second[peer])

        res = Machine(2, SPEC, faults=FaultPlan(seed=1, dup_rate=0.5)).run(prog)
        for rank, (first, second) in enumerate(res.results):
            assert first == ("round", 1, 1 - rank)
            assert second == ("round", 2, 1 - rank)
