"""A/B checks of the lru-cached layout index maps against uncached
scalar-map derivations, across the edge cases the caches must not blur:
zero-size local tiles, CYCLIC(1) with more processors than elements, and
ragged trailing blocks of the vector layout."""

import numpy as np
import pytest

from repro.hpf import GridLayout
from repro.hpf.dimlayout import DimLayout, _dim_globals
from repro.hpf.vector import VectorLayout


def _dim_cases():
    # Every (n, p, w) with P*W | N, n up to 24, p up to 4, w up to 4.
    for n in (1, 2, 4, 6, 8, 12, 16, 24):
        for p in (1, 2, 3, 4):
            for w in (1, 2, 3, 4):
                if n % (p * w) == 0:
                    yield n, p, w


class TestDimLayoutReference:
    @pytest.mark.parametrize("n,p,w", list(_dim_cases()))
    def test_cached_globals_match_reference(self, n, p, w):
        layout = DimLayout(n=n, p=p, w=w)
        for rank in range(p):
            cached = layout.globals_(rank)
            assert np.array_equal(cached, layout.globals_reference(rank))
            # The cache returns a read-only view: callers cannot corrupt it.
            assert not cached.flags.writeable

    def test_cache_not_confused_by_similar_keys(self):
        # (n=8,p=2,w=2) and (n=8,p=4,w=1) have equal local extents but
        # different maps; a mis-keyed cache would cross them.
        a = DimLayout(n=8, p=2, w=2)
        b = DimLayout(n=8, p=4, w=1)
        assert a.l == 4 and b.l == 2
        assert not np.array_equal(a.globals_(1)[: b.l], b.globals_(1))
        assert np.array_equal(a.globals_(1), a.globals_reference(1))
        assert np.array_equal(b.globals_(1), b.globals_reference(1))

    def test_cache_function_is_pure(self):
        first = _dim_globals(12, 2, 3, 1).copy()
        again = _dim_globals(12, 2, 3, 1)
        assert np.array_equal(first, again)


class TestVectorLayoutReference:
    @pytest.mark.parametrize("n", [0, 1, 2, 3, 5, 7, 8, 13, 16, 27])
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 5])
    @pytest.mark.parametrize("w", [1, 2, 3])
    def test_cached_globals_match_reference(self, n, p, w):
        layout = VectorLayout(n=n, p=p, w=w)
        total = 0
        for rank in range(p):
            cached = layout.globals_(rank)
            ref = layout.globals_reference(rank)
            assert np.array_equal(cached, ref), (n, p, w, rank)
            assert cached.size == layout.local_size(rank)
            total += cached.size
        assert total == n  # every element owned exactly once

    def test_cyclic1_more_procs_than_elements(self):
        # CYCLIC(1), P=8, n=3: ranks 3..7 own nothing — zero-size tiles.
        layout = VectorLayout.cyclic(n=3, p=8, w=1)
        for rank in range(8):
            expected = [rank] if rank < 3 else []
            assert layout.globals_(rank).tolist() == expected
            assert layout.globals_reference(rank).tolist() == expected
            assert layout.local_size(rank) == len(expected)

    def test_zero_length_vector(self):
        layout = VectorLayout.block(n=0, p=4)
        for rank in range(4):
            assert layout.local_size(rank) == 0
            assert layout.globals_(rank).size == 0
            assert layout.globals_reference(rank).size == 0

    def test_scatter_gather_roundtrip_on_ragged_layouts(self):
        for n, p, w in [(13, 4, 2), (5, 3, 1), (27, 5, 3), (3, 8, 1)]:
            layout = VectorLayout(n=n, p=p, w=w)
            v = np.arange(n, dtype=np.float64)
            assert np.array_equal(layout.gather(layout.scatter(v)), v)

    def test_reference_rejects_bad_rank(self):
        layout = VectorLayout.block(n=8, p=2)
        with pytest.raises(ValueError, match="rank"):
            layout.globals_reference(2)


class TestGridFlatIndexReference:
    @pytest.mark.parametrize("shape,grid,block", [
        ((8,), (4,), 2),
        ((16,), (4,), "cyclic"),
        ((4, 8), (2, 2), [2, "cyclic"]),
        ((4, 4, 8), (2, 2, 2), ["block", "cyclic", 2]),
    ])
    def test_flat_index_matches_scalar_walk(self, shape, grid, block):
        layout = GridLayout.create(shape, grid, block)
        # Uncached derivation: scatter the identity flat index array.
        flat = np.arange(int(np.prod(shape)), dtype=np.int64).reshape(shape)
        blocks = layout.scatter(flat, copy=False)
        for rank in range(layout.nprocs):
            assert np.array_equal(layout.global_flat_index(rank), blocks[rank])
