"""DistributedArray container and alignment checks."""

import numpy as np
import pytest

from repro.hpf import (
    DistributedArray,
    GridLayout,
    check_aligned,
    check_conformable,
)


class TestDistributedArray:
    def test_from_global_roundtrip(self):
        layout = GridLayout.create(shape=(8, 8), grid=(2, 2), block=(2, 2))
        a = np.arange(64.0).reshape(8, 8)
        da = DistributedArray.from_global(a, layout)
        np.testing.assert_array_equal(da.to_global(), a)
        assert da.shape == (8, 8)
        assert da.dtype == np.float64

    def test_local_blocks_have_layout_shape(self):
        layout = GridLayout.create(shape=(8, 8), grid=(2, 4), block="cyclic")
        da = DistributedArray.from_global(np.zeros((8, 8)), layout)
        for r in range(8):
            assert da.local(r).shape == layout.local_shape

    def test_from_locals_validates(self):
        layout = GridLayout.create(shape=(8,), grid=(2,), block="block")
        with pytest.raises(ValueError):
            DistributedArray.from_locals([np.zeros(4)], layout)
        with pytest.raises(ValueError):
            DistributedArray.from_locals([np.zeros(3), np.zeros(4)], layout)

    def test_local_is_live_reference(self):
        layout = GridLayout.create(shape=(8,), grid=(2,), block="block")
        da = DistributedArray.from_global(np.zeros(8), layout)
        da.local(0)[:] = 7
        assert da.to_global()[0] == 7


class TestAlignment:
    def test_conformable(self):
        check_conformable(np.zeros((3, 4)), np.ones((3, 4)))
        with pytest.raises(ValueError):
            check_conformable(np.zeros((3, 4)), np.zeros((4, 3)))

    def test_aligned(self):
        a = GridLayout.create(shape=(8, 8), grid=(2, 2), block=(2, 2))
        b = GridLayout.create(shape=(8, 8), grid=(2, 2), block=(2, 2))
        check_aligned(a, b)

    def test_misaligned_block(self):
        a = GridLayout.create(shape=(8, 8), grid=(2, 2), block=(2, 2))
        b = GridLayout.create(shape=(8, 8), grid=(2, 2), block=(4, 2))
        with pytest.raises(ValueError):
            check_aligned(a, b)

    def test_misaligned_rank(self):
        a = GridLayout.create(shape=(8,), grid=(2,), block="block")
        b = GridLayout.create(shape=(8, 1), grid=(2, 1), block="block")
        with pytest.raises(ValueError):
            check_aligned(a, b)
