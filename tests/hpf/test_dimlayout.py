"""DimLayout index algebra: scalar and vectorized maps, paper invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hpf import BLOCK, CYCLIC, BlockCyclic, DimLayout, resolve_dist


class TestConstruction:
    def test_basic_quantities(self):
        # The paper's running example: N=16, P=4, W=2.
        dim = DimLayout(n=16, p=4, w=2)
        assert dim.s == 8  # tile size
        assert dim.t == 2  # tiles
        assert dim.l == 4  # local extent

    def test_divisibility_enforced(self):
        with pytest.raises(ValueError):
            DimLayout(n=10, p=4, w=1)
        with pytest.raises(ValueError):
            DimLayout(n=16, p=4, w=3)

    def test_block_and_cyclic_recognition(self):
        assert DimLayout(n=16, p=4, w=4).is_block
        assert DimLayout(n=16, p=4, w=1).is_cyclic
        mid = DimLayout(n=16, p=4, w=2)
        assert not mid.is_block and not mid.is_cyclic

    def test_positive_parameters_required(self):
        with pytest.raises(ValueError):
            DimLayout(n=0, p=1, w=1)
        with pytest.raises(ValueError):
            DimLayout(n=4, p=-1, w=1)


class TestScalarMaps:
    def test_paper_figure1_ownership(self):
        # Figure 1: A(16) block-cyclic(2) on 4 procs.
        # Global:   0 1 | 2 3 | 4 5 | 6 7 | 8 9 | 10 11 | 12 13 | 14 15
        # Owner:    0 0   1 1   2 2   3 3   0 0    1  1    2  2    3  3
        dim = DimLayout(n=16, p=4, w=2)
        owners = [dim.owner(g) for g in range(16)]
        assert owners == [0, 0, 1, 1, 2, 2, 3, 3, 0, 0, 1, 1, 2, 2, 3, 3]

    def test_local_indices_tile_major(self):
        dim = DimLayout(n=16, p=4, w=2)
        # Processor 1 owns globals 2,3 (tile 0) and 10,11 (tile 1).
        assert [dim.local(g) for g in (2, 3, 10, 11)] == [0, 1, 2, 3]

    def test_global_inverts_local(self):
        dim = DimLayout(n=24, p=3, w=2)
        for g in range(24):
            p = dim.owner(g)
            l = dim.local(g)
            assert dim.global_(p, l) == g

    def test_range_checks(self):
        dim = DimLayout(n=8, p=2, w=2)
        with pytest.raises(ValueError):
            dim.owner(8)
        with pytest.raises(ValueError):
            dim.owner(-1)
        with pytest.raises(ValueError):
            dim.global_(2, 0)
        with pytest.raises(ValueError):
            dim.global_(0, 4)


class TestVectorizedMaps:
    def test_matches_scalar(self):
        dim = DimLayout(n=48, p=4, w=3)
        g = np.arange(48)
        np.testing.assert_array_equal(dim.owners(g), [dim.owner(x) for x in g])
        np.testing.assert_array_equal(dim.tiles(g), [dim.tile(x) for x in g])
        np.testing.assert_array_equal(dim.locals_(g), [dim.local(x) for x in g])

    def test_globals_sorted_and_complete(self):
        dim = DimLayout(n=32, p=4, w=2)
        seen = np.concatenate([dim.globals_(p) for p in range(4)])
        assert len(seen) == 32
        assert set(seen.tolist()) == set(range(32))
        for p in range(4):
            g = dim.globals_(p)
            assert np.all(np.diff(g) > 0)  # strictly increasing

    def test_local_tiles(self):
        dim = DimLayout(n=16, p=2, w=2)  # L=8, T=4
        np.testing.assert_array_equal(
            dim.local_tiles(np.arange(8)), [0, 0, 1, 1, 2, 2, 3, 3]
        )


@settings(max_examples=200, deadline=None)
@given(
    p=st.integers(1, 8),
    w=st.integers(1, 8),
    t=st.integers(1, 8),
)
def test_property_global_local_bijection(p, w, t):
    """global -> (owner, local) -> global is the identity, for any layout."""
    dim = DimLayout(n=p * w * t, p=p, w=w)
    g = np.arange(dim.n)
    owners = dim.owners(g)
    locs = dim.locals_(g)
    for x in range(dim.n):
        assert dim.global_(int(owners[x]), int(locs[x])) == x
    # Every processor owns exactly L elements.
    counts = np.bincount(owners, minlength=p)
    assert np.all(counts == dim.l)


@settings(max_examples=100, deadline=None)
@given(p=st.integers(1, 6), w=st.integers(1, 6), t=st.integers(1, 6))
def test_property_block_boundaries(p, w, t):
    """Consecutive globals within one block share an owner; block edges rotate."""
    dim = DimLayout(n=p * w * t, p=p, w=w)
    g = np.arange(dim.n - 1) if dim.n > 1 else np.array([], dtype=int)
    same_block = (g % w) != (w - 1)
    owners = dim.owners(np.arange(dim.n))
    if g.size:
        np.testing.assert_array_equal(
            owners[g[same_block]], owners[g[same_block] + 1]
        )


class TestDistDescriptors:
    def test_block_resolution(self):
        assert BLOCK.block_size(64, 4) == 16
        with pytest.raises(ValueError):
            BLOCK.block_size(10, 4)

    def test_cyclic_resolution(self):
        assert CYCLIC.block_size(64, 4) == 1

    def test_block_cyclic_resolution(self):
        assert BlockCyclic(8).block_size(64, 4) == 8

    def test_block_cyclic_validation(self):
        with pytest.raises(ValueError):
            BlockCyclic(0)

    def test_resolve_dist_front_door(self):
        assert resolve_dist(4, 64, 4) == 4
        assert resolve_dist("block", 64, 4) == 16
        assert resolve_dist("cyclic", 64, 4) == 1
        assert resolve_dist(BLOCK, 64, 4) == 16
        with pytest.raises(ValueError):
            resolve_dist("diagonal", 64, 4)
        with pytest.raises(ValueError):
            resolve_dist(0, 64, 4)

    def test_repr(self):
        assert repr(BLOCK) == "BLOCK"
        assert repr(CYCLIC) == "CYCLIC"
        assert repr(BlockCyclic(3)) == "CYCLIC(3)"
