"""local_block: the single-rank fast path under scatter.

Execution backends whose ranks can see the global array (shared memory)
extract only their own block; the contract is strict equality with
``scatter(...)[rank]`` for every rank and layout, plus view (zero-copy)
semantics where the layout is contiguous.
"""

import numpy as np
import pytest

from repro.hpf import BLOCK, CYCLIC, GridLayout, VectorLayout


GRID_LAYOUTS = [
    ("1d_block", dict(shape=(16,), grid=(4,), block="block")),
    ("1d_cyclic", dict(shape=(16,), grid=(4,), block="cyclic")),
    ("1d_cyclic_k", dict(shape=(24,), grid=(4,), block=3)),
    ("2d_block", dict(shape=(8, 12), grid=(2, 3), block="block")),
    ("2d_mixed", dict(shape=(8, 8), grid=(2, 2), block=(BLOCK, CYCLIC))),
]


@pytest.mark.parametrize("name,kw", GRID_LAYOUTS, ids=[g[0] for g in GRID_LAYOUTS])
def test_grid_local_block_equals_scatter(name, kw):
    layout = GridLayout.create(**kw)
    arr = np.arange(int(np.prod(kw["shape"]))).reshape(kw["shape"])
    blocks = layout.scatter(arr)
    for rank in range(layout.nprocs):
        np.testing.assert_array_equal(layout.local_block(arr, rank), blocks[rank])
        np.testing.assert_array_equal(
            layout.local_block(arr, rank, copy=False), blocks[rank]
        )


def test_grid_all_block_nocopy_is_view():
    layout = GridLayout.create(shape=(8, 8), grid=(2, 2), block="block")
    arr = np.zeros((8, 8))
    block = layout.local_block(arr, 3, copy=False)
    assert np.shares_memory(block, arr)
    # Default copy=True materializes.
    assert not np.shares_memory(layout.local_block(arr, 3), arr)


def test_grid_local_block_shape_mismatch():
    layout = GridLayout.create(shape=(8,), grid=(2,), block="block")
    with pytest.raises(ValueError, match="shape"):
        layout.local_block(np.zeros(9), 0)


@pytest.mark.parametrize(
    "vec",
    [
        VectorLayout.block(n=12, p=4),
        VectorLayout.block(n=10, p=4),  # ragged
        VectorLayout.block(n=2, p=4),   # empty trailing ranks
        VectorLayout.cyclic(n=10, p=3),
    ],
    ids=["block_even", "block_ragged", "block_empty_tail", "cyclic"],
)
def test_vector_local_block_equals_scatter(vec):
    v = np.arange(vec.n, dtype=np.float64)
    blocks = vec.scatter(v)
    for rank in range(vec.p):
        np.testing.assert_array_equal(vec.local_block(v, rank), blocks[rank])
        np.testing.assert_array_equal(
            vec.local_block(v, rank, copy=False), blocks[rank]
        )


def test_vector_block_nocopy_is_view():
    vec = VectorLayout.block(n=12, p=4)
    v = np.zeros(12)
    block = vec.local_block(v, 1, copy=False)
    assert block.size and np.shares_memory(block, v)
    assert not np.shares_memory(vec.local_block(v, 1), v)


def test_vector_local_block_shape_mismatch():
    vec = VectorLayout.block(n=8, p=2)
    with pytest.raises(ValueError):
        vec.local_block(np.zeros(7), 0)
