"""Redistribution: communication detection and full SPMD exchange."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hpf import DistributedArray, GridLayout, detect_recvs, detect_sends
from repro.hpf.redistribute import redistribute
from repro.machine import Machine, MachineSpec

SPEC = MachineSpec(tau=10e-6, mu=1e-6, delta=0.1e-6, name="test")


def run_redistribution(src, dst, global_array):
    """Run the SPMD redistribute program and return the gathered result."""
    d_src = DistributedArray.from_global(global_array, src)

    def prog(ctx, block):
        out = yield from redistribute(ctx, src, dst, block)
        return out

    res = Machine(src.nprocs, SPEC).run(prog, rank_args=[(b,) for b in d_src.locals_list()])
    gathered = dst.gather(res.results)
    return gathered, res


class TestDetection:
    def test_sends_cover_all_elements(self):
        src = GridLayout.create(shape=(16,), grid=(4,), block="cyclic")
        dst = GridLayout.create(shape=(16,), grid=(4,), block="block")
        for rank in range(4):
            sends = detect_sends(src, dst, rank)
            total = sum(v[0].size for v in sends.values())
            assert total == 4  # every local element goes somewhere

    def test_recv_matches_send(self):
        src = GridLayout.create(shape=(16,), grid=(4,), block="cyclic")
        dst = GridLayout.create(shape=(16,), grid=(4,), block="block")
        # words sent from s to r == words r expects from s
        for s in range(4):
            sends = detect_sends(src, dst, s)
            for r, (src_idx, _dst_idx) in sends.items():
                recvs = detect_recvs(src, dst, r)
                assert recvs[s].size == src_idx.size

    def test_identity_redistribution_is_all_self(self):
        layout = GridLayout.create(shape=(8, 8), grid=(2, 2), block=(2, 2))
        for rank in range(4):
            sends = detect_sends(layout, layout, rank)
            assert list(sends) == [rank]
            src_idx, dst_idx = sends[rank]
            np.testing.assert_array_equal(src_idx, dst_idx)

    def test_shape_mismatch_rejected(self):
        a = GridLayout.create(shape=(8,), grid=(2,), block="block")
        b = GridLayout.create(shape=(16,), grid=(2,), block="block")
        with pytest.raises(ValueError):
            detect_sends(a, b, 0)


class TestRedistribute1D:
    def test_cyclic_to_block(self):
        src = GridLayout.create(shape=(16,), grid=(4,), block="cyclic")
        dst = GridLayout.create(shape=(16,), grid=(4,), block="block")
        a = np.arange(16) * 10
        out, _ = run_redistribution(src, dst, a)
        np.testing.assert_array_equal(out, a)

    def test_block_to_cyclic(self):
        src = GridLayout.create(shape=(24,), grid=(4,), block="block")
        dst = GridLayout.create(shape=(24,), grid=(4,), block="cyclic")
        a = np.arange(24.0)
        out, _ = run_redistribution(src, dst, a)
        np.testing.assert_array_equal(out, a)

    def test_block_cyclic_to_block_cyclic(self):
        src = GridLayout.create(shape=(48,), grid=(4,), block=2)
        dst = GridLayout.create(shape=(48,), grid=(4,), block=3)
        a = np.arange(48)
        out, _ = run_redistribution(src, dst, a)
        np.testing.assert_array_equal(out, a)

    def test_detection_cost_charged(self):
        src = GridLayout.create(shape=(64,), grid=(4,), block="cyclic")
        dst = GridLayout.create(shape=(64,), grid=(4,), block="block")
        _, res = run_redistribution(src, dst, np.arange(64))
        # Detection touches every element on both sides.
        assert all(s.local_ops >= 2 * 16 for s in res.stats)


class TestRedistribute2D:
    def test_cyclic_to_block_2d(self):
        src = GridLayout.create(shape=(8, 8), grid=(2, 2), block="cyclic")
        dst = GridLayout.create(shape=(8, 8), grid=(2, 2), block="block")
        a = np.arange(64).reshape(8, 8)
        out, _ = run_redistribution(src, dst, a)
        np.testing.assert_array_equal(out, a)

    def test_grid_reshape(self):
        # Same shape, different processor grid factorization.
        src = GridLayout.create(shape=(8, 8), grid=(4, 1), block="block")
        dst = GridLayout.create(shape=(8, 8), grid=(1, 4), block="block")
        a = np.arange(64.0).reshape(8, 8)
        out, _ = run_redistribution(src, dst, a)
        np.testing.assert_array_equal(out, a)


@settings(max_examples=30, deadline=None)
@given(
    w_src=st.integers(1, 4),
    w_dst=st.integers(1, 4),
    t=st.integers(1, 3),
)
def test_property_1d_redistribution_preserves_array(w_src, w_dst, t):
    p = 3
    n = p * w_src * w_dst * t * 2
    src = GridLayout.create(shape=(n,), grid=(p,), block=w_src)
    dst = GridLayout.create(shape=(n,), grid=(p,), block=w_dst)
    a = np.arange(n)
    out, _ = run_redistribution(src, dst, a)
    np.testing.assert_array_equal(out, a)
