"""VectorLayout: ragged block/cyclic vector distributions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hpf import VectorLayout


class TestBlockFactory:
    def test_even_split(self):
        v = VectorLayout.block(n=12, p=4)
        assert [v.local_size(r) for r in range(4)] == [3, 3, 3, 3]

    def test_ragged_split(self):
        v = VectorLayout.block(n=10, p=4)  # B = ceil(10/4) = 3
        assert [v.local_size(r) for r in range(4)] == [3, 3, 3, 1]

    def test_empty_trailing_ranks(self):
        v = VectorLayout.block(n=2, p=4)
        assert [v.local_size(r) for r in range(4)] == [1, 1, 0, 0]

    def test_zero_size_vector(self):
        v = VectorLayout.block(n=0, p=4)
        assert [v.local_size(r) for r in range(4)] == [0, 0, 0, 0]

    def test_block_owner_is_contiguous(self):
        v = VectorLayout.block(n=10, p=4)
        owners = v.owners(np.arange(10))
        np.testing.assert_array_equal(owners, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3])
        assert v.is_block


class TestCyclicLayout:
    def test_round_robin(self):
        v = VectorLayout.cyclic(n=10, p=3)
        owners = v.owners(np.arange(10))
        np.testing.assert_array_equal(owners, [0, 1, 2, 0, 1, 2, 0, 1, 2, 0])
        assert [v.local_size(r) for r in range(3)] == [4, 3, 3]

    def test_block_cyclic(self):
        v = VectorLayout.cyclic(n=14, p=2, w=3)
        owners = v.owners(np.arange(14))
        np.testing.assert_array_equal(owners, [0, 0, 0, 1, 1, 1, 0, 0, 0, 1, 1, 1, 0, 0])
        assert [v.local_size(r) for r in range(2)] == [8, 6]


class TestIndexMaps:
    @pytest.mark.parametrize("n,p,w", [(10, 4, 3), (14, 2, 3), (7, 7, 1), (16, 4, 2)])
    def test_owner_local_roundtrip(self, n, p, w):
        v = VectorLayout(n=n, p=p, w=w)
        for r in range(p):
            g = v.globals_(r)
            np.testing.assert_array_equal(v.owners(g), np.full(g.size, r))
            np.testing.assert_array_equal(v.locals_(g), np.arange(g.size))

    def test_out_of_range(self):
        v = VectorLayout.block(n=4, p=2)
        with pytest.raises(ValueError):
            v.owner(4)
        with pytest.raises(ValueError):
            v.local_size(2)


class TestScatterGather:
    @pytest.mark.parametrize("n,p,w", [(10, 4, 3), (0, 3, 1), (9, 3, 2), (16, 4, 4)])
    def test_roundtrip(self, n, p, w):
        v = VectorLayout(n=n, p=p, w=w)
        data = np.arange(n, dtype=np.float64)
        np.testing.assert_array_equal(v.gather(v.scatter(data)), data)

    def test_gather_validates_sizes(self):
        v = VectorLayout.block(n=6, p=2)
        with pytest.raises(ValueError):
            v.gather([np.zeros(3)])
        with pytest.raises(ValueError):
            v.gather([np.zeros(2), np.zeros(4)])


@settings(max_examples=150, deadline=None)
@given(n=st.integers(0, 60), p=st.integers(1, 7), w=st.integers(1, 5))
def test_property_partition(n, p, w):
    """Every element owned exactly once; local sizes sum to n."""
    v = VectorLayout(n=n, p=p, w=w)
    sizes = [v.local_size(r) for r in range(p)]
    assert sum(sizes) == n
    seen = sorted(int(x) for r in range(p) for x in v.globals_(r))
    assert seen == list(range(n))
