"""GridLayout: rank mapping, scatter/gather, axis conventions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hpf import BLOCK, CYCLIC, GridLayout


class TestCreate:
    def test_1d(self):
        layout = GridLayout.create(shape=(16,), grid=(4,), block=2)
        assert layout.d == 1
        assert layout.shape == (16,)
        assert layout.local_shape == (4,)
        assert layout.nprocs == 4

    def test_2d_mixed_blocks(self):
        layout = GridLayout.create(shape=(8, 16), grid=(2, 4), block=(4, 2))
        # numpy axis 0 (extent 8) is paper dimension 1.
        assert layout.dims[1].n == 8 and layout.dims[1].w == 4
        assert layout.dims[0].n == 16 and layout.dims[0].w == 2
        assert layout.local_shape == (4, 4)

    def test_dist_descriptors_accepted(self):
        layout = GridLayout.create(shape=(8, 8), grid=(2, 2), block=(BLOCK, CYCLIC))
        assert layout.dims[1].is_block
        assert layout.dims[0].is_cyclic

    def test_default_block(self):
        layout = GridLayout.create(shape=(12,), grid=(3,))
        assert layout.dims[0].is_block

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ValueError):
            GridLayout.create(shape=(8, 8), grid=(2,))
        with pytest.raises(ValueError):
            GridLayout.create(shape=(8,), grid=(2,), block=(1, 1))

    def test_axis_mapping(self):
        layout = GridLayout.create(shape=(4, 8, 16), grid=(1, 1, 1), block="block")
        assert layout.axis(0) == 2  # paper dim 0 = last numpy axis
        assert layout.axis(2) == 0


class TestRankMapping:
    def test_dimension0_fastest(self):
        layout = GridLayout.create(shape=(8, 8), grid=(2, 4), block="cyclic")
        # P_0 = 4, P_1 = 2; rank = p_0 + 4 * p_1.
        assert layout.rank_of_coords((0, 0)) == 0
        assert layout.rank_of_coords((1, 0)) == 1  # coords[0] is p_0
        assert layout.rank_of_coords((0, 1)) == 4
        assert layout.rank_of_coords((3, 1)) == 7

    def test_roundtrip(self):
        layout = GridLayout.create(shape=(8, 8, 8), grid=(2, 2, 2), block="cyclic")
        for rank in range(8):
            assert layout.rank_of_coords(layout.coords_of_rank(rank)) == rank

    def test_bad_coords(self):
        layout = GridLayout.create(shape=(8,), grid=(2,), block="cyclic")
        with pytest.raises(ValueError):
            layout.rank_of_coords((2,))
        with pytest.raises(ValueError):
            layout.coords_of_rank(2)

    def test_group_along(self):
        layout = GridLayout.create(shape=(8, 8), grid=(2, 4), block="cyclic")
        # Varying paper dim 0 (p_0 in 0..3) with p_1 = 1 fixed.
        assert layout.group_along(0, (0, 1)) == (4, 5, 6, 7)
        # Varying paper dim 1 (p_1 in 0..1) with p_0 = 2 fixed.
        assert layout.group_along(1, (2, 0)) == (2, 6)

    def test_groups_partition_machine(self):
        layout = GridLayout.create(shape=(8, 8), grid=(2, 4), block="cyclic")
        for i in range(2):
            seen = set()
            for rank in range(8):
                grp = layout.group_along(i, layout.coords_of_rank(rank))
                assert rank in grp
                seen.update(grp)
            assert seen == set(range(8))


class TestScatterGather:
    def test_roundtrip_1d(self):
        layout = GridLayout.create(shape=(16,), grid=(4,), block=2)
        a = np.arange(16)
        locals_ = layout.scatter(a)
        np.testing.assert_array_equal(layout.gather(locals_), a)

    def test_figure1_distribution(self):
        # Block-cyclic(2) on 4 procs: proc 0 holds globals 0,1,8,9.
        layout = GridLayout.create(shape=(16,), grid=(4,), block=2)
        locals_ = layout.scatter(np.arange(16))
        np.testing.assert_array_equal(locals_[0], [0, 1, 8, 9])
        np.testing.assert_array_equal(locals_[1], [2, 3, 10, 11])
        np.testing.assert_array_equal(locals_[3], [6, 7, 14, 15])

    def test_roundtrip_2d(self):
        layout = GridLayout.create(shape=(8, 12), grid=(2, 3), block=(2, 2))
        a = np.arange(96).reshape(8, 12)
        np.testing.assert_array_equal(layout.gather(layout.scatter(a)), a)

    def test_roundtrip_3d(self):
        layout = GridLayout.create(shape=(4, 6, 8), grid=(2, 1, 2), block=(1, 3, 2))
        a = np.arange(4 * 6 * 8).reshape(4, 6, 8)
        np.testing.assert_array_equal(layout.gather(layout.scatter(a)), a)

    def test_shape_validation(self):
        layout = GridLayout.create(shape=(8,), grid=(2,), block=4)
        with pytest.raises(ValueError):
            layout.scatter(np.zeros(9))
        with pytest.raises(ValueError):
            layout.gather([np.zeros(4)])
        with pytest.raises(ValueError):
            layout.gather([np.zeros(3), np.zeros(4)])

    def test_global_flat_index(self):
        layout = GridLayout.create(shape=(4, 4), grid=(2, 2), block="cyclic")
        a = np.arange(16).reshape(4, 4)
        locals_ = layout.scatter(a)
        for rank in range(4):
            # With A = arange, the flat index IS the element value.
            np.testing.assert_array_equal(
                layout.global_flat_index(rank), locals_[rank]
            )


@settings(max_examples=60, deadline=None)
@given(
    p1=st.integers(1, 3),
    p0=st.integers(1, 3),
    w1=st.integers(1, 3),
    w0=st.integers(1, 3),
    t1=st.integers(1, 3),
    t0=st.integers(1, 3),
)
def test_property_scatter_gather_roundtrip_2d(p1, p0, w1, w0, t1, t0):
    shape = (p1 * w1 * t1, p0 * w0 * t0)
    layout = GridLayout.create(shape=shape, grid=(p1, p0), block=(w1, w0))
    a = np.arange(shape[0] * shape[1]).reshape(shape)
    np.testing.assert_array_equal(layout.gather(layout.scatter(a)), a)
    # Local storage order is global row-major order restricted to the rank.
    for rank in range(layout.nprocs):
        flat = layout.global_flat_index(rank).ravel()
        assert np.all(np.diff(flat) > 0)
