"""Gang PACK amortization (library extension).

k arrays packed under one mask share the ranking stage, the PRS, the
send-vector derivation and the compact schemes' second scan; only the data
movement repeats.  The benchmark pins the amortization factor a runtime
gains over k solo PACK calls — the pattern every multi-attribute particle
code hits.
"""

import numpy as np
import pytest

import repro
from repro.core.multi import pack_many
from repro.machine import CM5

RNG = np.random.default_rng(0)
K = 4
ARRAYS = [RNG.random(8192) for _ in range(K)]
MASK = RNG.random(8192) < 0.5


@pytest.mark.paper_artifact("Gang PACK (extension)")
def test_gang_amortizes_ranking(benchmark, reports):
    def run():
        _vectors, gang = pack_many(ARRAYS, MASK, grid=16, block=4,
                                   scheme="css", spec=CM5, validate=False)
        solo = sum(
            repro.pack(a, MASK, grid=16, block=4, scheme="css", spec=CM5,
                       validate=False).run.elapsed
            for a in ARRAYS
        )
        return gang.elapsed, solo

    gang_s, solo_s = benchmark(run)
    assert gang_s < 0.8 * solo_s
    reports["gang"] = (
        f"Gang PACK of {K} arrays (N=8192, P=16, CYCLIC(4), 50% mask):\n"
        f"  {K} solo packs {solo_s * 1e3:8.3f} ms\n"
        f"  gang pack     {gang_s * 1e3:8.3f} ms "
        f"({gang_s / solo_s:.0%} of solo)"
    )


@pytest.mark.paper_artifact("Gang PACK (extension)")
def test_gang_saving_grows_with_cyclic_distribution(benchmark):
    """The shared stages are exactly the distribution-sensitive ones, so
    the gang saving is largest where ranking is dearest: cyclic layouts."""

    def ratio(block):
        _v, gang = pack_many(ARRAYS, MASK, grid=16, block=block,
                             scheme="css", spec=CM5, validate=False)
        solo = sum(
            repro.pack(a, MASK, grid=16, block=block, scheme="css", spec=CM5,
                       validate=False).run.elapsed
            for a in ARRAYS
        )
        return gang.elapsed / solo

    def run():
        return ratio(1), ratio(512)

    cyclic_ratio, block_ratio = benchmark(run)
    assert cyclic_ratio < block_ratio
