"""Supervised-gang chaos benchmark: ``BENCH_chaos.json``.

Two questions about :class:`~repro.runtime.supervisor.GangSupervisor`,
answered with real processes and real signals:

* **Warm vs cold** — what does the persistent gang buy?  The same PACK
  workload is run ``ops`` times on a fresh :class:`MpBackend` gang per
  op (fork + import + shm every time) and on one supervised gang that is
  forked once and reused (op dispatch over queues + named shm attach).
  Reported per P: mean host wall per op, and the cold/warm speedup.

* **MTTR** — when a rank is SIGKILLed mid-op, how long from the fault to
  the recovered, bit-identical result?  Seeded
  :class:`~repro.faults.chaos.ChaosPlan` placements (spawn / start /
  collective / flush), recovery timeline from the supervisor's own
  lifecycle events (first failure event to ``op_ok``).

``--check`` turns the benchmark into an assertion (CI): every chaos seed
must recover bit-identical to the fault-free baseline, and the warm gang
must beat cold gang spawn per op.

Usage::

    python benchmarks/bench_chaos.py            # measure + write JSON
    python benchmarks/bench_chaos.py --quick    # small workload (CI)
    python benchmarks/bench_chaos.py --check    # exit 1 on regression
    python benchmarks/bench_chaos.py --no-write # print only
"""

from __future__ import annotations

import argparse
import json
import subprocess
import time
from pathlib import Path

import numpy as np

from repro.core.api import pack
from repro.faults.chaos import ChaosPlan
from repro.runtime import GangSupervisor, MpBackend, MpGangError, RetryPolicy

ROOT = Path(__file__).resolve().parent.parent
OUT = ROOT / "BENCH_chaos.json"
SEED = 0
PROCS = (2, 4)
GANG_TIMEOUT = 300.0  # wall budget per op; a hang fails, not stalls
FAIL_KINDS = ("spawn_failure", "rank_death", "heartbeat_miss",
              "op_timeout", "poisoned_result")


def _workload(n: int, density: float):
    rng = np.random.default_rng(SEED)
    array = rng.random(n)
    mask = rng.random(n) < density
    return array, mask


def _pack_once(backend, array, mask, p: int):
    return pack(array, mask, grid=(p,), scheme="cms", validate=False,
                backend=backend)


def measure_warm_vs_cold(n: int, density: float, ops: int) -> list[dict]:
    """Per-op host wall: fresh gang per op vs one persistent gang."""
    array, mask = _workload(n, density)
    rows = []
    for p in PROCS:
        cold = []
        for _ in range(ops):
            backend = MpBackend(timeout=GANG_TIMEOUT)
            t0 = time.perf_counter()
            _pack_once(backend, array, mask, p)
            cold.append(time.perf_counter() - t0)
        warm = []
        with GangSupervisor(timeout=GANG_TIMEOUT) as sup:
            sup.warm(p)
            for _ in range(ops):
                t0 = time.perf_counter()
                _pack_once(sup, array, mask, p)
                warm.append(time.perf_counter() - t0)
            warm_ops = sup.stats.warm_ops
        cold_ms = sum(cold) / len(cold) * 1e3
        warm_ms = sum(warm) / len(warm) * 1e3
        speedup = cold_ms / warm_ms if warm_ms else float("inf")
        rows.append({
            "p": p, "n": n, "ops": ops,
            "cold_mean_ms": round(cold_ms, 3),
            "cold_min_ms": round(min(cold) * 1e3, 3),
            "warm_mean_ms": round(warm_ms, 3),
            "warm_min_ms": round(min(warm) * 1e3, 3),
            "warm_ops": warm_ops,
            "cold_over_warm": round(speedup, 3),
        })
        print(f"  P={p}: cold gang {cold_ms:8.1f} ms/op   "
              f"warm gang {warm_ms:8.1f} ms/op   "
              f"speedup {speedup:5.2f}x")
    return rows


def measure_recovery(n: int, density: float, seeds: int) -> list[dict]:
    """Seeded SIGKILL placements: recovery wall and MTTR per seed."""
    array, mask = _workload(n, density)
    rows = []
    for p in PROCS:
        with GangSupervisor(timeout=GANG_TIMEOUT) as clean:
            base = _pack_once(clean, array, mask, p)
        for seed in range(seeds):
            plan = ChaosPlan.random(
                seed=seed, nprocs=p, n_events=1, kinds=("kill",),
                phases=("spawn", "start", "collective", "flush"),
            )
            retry = RetryPolicy(max_retries=3, base_delay=0.05, jitter=0.1,
                                seed=seed)
            sup = GangSupervisor(timeout=GANG_TIMEOUT, retry=retry,
                                 chaos=plan, heartbeat_interval=0.1,
                                 heartbeat_timeout=3.0)
            t0 = time.perf_counter()
            try:
                with sup:
                    res = _pack_once(sup, array, mask, p)
                    st = sup.stats
            except MpGangError as exc:
                rows.append({"p": p, "seed": seed, "recovered": False,
                             "error": str(exc)})
                print(f"  P={p} seed={seed}: UNRECOVERED: {exc}")
                continue
            wall_ms = (time.perf_counter() - t0) * 1e3
            t_fail = min((e.t for e in st.events if e.kind in FAIL_KINDS),
                         default=None)
            t_ok = max((e.t for e in st.events if e.kind == "op_ok"),
                       default=None)
            mttr_ms = ((t_ok - t_fail) * 1e3
                       if t_fail is not None and t_ok is not None else 0.0)
            identical = (res.size == base.size
                         and bool(np.array_equal(res.vector, base.vector)))
            rows.append({
                "p": p, "seed": seed, "n": n,
                "plan": plan.describe(),
                "recovered": identical,
                "faults_observed": sum(st.failures.values()),
                "retries": st.retries,
                "rebuilds": st.rebuilds,
                "mttr_ms": round(mttr_ms, 1),
                "wall_ms": round(wall_ms, 1),
            })
            print(f"  P={p} seed={seed}: recovered={identical} "
                  f"retries={st.retries} MTTR={mttr_ms:7.1f} ms "
                  f"wall={wall_ms:7.1f} ms")
    return rows


def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=ROOT,
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    ap.add_argument("--n", type=int, default=1 << 15,
                    help="1-D array size (default 32768)")
    ap.add_argument("--density", type=float, default=0.5)
    ap.add_argument("--ops", type=int, default=5,
                    help="ops per warm/cold cell (mean kept)")
    ap.add_argument("--seeds", type=int, default=3,
                    help="chaos seeds per P for the recovery table")
    ap.add_argument("--quick", action="store_true",
                    help="small workload, fewer ops/seeds (CI smoke)")
    ap.add_argument("--check", action="store_true",
                    help="exit 1 unless every seed recovers bit-identical "
                         "and the warm gang beats cold spawn")
    ap.add_argument("--no-write", action="store_true",
                    help="print only; do not write BENCH_chaos.json")
    args = ap.parse_args(argv)

    n = 2048 if args.quick else args.n
    ops = 3 if args.quick else args.ops
    seeds = 2 if args.quick else args.seeds
    print(f"chaos bench: PACK n={n} density={args.density} P={list(PROCS)}")
    print(f"warm vs cold gang ({ops} ops/cell):")
    warm_cold = measure_warm_vs_cold(n, args.density, ops)
    print(f"recovery under seeded SIGKILL ({seeds} seeds/P):")
    recovery = measure_recovery(n, args.density, seeds)

    if not args.no_write:
        doc = {
            "schema": 1,
            "n": n,
            "density": args.density,
            "procs": list(PROCS),
            "rev": _git_rev(),
            "warm_vs_cold": warm_cold,
            "recovery": recovery,
        }
        OUT.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"wrote {len(warm_cold)} warm/cold cells + "
              f"{len(recovery)} recovery rows -> {OUT}")

    if args.check:
        problems = []
        for row in warm_cold:
            if row["cold_over_warm"] <= 1.0:
                problems.append(
                    f"P={row['p']}: warm gang not faster than cold spawn "
                    f"({row['warm_mean_ms']} ms vs {row['cold_mean_ms']} ms)")
        for row in recovery:
            if not row.get("recovered"):
                problems.append(
                    f"P={row['p']} seed={row['seed']}: did not recover "
                    f"bit-identical")
        if problems:
            print("CHECK FAILED:")
            for line in problems:
                print(f"  {line}")
            return 1
        print("CHECK OK: all seeds recovered bit-identical; warm gang wins")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
