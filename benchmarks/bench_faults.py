"""Cost of fault tolerance — reliable-transport overhead vs drop rate.

The reliable transport (``repro.faults.reliable``) wraps every data
message in a (seq, crc) header, answers each with a NIC-level ack, and
retransmits on simulated-time timeouts.  Two questions matter:

* what does reliability cost on a *clean* network?  Timeouts are
  conservative (they fire only when nothing else can progress), so the
  answer should be headers + one ack round-trip per exchange — a small
  constant, under 15% of simulated time at a realistic problem size;
* how does simulated time degrade as the drop rate rises, and does the
  answer stay oracle-correct throughout?

This benchmark measures both on a mid-size PACK and UNPACK and writes
``BENCH_faults.json`` at the repo root:

    python benchmarks/bench_faults.py

Every cell is validated against the serial numpy oracle and every run is
seeded, so the JSON is bit-for-bit reproducible.
"""

import json
from pathlib import Path

import numpy as np

import repro
from repro.core.api import pack, unpack
from repro.faults import FaultPlan
from repro.obs import MetricsRegistry

N, PROCS, DENSITY = 16384, 8, 0.5
DROP_RATES = (0.0, 0.01, 0.05, 0.1)
SEED = 0


def _workload():
    rng = np.random.default_rng(SEED)
    mask = rng.random(N) < DENSITY
    array = np.arange(N, dtype=np.int64)
    vector = np.arange(int(mask.sum()), dtype=np.int64)
    field_array = np.full(N, -1, dtype=np.int64)
    return array, mask, vector, field_array


def _reliable_counters(reg):
    snap = reg.snapshot()

    def val(name):
        entry = snap.get(name)
        return int(entry["value"]) if entry and "value" in entry else 0

    return {
        "data_sends": val("reliable.data_sends"),
        "retransmits": val("reliable.retransmits"),
        "timeouts": val("reliable.timeouts"),
        "dup_dropped": val("reliable.dup_dropped"),
        "corrupt_rejected": val("reliable.corrupt_rejected"),
        "auto_acks": val("machine.auto_acks"),
    }


def measure():
    array, mask, vector, field_array = _workload()

    baseline = {
        "pack_ms": pack(array, mask, PROCS, scheme="cms",
                        validate=True).total_ms,
        "unpack_ms": unpack(vector, mask, field_array, PROCS, scheme="css",
                            validate=True).total_ms,
    }

    cells = []
    for drop in DROP_RATES:
        plan = FaultPlan(seed=SEED, drop_rate=drop)
        reg = MetricsRegistry()
        p = pack(array, mask, PROCS, scheme="cms", faults=plan,
                 reliability=True, metrics=reg, validate=True)
        u = unpack(vector, mask, field_array, PROCS, scheme="css",
                   faults=plan, reliability=True, validate=True)
        cells.append({
            "drop_rate": drop,
            "pack_ms": p.total_ms,
            "unpack_ms": u.total_ms,
            "pack_overhead_pct":
                100.0 * (p.total_ms / baseline["pack_ms"] - 1.0),
            "unpack_overhead_pct":
                100.0 * (u.total_ms / baseline["unpack_ms"] - 1.0),
            "pack_transport": _reliable_counters(reg),
            "oracle_correct": True,  # validate=True raised otherwise
        })

    return {
        "workload": {"n": N, "nprocs": PROCS, "density": DENSITY,
                     "pack_scheme": "cms", "unpack_scheme": "css",
                     "seed": SEED, "machine": "cm5"},
        "baseline_ms": baseline,
        "cells": cells,
    }


def test_zero_drop_overhead_under_15_pct():
    """Acceptance bound: reliability on a clean network costs < 15%."""
    report = measure()
    clean = next(c for c in report["cells"] if c["drop_rate"] == 0.0)
    assert clean["pack_overhead_pct"] < 15.0
    assert clean["unpack_overhead_pct"] < 15.0
    assert clean["pack_transport"]["retransmits"] == 0


def test_report_reproducible():
    """Same seed, same cells — bit-for-bit."""
    assert json.dumps(measure(), sort_keys=True) == \
        json.dumps(measure(), sort_keys=True)


def main() -> int:
    report = measure()
    out = Path(__file__).resolve().parent.parent / "BENCH_faults.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    base = report["baseline_ms"]
    print(f"PACK/UNPACK n={N} P={PROCS} cm5, reliable transport:")
    print(f"  baseline (no reliability): pack {base['pack_ms']:.3f} ms, "
          f"unpack {base['unpack_ms']:.3f} ms")
    for cell in report["cells"]:
        t = cell["pack_transport"]
        print(f"  drop={cell['drop_rate']:<5g} "
              f"pack {cell['pack_ms']:8.3f} ms (+{cell['pack_overhead_pct']:5.1f}%)  "
              f"unpack {cell['unpack_ms']:8.3f} ms (+{cell['unpack_overhead_pct']:5.1f}%)  "
              f"retransmits={t['retransmits']}")
    clean = next(c for c in report["cells"] if c["drop_rate"] == 0.0)
    ok = (clean["pack_overhead_pct"] < 15.0
          and clean["unpack_overhead_pct"] < 15.0)
    print(f"zero-drop overhead < 15%: {ok}")
    print(f"[bench -> {out}]")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
