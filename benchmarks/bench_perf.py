"""Canonical wall-clock performance trajectory with a regression gate.

Unlike the other ``bench_*`` files (which regenerate the paper's *simulated*
tables), this benchmark measures how fast the **simulator itself** runs on
the host — the per-message, per-element and layout-arithmetic hot paths of
the engine, mailbox, codecs and index algebra.  Its output is the repo's
perf trajectory, ``BENCH_perf.json``, appended to by every optimisation PR
and enforced by the CI ``perf`` job.

Macro cases (all P=64 unless noted; seeded, validate off — the serial
oracle is covered by the test suite, here we time the simulator only):

``pack_p64``
    1-D CMS PACK, N=2^20, density 0.5 — the paper's flagship workload.
``unpack_p64``
    1-D CSS UNPACK, same size — two m2m rounds, request/serve codecs.
``pack_p64_grid2d``
    1024x1024 CMS PACK on an 8x8 grid — multi-dimensional ranking,
    segment codec pressure.
``m2m_rxport_direct``
    PACK under receive-port contention with the hot-spotting ``direct``
    schedule — stresses port booking and deep mailboxes.
``chaos_reliable_p16``
    PACK through the reliable transport over a lossy network — timed
    receives, ANY-tag retransmit traffic, fault bookkeeping.

A separate ``plan_cache`` section times the same PACK cold (fresh plan
cache, full compile) and warm (plan replayed from the cache) and bands
the ``warm_over_cold`` wall ratio; the two runs' simulated times must be
bit-identical or the measurement itself raises.

Wall-clock numbers are normalised by a host-speed calibration loop so the
committed baseline transfers across machines; the CI gate compares the
*normalised* score with a tolerance band (default 25%).  Simulated times
are compared **exactly**: any drift in a case's simulated milliseconds is
a correctness regression, not a perf regression, and fails the gate
outright.

Usage::

    python benchmarks/bench_perf.py                   # measure + print
    python benchmarks/bench_perf.py --record --label PR3
    python benchmarks/bench_perf.py --quick --check   # CI regression gate
"""

from __future__ import annotations

import argparse
import gc
import json
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.api import pack, unpack
from repro.faults import FaultPlan
from repro.machine.spec import CM5

ROOT = Path(__file__).resolve().parent.parent
OUT = ROOT / "BENCH_perf.json"
SEED = 0
TOLERANCE = 0.25  # CI band: fail on >25% normalised-wall regression


# --------------------------------------------------------------- workloads
#
# Input construction (mask/array generation) happens once per process via
# the memo below, OUTSIDE the timed region — the cases time the simulator,
# not the random number generator.  Inputs are deterministic (fixed seed),
# so every repetition replays the identical simulation.
def _mask(n, density, seed=SEED):
    return np.random.default_rng(seed).random(n) < density


_INPUTS: dict = {}


def _inputs(name, build):
    if name not in _INPUTS:
        _INPUTS[name] = build()
    return _INPUTS[name]


def case_pack_p64():
    n = 1 << 20
    array, mask = _inputs(
        "pack_p64", lambda: (np.arange(n, dtype=np.int64), _mask(n, 0.5))
    )
    r = pack(array, mask, 64, scheme="cms", validate=False)
    return r.run.elapsed


def case_unpack_p64():
    n = 1 << 20

    def build():
        mask = _mask(n, 0.5)
        vector = np.arange(int(mask.sum()), dtype=np.int64)
        field = np.full(n, -1, dtype=np.int64)
        return vector, mask, field

    vector, mask, field = _inputs("unpack_p64", build)
    r = unpack(vector, mask, field, 64, scheme="css", validate=False)
    return r.run.elapsed


def case_pack_p64_grid2d():
    shape = (1024, 1024)
    array, mask = _inputs(
        "pack_p64_grid2d",
        lambda: (
            np.arange(shape[0] * shape[1], dtype=np.int64).reshape(shape),
            _mask(shape[0] * shape[1], 0.3).reshape(shape),
        ),
    )
    r = pack(array, mask, (8, 8), scheme="cms", validate=False)
    return r.run.elapsed


def case_m2m_rxport_direct():
    n = 1 << 18
    array, mask = _inputs(
        "m2m_rxport_direct", lambda: (np.arange(n, dtype=np.int64), _mask(n, 0.5))
    )
    spec = CM5.with_(rx_port=True)
    r = pack(array, mask, 64, scheme="sss", spec=spec,
             m2m_schedule="direct", validate=False)
    return r.run.elapsed


def case_chaos_reliable_p16():
    n = 1 << 16
    array, mask = _inputs(
        "chaos_reliable_p16", lambda: (np.arange(n, dtype=np.int64), _mask(n, 0.5))
    )
    plan = FaultPlan(seed=SEED, drop_rate=0.05, dup_rate=0.02,
                     delay_rate=0.05, delay_seconds=2e-3)
    r = pack(array, mask, 16, scheme="cms", faults=plan, reliability=True,
             validate=False)
    return r.run.elapsed


CASES = {
    "pack_p64": case_pack_p64,
    "unpack_p64": case_unpack_p64,
    "pack_p64_grid2d": case_pack_p64_grid2d,
    "m2m_rxport_direct": case_m2m_rxport_direct,
    "chaos_reliable_p16": case_chaos_reliable_p16,
}


# ------------------------------------------------------------- measurement
def calibrate() -> float:
    """Host-speed unit: a fixed numpy+Python mix, seconds (best of 3).

    Perf scores are reported as ``wall / calib`` so a committed baseline
    from one machine gates runs on another.
    """
    def loop():
        rng = np.random.default_rng(7)
        arr = rng.integers(0, 1 << 20, size=1 << 16)
        acc = 0
        for _ in range(40):
            acc += int(np.sort(arr % 1009).sum())
            acc ^= sum(divmod(i, 7)[0] for i in range(2000))
        return acc

    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        loop()
        best = min(best, time.perf_counter() - t0)
    return best


def measure(reps: int) -> dict:
    calib = calibrate()
    cases = {}
    for name, fn in CASES.items():
        best = float("inf")
        sim = None
        fn()  # warm-up: first call pays input construction + cold caches
        for _ in range(reps):
            # Settle the collector so a gen-2 pass triggered by garbage
            # inherited from imports/other cases isn't billed to whichever
            # case happens to cross the threshold — that debt grows with
            # the codebase, not with the measured code path.
            gc.collect()
            t0 = time.perf_counter()
            elapsed = fn()
            wall = time.perf_counter() - t0
            best = min(best, wall)
            if sim is None:
                sim = elapsed
            elif abs(sim - elapsed) > 1e-12 * max(1.0, abs(sim)):
                raise AssertionError(
                    f"{name}: simulated time not reproducible across reps "
                    f"({sim!r} vs {elapsed!r})"
                )
        cases[name] = {
            "wall_ms": round(best * 1e3, 3),
            "norm": round(best / calib, 4),
            "sim_ms": round(sim * 1e3, 9),
        }
        print(f"  {name:<22s} wall {best * 1e3:9.1f} ms   "
              f"norm {best / calib:7.3f}   sim {sim * 1e3:10.3f} ms")
    return {"calib_ms": round(calib * 1e3, 3), "cases": cases}


def measure_plan_cache(reps: int, calib: float) -> dict:
    """Cold-compile vs warm-replay PACK through the plan cache.

    Cold runs get a fresh cache every repetition (full compile each time);
    warm runs replay the plan.  Simulated time must be bit-identical
    between the two — the cache is a wall-clock optimisation only — so a
    mismatch raises instead of being recorded.  ``warm_over_cold`` is the
    banded quantity: it is a wall ratio on the same host and workload, so
    it transfers across machines better than either absolute time.
    """
    from repro.core.plan_cache import PlanCache

    n = 1 << 18
    array, mask = _inputs(
        "plan_cache", lambda: (np.arange(n, dtype=np.int64), _mask(n, 0.5))
    )

    def run(cache):
        t0 = time.perf_counter()
        r = pack(array, mask, 64, scheme="cms", validate=False,
                 plan_cache=cache)
        return time.perf_counter() - t0, r

    run(PlanCache())  # warm-up: input construction + cold numpy caches
    cold_best = warm_best = float("inf")
    sim_cold = sim_warm = None
    compile_ms = None
    for _ in range(reps):
        cache = PlanCache()
        wall, r = run(cache)
        cold_best = min(cold_best, wall)
        sim_cold = r.run.elapsed
        if compile_ms is None:
            compile_ms = r.plan_info["compile_ms"]
        wall, r = run(cache)
        warm_best = min(warm_best, wall)
        sim_warm = r.run.elapsed
        if r.plan_info["cache"] != "hit":
            raise AssertionError(
                f"plan_cache: second run was a {r.plan_info['cache']}, "
                f"not a hit"
            )
        if r.plan_info["compile_ms"] != 0.0:
            raise AssertionError(
                f"plan_cache: hit reported compile "
                f"{r.plan_info['compile_ms']} ms, expected 0"
            )
    if sim_cold != sim_warm:
        raise AssertionError(
            f"plan_cache: replayed simulated time differs from compiled "
            f"({sim_warm!r} vs {sim_cold!r}) — plan replay broke determinism"
        )
    out = {
        "cold_wall_ms": round(cold_best * 1e3, 3),
        "warm_wall_ms": round(warm_best * 1e3, 3),
        "cold_norm": round(cold_best / calib, 4),
        "warm_norm": round(warm_best / calib, 4),
        "warm_over_cold": round(warm_best / cold_best, 4),
        "compile_ms": round(compile_ms, 3),
        "sim_ms": round(sim_cold * 1e3, 9),
    }
    print(f"  plan_cache             cold {cold_best * 1e3:9.1f} ms   "
          f"warm {warm_best * 1e3:9.1f} ms   "
          f"ratio {out['warm_over_cold']:.3f}   "
          f"compile {out['compile_ms']:.1f} ms")
    return out


def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=ROOT,
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


# ------------------------------------------------------------ trajectory IO
def load() -> dict:
    if OUT.exists():
        return json.loads(OUT.read_text())
    return {"schema": 1, "tolerance": TOLERANCE, "trajectory": []}


def check(entry: dict, baseline: dict, tolerance: float) -> list[str]:
    """Compare a fresh measurement against the committed baseline entry.

    Returns a list of failure strings (empty = gate passes).  Wall clock
    is compared via the host-normalised score with ``tolerance`` slack;
    simulated time must match bit-for-bit (it is deterministic — drift
    means the optimisation changed the model's *results*, which is a
    correctness bug however fast it runs).
    """
    failures = []
    for name, base in baseline["cases"].items():
        cur = entry["cases"].get(name)
        if cur is None:
            failures.append(f"{name}: missing from current run")
            continue
        if abs(cur["sim_ms"] - base["sim_ms"]) > 1e-9:
            failures.append(
                f"{name}: simulated time changed "
                f"{base['sim_ms']} -> {cur['sim_ms']} ms (determinism break)"
            )
        ratio = cur["norm"] / base["norm"] if base["norm"] else float("inf")
        if ratio > 1.0 + tolerance:
            failures.append(
                f"{name}: normalised wall regressed {ratio:.2f}x "
                f"(norm {base['norm']} -> {cur['norm']}, "
                f"band {1.0 + tolerance:.2f}x)"
            )
    pc_base = baseline.get("plan_cache")
    pc_cur = entry.get("plan_cache")
    if pc_base and pc_cur:
        # The banded quantity is warm/cold on the current host — a ratio,
        # so it needs no calibration.  Regressing it means plan replay got
        # slower relative to a full compile.
        limit = pc_base["warm_over_cold"] * (1.0 + tolerance)
        if pc_cur["warm_over_cold"] > limit:
            failures.append(
                f"plan_cache: warm/cold ratio regressed "
                f"{pc_base['warm_over_cold']} -> {pc_cur['warm_over_cold']} "
                f"(limit {limit:.3f} with {1.0 + tolerance:.2f}x band)"
            )
        if abs(pc_cur["sim_ms"] - pc_base["sim_ms"]) > 1e-9:
            failures.append(
                f"plan_cache: simulated time changed "
                f"{pc_base['sim_ms']} -> {pc_cur['sim_ms']} ms "
                f"(determinism break)"
            )
    return failures


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    ap.add_argument("--quick", action="store_true",
                    help="single repetition per case (CI)")
    ap.add_argument("--record", action="store_true",
                    help="append this measurement to BENCH_perf.json")
    ap.add_argument("--check", action="store_true",
                    help="gate against the last recorded trajectory entry")
    ap.add_argument("--label", default=None, help="trajectory entry label")
    ap.add_argument("--tolerance", type=float, default=None,
                    help=f"regression band (default {TOLERANCE})")
    args = ap.parse_args(argv)

    reps = 1 if args.quick else 5
    print(f"perf cases ({reps} rep{'s' if reps > 1 else ''}):")
    entry = measure(reps)
    entry["plan_cache"] = measure_plan_cache(reps, entry["calib_ms"] / 1e3)
    entry["label"] = args.label or ("quick" if args.quick else "local")
    entry["rev"] = _git_rev()

    doc = load()
    rc = 0
    if args.check:
        if not doc["trajectory"]:
            print("no committed baseline to check against", file=sys.stderr)
            return 2
        baseline = doc["trajectory"][-1]
        tolerance = args.tolerance if args.tolerance is not None \
            else doc.get("tolerance", TOLERANCE)
        failures = check(entry, baseline, tolerance)
        if failures:
            print(f"\nPERF GATE FAILED vs {baseline['label']!r} "
                  f"({baseline.get('rev', '?')}):", file=sys.stderr)
            for f in failures:
                print(f"  - {f}", file=sys.stderr)
            rc = 1
        else:
            print(f"\nperf gate OK vs {baseline['label']!r} "
                  f"({baseline.get('rev', '?')}, "
                  f"band {1.0 + tolerance:.2f}x)")
    if args.record:
        doc["trajectory"].append(entry)
        OUT.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"recorded trajectory entry {entry['label']!r} -> {OUT}")
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
