"""The ranking stage in isolation — the paper's core contribution.

Conclusion claims asserted (paper Section 8):

* "The performance of the ranking algorithm largely depends on the block
  size of input arrays distributed in block-cyclic, especially the block
  size of the lower dimension."
* "The performance of the ranking algorithm may not be greatly affected
  by the total number or by the distribution of the elements to be
  packed" — density- and pattern-insensitivity.
"""

import numpy as np
import pytest

from repro.core.ranking import ranking_program
from repro.core.schemes import Scheme
from repro.hpf import GridLayout
from repro.machine import CM5, Machine
from repro.workloads import lt_mask_2d, random_mask


def ranking_elapsed(mask, grid, block, scheme=Scheme.CSS):
    layout = GridLayout.create(mask.shape, grid, block)
    blocks = layout.scatter(mask)

    def prog(ctx, mb):
        result = yield from ranking_program(ctx, mb, layout, scheme=scheme)
        return result.size

    res = Machine(layout.nprocs, CM5).run(prog, rank_args=[(b,) for b in blocks])
    return res.elapsed


@pytest.mark.paper_artifact("Ranking (Section 8 conclusions)")
def test_ranking_block_size_dominates(benchmark, reports):
    mask = random_mask((16384,), 0.5, seed=0)

    def run():
        return {w: ranking_elapsed(mask, (16,), w) for w in (1, 8, 64, 1024)}

    times = benchmark(run)
    assert times[1] > times[8] > times[64] >= times[1024]
    assert times[1] > 5 * times[1024], "cyclic must be far costlier than block"
    reports["ranking"] = "\n".join(
        ["Ranking stage vs block size (N=16384, P=16, 50% mask):"]
        + [f"  W={w:<5d} {t * 1e3:8.3f} ms" for w, t in sorted(times.items())]
    )


@pytest.mark.paper_artifact("Ranking (Section 8 conclusions)")
def test_ranking_density_insensitive(benchmark):
    def run():
        return {
            d: ranking_elapsed(random_mask((16384,), d, seed=1), (16,), 8)
            for d in (0.1, 0.5, 0.9)
        }

    times = benchmark(run)
    lo, hi = min(times.values()), max(times.values())
    assert hi < 1.35 * lo, f"ranking should be density-insensitive: {times}"


@pytest.mark.paper_artifact("Ranking (Section 8 conclusions)")
def test_ranking_pattern_insensitive(benchmark):
    """Random vs structured (LT) masks of similar density rank in similar
    time — the working arrays depend on tiles, not mask content."""

    def run():
        lt = lt_mask_2d((128, 128))
        rnd = random_mask((128, 128), float(lt.mean()), seed=2)
        return (
            ranking_elapsed(lt, (4, 4), (4, 4)),
            ranking_elapsed(rnd, (4, 4), (4, 4)),
        )

    t_lt, t_rnd = benchmark(run)
    assert t_lt == pytest.approx(t_rnd, rel=0.25)


@pytest.mark.paper_artifact("Ranking (Section 8 conclusions)")
def test_lower_dimension_block_matters_most(benchmark):
    """'especially the block size of the lower dimension': shrinking W_0
    costs more than shrinking W_1 by the same factor."""
    mask = random_mask((128, 128), 0.5, seed=3)

    def run():
        base = ranking_elapsed(mask, (4, 4), (8, 8))
        small_w0 = ranking_elapsed(mask, (4, 4), (8, 1))  # numpy order: (W1, W0)
        small_w1 = ranking_elapsed(mask, (4, 4), (1, 8))
        return base, small_w0, small_w1

    base, small_w0, small_w1 = benchmark(run)
    assert small_w0 > base and small_w1 > base
    assert small_w0 > small_w1, (
        "dimension-0 block size must dominate the ranking cost"
    )
