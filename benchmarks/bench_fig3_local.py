"""Figure 3 — PACK local computation time of SSS/CSS/CMS vs block size.

Shape claims asserted:

* local computation time increases as the block size decreases,
  independent of the mask density;
* for cyclic distribution SSS is the best of the three;
* for large blocks the compact schemes win, by more at higher density.

Includes the scanning-method ablation (the paper's method 1 early-exit vs
method 2 full-slice second scans).
"""

import pytest

from repro.experiments import fig3


@pytest.mark.paper_artifact("Figure 3")
@pytest.mark.parametrize("density", [0.1, 0.5, 0.9])
def test_fig3_1d_shapes(benchmark, density):
    sweep, data = benchmark(
        fig3.series, (16384,), (16,), density, metric="local", block_points=5
    )
    for scheme, ys in data.items():
        assert ys[0] >= ys[-1], f"{scheme}: local time must fall as W grows"
    assert data["sss"][0] <= data["css"][0], "SSS wins at cyclic"
    assert data["sss"][0] <= data["cms"][0], "SSS wins at cyclic"
    if density >= 0.5:
        assert data["cms"][-1] <= data["sss"][-1], "CMS wins at block, dense mask"


@pytest.mark.paper_artifact("Figure 3")
def test_fig3_2d_shapes(benchmark, reports):
    sweep, data = benchmark(
        fig3.series, (128, 128), (4, 4), 0.5, metric="local", block_points=5
    )
    for scheme, ys in data.items():
        assert ys[0] >= ys[-1]
    assert data["sss"][0] <= data["css"][0]
    reports["fig3"] = fig3.run(fast=True, densities=(0.5,))


@pytest.mark.paper_artifact("Figure 3 (ablation)")
def test_fig3_scan_method_ablation(benchmark):
    """Paper: early-exit slice scanning (method 1) was slightly better."""
    from repro.experiments.common import run_pack

    def both():
        early = run_pack((16384,), (16,), 32, 0.3, "css", early_exit_scan=True)
        full = run_pack((16384,), (16,), 32, 0.3, "css", early_exit_scan=False)
        return early.local_ms, full.local_ms

    early_ms, full_ms = benchmark(both)
    assert early_ms <= full_ms
    # "although the difference was not significantly large"
    assert early_ms > 0.5 * full_ms
