"""The 256-processor weak-scaling study (Section 7).

Shape claims asserted: with the local array size fixed and the processor
count multiplied by 16, local computation stays flat while communication
grows to dominate the total.
"""

import pytest

from repro.experiments import scaling


@pytest.mark.paper_artifact("Scaling study")
def test_weak_scaling_16x(benchmark, reports):
    rows = benchmark(scaling.weak_scaling_rows, 4096, 128, True)
    # rows: [label, P, total, local, prs, m2m]
    small_1d, big_1d, small_2d, big_2d = rows

    # Local computation is (nearly) flat under weak scaling.
    assert big_1d[3] == pytest.approx(small_1d[3], rel=0.3)
    assert big_2d[3] == pytest.approx(small_2d[3], rel=0.3)

    # Communication grows with P and dominates at 256 processors.
    assert big_1d[5] > small_1d[5]
    assert big_1d[4] + big_1d[5] > big_1d[3], "comm dominates at 256 procs (1-D)"
    assert big_2d[4] + big_2d[5] > big_2d[3], "comm dominates at 256 procs (2-D)"

    reports["scaling"] = scaling.run(fast=True)


@pytest.mark.paper_artifact("Scaling study")
def test_small_proc_counts_are_local_dominated(benchmark):
    """Paper: 'for a fixed local array size, the total costs ... are
    dominated by the cost for local computation in a small number of
    processors' — here with a dense mask and 4 processors."""
    from repro.experiments.common import run_pack

    def run():
        return run_pack((8192,), (4,), 16, 0.9, "sss")

    res = benchmark(run)
    assert res.local_ms > res.prs_ms + res.m2m_ms
