"""Architecture-independence ablation (paper Section 2).

"Although our algorithms are analyzed under these [two-level model]
assumptions, most of them are architecture-independent and can be
efficiently implemented on meshes and hypercubes with wormhole routing."

We attach mesh / torus / hypercube / ring topologies with a wormhole
per-hop cost to the CM-5 profile and re-run the full PACK pipeline: the
totals must stay within a small factor of the crossbar baseline at
realistic ``tau_hop`` ratios, and must order by average routing distance.
"""

import numpy as np
import pytest

import repro
from repro.machine import CM5, Hypercube, Mesh2D, Ring, make_topology

RNG = np.random.default_rng(0)
A = RNG.random(4096)
M = RNG.random(4096) < 0.5


def pack_total(topology, tau_hop=5e-6):
    spec = CM5 if topology is None else CM5.with_topology(topology, tau_hop)
    return repro.pack(
        A, M, grid=16, block=8, scheme="cms", spec=spec, validate=False
    ).total_ms


@pytest.mark.paper_artifact("Section 2 (portability)")
def test_topology_portability(benchmark, reports):
    def run():
        return {
            "crossbar": pack_total(None),
            "hypercube": pack_total(Hypercube(16)),
            "torus": pack_total(make_topology("torus", 16)),
            "mesh": pack_total(Mesh2D(16, rows=4, cols=4)),
            "ring": pack_total(Ring(16)),
        }

    totals = benchmark(run)
    base = totals["crossbar"]
    # Low-diameter networks stay within ~25% of the crossbar.
    for name in ("hypercube", "torus", "mesh"):
        assert totals[name] < 1.25 * base, f"{name}: {totals}"
    # Ordering follows average routing distance.
    assert base <= totals["hypercube"] <= totals["mesh"] <= totals["ring"]

    lines = ["Topology ablation (PACK total, N=4096, P=16, W=8, 50% mask):"]
    for name, t in sorted(totals.items(), key=lambda kv: kv[1]):
        lines.append(f"  {name:10s} {t:8.3f} ms")
    reports["topology"] = "\n".join(lines)


@pytest.mark.paper_artifact("Section 2 (portability)")
def test_topology_sensitivity_to_hop_cost(benchmark):
    """With an exaggerated per-hop cost the mesh must visibly lose —
    confirming the ablation actually exercises the topology model."""

    def run():
        return pack_total(Mesh2D(16, rows=4, cols=4), tau_hop=5e-6), pack_total(
            Mesh2D(16, rows=4, cols=4), tau_hop=200e-6
        )

    cheap, expensive = benchmark(run)
    assert expensive > 1.5 * cheap
