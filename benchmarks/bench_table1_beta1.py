"""Table I — beta1 crossover block sizes (CSS vs SSS local computation).

Regenerates the published table's structure and asserts its shape claims:
beta1 > 1 everywhere, beta1 falls with density, and sparse small 2-D
masks push beta1 to infinity.
"""

import math

import pytest

from repro.experiments import table1


@pytest.mark.paper_artifact("Table I")
def test_table1_beta1(benchmark, reports):
    data = benchmark(table1.data, fast=True)

    kinds_1d = [0.1, 0.3, 0.5, 0.7, 0.9, "half"]
    for shape_kind, beta in data["1d"].items():
        assert beta > 1, f"beta1 must exceed 1 (SSS wins at cyclic): {shape_kind}"
    # Density monotonicity (10% vs 90%) per local size.
    for shape in {sk[0] for sk in data["1d"]}:
        assert data["1d"][(shape, 0.9)] <= data["1d"][(shape, 0.1)]
    # 2-D small sparse case diverges, as in the paper.
    assert math.isinf(data["2d"][((64, 64), 0.1)])

    reports["table1"] = table1.run(fast=True)


@pytest.mark.paper_artifact("Table I")
def test_table1_beta1_grows_with_local_size_at_low_density(benchmark):
    from repro.analysis.crossover import find_crossover
    from repro.core.schemes import Scheme
    from repro.machine import CM5

    def betas():
        return [
            find_crossover((n,), (16,), 0.1, Scheme.SSS, Scheme.CSS, CM5)
            for n in (16384, 65536)
        ]

    small, large = benchmark(betas)
    assert large >= small, "paper: beta1 at 10% grows with the local size"
