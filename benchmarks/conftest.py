"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures on the
simulated CM-5 and asserts its headline *shape* claims (who wins, which
direction curves move).  pytest-benchmark measures the wall-clock cost of
the regeneration itself; the scientific output is the simulated times,
which the benchmarks print in paper-shaped rows under ``-s`` and always
validate via assertions.

Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "paper_artifact(name): which table/figure this regenerates"
    )


@pytest.fixture(scope="session")
def reports():
    """Session-scoped store of generated report strings (printed at end)."""
    store: dict[str, str] = {}
    yield store
    if store:
        print("\n" + "=" * 78)
        print("Regenerated paper artifacts (simulated CM-5 times):")
        for name in sorted(store):
            print("\n" + store[name])
