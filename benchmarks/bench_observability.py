"""Observability overhead — what a tracer/metrics registry costs.

Every instrumentation site is guarded (``if metrics is not None`` /
``if tracer is not None``), so a run without observers executes the seed
code path; a run with them must change *wall* time only, never the
simulated clocks.  This benchmark measures both claims on a mid-size
PACK and writes ``BENCH_observability.json`` at the repo root:

    python benchmarks/bench_observability.py

Modes: ``off`` (no observers), ``metrics`` (registry only), ``full``
(tracer + registry, i.e. what ``repro trace`` uses).
"""

import json
import statistics
import time
from pathlib import Path

import numpy as np

import repro
from repro.machine import Tracer
from repro.obs import MetricsRegistry

N, PROCS, BLOCK, DENSITY = 16384, 16, 8, 0.5
REPEATS = 7


def _workload():
    rng = np.random.default_rng(0)
    return rng.random(N), rng.random(N) < DENSITY


def _run(array, mask, mode):
    kwargs = {}
    if mode == "metrics":
        kwargs["metrics"] = MetricsRegistry()
    elif mode == "full":
        kwargs["metrics"] = MetricsRegistry()
        kwargs["tracer"] = Tracer()
    t0 = time.perf_counter()
    result = repro.pack(array, mask, grid=(PROCS,), block=BLOCK,
                        scheme="cms", validate=False, **kwargs)
    return time.perf_counter() - t0, result.run.elapsed


def measure():
    array, mask = _workload()
    _run(array, mask, "off")  # warm caches once
    wall = {m: [] for m in ("off", "metrics", "full")}
    simulated = {}
    for _ in range(REPEATS):
        for mode in wall:
            dt, sim = _run(array, mask, mode)
            wall[mode].append(dt)
            simulated.setdefault(mode, sim)

    off = statistics.median(wall["off"])
    report = {
        "workload": {"n": N, "nprocs": PROCS, "block": BLOCK,
                     "density": DENSITY, "scheme": "cms",
                     "repeats": REPEATS},
        "simulated_elapsed_seconds": simulated["off"],
        "deterministic": len(set(simulated.values())) == 1,
        "wall_seconds": {m: statistics.median(ts) for m, ts in wall.items()},
        "overhead_pct": {
            m: 100.0 * (statistics.median(ts) - off) / off
            for m, ts in wall.items()
            if m != "off"
        },
    }
    return report


def test_observers_do_not_change_simulated_time():
    """Determinism: simulated clocks are identical across all modes."""
    array, mask = _workload()
    elapsed = {mode: _run(array, mask, mode)[1]
               for mode in ("off", "metrics", "full")}
    assert elapsed["metrics"] == elapsed["off"]
    assert elapsed["full"] == elapsed["off"]


def test_metrics_overhead_is_modest():
    """The registry adds bounded wall overhead on a mid-size PACK; the
    bound is deliberately loose — CI machines are noisy."""
    report = measure()
    assert report["deterministic"]
    assert report["overhead_pct"]["metrics"] < 50.0


def main() -> int:
    report = measure()
    out = Path(__file__).resolve().parent.parent / "BENCH_observability.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    w = report["wall_seconds"]
    print(f"PACK n={N} P={PROCS} ({REPEATS} repeats, median wall time):")
    for mode in ("off", "metrics", "full"):
        pct = report["overhead_pct"].get(mode)
        extra = f"  (+{pct:.1f}%)" if pct is not None else ""
        print(f"  {mode:8s} {w[mode] * 1e3:8.2f} ms{extra}")
    print(f"deterministic simulated time: {report['deterministic']}")
    print(f"[bench -> {out}]")
    return 0 if report["deterministic"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
