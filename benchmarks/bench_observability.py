"""Observability overhead — what a tracer/metrics registry costs.

Every instrumentation site is guarded (``if metrics is not None`` /
``if tracer is not None``), so a run without observers executes the seed
code path; a run with them must change *wall* time only, never the
simulated clocks.  This benchmark measures both claims on a mid-size
PACK and writes ``BENCH_observability.json`` at the repo root:

    python benchmarks/bench_observability.py [--quick] [--check]

Modes: ``off`` (no observers), ``disabled`` (registry attached but
muted — the engine pre-binds metric handles, every recording site is one
cached-flag check), ``metrics`` (registry recording), ``full`` (tracer +
registry, i.e. what ``repro trace`` uses).

``--quick`` drops the repeat count for CI; ``--check`` exits non-zero
unless the ``disabled`` mode's overhead is at most ``CHECK_LIMIT_PCT``
(a muted registry must be as good as no registry).
"""

import argparse
import json
import statistics
import time
from pathlib import Path

import numpy as np

import repro
from repro.machine import Tracer
from repro.obs import MetricsRegistry

N, PROCS, BLOCK, DENSITY = 16384, 16, 8, 0.5
REPEATS = 15
QUICK_REPEATS = 9
MODES = ("off", "disabled", "metrics", "full")

#: ``--check`` gate: max tolerated wall overhead of a *disabled* registry.
CHECK_LIMIT_PCT = 5.0


def _workload():
    rng = np.random.default_rng(0)
    return rng.random(N), rng.random(N) < DENSITY


def _run(array, mask, mode):
    kwargs = {}
    if mode == "disabled":
        reg = MetricsRegistry()
        reg.disable()
        kwargs["metrics"] = reg
    elif mode == "metrics":
        kwargs["metrics"] = MetricsRegistry()
    elif mode == "full":
        kwargs["metrics"] = MetricsRegistry()
        kwargs["tracer"] = Tracer()
    t0 = time.perf_counter()
    result = repro.pack(array, mask, grid=(PROCS,), block=BLOCK,
                        scheme="cms", validate=False, **kwargs)
    return time.perf_counter() - t0, result.run.elapsed


def measure(repeats=REPEATS):
    array, mask = _workload()
    _run(array, mask, "off")  # warm caches once
    wall = {m: [] for m in MODES}
    simulated = {}
    for _ in range(repeats):
        for mode in wall:
            dt, sim = _run(array, mask, mode)
            wall[mode].append(dt)
            simulated.setdefault(mode, sim)

    off = statistics.median(wall["off"])
    off_min = min(wall["off"])
    report = {
        "workload": {"n": N, "nprocs": PROCS, "block": BLOCK,
                     "density": DENSITY, "scheme": "cms",
                     "repeats": repeats},
        "simulated_elapsed_seconds": simulated["off"],
        "deterministic": len(set(simulated.values())) == 1,
        "wall_seconds": {m: statistics.median(ts) for m, ts in wall.items()},
        "overhead_pct": {
            m: 100.0 * (statistics.median(ts) - off) / off
            for m, ts in wall.items()
            if m != "off"
        },
        # Best-of times: robust to scheduler noise (a run can only be
        # slowed down by interference, never sped up), so this is what
        # the --check gate compares.
        "overhead_pct_best": {
            m: 100.0 * (min(ts) - off_min) / off_min
            for m, ts in wall.items()
            if m != "off"
        },
    }
    return report


def test_observers_do_not_change_simulated_time():
    """Determinism: simulated clocks are identical across all modes."""
    array, mask = _workload()
    elapsed = {mode: _run(array, mask, mode)[1] for mode in MODES}
    assert elapsed["disabled"] == elapsed["off"]
    assert elapsed["metrics"] == elapsed["off"]
    assert elapsed["full"] == elapsed["off"]


def test_metrics_overhead_is_modest():
    """The registry adds bounded wall overhead on a mid-size PACK; the
    bound is deliberately loose — CI machines are noisy."""
    report = measure(repeats=QUICK_REPEATS)
    assert report["deterministic"]
    assert report["overhead_pct"]["metrics"] < 50.0
    # A muted registry must be far cheaper than a recording one; keep the
    # in-pytest bound loose (the strict gate is ``--check`` in CI's bench
    # job, where the run is repeated and the median is compared).
    assert report["overhead_pct"]["disabled"] < 25.0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help=f"{QUICK_REPEATS} repeats instead of {REPEATS}; "
                         "skip writing BENCH_observability.json")
    ap.add_argument("--check", action="store_true",
                    help="exit 1 unless disabled-registry overhead is "
                         f"<= {CHECK_LIMIT_PCT:.0f}%%")
    args = ap.parse_args(argv)

    report = measure(repeats=QUICK_REPEATS if args.quick else REPEATS)
    if not args.quick:
        out = Path(__file__).resolve().parent.parent / "BENCH_observability.json"
        out.write_text(json.dumps(report, indent=2) + "\n")
    w = report["wall_seconds"]
    print(f"PACK n={N} P={PROCS} "
          f"({report['workload']['repeats']} repeats, median wall time):")
    for mode in MODES:
        pct = report["overhead_pct"].get(mode)
        extra = f"  (+{pct:.1f}%)" if pct is not None else ""
        print(f"  {mode:8s} {w[mode] * 1e3:8.2f} ms{extra}")
    print(f"deterministic simulated time: {report['deterministic']}")
    if not args.quick:
        print(f"[bench -> {out}]")
    ok = report["deterministic"]
    if args.check:
        disabled = report["overhead_pct_best"]["disabled"]
        passed = disabled <= CHECK_LIMIT_PCT
        print(f"check: disabled-registry overhead {disabled:+.1f}% best-of "
              f"(limit {CHECK_LIMIT_PCT:.0f}%) -> "
              f"{'OK' if passed else 'FAIL'}")
        ok = ok and passed
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
