"""Figure 4 — total PACK execution time of the three schemes vs block size.

Shape claims asserted:

* the compact message scheme gives the best total of the three at
  moderate-to-large block sizes;
* total time falls as the block size grows;
* the many-to-many schedule ablation: the linear permutation schedule is
  no slower than the naive schedule.
"""

import pytest

from repro.experiments import fig4, fig3


@pytest.mark.paper_artifact("Figure 4")
@pytest.mark.parametrize("density", [0.5, 0.9])
def test_fig4_1d_total(benchmark, density, reports):
    sweep, data = benchmark(
        fig3.series, (16384,), (16,), density, metric="total", block_points=5
    )
    for scheme, ys in data.items():
        assert ys[0] > ys[-1], f"{scheme}: total must fall as W grows"
    # CMS the best scheme at large W (paper's headline).
    assert data["cms"][-1] <= data["css"][-1] + 1e-12
    assert data["cms"][-1] <= data["sss"][-1] + 1e-12
    if "fig4" not in reports:
        reports["fig4"] = fig4.run(fast=True, densities=(0.5,))


@pytest.mark.paper_artifact("Figure 4")
def test_fig4_2d_total(benchmark):
    sweep, data = benchmark(
        fig3.series, (128, 128), (4, 4), 0.9, metric="total", block_points=5
    )
    assert data["cms"][-1] <= data["css"][-1] + 1e-12
    assert data["cms"][-1] <= data["sss"][-1] + 1e-12


@pytest.mark.paper_artifact("Figure 4 (ablation)")
def test_fig4_m2m_schedule_ablation(benchmark):
    """Linear permutation with count detection skips empty steps: it wins
    clearly when the communication pattern is sparse (block-distributed
    input, where most data stays on-processor) and costs at most one
    control-network detection when the pattern is dense."""
    from repro.experiments.common import run_pack

    def both():
        # Sparse pattern: block distribution, most traffic self-addressed.
        lin_sparse = run_pack((16384,), (16,), "block", 0.5, "cms",
                              m2m_schedule="linear")
        nai_sparse = run_pack((16384,), (16,), "block", 0.5, "cms",
                              m2m_schedule="naive")
        # Dense pattern: every pair communicates.
        lin_dense = run_pack((16384,), (16,), 8, 0.5, "cms", m2m_schedule="linear")
        nai_dense = run_pack((16384,), (16,), 8, 0.5, "cms", m2m_schedule="naive")
        return lin_sparse, nai_sparse, lin_dense, nai_dense

    lin_sparse, nai_sparse, lin_dense, nai_dense = benchmark(both)
    assert lin_sparse.run.total_messages < nai_sparse.run.total_messages
    assert lin_sparse.m2m_ms < nai_sparse.m2m_ms
    # Dense: the detection overhead is bounded by one control operation.
    overhead = lin_dense.m2m_ms - nai_dense.m2m_ms
    assert overhead < 0.1, f"dense-pattern announce overhead too large: {overhead}"


@pytest.mark.paper_artifact("Figure 4 (ablation)")
def test_fig4_prs_algorithm_within_pack(benchmark):
    """On a no-control-network machine, the paper heuristic ('auto') is
    never slower than forcing the wrong algorithm at cyclic W=1."""
    from repro.experiments.common import run_pack
    from repro.machine import CM5

    spec = CM5.without_control_network()

    def run():
        auto = run_pack((16384,), (16,), 1, 0.5, "css", spec=spec, prs="auto")
        direct = run_pack((16384,), (16,), 1, 0.5, "css", spec=spec, prs="direct")
        split = run_pack((16384,), (16,), 1, 0.5, "css", spec=spec, prs="split")
        return auto.prs_ms, direct.prs_ms, split.prs_ms

    auto_ms, direct_ms, split_ms = benchmark(run)
    assert auto_ms <= min(direct_ms, split_ms) * 1.05
