"""Prefix-reduction-sum study (Section 7 + [1, 6] comparison).

Shape claims asserted:

* the split algorithm beats the direct algorithm as P and M grow;
* the direct algorithm wins for small P or vectors shorter than P
  (the paper's selection heuristic);
* PRS time within PACK falls as the block size grows, and grows faster
  for 2-D arrays as W shrinks.
"""

import pytest

from repro.experiments import prs
from repro.machine import CM5

NOCTRL = CM5.without_control_network()


@pytest.mark.paper_artifact("PRS study")
def test_prs_split_vs_direct_crossover(benchmark, reports):
    def run():
        return (
            prs.prs_times(4, 16, spec=NOCTRL),
            prs.prs_times(16, 4096, spec=NOCTRL),
        )

    small, large = benchmark(run)
    assert small["direct"] < small["split"], "direct wins for small P and M"
    assert large["split"] < large["direct"], "split wins for large P and M"
    reports["prs"] = prs.run(fast=True)


@pytest.mark.paper_artifact("PRS study")
def test_prs_pipeline_regime(benchmark):
    """The pipelined tree (reference [6]'s O(tau log P + mu M) algorithm)
    wins between direct (latency-optimal, tiny vectors) and the transpose
    split (bandwidth-optimal, huge vectors): large P with moderate M."""

    def run():
        return (
            prs.prs_times(64, 1024, spec=NOCTRL),
            prs.prs_times(64, 8, spec=NOCTRL),
            prs.prs_times(16, 65536, spec=NOCTRL),
        )

    mid, tiny, huge = benchmark(run)
    assert mid["pipeline"] < mid["split"], "pipeline beats split at large P"
    assert tiny["direct"] < tiny["pipeline"], "direct wins for tiny vectors"
    assert huge["split"] < huge["pipeline"], "split wins for huge vectors"


@pytest.mark.paper_artifact("PRS study")
def test_prs_control_network_short_vs_long(benchmark):
    """The control network wins for short vectors but its element-serial
    scan loses to the data-network algorithms for long ones — the reason
    the paper's 2-D experiments used direct/split instead of the CM-5
    global functions."""

    def run():
        return prs.prs_times(16, 64, spec=CM5), prs.prs_times(16, 65536, spec=CM5)

    short, long_ = benchmark(run)
    assert short["ctrl"] < short["direct"]
    assert short["ctrl"] < short["split"]
    assert long_["split"] < long_["ctrl"]


@pytest.mark.paper_artifact("PRS study")
def test_prs_within_pack_falls_with_block_size(benchmark):
    """PRS time vs W, using the paper's 1-D/2-D size proportions (the 2-D
    local array is 4x the 1-D one, as with N=65536 vs 512^2)."""

    def run():
        s1, t1 = prs.prs_in_pack_series((4096,), (16,), block_points=4)
        s2, t2 = prs.prs_in_pack_series((128, 128), (4, 4), block_points=4)
        return t1, t2

    t1, t2 = benchmark(run)
    assert t1[0] > t1[-1], "1-D PRS time falls as W grows"
    assert t2[0] > t2[-1], "2-D PRS time falls as W grows"
    # Absolute growth toward W=1 is larger for the 2-D configuration.
    assert (t2[0] - t2[-1]) > (t1[0] - t1[-1])
