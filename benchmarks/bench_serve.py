"""Serve throughput: coalesced batching vs solo dispatch, plus bit-identity.

The claim under measurement: grouping compatible PACK requests into one
:func:`~repro.core.multi.pack_many` gang amortizes the per-run simulator
setup and the mask-dependent ranking across the batch, so under
saturating offered load the coalescing server sustains a multiple of the
solo server's request throughput — without changing a single response
byte.  Both modes run the identical seeded open-loop request stream
(:mod:`repro.serve.loadgen`) against an in-process server on the sim
backend; only the coalescing window/size differ.

Recorded per mode: sustained req/s, p50/p99 latency, batch-occupancy
histogram, coalesced fraction.  The gate (``--check``) bands the
**ratio** of coalesced to solo throughput — a same-host ratio transfers
across machines, unlike absolute req/s — and requires the bit-identity
probe (same K requests through both modes, byte-compared) to pass.

Usage::

    python benchmarks/bench_serve.py                  # measure + print
    python benchmarks/bench_serve.py --record --label PR10
    python benchmarks/bench_serve.py --quick --check  # CI gate
"""

from __future__ import annotations

import argparse
import asyncio
import json
import subprocess
import sys
from pathlib import Path

import numpy as np

from repro.serve import LoadgenConfig, PackUnpackServer, ServeConfig
from repro.serve.loadgen import run_loadgen_async
from repro.serve.protocol import encode_array
from repro.serial.reference import pack_reference

ROOT = Path(__file__).resolve().parent.parent
OUT = ROOT / "BENCH_serve.json"
SEED = 0

#: CI band: the coalesced/solo throughput ratio must stay above this.
#: Recorded full runs show ~2x or better; the band is deliberately slack
#: (thread scheduling on loaded CI hosts adds noise to both modes).
MIN_RATIO = 1.3
#: Coalescing must not cost tail latency: coalesced p99 may exceed solo
#: p99 by at most this factor (in practice it is far *below* solo).
MAX_P99_RATIO = 1.25

#: Problem geometry chosen so the mask-dependent ranking (shared across a
#: gang) dominates the per-array exchange: large n, sparse mask.  At
#: n=1024/density 0.1 the engine-level gang-vs-solo ratio is ~2.4x; the
#: wire/parse overhead per request (symmetric between modes) dilutes what
#: the server can realize.
N = 1024
PROCS = 2
DENSITY = 0.1
MASKS = 2  # small pool => compatible requests recur => coalescing bites


def _serve_config(coalesced: bool) -> ServeConfig:
    return ServeConfig(
        backend="sim",
        max_delay=0.003 if coalesced else 0.0,
        max_batch=24 if coalesced else 1,
        max_queue=100_000,  # measure service rate, not shedding
        max_inflight=1,  # single executor lane: same CPU budget per mode
    )


def _load_config(port: int, nreq: int, rate: float) -> LoadgenConfig:
    return LoadgenConfig(
        port=port,
        rate=rate,
        duration=nreq / rate,
        seed=SEED,
        n=N,
        procs=PROCS,
        density=DENSITY,
        masks=MASKS,
        ops=("pack",),
        scheme="cms",
        connections=8,
        timeout=600.0,
    )


async def _run_mode(coalesced: bool, nreq: int, rate: float) -> dict:
    srv = PackUnpackServer(_serve_config(coalesced))
    await srv.start()
    try:
        report = await run_loadgen_async(_load_config(srv.port, nreq, rate))
    finally:
        await srv.drain()
    if report["ok"] != report["sent"] or report["errors"]:
        raise AssertionError(
            f"{'coalesced' if coalesced else 'solo'} mode dropped requests: "
            f"{report['ok']}/{report['sent']} ok, {report['errors']} errors"
        )
    return {
        "throughput_rps": round(report["throughput_rps"], 1),
        "p50_ms": round(report["latency_ms"]["p50"], 2),
        "p99_ms": round(report["latency_ms"]["p99"], 2),
        "batch_occupancy": report["batch_occupancy"],
        "coalesced_fraction": round(report["coalesced_fraction"], 3),
        "plan": report["plan"],
    }


async def _bit_identity(k: int = 6) -> bool:
    """The same K requests through both modes must produce byte-identical
    result blobs (and match the serial reference)."""
    import json as _json

    rng = np.random.default_rng(SEED + 1)
    mask = rng.random(N) < DENSITY
    arrays = [rng.standard_normal(N) for _ in range(k)]
    payloads = [
        {"id": f"b{i}", "op": "pack", "grid": [PROCS], "scheme": "cms",
         "mask": encode_array(mask), "array": encode_array(a)}
        for i, a in enumerate(arrays)
    ]

    async def through(coalesced: bool) -> list[dict]:
        srv = PackUnpackServer(_serve_config(coalesced))
        await srv.start()
        try:
            reader, writer = await asyncio.open_connection(srv.host, srv.port)
            writer.write(b"".join(
                (_json.dumps(p) + "\n").encode() for p in payloads
            ))
            await writer.drain()
            by_id = {}
            for _ in payloads:
                body = _json.loads(await reader.readline())
                by_id[body["id"]] = body
            writer.close()
            await writer.wait_closed()
            return [by_id[p["id"]] for p in payloads]
        finally:
            await srv.drain()

    co, solo = await through(True), await through(False)
    if not any(b["batch"]["coalesced"] for b in co):
        raise AssertionError("bit-identity probe never coalesced")
    for bc, bs, arr in zip(co, solo, arrays):
        ref = pack_reference(arr, mask)
        if bc["result"]["data"] != bs["result"]["data"]:
            return False
        got = np.frombuffer(
            __import__("base64").b64decode(bc["result"]["data"]),
            dtype=bc["result"]["dtype"],
        )
        if not np.array_equal(got, ref):
            return False
    return True


def measure(quick: bool) -> dict:
    nreq = 150 if quick else 600
    reps = 1 if quick else 3  # full runs take the median rep: single-core
    rate = 5000.0  # saturating: arrivals far outpace service in both modes
    print(f"serve benchmark: {nreq} requests offered at {rate:g} req/s "
          f"(n={N}, P={PROCS}, {MASKS} masks, {reps} rep(s))")

    async def main():
        runs = []
        for _ in range(reps):
            co = await _run_mode(True, nreq, rate)
            solo = await _run_mode(False, nreq, rate)
            runs.append((co["throughput_rps"] / solo["throughput_rps"],
                         co, solo))
        identical = await _bit_identity()
        return runs, identical

    runs, identical = asyncio.run(main())
    runs.sort(key=lambda t: t[0])
    ratio, co, solo = runs[len(runs) // 2]  # median rep by ratio
    for label, m in (("coalesced", co), ("solo", solo)):
        print(f"  {label:<10s} {m['throughput_rps']:8.1f} req/s   "
              f"p50 {m['p50_ms']:7.2f} ms   p99 {m['p99_ms']:8.2f} ms   "
              f"occupancy {m['batch_occupancy']}")
    print(f"  throughput ratio {ratio:.2f}x "
          f"(all reps: {[round(r, 2) for r, _, _ in runs]}), "
          f"bit-identical: {identical}")
    return {
        "nreq": nreq,
        "offered_rps": rate,
        "coalesced": co,
        "solo": solo,
        "throughput_ratio": round(ratio, 3),
        "ratio_reps": [round(r, 3) for r, _, _ in runs],
        "p99_ratio": round(co["p99_ms"] / solo["p99_ms"], 3),
        "bit_identical": identical,
    }


def check(entry: dict) -> list[str]:
    failures = []
    if not entry["bit_identical"]:
        failures.append("coalesced responses are NOT byte-identical to solo")
    if entry["throughput_ratio"] < MIN_RATIO:
        failures.append(
            f"coalesced/solo throughput ratio {entry['throughput_ratio']} "
            f"below band {MIN_RATIO}"
        )
    if entry["p99_ratio"] > MAX_P99_RATIO:
        failures.append(
            f"coalescing cost tail latency: p99 ratio {entry['p99_ratio']} "
            f"above {MAX_P99_RATIO}"
        )
    if entry["coalesced"]["coalesced_fraction"] <= 0.5:
        failures.append(
            f"coalesced mode only batched "
            f"{entry['coalesced']['coalesced_fraction']:.0%} of requests "
            f"under saturating load"
        )
    return failures


def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=ROOT,
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


def load() -> dict:
    if OUT.exists():
        return json.loads(OUT.read_text())
    return {
        "schema": 1,
        "bands": {"min_throughput_ratio": MIN_RATIO,
                  "max_p99_ratio": MAX_P99_RATIO},
        "trajectory": [],
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    ap.add_argument("--quick", action="store_true",
                    help="smaller request count (CI)")
    ap.add_argument("--record", action="store_true",
                    help="append this measurement to BENCH_serve.json")
    ap.add_argument("--check", action="store_true",
                    help="gate the ratio/bit-identity bands")
    ap.add_argument("--label", default=None)
    args = ap.parse_args(argv)

    entry = measure(args.quick)
    entry["label"] = args.label or ("quick" if args.quick else "local")
    entry["rev"] = _git_rev()

    rc = 0
    if args.check:
        failures = check(entry)
        if failures:
            print("\nSERVE GATE FAILED:", file=sys.stderr)
            for f in failures:
                print(f"  - {f}", file=sys.stderr)
            rc = 1
        else:
            print(f"\nserve gate OK (ratio >= {MIN_RATIO}x, "
                  f"p99 ratio <= {MAX_P99_RATIO}x, bit-identical)")
    if args.record:
        doc = load()
        doc["trajectory"].append(entry)
        OUT.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"recorded trajectory entry {entry['label']!r} -> {OUT}")
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
