"""Figure 5 — total UNPACK execution time of SSS/CSS vs block size.

Shape claims asserted:

* total time falls as the block size grows;
* CSS beats SSS at large blocks and high density, SSS wins at cyclic;
* UNPACK's two-phase redistribution makes it slower than the matching
  PACK (Section 4.2).
"""

import pytest

from repro.experiments import fig5, fig3
from repro.experiments.common import run_pack, run_unpack


@pytest.mark.paper_artifact("Figure 5")
@pytest.mark.parametrize("density", [0.5, 0.9])
def test_fig5_1d_total(benchmark, density, reports):
    sweep, data = benchmark(
        fig3.series,
        (16384,),
        (16,),
        density,
        metric="total",
        schemes=("sss", "css"),
        block_points=5,
        unpack_mode=True,
    )
    for scheme, ys in data.items():
        assert ys[0] > ys[-1]
    assert data["sss"][0] <= data["css"][0], "SSS wins at cyclic"
    assert data["css"][-1] <= data["sss"][-1], "CSS wins at block"
    if "fig5" not in reports:
        reports["fig5"] = fig5.run(fast=True, densities=(0.5,))


@pytest.mark.paper_artifact("Figure 5")
def test_fig5_2d_total(benchmark):
    sweep, data = benchmark(
        fig3.series,
        (128, 128),
        (4, 4),
        0.9,
        metric="total",
        schemes=("sss", "css"),
        block_points=5,
        unpack_mode=True,
    )
    assert data["css"][-1] <= data["sss"][-1]


@pytest.mark.paper_artifact("Figure 5")
def test_fig5_unpack_slower_than_pack(benchmark):
    def both():
        p = run_pack((16384,), (16,), 8, 0.5, "css")
        u = run_unpack((16384,), (16,), 8, 0.5, "css")
        return p.total_ms, u.total_ms

    pack_ms, unpack_ms = benchmark(both)
    assert unpack_ms > pack_ms


@pytest.mark.paper_artifact("Figure 5 (extension)")
def test_fig5_compressed_requests_ablation(benchmark):
    """Library extension: run-length-encoded rank requests (the CMS slice
    property applied to UNPACK's request phase) cut wire volume for dense
    masks on block-cyclic layouts, and degrade at cyclic — mirroring the
    CMS/pair trade-off of Section 6.2."""

    def run():
        plain = run_unpack((16384,), (16,), 32, 0.9, "css")
        comp = run_unpack((16384,), (16,), 32, 0.9, "css", compress_requests=True)
        plain_cyc = run_unpack((16384,), (16,), 1, 0.9, "css")
        comp_cyc = run_unpack((16384,), (16,), 1, 0.9, "css", compress_requests=True)
        return plain, comp, plain_cyc, comp_cyc

    plain, comp, plain_cyc, comp_cyc = benchmark(run)
    assert comp.run.total_words < plain.run.total_words
    assert comp_cyc.run.total_words >= plain_cyc.run.total_words
