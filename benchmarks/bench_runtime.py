"""Sim-vs-mp execution-backend comparison: ``BENCH_runtime.json``.

The other ``bench_*`` files time either the paper's *simulated* machine
(the tables and figures) or the simulator's own hot paths
(``bench_perf.py``).  This one compares the two **execution backends** on
the same PACK/UNPACK workloads (the paper's Figure 4/5 shape: 1-D array,
random mask, CMS pack / CSS unpack) at ``P`` in {2, 4, 8}:

* ``sim`` — the deterministic cost simulator.  Reported per case:
  host wall-clock of the whole call, and the *simulated* elapsed time the
  cost model predicts for the CM-5.
* ``mp`` — one OS process per rank on real cores.  Reported per case:
  host wall-clock of the whole call (fork + shm + gang + teardown), and
  the gang-internal *wall* elapsed time (max final rank clock, the same
  quantity the simulator reports in its own time domain).

The two elapsed numbers live in different time domains on purpose — this
benchmark records them side by side but never adds them (the library
itself refuses to: see ``aggregate_time`` / ``TimeDomainError``).

Alongside the comparison it records *where the mp wall time goes*: each
mp case is re-run once under a :class:`~repro.obs.runtime.RuntimeProfiler`
and the resulting phase-attribution tables (fork / shm / pickle /
queue_send / queue_wait / collective / compute / reap as fractions of the
host wall) and communication totals are written to ``BENCH_profile.json``
— the file that explains the ``mp_over_sim_host_wall`` ratios above.

Usage::

    python benchmarks/bench_runtime.py            # measure + write JSON
    python benchmarks/bench_runtime.py --quick    # small workload (CI)
    python benchmarks/bench_runtime.py --no-write # print only
"""

from __future__ import annotations

import argparse
import json
import subprocess
import time
from pathlib import Path

import numpy as np

from repro.core.api import pack, unpack
from repro.obs import RuntimeProfiler
from repro.runtime import MpBackend, SimBackend

ROOT = Path(__file__).resolve().parent.parent
OUT = ROOT / "BENCH_runtime.json"
OUT_PROFILE = ROOT / "BENCH_profile.json"
SEED = 0
PROCS = (2, 4, 8)
GANG_TIMEOUT = 300.0  # wall budget per mp gang; a hang fails, not stalls


def _workload(n: int, density: float):
    rng = np.random.default_rng(SEED)
    array = rng.random(n)
    mask = rng.random(n) < density
    vector = rng.random(int(mask.sum()))
    field = np.full(n, -1.0)
    return array, mask, vector, field


def _run_case(op: str, p: int, backend, inputs, profile=None) -> float:
    """One PACK or UNPACK on ``backend``; returns the run's elapsed time
    (simulated seconds on sim, gang wall seconds on mp)."""
    array, mask, vector, field = inputs
    if op == "pack":
        r = pack(array, mask, grid=(p,), scheme="cms", validate=False,
                 backend=backend, profile=profile)
    else:
        r = unpack(vector, mask, field, grid=(p,), scheme="css",
                   validate=False, backend=backend, profile=profile)
    return r.run.elapsed


def measure(n: int, density: float, reps: int) -> list[dict]:
    inputs = _workload(n, density)
    backends = {
        "sim": SimBackend(),
        "mp": MpBackend(timeout=GANG_TIMEOUT),
    }
    cases = []
    for op in ("pack", "unpack"):
        for p in PROCS:
            row: dict = {"op": op, "p": p, "n": n}
            for bname, backend in backends.items():
                best_wall = float("inf")
                elapsed = None
                for _ in range(reps):
                    t0 = time.perf_counter()
                    e = _run_case(op, p, backend, inputs)
                    best_wall = min(best_wall, time.perf_counter() - t0)
                    # sim elapsed is deterministic; for mp keep the run
                    # matching the best host wall.
                    if elapsed is None or bname == "mp":
                        elapsed = e
                row[bname] = {
                    "host_wall_ms": round(best_wall * 1e3, 3),
                    "elapsed_ms": round(elapsed * 1e3, 6),
                    "time_domain": backend.time_domain,
                }
            ratio = (row["mp"]["host_wall_ms"] / row["sim"]["host_wall_ms"]
                     if row["sim"]["host_wall_ms"] else float("inf"))
            row["mp_over_sim_host_wall"] = round(ratio, 3)
            cases.append(row)
            print(f"  {op:<6s} P={p}: "
                  f"sim {row['sim']['host_wall_ms']:9.1f} ms host "
                  f"({row['sim']['elapsed_ms']:9.3f} ms simulated)   "
                  f"mp {row['mp']['host_wall_ms']:9.1f} ms host "
                  f"({row['mp']['elapsed_ms']:9.3f} ms gang wall)")
    return cases


def measure_profiles(n: int, density: float) -> list[dict]:
    """Profile each mp case once: where does the host wall go?"""
    inputs = _workload(n, density)
    backend = MpBackend(timeout=GANG_TIMEOUT)
    cases = []
    for op in ("pack", "unpack"):
        for p in PROCS:
            prof = RuntimeProfiler()
            _run_case(op, p, backend, inputs, profile=prof)
            profile = prof.profile
            table = profile.phase_table()
            cases.append({
                "op": op,
                "p": p,
                "n": n,
                "backend": "mp",
                "time_domain": profile.time_domain,
                "host_wall_ms": round(profile.total_seconds * 1e3, 3),
                "attributed_fraction": round(profile.attributed_fraction, 6),
                "phases_ms": {
                    name: round(row["seconds"] * 1e3, 3)
                    for name, row in table.items()
                },
                "phase_fraction": {
                    name: round(row["fraction"], 4)
                    for name, row in table.items()
                },
                "comm": {
                    "messages": int(sum(map(sum, profile.comm_msgs))),
                    "pickled_bytes": int(sum(map(sum, profile.comm_bytes))),
                    "collectives": int(sum(profile.collectives_per_rank)),
                },
                "dropped_events": profile.dropped_events,
            })
            top = max(table, key=lambda k: table[k]["seconds"])
            print(f"  {op:<6s} P={p}: mp {cases[-1]['host_wall_ms']:9.1f} ms "
                  f"host, attributed "
                  f"{cases[-1]['attributed_fraction'] * 100:5.1f}%, "
                  f"top phase {top} "
                  f"({table[top]['fraction'] * 100:.0f}%)")
    return cases


def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=ROOT,
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    ap.add_argument("--n", type=int, default=1 << 16,
                    help="1-D array size (default 65536)")
    ap.add_argument("--density", type=float, default=0.5)
    ap.add_argument("--reps", type=int, default=3,
                    help="repetitions per cell (best host wall kept)")
    ap.add_argument("--quick", action="store_true",
                    help="small workload, one rep (CI smoke)")
    ap.add_argument("--no-write", action="store_true",
                    help="print only; do not write BENCH_runtime.json")
    args = ap.parse_args(argv)

    n = 4096 if args.quick else args.n
    reps = 1 if args.quick else args.reps
    print(f"runtime backends: pack/unpack n={n} density={args.density} "
          f"P={list(PROCS)} ({reps} rep{'s' if reps > 1 else ''}):")
    cases = measure(n, args.density, reps)
    print("mp phase attribution:")
    profile_cases = measure_profiles(n, args.density)

    if not args.no_write:
        rev = _git_rev()
        doc = {
            "schema": 1,
            "n": n,
            "density": args.density,
            "reps": reps,
            "procs": list(PROCS),
            "rev": rev,
            "cases": cases,
        }
        OUT.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"wrote {len(cases)} cases -> {OUT}")
        prof_doc = {
            "schema": 1,
            "n": n,
            "density": args.density,
            "procs": list(PROCS),
            "rev": rev,
            "cases": profile_cases,
        }
        OUT_PROFILE.write_text(json.dumps(prof_doc, indent=2) + "\n")
        print(f"wrote {len(profile_cases)} cases -> {OUT_PROFILE}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
