"""Sim-vs-mp execution-backend comparison: ``BENCH_runtime.json``.

The other ``bench_*`` files time either the paper's *simulated* machine
(the tables and figures) or the simulator's own hot paths
(``bench_perf.py``).  This one compares the two **execution backends** on
the same PACK/UNPACK workloads (the paper's Figure 4/5 shape: 1-D array,
random mask, CMS pack / CSS unpack) at ``P`` in {2, 4, 8}:

* ``sim`` — the deterministic cost simulator.  Reported per case:
  host wall-clock of the whole call, and the *simulated* elapsed time the
  cost model predicts for the CM-5.
* ``mp`` — one OS process per rank on real cores.  Reported per case:
  host wall-clock of the whole call (fork + shm + gang + teardown), and
  the gang-internal *wall* elapsed time (max final rank clock, the same
  quantity the simulator reports in its own time domain).

The two elapsed numbers live in different time domains on purpose — this
benchmark records them side by side but never adds them (the library
itself refuses to: see ``aggregate_time`` / ``TimeDomainError``).

Two measurement regimes, recorded separately:

* **cold** (``cases``, the original fields) — each op pays fork + shm +
  gang teardown.  This is what made early runs look like mp scaled
  *inversely* with P: more ranks, more forks per op.
* **steady state** (``steady_state``) — ops run on a warm persistent
  gang (:class:`~repro.runtime.GangSupervisor`), with the one-time gang
  spawn cost reported separately (``gang_setup_ms``).  Each cell is
  measured per transport (``queue`` vs ``ring``), so the zero-copy
  transport win is visible instead of being buried under fork cost.

Alongside the comparison it records *where the mp wall time goes*: each
mp case is re-run once under a :class:`~repro.obs.runtime.RuntimeProfiler`
and the resulting phase-attribution tables (fork / shm / pickle /
queue_send / queue_wait / encode / ring_send / ring_wait / collective /
compute / reap as fractions of the host wall) and communication totals
are written to ``BENCH_profile.json`` — the file that explains the
``mp_over_sim_host_wall`` ratios above.  A ``codec_crossover`` section
records the analytic SSS-vs-CMS wire-byte ratio of the paper's beta_2
crossover (CMS wins iff the mean run length exceeds 2).

Usage::

    python benchmarks/bench_runtime.py            # measure + write JSON
    python benchmarks/bench_runtime.py --quick    # small workload (CI)
    python benchmarks/bench_runtime.py --no-write # print only
    python benchmarks/bench_runtime.py --quick --check   # CI perf gate
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import time
from pathlib import Path

import numpy as np

from repro.codecs import pair_runs, wire_bytes_pair_cms, wire_bytes_pair_sss
from repro.core.api import pack, unpack
from repro.obs import RuntimeProfiler
from repro.runtime import GangSupervisor, MpBackend, SimBackend, TRANSPORT_NAMES

ROOT = Path(__file__).resolve().parent.parent
OUT = ROOT / "BENCH_runtime.json"
OUT_PROFILE = ROOT / "BENCH_profile.json"
SEED = 0
PROCS = (2, 4, 8)
QUICK_PROCS = (2, 4)
GANG_TIMEOUT = 300.0  # wall budget per mp gang; a hang fails, not stalls
CHECK_SLACK = 5.0  # CI perf gate: measured ratio may exceed the band by this


def _workload(n: int, density: float):
    rng = np.random.default_rng(SEED)
    array = rng.random(n)
    mask = rng.random(n) < density
    vector = rng.random(int(mask.sum()))
    field = np.full(n, -1.0)
    return array, mask, vector, field


def _run_case(op: str, p: int, backend, inputs, profile=None) -> float:
    """One PACK or UNPACK on ``backend``; returns the run's elapsed time
    (simulated seconds on sim, gang wall seconds on mp)."""
    array, mask, vector, field = inputs
    if op == "pack":
        r = pack(array, mask, grid=(p,), scheme="cms", validate=False,
                 backend=backend, profile=profile)
    else:
        r = unpack(vector, mask, field, grid=(p,), scheme="css",
                   validate=False, backend=backend, profile=profile)
    return r.run.elapsed


def measure(n: int, density: float, reps: int, procs) -> list[dict]:
    """Cold-path comparison: every op pays gang spawn and teardown."""
    inputs = _workload(n, density)
    backends = {
        "sim": SimBackend(),
        "mp": MpBackend(timeout=GANG_TIMEOUT),
    }
    cases = []
    for op in ("pack", "unpack"):
        for p in procs:
            row: dict = {"op": op, "p": p, "n": n}
            for bname, backend in backends.items():
                best_wall = float("inf")
                elapsed = None
                for _ in range(reps):
                    t0 = time.perf_counter()
                    e = _run_case(op, p, backend, inputs)
                    best_wall = min(best_wall, time.perf_counter() - t0)
                    # sim elapsed is deterministic; for mp keep the run
                    # matching the best host wall.
                    if elapsed is None or bname == "mp":
                        elapsed = e
                row[bname] = {
                    "host_wall_ms": round(best_wall * 1e3, 3),
                    "elapsed_ms": round(elapsed * 1e3, 6),
                    "time_domain": backend.time_domain,
                }
                transport = getattr(backend, "transport", None)
                if transport is not None:
                    row[bname]["transport"] = transport
            ratio = (row["mp"]["host_wall_ms"] / row["sim"]["host_wall_ms"]
                     if row["sim"]["host_wall_ms"] else float("inf"))
            row["mp_over_sim_host_wall"] = round(ratio, 3)
            cases.append(row)
            print(f"  {op:<6s} P={p}: "
                  f"sim {row['sim']['host_wall_ms']:9.1f} ms host "
                  f"({row['sim']['elapsed_ms']:9.3f} ms simulated)   "
                  f"mp {row['mp']['host_wall_ms']:9.1f} ms host "
                  f"({row['mp']['elapsed_ms']:9.3f} ms gang wall)")
    return cases


def measure_steady(n: int, density: float, reps: int, procs) -> list[dict]:
    """Warm-gang regime: per-op wall on a persistent gang, per transport.

    Gang spawn is paid once per (P, transport) and reported separately —
    this is the number the cold path buried, and the one where the
    transport choice actually shows.
    """
    inputs = _workload(n, density)
    reps = max(reps, 3)
    sim = SimBackend()
    rows = {}
    for op in ("pack", "unpack"):
        for p in procs:
            best = min(
                _time_wall(op, p, sim, inputs) for _ in range(reps)
            )
            rows[(op, p)] = {
                "op": op, "p": p, "n": n,
                "sim_host_wall_ms": round(best * 1e3, 3),
                "transports": {},
            }
    for transport in TRANSPORT_NAMES:
        for p in procs:
            sup = GangSupervisor(timeout=GANG_TIMEOUT, transport=transport)
            with sup:
                t0 = time.perf_counter()
                _run_case("pack", p, sup, inputs)  # spawns + warms the gang
                setup = time.perf_counter() - t0
                for op in ("pack", "unpack"):
                    walls = [
                        _time_wall(op, p, sup, inputs) for _ in range(reps)
                    ]
                    row = rows[(op, p)]
                    per_op = min(walls)
                    ratio = (per_op * 1e3 / row["sim_host_wall_ms"]
                             if row["sim_host_wall_ms"] else float("inf"))
                    row["transports"][transport] = {
                        "gang_setup_ms": round(setup * 1e3, 3),
                        "per_op_ms": round(per_op * 1e3, 3),
                        "warm_ops": reps,
                        "mp_over_sim_host_wall": round(ratio, 3),
                    }
    for row in rows.values():
        cells = "   ".join(
            f"{t} {c['per_op_ms']:8.1f} ms/op ({c['mp_over_sim_host_wall']:.2f}x sim)"
            for t, c in row["transports"].items()
        )
        print(f"  {row['op']:<6s} P={row['p']}: "
              f"sim {row['sim_host_wall_ms']:8.1f} ms   {cells}")
    return list(rows.values())


def _time_wall(op, p, backend, inputs) -> float:
    t0 = time.perf_counter()
    _run_case(op, p, backend, inputs)
    return time.perf_counter() - t0


def measure_profiles(n: int, density: float, procs) -> list[dict]:
    """Profile each mp case once: where does the host wall go?"""
    inputs = _workload(n, density)
    backend = MpBackend(timeout=GANG_TIMEOUT)
    cases = []
    for op in ("pack", "unpack"):
        for p in procs:
            prof = RuntimeProfiler()
            _run_case(op, p, backend, inputs, profile=prof)
            profile = prof.profile
            table = profile.phase_table()
            wire_bytes = int(sum(map(sum, profile.comm_bytes)))
            cases.append({
                "op": op,
                "p": p,
                "n": n,
                "backend": "mp",
                "transport": profile.transport,
                "time_domain": profile.time_domain,
                "host_wall_ms": round(profile.total_seconds * 1e3, 3),
                "attributed_fraction": round(profile.attributed_fraction, 6),
                "phases_ms": {
                    name: round(row["seconds"] * 1e3, 3)
                    for name, row in table.items()
                },
                "phase_fraction": {
                    name: round(row["fraction"], 4)
                    for name, row in table.items()
                },
                "comm": {
                    "messages": int(sum(map(sum, profile.comm_msgs))),
                    # legacy name kept for trend continuity; under the
                    # ring transport these are encoded wire bytes.
                    "pickled_bytes": wire_bytes,
                    "wire_bytes": wire_bytes,
                    "byte_meaning": ("encoded wire bytes"
                                     if profile.transport == "ring"
                                     else "pickled payload bytes"),
                    "collectives": int(sum(profile.collectives_per_rank)),
                },
                "dropped_events": profile.dropped_events,
            })
            top = max(table, key=lambda k: table[k]["seconds"])
            print(f"  {op:<6s} P={p}: mp {cases[-1]['host_wall_ms']:9.1f} ms "
                  f"host, attributed "
                  f"{cases[-1]['attributed_fraction'] * 100:5.1f}%, "
                  f"top phase {top} "
                  f"({table[top]['fraction'] * 100:.0f}%)")
    return cases


def measure_codec_crossover(n: int, p: int = 4) -> list[dict]:
    """Analytic SSS-vs-CMS wire bytes on the bench mask shape.

    The paper's beta_2 crossover at the byte level: CMS wins iff the
    mean run length of consecutive destination indices exceeds 2.
    Density sweeps the run-length distribution — dense masks give long
    runs (CMS), sparse masks give singletons (SSS).
    """
    rng = np.random.default_rng(SEED)
    rows = []
    for density in (0.05, 0.1, 0.25, 0.5, 0.75, 0.9):
        mask = rng.random(n) < density
        ranks = np.flatnonzero(mask).astype(np.int64)
        _, counts = pair_runs(ranks)
        count, segments = int(ranks.size), int(counts.size)
        sss = wire_bytes_pair_sss(count)
        cms = wire_bytes_pair_cms(count, segments)
        rows.append({
            "density": density,
            "count": count,
            "segments": segments,
            "mean_run_length": round(count / segments, 3) if segments else 0.0,
            "sss_bytes": sss,
            "cms_bytes": cms,
            "cms_over_sss": round(cms / sss, 4) if sss else 0.0,
            "auto_picks": "cms" if cms < sss else "sss",
        })
        print(f"  density {density:4.2f}: mean run "
              f"{rows[-1]['mean_run_length']:6.2f} -> "
              f"cms/sss bytes {rows[-1]['cms_over_sss']:.3f} "
              f"(auto: {rows[-1]['auto_picks']})")
    return rows


def host_class() -> str:
    """Coarse CPU-count bucket for the perf band.

    The gate compares real mp-over-sim wall ratios, and those are a
    property of the host: a band recorded on a 32-core workstation says
    nothing about a 2-core CI runner, where P=4 ranks time-share cores
    and the ratio legitimately explodes.  Bucketing (rather than the raw
    count) keeps the band portable across near-identical machines.
    """
    cores = os.cpu_count() or 1
    if cores < 4:
        return "small(<4)"
    if cores < 8:
        return "medium(4-7)"
    if cores < 16:
        return "large(8-15)"
    return "xlarge(16+)"


def check_gate(steady: list[dict], p: int = 4,
               slack: float = CHECK_SLACK) -> int:
    """CI perf gate: ring steady-state ratio at P=4 under the recorded band.

    The band is what the last full ``bench_runtime.py`` run wrote to
    ``BENCH_runtime.json`` (``check_band``); ``slack`` absorbs CI noise
    and the smaller ``--quick`` workload.  Missing file or band means no
    gate yet — pass with a note so first runs don't fail.  A band
    recorded on a different :func:`host_class` is skipped with a notice:
    wall ratios do not transfer across core-count classes.
    """
    band = None
    recorded_class = None
    if OUT.exists():
        band_doc = json.loads(OUT.read_text()).get("check_band", {})
        band = band_doc.get("mp_over_sim_steady_p4")
        recorded_class = band_doc.get("host_class")
    if band is None:
        print("perf gate: no recorded band in BENCH_runtime.json; skipping")
        return 0
    here = host_class()
    if recorded_class is not None and recorded_class != here:
        print(f"perf gate: recorded band is from host class "
              f"{recorded_class!r} but this host is {here!r} "
              f"({os.cpu_count()} cores); skipping — re-run "
              f"bench_runtime.py here to record a comparable band")
        return 0
    if recorded_class is None:
        print(f"perf gate: recorded band has no host class (pre-schema "
              f"band); gating anyway on host class {here!r}")
    measured = [
        row["transports"]["ring"]["mp_over_sim_host_wall"]
        for row in steady
        if row["p"] == p and "ring" in row["transports"]
    ]
    if not measured:
        print(f"perf gate: no ring steady-state rows at P={p}; skipping")
        return 0
    worst = max(measured)
    limit = band * slack
    verdict = "OK" if worst <= limit else "FAIL"
    print(f"perf gate: ring steady mp/sim at P={p} = {worst:.2f}x "
          f"(band {band:.2f}x, limit {limit:.2f}x with {slack:g}x slack) "
          f"-> {verdict}")
    return 0 if worst <= limit else 1


def _band_from(steady: list[dict], p: int = 4) -> float | None:
    ratios = [
        row["transports"]["ring"]["mp_over_sim_host_wall"]
        for row in steady
        if row["p"] == p and "ring" in row["transports"]
    ]
    return round(max(ratios), 3) if ratios else None


def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=ROOT,
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    ap.add_argument("--n", type=int, default=1 << 16,
                    help="1-D array size (default 65536)")
    ap.add_argument("--density", type=float, default=0.5)
    ap.add_argument("--reps", type=int, default=3,
                    help="repetitions per cell (best host wall kept)")
    ap.add_argument("--quick", action="store_true",
                    help="small workload, one rep, P in {2,4} (CI smoke)")
    ap.add_argument("--no-write", action="store_true",
                    help="print only; do not write BENCH_runtime.json")
    ap.add_argument("--check", action="store_true",
                    help="gate: ring steady-state mp/sim ratio at P=4 must "
                         "stay under the recorded band (implies --no-write)")
    args = ap.parse_args(argv)

    n = 4096 if args.quick else args.n
    reps = 1 if args.quick else args.reps
    procs = QUICK_PROCS if args.quick else PROCS
    print(f"runtime backends: pack/unpack n={n} density={args.density} "
          f"P={list(procs)} ({reps} rep{'s' if reps > 1 else ''}):")
    print("cold path (gang spawned per op):")
    cases = measure(n, args.density, reps, procs)
    print("steady state (warm persistent gang, per transport):")
    steady = measure_steady(n, args.density, reps, procs)
    print("codec crossover (analytic wire bytes):")
    crossover = measure_codec_crossover(n)
    print("mp phase attribution:")
    profile_cases = measure_profiles(n, args.density, procs)

    if args.check:
        return check_gate(steady)

    if not args.no_write:
        rev = _git_rev()
        doc = {
            "schema": 2,
            "n": n,
            "density": args.density,
            "reps": reps,
            "procs": list(procs),
            "rev": rev,
            "cases": cases,
            "steady_state": steady,
            "codec_crossover": crossover,
        }
        band = _band_from(steady)
        if band is not None:
            doc["check_band"] = {
                "p": 4,
                "mp_over_sim_steady_p4": band,
                "host_class": host_class(),
                "cpu_count": os.cpu_count(),
            }
        OUT.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"wrote {len(cases)} cases -> {OUT}")
        prof_doc = {
            "schema": 2,
            "n": n,
            "density": args.density,
            "procs": list(procs),
            "rev": rev,
            "cases": profile_cases,
        }
        OUT_PROFILE.write_text(json.dumps(prof_doc, indent=2) + "\n")
        print(f"wrote {len(profile_cases)} cases -> {OUT_PROFILE}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
