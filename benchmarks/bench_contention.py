"""Node-contention ablation — why the paper schedules its many-to-many
with the linear permutation of [9].

The two-level model assumes no node contention; enabling the optional
receiver-port model shows what the schedule buys: the linear permutation
delivers at most one message per destination per time window and pays
*nothing* under contention, while destination-ordered sends hot-spot every
port in turn.
"""

import numpy as np
import pytest

import repro
from repro.machine import CM5, Machine
from repro.machine.m2m import exchange

PORT = CM5.with_(rx_port=True)


def _full_exchange_elapsed(P, words, spec, schedule):
    def prog(ctx):
        outgoing = {d: "x" for d in range(P) if d != ctx.rank}
        received = yield from exchange(
            ctx, outgoing, words={d: words for d in outgoing}, schedule=schedule
        )
        return len(received)

    return Machine(P, spec).run(prog).elapsed


@pytest.mark.paper_artifact("m2m scheduling ([9])")
def test_linear_permutation_is_contention_free(benchmark, reports):
    P, w = 16, 4096

    def run():
        return {
            ("linear", "free"): _full_exchange_elapsed(P, w, CM5, "linear"),
            ("linear", "port"): _full_exchange_elapsed(P, w, PORT, "linear"),
            ("direct", "free"): _full_exchange_elapsed(P, w, CM5, "direct"),
            ("direct", "port"): _full_exchange_elapsed(P, w, PORT, "direct"),
        }

    t = benchmark(run)
    # Linear pays (almost) nothing for contention; direct hot-spots.
    assert t[("linear", "port")] < 1.05 * t[("linear", "free")]
    assert t[("direct", "port")] > 1.4 * t[("direct", "free")]
    # Under the contention-free model the schedules tie.
    assert t[("direct", "free")] == pytest.approx(t[("linear", "free")], rel=0.1)

    lines = [
        "m2m schedule under receiver-port contention "
        f"(P={P}, {w}-word messages, all-to-all):",
    ]
    for (sched, model), secs in sorted(t.items()):
        lines.append(f"  {sched:7s} {model:5s} {secs * 1e3:8.3f} ms")
    reports["contention"] = "\n".join(lines)


@pytest.mark.paper_artifact("m2m scheduling ([9])")
def test_pack_end_to_end_under_contention(benchmark):
    rng = np.random.default_rng(0)
    a = rng.random(4096)
    m = rng.random(4096) < 0.7

    def run():
        lin = repro.pack(a, m, grid=16, block=4, scheme="cms", spec=PORT,
                         m2m_schedule="linear", validate=False)
        dire = repro.pack(a, m, grid=16, block=4, scheme="cms", spec=PORT,
                          m2m_schedule="direct", validate=False)
        return lin, dire

    lin, dire = benchmark(run)
    np.testing.assert_array_equal(lin.vector, dire.vector)
    assert lin.m2m_ms <= dire.m2m_ms
