"""Table II — cyclic-input redistribution pre-passes vs direct SSS.

Shape claims asserted (paper Section 7, "Redistribution Scheme"):

* 1-D: neither Red.1 nor Red.2 beats SSS, and Red.2 > Red.1 (two
  detection phases vs one);
* 2-D: Red.1 beats SSS at low density; Red.2 beats SSS at high density;
* Red.2's time is nearly density-independent.
"""

import pytest

from repro.experiments import table2


@pytest.mark.paper_artifact("Table II")
def test_table2_1d(benchmark, reports):
    rows = benchmark(table2.rows_for, (16384,), (16,), densities=(0.1, 0.5, 0.9))
    for _d, sss, red1, red2 in rows:
        assert sss < red1, "1-D: Red.1 must lose to SSS (detection dominated)"
        assert red1 < red2, "1-D: Red.2 pays two detection phases"
    reports["table2"] = table2.run(fast=True)


@pytest.mark.paper_artifact("Table II")
def test_table2_2d(benchmark):
    rows = benchmark(table2.rows_for, (256, 256), (4, 4), densities=(0.1, 0.9))
    (d_lo, sss_lo, red1_lo, red2_lo), (d_hi, sss_hi, red1_hi, red2_hi) = rows
    assert red1_lo < sss_lo, "2-D: Red.1 must beat SSS at low density"
    assert red2_hi < sss_hi, "2-D: Red.2 must beat SSS at high density"
    # Red.2 density-insensitive; Red.1 strongly density-sensitive.
    assert (red2_hi - red2_lo) < 0.25 * (red1_hi - red1_lo) + 1e-9 or (
        red2_hi - red2_lo
    ) < 0.2 * red2_lo


@pytest.mark.paper_artifact("Table II")
def test_table2_paper_magnitudes_1d(benchmark):
    """Our simulated 1-D N=16384 column lands in the paper's millisecond
    range (SSS ~9-16 ms, Red.1 ~140-147 ms)."""
    rows = benchmark(table2.rows_for, (16384,), (16,), densities=(0.5,))
    _d, sss, red1, _red2 = rows[0]
    assert 2 < sss < 40
    assert 70 < red1 < 300
