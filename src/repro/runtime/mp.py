"""Process-per-rank execution backend over ``multiprocessing``.

:class:`MpBackend` runs the same SPMD generator programs as the simulator,
but on real cores: one forked OS process per rank, global input arrays in
POSIX shared memory (each rank slices out only its own block —
:meth:`~repro.hpf.grid.GridLayout.local_block` — so no block is ever
pickled through a pipe), and message passing over one of two pluggable
transports:

``ring`` (default)
    zero-copy shared-memory SPSC ring buffers
    (:mod:`repro.runtime.shm_ring`): a send frames the payload with the
    wire codec (:mod:`repro.codecs`) — raw bytes for numpy arrays, the
    paper's CMS ``(base_rank, count, data...)`` run-length segments for
    pair messages past the β₂ crossover, pickle only as a fallback —
    and memcpys it straight into a ring slot (or streams it through the
    pair's slab ring when large) that the receiver already has mapped.
    No pickle for array traffic, no pipe, no feeder thread.
``queue``
    the original per-rank ``multiprocessing.Queue`` mailboxes (pickled
    payloads over pipes), kept for A/B measurement and as a portability
    fallback — ``MpBackend(transport="queue")``, the CLI's
    ``--transport``, or ``REPRO_MP_TRANSPORT=queue``.

How the same programs run on both transports
--------------------------------------------
A program interacts with the machine only through its context and the ops
it yields.  The child-side driver (:class:`_Driver`) replays the engine's
contract over IPC:

* ``ctx.send(...)`` posts the payload through the transport (eager and
  buffered — ring slots and queue feeder threads both mean sends only
  block on sustained backpressure, and a ring send that does block
  drains its own incoming rings while it waits, so even a cycle of
  ranks all mid-send completes — matching the simulator's eager-send
  model);
* ``yield ctx.recv(...)`` reads from the rank's own mailbox through a
  *pending buffer*: every incoming item passes through one matcher, and
  items that do not match the current pattern are buffered in arrival
  order, preserving the engine's FIFO-per-(source, tag) guarantee and
  keeping the collective protocol's internal messages from being stolen
  by ``source=ANY`` receives (library receives all use explicit tags;
  the protocol uses reserved negative tags programs may not send on);
* ``yield CollectiveOp(...)`` runs a root-gather protocol: members send
  their contribution to the lowest-ranked member, which applies the op's
  own ``combine`` callable and scatters the per-rank results.  Because
  every member constructs the op (and its combine closure) inside its own
  process, nothing about the collective needs to be picklable except the
  contributions and results.

Time is **wall** time: each rank accumulates ``perf_counter`` deltas into
a genuine :class:`~repro.machine.stats.ProcStats`, flushed to the current
phase label on every phase switch — so per-phase breakdowns, the profiler
and the metrics registry all work unchanged, just in a different
``time_domain`` (``"wall"``).

Failure hygiene
---------------
A rank that raises mid-phase ships ``("error", rank, traceback)`` home;
the host terminates the whole gang, joins every child, closes and unlinks
every shared-memory segment, and raises :class:`MpGangError` carrying the
originating rank's traceback.  A rank that dies without reporting (e.g.
killed) is detected by exit-code polling.  The host's ``finally`` block
performs the same reaping on every path, so no children or ``/dev/shm``
segments outlive a run.

If the *parent* itself dies mid-run (SIGTERM, interpreter exit with a
gang still up), a process-wide emergency registry unlinks every live
shared-memory segment and kills stray children — see
:func:`register_for_cleanup`.

Simulator-only features — fault injection, the reliable transport
(``auto_ack``), timed receives, watchdog budgets in simulated seconds —
are rejected with a clear :class:`~repro.runtime.base.BackendError`.

Real-process faults *are* supported: ``MpBackend(chaos=ChaosPlan(...))``
ships each rank its seeded :class:`~repro.faults.chaos.ChaosEvent`
placements, which the rank inflicts on itself (SIGKILL / SIGSTOP /
delay / poisoned result) at exact phase boundaries.  The bare backend
fails fast on them, exercising the failure-hygiene paths; recovery is
the supervisor's job (:mod:`repro.runtime.supervisor`).
"""

from __future__ import annotations

import atexit
import multiprocessing as _mp
import os
import pickle
import queue as _queue_mod
import signal as _signal
import time
import traceback
import weakref
from multiprocessing.connection import wait as _conn_wait
from time import monotonic, perf_counter
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from ..codecs.wire import decode_payload, encode_payload, resolve_codec
from ..faults.chaos import ChaosEvent, fire_chaos
from ..machine.context import payload_words
from ..machine.errors import CollectiveMismatchError, MessageError, ProgramError
from ..machine.ops import ANY, CollectiveOp, Message, Recv
from ..machine.spec import CM5, MachineSpec
from ..machine.stats import ProcStats, RunResult, stats_from_snapshot
from .base import Backend, BackendError, Deadline, resolve_transport
from .shm_ring import RingMatrix

__all__ = ["MpBackend", "MpGangError", "register_for_cleanup"]

#: Reserved mailbox tags for the collective protocol.  Program sends must
#: use non-negative tags, so these can never collide.
_COLL_CONTRIB = -101
_COLL_RESULT = -102

#: Child exit code used when the program raised (after the traceback was
#: shipped home on the result queue).
_CHILD_FAILED = 70

#: Profile span kinds, as stored in the shared-memory ring buffers (see
#: :class:`_ProfileBuffers`).  ``fork`` and ``compute`` have no ring kind:
#: fork is derived from the spawn/entry marks and compute is the lane
#: residual between instrumented spans.
_PK_SHM = 1
_PK_PICKLE = 2
_PK_QSEND = 3
_PK_QWAIT = 4
_PK_COLL = 5
_PK_ENC = 6
_PK_RSEND = 7
_PK_RWAIT = 8
_PK_NAMES = {
    _PK_SHM: "shm",
    _PK_PICKLE: "pickle",
    _PK_QSEND: "queue_send",
    _PK_QWAIT: "queue_wait",
    _PK_COLL: "collective",
    _PK_ENC: "encode",
    _PK_RSEND: "ring_send",
    _PK_RWAIT: "ring_wait",
}
#: Ring kinds that also accumulate into the per-rank phase table (the shm
#: phase comes from the entry/ready marks instead, so it is ring-only).
#: The queue transport fills the first four, the ring transport the last
#: three (+ collective); either way the non-zero columns sum with compute
#: to the lane body.
_PK_ACC = {_PK_PICKLE: 0, _PK_QSEND: 1, _PK_QWAIT: 2, _PK_COLL: 3,
           _PK_ENC: 4, _PK_RSEND: 5, _PK_RWAIT: 6}
_ACC_NAMES = ("pickle", "queue_send", "queue_wait", "collective",
              "encode", "ring_send", "ring_wait")


class MpGangError(BackendError):
    """The process gang failed; carries the originating rank's story.

    Attributes
    ----------
    rank:
        the rank that caused the failure, or ``None`` when the gang as a
        whole failed (e.g. a timeout with every child still blocked).
    child_traceback:
        the formatted traceback from the failing child, when one was
        reported before the gang was torn down.
    """

    def __init__(self, rank: int | None, detail: str, child_traceback: str | None = None):
        self.rank = rank
        self.child_traceback = child_traceback
        who = "gang" if rank is None else f"rank {rank}"
        msg = f"mp backend: {who} failed: {detail}"
        if child_traceback:
            msg += f"\n--- rank {rank} traceback ---\n{child_traceback.rstrip()}"
        super().__init__(msg)


# ------------------------------------------------------- emergency cleanup
# If the *parent* dies mid-run — SIGTERM from a CI harness, sys.exit from
# a signal handler, an unhandled exception past the backend's finally —
# whatever shm segments and children were live at that moment would leak
# (POSIX shm survives its creator).  Every owner of leak-prone state
# registers itself here; one atexit + SIGTERM hook per process walks the
# registry and destroys what is left.  Fork children inherit the hook but
# the owner-pid guard makes it a no-op there (workers exit via os._exit,
# which skips atexit anyway).
_CLEANUP_PID: int | None = None
_CLEANUP_OBJS: "weakref.WeakSet[Any]" = weakref.WeakSet()
_PREV_SIGTERM: Any = None


def register_for_cleanup(obj: Any) -> None:
    """Arrange for ``obj._emergency_cleanup()`` to run if this process dies.

    Installed once per pid (lazily re-armed after fork); objects are held
    weakly, so normal teardown needs no deregistration.
    """
    global _CLEANUP_PID, _PREV_SIGTERM
    if _CLEANUP_PID != os.getpid():
        _CLEANUP_PID = os.getpid()
        atexit.register(_emergency_cleanup)
        try:
            _PREV_SIGTERM = _signal.signal(_signal.SIGTERM, _on_sigterm)
        except ValueError:
            # Not the main thread: atexit coverage only.
            _PREV_SIGTERM = None
    _CLEANUP_OBJS.add(obj)


def _emergency_cleanup() -> None:
    if os.getpid() != _CLEANUP_PID:
        return
    for obj in list(_CLEANUP_OBJS):
        try:
            obj._emergency_cleanup()
        except Exception:
            pass


def _on_sigterm(signum, frame) -> None:
    _emergency_cleanup()
    prev = _PREV_SIGTERM
    if callable(prev):
        prev(signum, frame)
    else:
        # Re-raise with the default disposition so the exit status still
        # says "terminated by SIGTERM".
        _signal.signal(_signal.SIGTERM, _signal.SIG_DFL)
        os.kill(os.getpid(), _signal.SIGTERM)


def _attach_shm(name: str):
    """Attach an existing segment *without* resource-tracker registration.

    On 3.11 ``SharedMemory(name=...)`` registers with the tracker even on
    the attach path; a worker attaching a host-owned segment would then
    fight the host over who unlinks it.  The host is the sole owner —
    suppress registration for the duration of the attach.
    """
    from multiprocessing import resource_tracker, shared_memory

    orig = resource_tracker.register
    resource_tracker.register = lambda *a, **k: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = orig


# --------------------------------------------------------------------- shm
class _ShmArena:
    """Host-owned shared-memory segments holding the global input arrays.

    Two ways for a rank to see the arrays: the one-shot backend creates
    the arena *before* forking so children inherit the mappings directly;
    a persistent gang (forked before the op existed) instead receives the
    picklable :meth:`descriptor` and re-attaches by name —
    :meth:`attach` / :meth:`close` — with tracker registration suppressed.
    Either way the host stays the sole owner and the only unlinker, on
    every path up to and including parent death (``register_for_cleanup``).
    """

    def __init__(self, shared: Mapping[str, Any]):
        from multiprocessing import shared_memory

        self._owner = True
        self._meta: dict[str, tuple[Any, tuple, np.dtype]] = {}
        self._segments: list[Any] = []
        for name, arr in shared.items():
            arr = np.ascontiguousarray(arr)
            if arr.nbytes == 0:
                # Zero-extent arrays (empty masks, empty vectors) need no
                # segment; children rebuild them from shape and dtype.
                self._meta[name] = (None, arr.shape, arr.dtype)
                continue
            seg = shared_memory.SharedMemory(create=True, size=arr.nbytes)
            np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)[...] = arr
            self._segments.append(seg)
            self._meta[name] = (seg, arr.shape, arr.dtype)
        register_for_cleanup(self)

    def descriptor(self) -> dict[str, tuple[str | None, tuple, np.dtype]]:
        """Picklable (segment-name, shape, dtype) map for name-attaching."""
        return {
            name: (seg.name if seg is not None else None, shape, dtype)
            for name, (seg, shape, dtype) in self._meta.items()
        }

    @classmethod
    def attach(cls, desc: Mapping[str, tuple[str | None, tuple, np.dtype]]) -> "_ShmArena":
        """Worker-side view of a host-owned arena (never unlinks)."""
        self = cls.__new__(cls)
        self._owner = False
        self._meta = {}
        self._segments = []
        for name, (segname, shape, dtype) in desc.items():
            if segname is None:
                self._meta[name] = (None, shape, dtype)
            else:
                seg = _attach_shm(segname)
                self._segments.append(seg)
                self._meta[name] = (seg, shape, dtype)
        return self

    def views(self) -> dict[str, np.ndarray]:
        """Numpy views over the segments (call in the child, post-fork)."""
        out: dict[str, np.ndarray] = {}
        for name, (seg, shape, dtype) in self._meta.items():
            if seg is None:
                out[name] = np.empty(shape, dtype=dtype)
            else:
                out[name] = np.ndarray(shape, dtype=dtype, buffer=seg.buf)
        return out

    def close(self) -> None:
        """Drop a non-owning attachment's mappings (worker side).

        ``BufferError`` means a numpy view is still exported; the mapping
        then lives until the worker's next op or exit — harmless, the
        host's unlink removes the name either way.
        """
        segments, self._segments = self._segments, []
        self._meta = {}
        for seg in segments:
            try:
                seg.close()
            except (OSError, BufferError):
                pass

    def destroy(self) -> None:
        """Close and unlink every segment (host side, exactly once)."""
        if not self._owner:
            self.close()
            return
        segments, self._segments = self._segments, []
        self._meta = {}
        for seg in segments:
            try:
                seg.close()
            except (OSError, BufferError):
                pass
            try:
                seg.unlink()
            except FileNotFoundError:
                pass

    _emergency_cleanup = destroy


# --------------------------------------------------------------- profiling
class _Pickled:
    """A payload the sender already serialized (profiled sends only).

    Profiling pre-pickles every payload so the pickle time and exact byte
    volume are measured at the source; the queue then only re-serializes
    this thin wrapper around the ready-made bytes, and the receiver
    unpickles (timed again) on delivery.
    """

    __slots__ = ("data",)

    def __init__(self, data: bytes):
        self.data = data

    def __reduce__(self):
        return (_Pickled, (self.data,))


class _ProfileBuffers:
    """Per-rank profile state in one host-owned shared-memory segment.

    Layout (all rows 8-byte aligned, one row per rank):

    * ``times   (P, 3) f8`` — monotonic marks: child entry, args ready,
      program done;
    * ``acc     (P, 7) f8`` — per-phase accumulated seconds (the
      :data:`_ACC_NAMES` columns: pickle/queue_send/queue_wait for the
      queue transport, encode/ring_send/ring_wait for the ring transport,
      collective for both), kept exact even when the ring overflows;
    * ``hdr     (P, 2) i8`` — ring event count, dropped-span count;
    * ``counters(P, 4) i8`` — pickled bytes sent, collectives joined,
      program messages received, pickled bytes received;
    * ``msgs / bytes (P, P) i8`` — communication matrices, rows = senders;
    * ``events  (P, cap, 3) f8`` — the span rings: (kind, t0, t1).

    Lock-free by construction: each row has exactly one writer (its rank),
    and the parent reads only after the gang has reported.  Marks and ring
    timestamps are raw ``time.monotonic()`` values — CLOCK_MONOTONIC is
    shared by every process on the same boot, so the parent can align all
    lanes on one wall clock by subtracting its own start mark.
    """

    def __init__(self, nprocs: int, capacity: int):
        from multiprocessing import shared_memory

        self.nprocs = nprocs
        self.capacity = capacity
        self._owner = True
        self._shapes = self._layout(nprocs, capacity)
        size = sum(
            int(np.prod(shape)) * np.dtype(dt).itemsize
            for shape, dt in self._shapes.values()
        )
        # POSIX shm is zero-filled by the kernel; no explicit init needed.
        self._seg = shared_memory.SharedMemory(create=True, size=size)
        register_for_cleanup(self)

    @staticmethod
    def _layout(nprocs: int, capacity: int) -> dict:
        p = nprocs
        return {
            "times": ((p, 3), np.float64),
            "acc": ((p, len(_ACC_NAMES)), np.float64),
            "hdr": ((p, 2), np.int64),
            "counters": ((p, 4), np.int64),
            "msgs": ((p, p), np.int64),
            "bytes": ((p, p), np.int64),
            "events": ((p, capacity, 3), np.float64),
        }

    def descriptor(self) -> tuple[str, int, int]:
        """Picklable handle: (segment name, nprocs, ring capacity)."""
        return (self._seg.name, self.nprocs, self.capacity)

    @classmethod
    def attach(cls, desc: tuple[str, int, int]) -> "_ProfileBuffers":
        """Worker-side view of host-owned buffers (never unlinks)."""
        name, nprocs, capacity = desc
        self = cls.__new__(cls)
        self.nprocs = nprocs
        self.capacity = capacity
        self._owner = False
        self._shapes = cls._layout(nprocs, capacity)
        self._seg = _attach_shm(name)
        return self

    def close(self) -> None:
        seg, self._seg = self._seg, None
        if seg is None:
            return
        try:
            seg.close()
        except (OSError, BufferError):
            pass

    def _views(self) -> dict[str, np.ndarray]:
        out = {}
        offset = 0
        for name, (shape, dt) in self._shapes.items():
            nbytes = int(np.prod(shape)) * np.dtype(dt).itemsize
            out[name] = np.ndarray(
                shape, dtype=dt, buffer=self._seg.buf, offset=offset
            )
            offset += nbytes
        return out

    def recorder(self, rank: int) -> "_RankRecorder":
        """The single-writer view of rank ``rank``'s rows (child side)."""
        return _RankRecorder(rank, self._views(), self.capacity)

    def copy_out(self) -> dict[str, np.ndarray]:
        """Host-side copies of every array (call before :meth:`destroy`)."""
        return {name: arr.copy() for name, arr in self._views().items()}

    def destroy(self) -> None:
        if not self._owner:
            self.close()
            return
        seg, self._seg = self._seg, None
        if seg is None:
            return
        try:
            seg.close()
        except (OSError, BufferError):
            pass
        try:
            seg.unlink()
        except FileNotFoundError:
            pass

    _emergency_cleanup = destroy


class _RankRecorder:
    """One rank's lock-free writer over its :class:`_ProfileBuffers` rows."""

    __slots__ = ("rank", "_times", "_acc", "_hdr", "_counters",
                 "_msgs", "_bytes", "_events", "_cap")

    def __init__(self, rank: int, views: dict[str, np.ndarray], capacity: int):
        self.rank = rank
        self._times = views["times"][rank]
        self._acc = views["acc"][rank]
        self._hdr = views["hdr"][rank]
        self._counters = views["counters"][rank]
        self._msgs = views["msgs"][rank]
        self._bytes = views["bytes"][rank]
        self._events = views["events"][rank]
        self._cap = capacity

    def mark(self, slot: int, t: float) -> None:
        self._times[slot] = t

    def span(self, kind: int, t0: float, t1: float) -> None:
        acc = _PK_ACC.get(kind)
        if acc is not None:
            self._acc[acc] += t1 - t0
        n = int(self._hdr[0])
        if n < self._cap:
            ev = self._events[n]
            ev[0] = kind
            ev[1] = t0
            ev[2] = t1
            self._hdr[0] = n + 1
        else:
            self._hdr[1] += 1

    def sent(self, dest: int, nbytes: int) -> None:
        self._msgs[dest] += 1
        self._bytes[dest] += nbytes
        self._counters[0] += nbytes

    def received(self, nbytes: int) -> None:
        self._counters[2] += 1
        self._counters[3] += nbytes

    def collective(self) -> None:
        self._counters[1] += 1


class _MpMetrics:
    """Pre-bound metric handles for the mp transport's per-message paths.

    Same idea as the engine's ``_EngineMetrics``: bind the Counter /
    Histogram objects once per rank process so each send/recv/collective
    records through attribute loads guarded by the registry's cached
    enabled flag, not per-event name lookups.
    """

    __slots__ = (
        "registry", "sends", "words_sent", "message_words",
        "recvs", "collectives", "collective_group_size",
    )

    def __init__(self, registry):
        self.registry = registry
        self.sends = registry.counter("machine.sends")
        self.words_sent = registry.counter("machine.words_sent")
        self.message_words = registry.histogram("machine.message_words")
        self.recvs = registry.counter("machine.recvs")
        self.collectives = registry.counter("machine.collectives")
        self.collective_group_size = registry.histogram("machine.collective_group_size")


# -------------------------------------------------------------- transports
class _QueueTransport:
    """The original mailbox transport: one ``multiprocessing.Queue`` per
    rank, pickled payloads over pipes.

    Kept as the A/B baseline and the portability fallback.  Its hot-path
    behaviour (eager pickled puts, ``_Pickled`` pre-serialization when
    profiled, blocking gets with stale-stamp drops) is byte-for-byte the
    PR 5/6 wire.
    """

    kind = "queue"

    def __init__(self, mpctx, nprocs: int):
        self.mailboxes = [mpctx.Queue() for _ in range(nprocs)]

    def child_init(self, rank: int) -> "_QueueTransport":
        return self

    # Program sends — profiled sends pre-pickle so serialization time and
    # the exact wire byte volume are charged at the source; the queue then
    # re-serializes only the thin _Pickled wrapper (effectively a memcpy).
    def post(self, driver: "_Driver", dest: int, tag: int, payload: Any,
             words: int, clock: float) -> None:
        rec = driver._recorder
        if rec is None:
            if dest == driver.rank:
                # The queue's feeder thread pickles asynchronously, so a
                # self-send could deliver a *later* mutation of the
                # payload.  Serialize synchronously to pin the copy at
                # post time — ctx.send promises mutate-after-send safety
                # (profiled sends already pre-pickle, and remote sends
                # hand the buffer to another process).
                payload = pickle.loads(
                    pickle.dumps(payload, pickle.HIGHEST_PROTOCOL)
                )
            self.mailboxes[dest].put(
                (driver._stamp, driver.rank, tag, payload, words, clock)
            )
            return
        t0 = monotonic()
        data = pickle.dumps(payload, pickle.HIGHEST_PROTOCOL)
        t1 = monotonic()
        rec.span(_PK_PICKLE, t0, t1)
        rec.sent(dest, len(data))
        self.mailboxes[dest].put(
            (driver._stamp, driver.rank, tag, _Pickled(data), words, clock)
        )
        rec.span(_PK_QSEND, t1, monotonic())

    # Collective-protocol traffic: no per-message profiling (the whole
    # round is inside the collective span) and words=0 (protocol bytes
    # are excluded from the comm matrix by contract).
    def post_protocol(self, driver: "_Driver", dest: int, tag: int,
                      payload: Any) -> None:
        self.mailboxes[dest].put(
            (driver._stamp, driver.rank, tag, payload, 0, 0.0)
        )

    def get(self, driver: "_Driver") -> tuple:
        """Blocking receive of one current-stamp item for ``driver.rank``.

        Returns ``(source, tag, payload, words, send_clock)``; drops
        stale-stamped residue from earlier attempts on a persistent gang.
        """
        rec = driver._recorder
        t0m = monotonic() if rec is not None else 0.0
        t0 = perf_counter()
        inbox = self.mailboxes[driver.rank]
        while True:
            item = inbox.get()
            if item[0] == driver._stamp:
                break
        # Queue-blocked time is idle; it still lands in the current phase
        # via the next flush (a wall clock can't tell waiting from work).
        driver._stats.idle_time += perf_counter() - t0
        if rec is not None and not driver._in_collective:
            rec.span(_PK_QWAIT, t0m, monotonic())
        return item[1:]

    # ------------------------------------------------------- host lifecycle
    def host_destroy(self) -> None:
        for q in self.mailboxes:
            q.close()
            # Never let host teardown block on unread mailbox residue.
            q.cancel_join_thread()


class _RingTransport:
    """Zero-copy transport over a :class:`~repro.runtime.shm_ring.RingMatrix`.

    Payloads are framed by the wire codec (:mod:`repro.codecs.wire`) and
    memcpy'd into the destination's SPSC ring — no pickle for arrays or
    pair/segment messages, pickle fallback for everything else (protocol
    tuples, scalars).  Self-sends bypass the fabric (streaming a slab
    payload to yourself would deadlock a single thread) but still
    round-trip the codec, so the program receives an independent
    writable copy — the same mutate-after-send safety every other
    transport gives.

    A send blocked on ring backpressure drains this rank's *own*
    incoming rings into the driver's pending buffer (:meth:`_progress`):
    consuming is what frees a peer blocked sending to us, so the
    eager-send patterns the engine allows — every rank firing all its
    ``alltoallv`` sends before draining a single arrival — cannot
    deadlock on the bounded slab space.

    Fork-shared: the host builds the matrix pre-fork; each rank binds its
    endpoint lazily on first use (idempotent — a persistent worker reuses
    its binding across ops of one gang epoch).
    """

    kind = "ring"

    def __init__(self, matrix: RingMatrix, codec: str):
        self.matrix = matrix
        self.codec = codec
        self._ep = None

    def child_init(self, rank: int) -> "_RingTransport":
        if self._ep is None or self._ep.rank != rank:
            self._ep = self.matrix.endpoint(rank)
        return self

    def _progress(self, driver: "_Driver") -> bool:
        """Consume incoming traffic, without blocking, for a stalled send.

        Invoked by the endpoint while one of our sends is blocked on a
        full peer ring.  Complete records land in ``driver._pending``
        in arrival order — exactly where a later ``_take`` looks first —
        so the FIFO-per-(source, tag) guarantee is preserved; a payload
        the peer is still streaming is drained partially (which frees
        its slab space — the progress that matters) and finished on a
        later call.  Returns True when anything moved — a consumed
        record, drained slab bytes, or dropped stale-stamped residue.
        """
        r = self._ep.progress()
        if r is True or r is False:
            return r
        if (r.epoch, r.op_id) != driver._stamp:
            return True  # stale residue from an earlier attempt: dropped
        payload = decode_payload(r.wire, r.data)
        rec = driver._recorder
        if rec is not None and r.tag >= 0:
            rec.received(r.nbytes)
        driver._pending.append((r.src, r.tag, payload, r.words, r.clock))
        return True

    def post(self, driver: "_Driver", dest: int, tag: int, payload: Any,
             words: int, clock: float) -> None:
        rec = driver._recorder
        if dest == driver.rank:
            # Self-send: round-trip through the wire codec so the
            # payload delivered from the pending buffer is an
            # independent writable copy — ``ctx.send`` promises
            # mutate-after-send safety on every transport — carrying
            # the same bytes a remote send would put on the wire.
            t0 = monotonic() if rec is not None else 0.0
            wire, parts, nbytes = encode_payload(payload, self.codec)
            buf = bytearray(nbytes)
            off = 0
            for part in parts:
                pv = memoryview(part).cast("B")
                buf[off : off + len(pv)] = pv
                off += len(pv)
            payload = decode_payload(wire, buf)
            if rec is not None:
                rec.span(_PK_ENC, t0, monotonic())
                rec.sent(dest, nbytes)
                rec.received(nbytes)
            driver._pending.append((driver.rank, tag, payload, words, clock))
            return
        epoch, op_id = driver._stamp
        progress = lambda: self._progress(driver)  # noqa: E731
        if rec is None:
            wire, parts, nbytes = encode_payload(payload, self.codec)
            self._ep.send(dest, epoch=epoch, op_id=op_id, tag=tag, kind=0,
                          wire=wire, words=words, clock=clock,
                          parts=parts, nbytes=nbytes, progress=progress)
            return
        t0 = monotonic()
        wire, parts, nbytes = encode_payload(payload, self.codec)
        t1 = monotonic()
        rec.span(_PK_ENC, t0, t1)
        rec.sent(dest, nbytes)
        self._ep.send(dest, epoch=epoch, op_id=op_id, tag=tag, kind=0,
                      wire=wire, words=words, clock=clock,
                      parts=parts, nbytes=nbytes, progress=progress)
        rec.span(_PK_RSEND, t1, monotonic())

    def post_protocol(self, driver: "_Driver", dest: int, tag: int,
                      payload: Any) -> None:
        epoch, op_id = driver._stamp
        wire, parts, nbytes = encode_payload(payload, self.codec)
        self._ep.send(dest, epoch=epoch, op_id=op_id, tag=tag, kind=0,
                      wire=wire, words=0, clock=0.0,
                      parts=parts, nbytes=nbytes,
                      progress=lambda: self._progress(driver))

    def get(self, driver: "_Driver") -> tuple:
        rec = driver._recorder
        t0m = monotonic() if rec is not None else 0.0
        t0 = perf_counter()
        on_block = None
        ctx = driver.ctx
        if ctx is not None and ctx._chaos and not driver._ring_wait_fired:
            def on_block() -> None:
                # The kill-during-ring-wait pseudo-phase: fires exactly
                # when this rank transitions from polling to blocking.
                driver._ring_wait_fired = True
                fire_chaos(ctx._chaos, "ring_wait")
        while True:
            r = self._ep.wait(on_block=on_block)
            if (r.epoch, r.op_id) == driver._stamp:
                break
            # Stale stamp: residue from an earlier attempt/op on a
            # persistent gang.  Its slab bytes were already drained by
            # the pop (stream alignment), so dropping is safe.
        driver._stats.idle_time += perf_counter() - t0
        if rec is None or driver._in_collective:
            # Inside a collective both the wait and the decode fold into
            # the enclosing collective span (single-writer span order).
            payload = decode_payload(r.wire, r.data)
        else:
            rec.span(_PK_RWAIT, t0m, monotonic())
            t0 = monotonic()
            payload = decode_payload(r.wire, r.data)
            rec.span(_PK_ENC, t0, monotonic())
        if rec is not None and r.tag >= 0:
            # Protocol traffic is excluded from the comm matrix.
            rec.received(r.nbytes)
        return (r.src, r.tag, payload, r.words, r.clock)

    # ------------------------------------------------------- host lifecycle
    def host_destroy(self) -> None:
        self.matrix.destroy()


def _make_transport(name: str, mpctx, nprocs: int, codec: str):
    """Host-side transport factory (pre-fork; registered for cleanup)."""
    if name == "ring":
        matrix = RingMatrix(nprocs)
        register_for_cleanup(matrix)
        return _RingTransport(matrix, codec)
    return _QueueTransport(mpctx, nprocs)


# ----------------------------------------------------------------- context
class MpContext:
    """Per-rank context for real-process execution.

    Mirrors :class:`~repro.machine.context.Context`'s full surface so
    library code (prefix-reduction-sum, the m2m exchange, PACK/UNPACK
    programs) runs unmodified.  Differences, all dictated by the wall
    time domain:

    * :meth:`work` charges op *counts* only — the time they take accrues
      by itself;
    * :meth:`elapse` is a no-op (a wall clock cannot be advanced by fiat);
    * :meth:`send` copies the payload — pickle on the queue transport,
      wire framing on the ring, self-sends included — so the simulator's
      "don't mutate after send" rule is automatically safe here.
    """

    #: Plan replay (:func:`repro.core.plan.replay_charges`) checks this:
    #: under a wall clock, skipped compile work simply takes ~0 seconds —
    #: nothing to restore.
    time_domain = "wall"

    __slots__ = (
        "rank", "size", "spec", "stats", "scratch",
        "_driver", "_tracer", "_metrics", "_mx", "_recorder", "_last",
        "_chaos",
    )

    def __init__(self, rank, size, spec, stats, driver, tracer=None,
                 metrics=None, recorder=None, chaos=()):
        self.rank = rank
        self.size = size
        self.spec = spec
        self.stats = stats
        self.scratch: dict = {}
        self._driver = driver
        self._tracer = tracer
        self._metrics = metrics
        self._mx = _MpMetrics(metrics) if metrics is not None else None
        self._recorder = recorder
        self._last = perf_counter()
        self._chaos = tuple(chaos)

    # ----------------------------------------------------------- wall clock
    def _flush(self) -> None:
        """Attribute wall time since the last flush to the current phase."""
        now = perf_counter()
        delta = now - self._last
        self._last = now
        if delta > 0:
            self.stats.advance(delta)

    # ------------------------------------------------------------ local ops
    def work(self, ops: float) -> None:
        if ops < 0:
            raise MessageError(f"rank {self.rank}: negative work {ops}")
        if ops:
            self.stats.charge_ops(ops)

    def elapse(self, seconds: float) -> None:
        """No-op: wall time passes on its own; simulated charges don't apply."""

    def phase(self, name: str) -> None:
        self._flush()
        self.stats.set_phase(name)
        if self._tracer is not None and self._tracer.capture_phases:
            self._tracer.record(self.stats.clock, self.rank, "phase", name=name)
        if self._chaos:
            # Self-inflicted chaos fires at the exact phase switch — the
            # deterministic anchor a host-side killer could never hit.
            fire_chaos(self._chaos, name)

    @property
    def clock(self) -> float:
        self._flush()
        return self.stats.clock

    @property
    def current_phase(self) -> str:
        return self.stats.phase

    # -------------------------------------------------------------- metrics
    @property
    def metrics(self):
        return self._metrics

    def count(self, name: str, n: float = 1) -> None:
        if self._metrics is not None:
            self._metrics.inc(name, n)

    def observe(self, name: str, value: float) -> None:
        if self._metrics is not None:
            self._metrics.observe(name, value)

    # ---------------------------------------------------------------- sends
    def send(
        self,
        dest: int,
        payload: Any,
        words: int | None = None,
        tag: int = 0,
        auto_ack: tuple[Any, int] | None = None,
    ) -> None:
        if auto_ack is not None:
            raise BackendError(
                "mp backend: auto-ack sends belong to the reliable transport, "
                "which only exists on the simulated network; use backend='sim'"
            )
        if not (0 <= dest < self.size):
            raise MessageError(f"rank {self.rank}: bad destination {dest}")
        if tag < 0:
            raise MessageError(
                f"rank {self.rank}: negative tag {tag} is reserved for the "
                f"runtime's collective protocol"
            )
        if words is None:
            words = payload_words(payload)
        if words < 0:
            raise MessageError(f"rank {self.rank}: negative message size {words}")
        self._flush()
        self.stats.sends += 1
        self.stats.words_sent += words
        mx = self._mx
        if mx is not None and mx.registry._enabled:
            mx.sends.inc()
            mx.words_sent.inc(words)
            mx.message_words.observe(words)
        if self._tracer is not None:
            self._tracer.record(
                self.stats.clock, self.rank, "send", dest=dest, tag=tag, words=words
            )
        # Serialization/wire accounting is the transport's business: the
        # queue transport pre-pickles profiled payloads, the ring
        # transport frames them with the wire codec.
        self._driver.post(dest, tag, payload, words, self.stats.clock)

    def local_copy(self, words: int, charge: bool = False) -> None:
        if charge:
            self.work(words)

    # ------------------------------------------------------------- blocking
    def recv(self, source: Any = ANY, tag: Any = ANY) -> Recv:
        if source is not ANY and not (0 <= source < self.size):
            raise MessageError(f"rank {self.rank}: bad source {source}")
        return Recv(source=source, tag=tag)

    def barrier(self, group: Sequence[int] | None = None, key: int = 0) -> CollectiveOp:
        from ..machine.ops import Barrier

        if group is None:
            group = range(self.size)
        return Barrier(group, key=key)

    # ------------------------------------------------------------- helpers
    def words_of(self, payload: Any) -> int:
        return payload_words(payload)

    # -------------------------------------------------- aggregated alltoallv
    def alltoallv_native(
        self,
        outgoing: Mapping[int, Any],
        sizes: Mapping[int, int],
        tag: int,
        count_key: int,
        self_copy_charge: bool = False,
    ) -> dict[int, Any]:
        """One aggregated many-to-many exchange, driven imperatively.

        The generator-based linear schedule costs a yield round-trip and a
        :class:`~repro.machine.ops.Message` object per peer message.  On a
        real-process backend the driver executes ops imperatively anyway,
        so :func:`repro.machine.m2m.exchange` dispatches here: one
        counts-collective (the same ``m2m-counts`` root-gather the linear
        schedule uses on a control-network machine), then every non-empty
        send fired in linear-permutation order as bulk ring/slab writes,
        then one arrival-order drain loop — no per-message generator
        suspension, no head-of-line blocking on a fixed receive order.

        Bit-compatible with the linear schedule: the same messages carry
        the same payloads, only the host-side mechanics differ.  Returns
        ``source -> payload`` including the self entry.
        """
        P = self.size
        rank = self.rank
        driver = self._driver
        received: dict[int, Any] = {}
        if rank in outgoing:
            self.local_copy(sizes[rank], charge=self_copy_charge)
            received[rank] = outgoing[rank]

        # Counts exchange: who will send me data?  One combining collective
        # (identical to exchange_counts' control-network path).
        self.count("m2m.count_exchanges")

        def _combine(payloads: dict) -> tuple[dict, int]:
            results: dict = {r: {} for r in payloads}
            for s, c in payloads.items():
                for r, w in c.items():
                    if r != s and int(w):
                        results[r][s] = int(w)
            return results, P

        incoming = driver._run_collective(CollectiveOp(
            group=tuple(range(P)),
            kind="m2m-counts",
            payload={d: int(w) for d, w in sizes.items() if d != rank},
            key=count_key,
            combine=_combine,
        ))

        # Fire every send in linear-permutation order (stagger the traffic
        # like the paper's schedule), then drain in arrival order.
        st = self.stats
        mx = self._mx
        for k in range(1, P):
            dest = (rank + k) % P
            if dest in outgoing and sizes.get(dest, 0) > 0:
                self.send(dest, outgoing[dest], words=sizes[dest], tag=tag)
        expected = {s for s in incoming if s != rank}
        while expected:
            source, got_tag, payload, words, _clock = driver._take(
                lambda item: item[1] == tag and item[0] in expected
            )
            expected.discard(source)
            rec = driver._recorder
            if rec is not None and type(payload) is _Pickled:
                data = payload.data
                t0 = monotonic()
                payload = pickle.loads(data)
                rec.span(_PK_PICKLE, t0, monotonic())
                rec.received(len(data))
            received[source] = payload
            self._flush()
            st.recvs += 1
            st.words_received += words
            if mx is not None and mx.registry._enabled:
                mx.recvs.inc()
            if self._tracer is not None:
                self._tracer.record(
                    st.clock, rank, "recv", source=source, tag=got_tag,
                    words=words,
                )
            driver._seq += 1
        return received

    def __repr__(self) -> str:
        return f"MpContext(rank={self.rank}/{self.size}, spec={self.spec.name})"


# ------------------------------------------------------------------ driver
class _Driver:
    """Child-side generator driver: satisfies yielded ops over a transport.

    All transport reads funnel through :meth:`_take`, which buffers items
    that do not match the requested pattern — the single point that keeps
    program receives and the collective protocol from stealing each
    other's messages.  The transport (queue or ring) only moves stamped
    ``(source, tag, payload, words, clock)`` items; matching, pending
    buffering and the collective protocol are transport-independent.
    """

    def __init__(self, rank: int, transport, stats: ProcStats, recorder=None,
                 stamp: tuple[int, int] = (0, 0)):
        self.rank = rank
        self._transport = transport
        self._stats = stats
        self._recorder = recorder
        self._ring_wait_fired = False
        #: (epoch, op_id) wire stamp.  Every message carries its sender's
        #: stamp; the receiver silently drops mismatches.  On a one-shot
        #: gang the stamp is constant; on a supervised persistent gang it
        #: is what keeps residue from a killed attempt (messages parked in
        #: mailbox pipes when a rank died) from satisfying a receive of
        #: the retried — or any later — operation.
        self._stamp = stamp
        #: Inside a collective: queue waits belong to the collective span
        #: (which wraps them), not to queue_wait.
        self._in_collective = False
        #: Buffered (source, tag, payload, words, send_clock) items in
        #: arrival order.
        self._pending: list[tuple] = []
        self._seq = 0
        self.ctx: MpContext | None = None

    # ---------------------------------------------------------- transport
    def post(self, dest: int, tag: int, payload: Any, words: int, clock: float) -> None:
        self._transport.post(self, dest, tag, payload, words, clock)

    def _blocking_get(self) -> tuple:
        return self._transport.get(self)

    def _take(self, match: Callable[[tuple], bool]) -> tuple:
        """Return the oldest item satisfying ``match``, buffering the rest."""
        for i, item in enumerate(self._pending):
            if match(item):
                return self._pending.pop(i)
        while True:
            item = self._blocking_get()
            if match(item):
                return item
            self._pending.append(item)

    # -------------------------------------------------------------- program
    def drive(self, gen) -> Any:
        send_value = None
        while True:
            try:
                op = gen.send(send_value)
            except StopIteration as stop:
                return stop.value
            send_value = None
            if isinstance(op, Recv):
                send_value = self._run_recv(op)
            elif isinstance(op, CollectiveOp):
                send_value = self._run_collective(op)
            else:
                raise ProgramError(self.rank, f"yielded unsupported op {op!r}")

    def _run_recv(self, op: Recv) -> Message:
        if op.timeout is not None:
            raise BackendError(
                "mp backend: timed receives are a simulated-clock feature "
                "(they underpin the reliable transport); use backend='sim'"
            )

        def _match(item: tuple) -> bool:
            source, tag = item[0], item[1]
            if tag < 0:
                return False  # collective protocol traffic is never a program message
            if op.source is not ANY and source != op.source:
                return False
            if op.tag is not ANY and tag != op.tag:
                return False
            return True

        source, tag, payload, words, send_clock = self._take(_match)
        rec = self._recorder
        if rec is not None and type(payload) is _Pickled:
            data = payload.data
            t0 = monotonic()
            payload = pickle.loads(data)
            rec.span(_PK_PICKLE, t0, monotonic())
            rec.received(len(data))
        ctx = self.ctx
        ctx._flush()
        st = self._stats
        st.recvs += 1
        st.words_received += words
        mx = ctx._mx
        if mx is not None and mx.registry._enabled:
            mx.recvs.inc()
        if ctx._tracer is not None:
            ctx._tracer.record(
                st.clock, self.rank, "recv", source=source, tag=tag, words=words
            )
        self._seq += 1
        return Message(
            source=source,
            dest=self.rank,
            tag=tag,
            payload=payload,
            words=words,
            send_time=send_clock,
            arrival_time=st.clock,
            seq=self._seq,
        )

    # ----------------------------------------------------------- collectives
    def _run_collective(self, op: CollectiveOp) -> Any:
        group = op.group
        if self.rank not in group:
            raise CollectiveMismatchError(
                f"rank {self.rank} not in its own group {group}"
            )
        ctx0 = self.ctx
        if ctx0 is not None and ctx0._chaos:
            fire_chaos(ctx0._chaos, "collective")
        rec = self._recorder
        if rec is not None:
            t_coll0 = monotonic()
            self._in_collective = True
        stamp = (op.kind, op.key, group)
        root = group[0]
        if self.rank == root:
            # Per-sender FIFO means the next contribution from a member of
            # this group *must* belong to this collective — a different
            # stamp is a genuine SPMD divergence, reported exactly like
            # the engine would, not buffered into a silent deadlock.
            payloads = {root: op.payload}
            others = set(group) - {root}
            while others:
                item = self._take(
                    lambda item: item[1] == _COLL_CONTRIB and item[0] in others
                )
                got_stamp, src_rank, contribution = item[2]
                self._check_stamp(got_stamp, stamp, item[0])
                payloads[src_rank] = contribution
                others.discard(item[0])
            if op.combine is not None:
                results, _words = op.combine(payloads)
            else:
                results = {r: None for r in group}
            for r in group:
                if r != root:
                    self._transport.post_protocol(
                        self, r, _COLL_RESULT, (stamp, results.get(r))
                    )
            value = results.get(root)
        else:
            self._transport.post_protocol(
                self, root, _COLL_CONTRIB, (stamp, self.rank, op.payload)
            )
            item = self._take(
                lambda item: item[0] == root and item[1] == _COLL_RESULT
            )
            self._check_stamp(item[2][0], stamp, root)
            value = item[2][1]
        if rec is not None:
            self._in_collective = False
            rec.span(_PK_COLL, t_coll0, monotonic())
            rec.collective()
        ctx = self.ctx
        ctx._flush()
        self._stats.ctrl_ops += 1
        mx = ctx._mx
        if mx is not None and mx.registry._enabled:
            mx.collectives.inc()
            mx.collective_group_size.observe(len(group))
        if ctx._tracer is not None:
            ctx._tracer.record(
                self._stats.clock, self.rank, "collective",
                op=op.kind, group_size=len(group),
            )
        return value

    def _check_stamp(self, got, expected, source: int) -> None:
        if got != expected:
            raise CollectiveMismatchError(
                f"rank {source} joined kind {got[0]!r} (key={got[1]}, "
                f"group={got[2]}), group started {expected[0]!r} "
                f"(key={expected[1]}, group={expected[2]})"
            )


# ------------------------------------------------------------- child entry
def _run_program(
    rank: int,
    nprocs: int,
    spec: MachineSpec,
    program: Callable,
    make_rank_args,
    rank_args,
    views: Mapping[str, np.ndarray],
    transport,
    recorder,
    want_metrics: bool,
    want_trace: bool,
    *,
    t_entry: float,
    stamp: tuple[int, int] = (0, 0),
    chaos: tuple[ChaosEvent, ...] = (),
) -> tuple:
    """Execute one SPMD op in the calling rank process.

    The shared core of the one-shot :func:`_child_main` and the
    supervisor's persistent worker loop.  ``views`` are the rank's numpy
    views over the arena (inherited or attached — the caller decides),
    ``rank_args`` is already this rank's own tuple (or ``None``),
    ``transport`` is the fork-shared queue/ring transport (bound to this
    rank here), and ``stamp`` is the ``(epoch, op_id)`` wire stamp for
    every message.  Returns
    ``(result, stats_snapshot, metrics, trace_events)``.
    """
    tracer = None
    metrics = None
    if want_trace:
        from ..machine.trace import Tracer

        tracer = Tracer()
    if want_metrics:
        from ..obs.registry import MetricsRegistry

        metrics = MetricsRegistry()
    if make_rank_args is not None:
        call_args = tuple(make_rank_args(rank, views))
    elif rank_args is not None:
        call_args = tuple(rank_args)
    else:
        call_args = ()
    if recorder is not None:
        # Everything from entry (fork, or op receipt on a warm gang) to
        # here is shm/argument setup: attaching views, slicing blocks.
        t_ready = monotonic()
        recorder.mark(1, t_ready)
        recorder.span(_PK_SHM, t_entry, t_ready)
    stats = ProcStats(rank)
    transport = transport.child_init(rank)
    driver = _Driver(rank, transport, stats, recorder=recorder, stamp=stamp)
    ctx = MpContext(rank, nprocs, spec, stats, driver, tracer=tracer,
                    metrics=metrics, recorder=recorder, chaos=chaos)
    driver.ctx = ctx
    if chaos:
        fire_chaos(chaos, "start")
    gen_or_value = program(ctx, *call_args)
    if hasattr(gen_or_value, "send") and hasattr(gen_or_value, "throw"):
        result = driver.drive(gen_or_value)
    else:
        result = gen_or_value
    ctx._flush()
    if chaos:
        fire_chaos(chaos, "flush")
    if recorder is not None:
        recorder.mark(2, monotonic())
    return (
        result,
        stats.snapshot(),
        metrics,
        tracer.events if tracer is not None else None,
    )


def _child_main(
    rank: int,
    nprocs: int,
    spec: MachineSpec,
    program: Callable,
    make_rank_args,
    rank_args,
    arena: _ShmArena,
    profile: _ProfileBuffers | None,
    transport,
    result_q,
    want_metrics: bool,
    want_trace: bool,
    chaos: tuple[ChaosEvent, ...] = (),
) -> None:
    """Entry point of one rank process (fork-inherited closure state)."""
    t_entry = monotonic()
    try:
        # Fork hygiene: drop the layout-layer LRU caches inherited from
        # the parent — they hold index maps for *every* rank and would
        # inflate this child's resident memory; the child re-fills only
        # its own entries (repro.hpf.caches).
        from ..hpf.caches import clear_layout_caches

        clear_layout_caches()
        if chaos:
            fire_chaos(chaos, "spawn")
        recorder = None
        if profile is not None:
            recorder = profile.recorder(rank)
            recorder.mark(0, t_entry)
        result, snapshot, metrics, events = _run_program(
            rank, nprocs, spec, program, make_rank_args,
            rank_args[rank] if rank_args is not None else None,
            arena.views(), transport, recorder, want_metrics, want_trace,
            t_entry=t_entry, chaos=chaos,
        )
        if any(ev.kind == "poison" for ev in chaos):
            # Poisoned result: a truncated message, exercising host-side
            # validation instead of this rank's execution.
            result_q.put(("ok", rank))
        else:
            result_q.put(("ok", rank, result, snapshot, metrics, events))
    except BaseException:
        try:
            result_q.put(("error", rank, traceback.format_exc()))
            result_q.close()
            result_q.join_thread()
        finally:
            # Skip normal interpreter teardown: a failing rank must not
            # hang flushing mailbox messages nobody will ever read.
            os._exit(_CHILD_FAILED)


# ----------------------------------------------------------------- backend
class MpBackend(Backend):
    """Run SPMD programs with one OS process per rank (fork + shm + queues).

    Parameters
    ----------
    timeout:
        optional gang wall-clock budget in seconds; on expiry the gang is
        terminated and :class:`MpGangError` raised.  ``None`` (default)
        waits indefinitely — the host still detects crashed children.
    join_grace:
        seconds to wait for a finished child to exit before terminating
        it (its result is already home by then; stragglers are harmless).
    chaos:
        optional :class:`~repro.faults.chaos.ChaosPlan` of real process
        faults (op 0 events only — the one-shot gang runs one op).  The
        bare backend does not recover: a killed rank surfaces as
        :class:`MpGangError` through the normal failure-hygiene paths.
        Recovery belongs to
        :class:`~repro.runtime.supervisor.GangSupervisor`.
    transport:
        ``"ring"`` (default: zero-copy shared-memory ring buffers) or
        ``"queue"`` (pickled ``multiprocessing.Queue`` mailboxes).
        ``None`` resolves ``REPRO_MP_TRANSPORT`` then the default — see
        :func:`~repro.runtime.base.resolve_transport`.
    codec:
        wire codec mode for the ring transport: ``"auto"`` (default,
        per-message CMS-vs-SSS choice), ``"cms"``, ``"sss"``, or
        ``"pickle"``.  ``None`` resolves ``REPRO_WIRE_CODEC`` then auto.
    """

    name = "mp"
    time_domain = "wall"
    supports_faults = False

    def __init__(self, timeout: float | None = None, join_grace: float = 5.0,
                 chaos=None, transport: str | None = None,
                 codec: str | None = None):
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        self.timeout = timeout
        self.join_grace = join_grace
        self.chaos = chaos
        self.transport = resolve_transport(transport)
        self.codec = resolve_codec(codec)

    def run_spmd(
        self,
        program: Callable,
        nprocs: int,
        *,
        make_rank_args: Callable[[int, Mapping[str, Any]], tuple] | None = None,
        rank_args: Sequence[tuple] | None = None,
        shared: Mapping[str, Any] | None = None,
        spec=None,
        tracer=None,
        metrics=None,
        faults=None,
        step_budget: int | None = None,
        time_budget: float | None = None,
        profile=None,
    ) -> RunResult:
        t_host0 = monotonic() if profile is not None else 0.0
        if make_rank_args is not None and rank_args is not None:
            raise ValueError("pass make_rank_args or rank_args, not both")
        if rank_args is not None and len(rank_args) != nprocs:
            raise ValueError(
                f"rank_args has {len(rank_args)} entries for {nprocs} ranks"
            )
        if nprocs < 1:
            raise ValueError(f"need at least one processor, got {nprocs}")
        self.reject_unsupported(faults=faults)
        if step_budget is not None or time_budget is not None:
            raise BackendError(
                "mp backend: watchdog budgets count simulated steps/seconds; "
                "use MpBackend(timeout=wall_seconds) instead"
            )
        if "fork" not in _mp.get_all_start_methods():
            raise BackendError(
                "mp backend requires the 'fork' start method (POSIX); "
                "it is unavailable on this platform"
            )
        if metrics is None:
            from ..obs.registry import current_global_metrics

            metrics = current_global_metrics()
        spec = spec if spec is not None else CM5

        mpctx = _mp.get_context("fork")
        arena = _ShmArena(shared or {})
        prof_bufs = None
        if profile is not None:
            prof_bufs = _ProfileBuffers(nprocs, profile.ring_capacity)
        transport = _make_transport(self.transport, mpctx, nprocs, self.codec)
        result_q = mpctx.Queue()
        chaos_by_rank = {
            r: self.chaos.events_for(0, r) for r in range(nprocs)
        } if self.chaos is not None else {}
        procs = [
            mpctx.Process(
                target=_child_main,
                args=(
                    r, nprocs, spec, program, make_rank_args, rank_args,
                    arena, prof_bufs, transport, result_q,
                    metrics is not None, tracer is not None,
                    chaos_by_rank.get(r, ()),
                ),
                daemon=True,
                name=f"repro-mp-rank-{r}",
            )
            for r in range(nprocs)
        ]
        t_spawn0 = monotonic() if profile is not None else 0.0
        prof_data = None
        t_spawned = t_collected = 0.0
        try:
            for p in procs:
                p.start()
            if profile is not None:
                t_spawned = monotonic()
            reports = self._collect(procs, result_q, nprocs)
            if profile is not None:
                t_collected = monotonic()
            for p in procs:
                p.join(timeout=self.join_grace)
            if prof_bufs is not None:
                # Every rank has reported and exited: its rows are final.
                # Copy before the finally block unlinks the segment.
                prof_data = prof_bufs.copy_out()
        finally:
            for p in procs:
                if p.is_alive():
                    # SIGKILL, not SIGTERM: a SIGSTOPped child (chaos, or
                    # an operator's ^Z) never processes SIGTERM, but KILL
                    # reaps stopped processes too.
                    p.kill()
            for p in procs:
                p.join(timeout=self.join_grace)
            arena.destroy()
            if prof_bufs is not None:
                prof_bufs.destroy()
            transport.host_destroy()
            result_q.close()
            # Never let host teardown block on unread mailbox residue.
            result_q.cancel_join_thread()

        results = []
        stats = []
        for r in range(nprocs):
            result, snapshot, child_metrics, child_events = reports[r]
            results.append(result)
            stats.append(stats_from_snapshot(snapshot))
            if metrics is not None and child_metrics is not None:
                metrics.merge(child_metrics)
            if tracer is not None and child_events:
                tracer.events.extend(child_events)
        run = RunResult(results=results, stats=stats, time_domain=self.time_domain)
        if profile is not None and prof_data is not None:
            profile.profile = _build_mp_profile(
                nprocs, prof_data, run,
                t_host0, t_spawn0, t_spawned, t_collected, monotonic(),
                transport=self.transport,
            )
        return run

    # ------------------------------------------------------------ gathering
    def _collect(self, procs, result_q, nprocs: int) -> dict[int, tuple]:
        """Gather one report per rank, event-driven.

        The parent blocks in one ``connection.wait`` on the result pipe
        *and* every pending child's exit sentinel, bounded by the gang
        deadline — no polling loop burning host CPU, and a silent death
        (killed child, ``os._exit``) wakes the wait immediately instead
        of on the next poll tick.
        """
        deadline = Deadline(self.timeout)
        pending = set(range(nprocs))
        reports: dict[int, tuple] = {}
        reader = getattr(result_q, "_reader", None)
        while pending:
            msg = None
            try:
                msg = result_q.get_nowait()
            except _queue_mod.Empty:
                pass
            if msg is None:
                dead = sorted(
                    r for r in pending if procs[r].exitcode is not None
                )
                if dead:
                    # One more grace read: the child may have exited right
                    # after posting its result (the feeder thread races
                    # the exit).
                    try:
                        msg = result_q.get(timeout=0.5)
                    except _queue_mod.Empty:
                        r = dead[0]
                        raise MpGangError(
                            r,
                            f"process exited with code {procs[r].exitcode} "
                            f"without reporting a result",
                        ) from None
                else:
                    if deadline.expired():
                        raise MpGangError(
                            None, deadline.describe("gang", pending)
                        )
                    sentinels = [procs[r].sentinel for r in sorted(pending)]
                    if reader is not None:
                        _conn_wait(
                            [reader, *sentinels],
                            timeout=(None if deadline.timeout is None
                                     else deadline.remaining(cap=0.2)),
                        )
                    else:
                        # No readable pipe handle on this Queue flavour:
                        # degrade to a bounded sleep-poll.
                        _conn_wait(sentinels, timeout=deadline.remaining(cap=0.05))
                    continue
            rank, report = self._validate_report(msg, nprocs)
            reports[rank] = report
            pending.discard(rank)
        return reports

    @staticmethod
    def _validate_report(msg, nprocs: int) -> tuple[int, tuple]:
        """Check one result-queue message; raise :class:`MpGangError` on a
        malformed (poisoned / truncated) one instead of unpacking blind."""
        if not isinstance(msg, tuple) or len(msg) < 3:
            rank = msg[1] if isinstance(msg, tuple) and len(msg) > 1 else None
            rank = rank if isinstance(rank, int) else None
            raise MpGangError(rank, f"posted a malformed result message: {msg!r}")
        if msg[0] == "error":
            _, rank, tb = msg
            raise MpGangError(rank, "program raised", child_traceback=tb)
        if msg[0] != "ok" or len(msg) != 6 or not isinstance(msg[1], int) \
                or not (0 <= msg[1] < nprocs):
            rank = msg[1] if isinstance(msg[1], int) else None
            raise MpGangError(rank, f"posted a malformed result message: {msg!r}")
        _, rank, result, snapshot, child_metrics, child_events = msg
        return rank, (result, snapshot, child_metrics, child_events)


# ----------------------------------------------------------- profile merge
def _build_mp_profile(
    nprocs: int,
    data: Mapping[str, np.ndarray],
    run: RunResult,
    t_host0: float,
    t_spawn0: float,
    t_spawned: float,
    t_collected: float,
    t_end: float,
    transport: str = "queue",
):
    """Merge the per-rank shm rows into a wall-aligned ``RunProfile``.

    All child marks and ring timestamps are raw CLOCK_MONOTONIC values on
    the same boot as the parent's marks, so subtracting ``t_host0`` puts
    every lane on one common clock starting at the host call.

    The attribution table is built from the exact decomposition of each
    rank's view of the call::

        host_wall = shm_parent                (arena setup, same for all)
                  + (entry_r  - t_spawn0)     fork
                  + (ready_r  - entry_r)      shm (child view/arg build)
                  + (done_r   - ready_r)      pickle+queue+collective+compute
                  + (t_end    - done_r)       reap

    averaged over ranks — the per-rank identities each telescope to
    ``host_wall - shm_parent``, so the table sums to ``host_wall`` by
    construction (compute is the in-lane residual).
    """
    from ..obs.runtime import RankLane, RunProfile

    times = data["times"]
    acc = data["acc"]
    hdr = data["hdr"]
    counters = data["counters"]
    events = data["events"]

    def h(t: float) -> float:
        return t - t_host0

    lanes = []
    fork_s = []
    shm_child_s = []
    lane_acc = np.zeros(len(_ACC_NAMES))
    compute_s = []
    reap_s = []
    for r in range(nprocs):
        entry, ready, done = (float(t) for t in times[r])
        spans: list[tuple[str, float, float]] = [("fork", h(t_spawn0), h(entry))]
        n = int(hdr[r, 0])
        for kind, t0, t1 in events[r, :n]:
            spans.append((_PK_NAMES[int(kind)], h(float(t0)), h(float(t1))))
        per = {name: float(acc[r, i]) for i, name in enumerate(_ACC_NAMES)}
        per["fork"] = entry - t_spawn0
        per["shm"] = ready - entry
        per["compute"] = max((done - ready) - float(acc[r].sum()), 0.0)
        lanes.append(RankLane(
            rank=r, t_start=h(t_spawn0), t_ready=h(ready), t_done=h(done),
            spans=spans, phase_seconds=per,
        ))
        fork_s.append(per["fork"])
        shm_child_s.append(per["shm"])
        lane_acc += acc[r]
        compute_s.append(per["compute"])
        reap_s.append(t_end - done)

    def mean(xs) -> float:
        return float(sum(xs) / len(xs)) if len(xs) else 0.0

    shm_parent = t_spawn0 - t_host0
    phase_seconds = {
        "fork": mean(fork_s),
        "shm": shm_parent + mean(shm_child_s),
        "compute": mean(compute_s),
        "reap": mean(reap_s),
    }
    for i, name in enumerate(_ACC_NAMES):
        phase_seconds[name] = float(lane_acc[i]) / nprocs
    return RunProfile(
        op="run",
        backend="mp",
        time_domain="wall",
        transport=transport,
        nprocs=nprocs,
        total_seconds=t_end - t_host0,
        host_wall_seconds=t_end - t_host0,
        phase_seconds=phase_seconds,
        lanes=lanes,
        gang_spans=[
            ("shm_setup", 0.0, h(t_spawn0)),
            ("spawn", h(t_spawn0), h(t_spawned)),
            ("collect", h(t_spawned), h(t_collected)),
            ("reap", h(t_collected), h(t_end)),
        ],
        comm_msgs=[[int(v) for v in row] for row in data["msgs"]],
        comm_bytes=[[int(v) for v in row] for row in data["bytes"]],
        sends_per_rank=[s.sends for s in run.stats],
        recvs_per_rank=[int(counters[r, 2]) for r in range(nprocs)],
        recv_bytes_per_rank=[int(counters[r, 3]) for r in range(nprocs)],
        pickle_bytes_per_rank=[int(counters[r, 0]) for r in range(nprocs)],
        collectives_per_rank=[int(counters[r, 1]) for r in range(nprocs)],
        dropped_events=int(hdr[:, 1].sum()),
    )
