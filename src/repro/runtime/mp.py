"""Process-per-rank execution backend over ``multiprocessing``.

:class:`MpBackend` runs the same SPMD generator programs as the simulator,
but on real cores: one forked OS process per rank, global input arrays in
POSIX shared memory (each rank slices out only its own block —
:meth:`~repro.hpf.grid.GridLayout.local_block` — so no block is ever
pickled through a pipe), and message passing over per-rank
``multiprocessing.Queue`` mailboxes.

How the same programs run on both transports
--------------------------------------------
A program interacts with the machine only through its context and the ops
it yields.  The child-side driver (:class:`_Driver`) replays the engine's
contract over IPC:

* ``ctx.send(...)`` pickles the payload onto the destination's mailbox
  queue (eager and buffered — the queue's feeder thread means sends never
  block, matching the simulator's eager-send model);
* ``yield ctx.recv(...)`` reads from the rank's own mailbox through a
  *pending buffer*: every incoming item passes through one matcher, and
  items that do not match the current pattern are buffered in arrival
  order, preserving the engine's FIFO-per-(source, tag) guarantee and
  keeping the collective protocol's internal messages from being stolen
  by ``source=ANY`` receives (library receives all use explicit tags;
  the protocol uses reserved negative tags programs may not send on);
* ``yield CollectiveOp(...)`` runs a root-gather protocol: members send
  their contribution to the lowest-ranked member, which applies the op's
  own ``combine`` callable and scatters the per-rank results.  Because
  every member constructs the op (and its combine closure) inside its own
  process, nothing about the collective needs to be picklable except the
  contributions and results.

Time is **wall** time: each rank accumulates ``perf_counter`` deltas into
a genuine :class:`~repro.machine.stats.ProcStats`, flushed to the current
phase label on every phase switch — so per-phase breakdowns, the profiler
and the metrics registry all work unchanged, just in a different
``time_domain`` (``"wall"``).

Failure hygiene
---------------
A rank that raises mid-phase ships ``("error", rank, traceback)`` home;
the host terminates the whole gang, joins every child, closes and unlinks
every shared-memory segment, and raises :class:`MpGangError` carrying the
originating rank's traceback.  A rank that dies without reporting (e.g.
killed) is detected by exit-code polling.  The host's ``finally`` block
performs the same reaping on every path, so no children or ``/dev/shm``
segments outlive a run.

Simulator-only features — fault injection, the reliable transport
(``auto_ack``), timed receives, watchdog budgets in simulated seconds —
are rejected with a clear :class:`~repro.runtime.base.BackendError`.
"""

from __future__ import annotations

import multiprocessing as _mp
import os
import queue as _queue_mod
import time
import traceback
from time import perf_counter
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from ..machine.context import payload_words
from ..machine.errors import CollectiveMismatchError, MessageError, ProgramError
from ..machine.ops import ANY, CollectiveOp, Message, Recv
from ..machine.spec import CM5, MachineSpec
from ..machine.stats import ProcStats, RunResult, stats_from_snapshot
from .base import Backend, BackendError

__all__ = ["MpBackend", "MpGangError"]

#: Reserved mailbox tags for the collective protocol.  Program sends must
#: use non-negative tags, so these can never collide.
_COLL_CONTRIB = -101
_COLL_RESULT = -102

#: Child exit code used when the program raised (after the traceback was
#: shipped home on the result queue).
_CHILD_FAILED = 70


class MpGangError(BackendError):
    """The process gang failed; carries the originating rank's story.

    Attributes
    ----------
    rank:
        the rank that caused the failure, or ``None`` when the gang as a
        whole failed (e.g. a timeout with every child still blocked).
    child_traceback:
        the formatted traceback from the failing child, when one was
        reported before the gang was torn down.
    """

    def __init__(self, rank: int | None, detail: str, child_traceback: str | None = None):
        self.rank = rank
        self.child_traceback = child_traceback
        who = "gang" if rank is None else f"rank {rank}"
        msg = f"mp backend: {who} failed: {detail}"
        if child_traceback:
            msg += f"\n--- rank {rank} traceback ---\n{child_traceback.rstrip()}"
        super().__init__(msg)


# --------------------------------------------------------------------- shm
class _ShmArena:
    """Host-owned shared-memory segments holding the global input arrays.

    Created *before* the fork so children inherit the mappings directly —
    no child ever re-attaches by name, which keeps the resource tracker's
    view simple: the host is the sole owner and the only unlinker.
    """

    def __init__(self, shared: Mapping[str, Any]):
        from multiprocessing import shared_memory

        self._meta: dict[str, tuple[Any, tuple, np.dtype]] = {}
        self._segments: list[Any] = []
        for name, arr in shared.items():
            arr = np.ascontiguousarray(arr)
            if arr.nbytes == 0:
                # Zero-extent arrays (empty masks, empty vectors) need no
                # segment; children rebuild them from shape and dtype.
                self._meta[name] = (None, arr.shape, arr.dtype)
                continue
            seg = shared_memory.SharedMemory(create=True, size=arr.nbytes)
            np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)[...] = arr
            self._segments.append(seg)
            self._meta[name] = (seg, arr.shape, arr.dtype)

    def views(self) -> dict[str, np.ndarray]:
        """Numpy views over the segments (call in the child, post-fork)."""
        out: dict[str, np.ndarray] = {}
        for name, (seg, shape, dtype) in self._meta.items():
            if seg is None:
                out[name] = np.empty(shape, dtype=dtype)
            else:
                out[name] = np.ndarray(shape, dtype=dtype, buffer=seg.buf)
        return out

    def destroy(self) -> None:
        """Close and unlink every segment (host side, exactly once)."""
        segments, self._segments = self._segments, []
        self._meta = {}
        for seg in segments:
            try:
                seg.close()
            except OSError:
                pass
            try:
                seg.unlink()
            except FileNotFoundError:
                pass


# ----------------------------------------------------------------- context
class MpContext:
    """Per-rank context for real-process execution.

    Mirrors :class:`~repro.machine.context.Context`'s full surface so
    library code (prefix-reduction-sum, the m2m exchange, PACK/UNPACK
    programs) runs unmodified.  Differences, all dictated by the wall
    time domain:

    * :meth:`work` charges op *counts* only — the time they take accrues
      by itself;
    * :meth:`elapse` is a no-op (a wall clock cannot be advanced by fiat);
    * :meth:`send` copies the payload (pickling), so the simulator's
      "don't mutate after send" rule is automatically safe here.
    """

    __slots__ = (
        "rank", "size", "spec", "stats", "scratch",
        "_driver", "_tracer", "_metrics", "_last",
    )

    def __init__(self, rank, size, spec, stats, driver, tracer=None, metrics=None):
        self.rank = rank
        self.size = size
        self.spec = spec
        self.stats = stats
        self.scratch: dict = {}
        self._driver = driver
        self._tracer = tracer
        self._metrics = metrics
        self._last = perf_counter()

    # ----------------------------------------------------------- wall clock
    def _flush(self) -> None:
        """Attribute wall time since the last flush to the current phase."""
        now = perf_counter()
        delta = now - self._last
        self._last = now
        if delta > 0:
            self.stats.advance(delta)

    # ------------------------------------------------------------ local ops
    def work(self, ops: float) -> None:
        if ops < 0:
            raise MessageError(f"rank {self.rank}: negative work {ops}")
        if ops:
            self.stats.charge_ops(ops)

    def elapse(self, seconds: float) -> None:
        """No-op: wall time passes on its own; simulated charges don't apply."""

    def phase(self, name: str) -> None:
        self._flush()
        self.stats.set_phase(name)
        if self._tracer is not None and self._tracer.capture_phases:
            self._tracer.record(self.stats.clock, self.rank, "phase", name=name)

    @property
    def clock(self) -> float:
        self._flush()
        return self.stats.clock

    @property
    def current_phase(self) -> str:
        return self.stats.phase

    # -------------------------------------------------------------- metrics
    @property
    def metrics(self):
        return self._metrics

    def count(self, name: str, n: float = 1) -> None:
        if self._metrics is not None:
            self._metrics.inc(name, n)

    def observe(self, name: str, value: float) -> None:
        if self._metrics is not None:
            self._metrics.observe(name, value)

    # ---------------------------------------------------------------- sends
    def send(
        self,
        dest: int,
        payload: Any,
        words: int | None = None,
        tag: int = 0,
        auto_ack: tuple[Any, int] | None = None,
    ) -> None:
        if auto_ack is not None:
            raise BackendError(
                "mp backend: auto-ack sends belong to the reliable transport, "
                "which only exists on the simulated network; use backend='sim'"
            )
        if not (0 <= dest < self.size):
            raise MessageError(f"rank {self.rank}: bad destination {dest}")
        if tag < 0:
            raise MessageError(
                f"rank {self.rank}: negative tag {tag} is reserved for the "
                f"runtime's collective protocol"
            )
        if words is None:
            words = payload_words(payload)
        if words < 0:
            raise MessageError(f"rank {self.rank}: negative message size {words}")
        self._flush()
        self.stats.sends += 1
        self.stats.words_sent += words
        if self._metrics is not None:
            self._metrics.inc("machine.sends")
            self._metrics.inc("machine.words_sent", words)
            self._metrics.observe("machine.message_words", words)
        if self._tracer is not None:
            self._tracer.record(
                self.stats.clock, self.rank, "send", dest=dest, tag=tag, words=words
            )
        self._driver.post(dest, tag, payload, words, self.stats.clock)

    def local_copy(self, words: int, charge: bool = False) -> None:
        if charge:
            self.work(words)

    # ------------------------------------------------------------- blocking
    def recv(self, source: Any = ANY, tag: Any = ANY) -> Recv:
        if source is not ANY and not (0 <= source < self.size):
            raise MessageError(f"rank {self.rank}: bad source {source}")
        return Recv(source=source, tag=tag)

    def barrier(self, group: Sequence[int] | None = None, key: int = 0) -> CollectiveOp:
        from ..machine.ops import Barrier

        if group is None:
            group = range(self.size)
        return Barrier(group, key=key)

    # ------------------------------------------------------------- helpers
    def words_of(self, payload: Any) -> int:
        return payload_words(payload)

    def __repr__(self) -> str:
        return f"MpContext(rank={self.rank}/{self.size}, spec={self.spec.name})"


# ------------------------------------------------------------------ driver
class _Driver:
    """Child-side generator driver: satisfies yielded ops over the queues.

    All mailbox reads funnel through :meth:`_take`, which buffers items
    that do not match the requested pattern — the single point that keeps
    program receives and the collective protocol from stealing each
    other's messages.
    """

    def __init__(self, rank: int, mailboxes, stats: ProcStats):
        self.rank = rank
        self._mailboxes = mailboxes
        self._inbox = mailboxes[rank]
        self._stats = stats
        #: Buffered (source, tag, payload, words, send_clock) items in
        #: arrival order.
        self._pending: list[tuple] = []
        self._seq = 0
        self.ctx: MpContext | None = None

    # ---------------------------------------------------------- transport
    def post(self, dest: int, tag: int, payload: Any, words: int, clock: float) -> None:
        self._mailboxes[dest].put((self.rank, tag, payload, words, clock))

    def _blocking_get(self) -> tuple:
        t0 = perf_counter()
        item = self._inbox.get()
        waited = perf_counter() - t0
        # Queue-blocked time is idle; it still lands in the current phase
        # via the next flush (a wall clock can't tell waiting from work).
        self._stats.idle_time += waited
        return item

    def _take(self, match: Callable[[tuple], bool]) -> tuple:
        """Return the oldest item satisfying ``match``, buffering the rest."""
        for i, item in enumerate(self._pending):
            if match(item):
                return self._pending.pop(i)
        while True:
            item = self._blocking_get()
            if match(item):
                return item
            self._pending.append(item)

    # -------------------------------------------------------------- program
    def drive(self, gen) -> Any:
        send_value = None
        while True:
            try:
                op = gen.send(send_value)
            except StopIteration as stop:
                return stop.value
            send_value = None
            if isinstance(op, Recv):
                send_value = self._run_recv(op)
            elif isinstance(op, CollectiveOp):
                send_value = self._run_collective(op)
            else:
                raise ProgramError(self.rank, f"yielded unsupported op {op!r}")

    def _run_recv(self, op: Recv) -> Message:
        if op.timeout is not None:
            raise BackendError(
                "mp backend: timed receives are a simulated-clock feature "
                "(they underpin the reliable transport); use backend='sim'"
            )

        def _match(item: tuple) -> bool:
            source, tag = item[0], item[1]
            if tag < 0:
                return False  # collective protocol traffic is never a program message
            if op.source is not ANY and source != op.source:
                return False
            if op.tag is not ANY and tag != op.tag:
                return False
            return True

        source, tag, payload, words, send_clock = self._take(_match)
        ctx = self.ctx
        ctx._flush()
        st = self._stats
        st.recvs += 1
        st.words_received += words
        if ctx._metrics is not None:
            ctx._metrics.inc("machine.recvs")
        if ctx._tracer is not None:
            ctx._tracer.record(
                st.clock, self.rank, "recv", source=source, tag=tag, words=words
            )
        self._seq += 1
        return Message(
            source=source,
            dest=self.rank,
            tag=tag,
            payload=payload,
            words=words,
            send_time=send_clock,
            arrival_time=st.clock,
            seq=self._seq,
        )

    # ----------------------------------------------------------- collectives
    def _run_collective(self, op: CollectiveOp) -> Any:
        group = op.group
        if self.rank not in group:
            raise CollectiveMismatchError(
                f"rank {self.rank} not in its own group {group}"
            )
        stamp = (op.kind, op.key, group)
        root = group[0]
        if self.rank == root:
            # Per-sender FIFO means the next contribution from a member of
            # this group *must* belong to this collective — a different
            # stamp is a genuine SPMD divergence, reported exactly like
            # the engine would, not buffered into a silent deadlock.
            payloads = {root: op.payload}
            others = set(group) - {root}
            while others:
                item = self._take(
                    lambda item: item[1] == _COLL_CONTRIB and item[0] in others
                )
                got_stamp, src_rank, contribution = item[2]
                self._check_stamp(got_stamp, stamp, item[0])
                payloads[src_rank] = contribution
                others.discard(item[0])
            if op.combine is not None:
                results, _words = op.combine(payloads)
            else:
                results = {r: None for r in group}
            for r in group:
                if r != root:
                    self._mailboxes[r].put(
                        (root, _COLL_RESULT, (stamp, results.get(r)), 0, 0.0)
                    )
            value = results.get(root)
        else:
            self._mailboxes[root].put(
                (self.rank, _COLL_CONTRIB, (stamp, self.rank, op.payload), 0, 0.0)
            )
            item = self._take(
                lambda item: item[0] == root and item[1] == _COLL_RESULT
            )
            self._check_stamp(item[2][0], stamp, root)
            value = item[2][1]
        ctx = self.ctx
        ctx._flush()
        self._stats.ctrl_ops += 1
        if ctx._metrics is not None:
            ctx._metrics.inc("machine.collectives")
            ctx._metrics.observe("machine.collective_group_size", len(group))
        if ctx._tracer is not None:
            ctx._tracer.record(
                self._stats.clock, self.rank, "collective",
                op=op.kind, group_size=len(group),
            )
        return value

    def _check_stamp(self, got, expected, source: int) -> None:
        if got != expected:
            raise CollectiveMismatchError(
                f"rank {source} joined kind {got[0]!r} (key={got[1]}, "
                f"group={got[2]}), group started {expected[0]!r} "
                f"(key={expected[1]}, group={expected[2]})"
            )


# ------------------------------------------------------------- child entry
def _child_main(
    rank: int,
    nprocs: int,
    spec: MachineSpec,
    program: Callable,
    make_rank_args,
    rank_args,
    arena: _ShmArena,
    mailboxes,
    result_q,
    want_metrics: bool,
    want_trace: bool,
) -> None:
    """Entry point of one rank process (fork-inherited closure state)."""
    try:
        tracer = None
        metrics = None
        if want_trace:
            from ..machine.trace import Tracer

            tracer = Tracer()
        if want_metrics:
            from ..obs.registry import MetricsRegistry

            metrics = MetricsRegistry()
        if make_rank_args is not None:
            call_args = tuple(make_rank_args(rank, arena.views()))
        elif rank_args is not None:
            call_args = tuple(rank_args[rank])
        else:
            call_args = ()
        stats = ProcStats(rank)
        driver = _Driver(rank, mailboxes, stats)
        ctx = MpContext(rank, nprocs, spec, stats, driver, tracer=tracer, metrics=metrics)
        driver.ctx = ctx
        gen_or_value = program(ctx, *call_args)
        if hasattr(gen_or_value, "send") and hasattr(gen_or_value, "throw"):
            result = driver.drive(gen_or_value)
        else:
            result = gen_or_value
        ctx._flush()
        result_q.put((
            "ok",
            rank,
            result,
            stats.snapshot(),
            metrics,
            tracer.events if tracer is not None else None,
        ))
    except BaseException:
        try:
            result_q.put(("error", rank, traceback.format_exc()))
            result_q.close()
            result_q.join_thread()
        finally:
            # Skip normal interpreter teardown: a failing rank must not
            # hang flushing mailbox messages nobody will ever read.
            os._exit(_CHILD_FAILED)


# ----------------------------------------------------------------- backend
class MpBackend(Backend):
    """Run SPMD programs with one OS process per rank (fork + shm + queues).

    Parameters
    ----------
    timeout:
        optional gang wall-clock budget in seconds; on expiry the gang is
        terminated and :class:`MpGangError` raised.  ``None`` (default)
        waits indefinitely — the host still detects crashed children.
    join_grace:
        seconds to wait for a finished child to exit before terminating
        it (its result is already home by then; stragglers are harmless).
    """

    name = "mp"
    time_domain = "wall"
    supports_faults = False

    def __init__(self, timeout: float | None = None, join_grace: float = 5.0):
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        self.timeout = timeout
        self.join_grace = join_grace

    def run_spmd(
        self,
        program: Callable,
        nprocs: int,
        *,
        make_rank_args: Callable[[int, Mapping[str, Any]], tuple] | None = None,
        rank_args: Sequence[tuple] | None = None,
        shared: Mapping[str, Any] | None = None,
        spec=None,
        tracer=None,
        metrics=None,
        faults=None,
        step_budget: int | None = None,
        time_budget: float | None = None,
    ) -> RunResult:
        if make_rank_args is not None and rank_args is not None:
            raise ValueError("pass make_rank_args or rank_args, not both")
        if rank_args is not None and len(rank_args) != nprocs:
            raise ValueError(
                f"rank_args has {len(rank_args)} entries for {nprocs} ranks"
            )
        if nprocs < 1:
            raise ValueError(f"need at least one processor, got {nprocs}")
        self.reject_unsupported(faults=faults)
        if step_budget is not None or time_budget is not None:
            raise BackendError(
                "mp backend: watchdog budgets count simulated steps/seconds; "
                "use MpBackend(timeout=wall_seconds) instead"
            )
        if "fork" not in _mp.get_all_start_methods():
            raise BackendError(
                "mp backend requires the 'fork' start method (POSIX); "
                "it is unavailable on this platform"
            )
        if metrics is None:
            from ..obs.registry import current_global_metrics

            metrics = current_global_metrics()
        spec = spec if spec is not None else CM5

        mpctx = _mp.get_context("fork")
        arena = _ShmArena(shared or {})
        mailboxes = [mpctx.Queue() for _ in range(nprocs)]
        result_q = mpctx.Queue()
        procs = [
            mpctx.Process(
                target=_child_main,
                args=(
                    r, nprocs, spec, program, make_rank_args, rank_args,
                    arena, mailboxes, result_q,
                    metrics is not None, tracer is not None,
                ),
                daemon=True,
                name=f"repro-mp-rank-{r}",
            )
            for r in range(nprocs)
        ]
        try:
            for p in procs:
                p.start()
            reports = self._collect(procs, result_q, nprocs)
            for p in procs:
                p.join(timeout=self.join_grace)
        finally:
            for p in procs:
                if p.is_alive():
                    p.terminate()
            for p in procs:
                p.join(timeout=self.join_grace)
            arena.destroy()
            for q in [*mailboxes, result_q]:
                q.close()
                # Never let host teardown block on unread mailbox residue.
                q.cancel_join_thread()

        results = []
        stats = []
        for r in range(nprocs):
            result, snapshot, child_metrics, child_events = reports[r]
            results.append(result)
            stats.append(stats_from_snapshot(snapshot))
            if metrics is not None and child_metrics is not None:
                metrics.merge(child_metrics)
            if tracer is not None and child_events:
                tracer.events.extend(child_events)
        return RunResult(results=results, stats=stats, time_domain=self.time_domain)

    # ------------------------------------------------------------ gathering
    def _collect(self, procs, result_q, nprocs: int) -> dict[int, tuple]:
        deadline = None if self.timeout is None else time.monotonic() + self.timeout
        pending = set(range(nprocs))
        reports: dict[int, tuple] = {}
        while pending:
            try:
                msg = result_q.get(timeout=0.1)
            except _queue_mod.Empty:
                dead = sorted(
                    r for r in pending if procs[r].exitcode is not None
                )
                if dead:
                    # One more grace read: the child may have exited right
                    # after posting its result.
                    try:
                        msg = result_q.get(timeout=0.5)
                    except _queue_mod.Empty:
                        r = dead[0]
                        raise MpGangError(
                            r,
                            f"process exited with code {procs[r].exitcode} "
                            f"without reporting a result",
                        ) from None
                elif deadline is not None and time.monotonic() > deadline:
                    raise MpGangError(
                        None,
                        f"gang did not finish within {self.timeout:g}s "
                        f"(ranks still pending: {sorted(pending)})",
                    )
                else:
                    continue
            if msg[0] == "error":
                _, rank, tb = msg
                raise MpGangError(rank, "program raised", child_traceback=tb)
            _, rank, result, snapshot, child_metrics, child_events = msg
            reports[rank] = (result, snapshot, child_metrics, child_events)
            pending.discard(rank)
        return reports
