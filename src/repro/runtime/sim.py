"""The simulator backend: deterministic, cost-model-clocked execution.

:class:`SimBackend` is a thin adapter: it constructs the cooperative
:class:`~repro.machine.engine.Machine` exactly as the host API always has
and runs the program gang in-process.  Results and statistics are
bit-for-bit identical to calling :meth:`Machine.run` directly — the
backend seam adds no behaviour, only the common :class:`Backend` shape
shared with the real-process backends.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from ..machine.engine import Machine
from ..machine.spec import CM5
from ..machine.stats import RunResult
from .base import Backend

__all__ = ["SimBackend"]


class SimBackend(Backend):
    """Run SPMD programs on the simulated coarse-grained machine.

    All engine features are available: seeded fault injection, the
    reliable transport, timed receives, watchdog budgets, tracing and
    metrics.  Times are in the spec's **simulated** seconds.
    """

    name = "sim"
    time_domain = "simulated"
    supports_faults = True
    supports_reliability = True

    def run_spmd(
        self,
        program: Callable,
        nprocs: int,
        *,
        make_rank_args: Callable[[int, Mapping[str, Any]], tuple] | None = None,
        rank_args: Sequence[tuple] | None = None,
        shared: Mapping[str, Any] | None = None,
        spec=None,
        tracer=None,
        metrics=None,
        faults=None,
        step_budget: int | None = None,
        time_budget: float | None = None,
        profile=None,
    ) -> RunResult:
        if make_rank_args is not None and rank_args is not None:
            raise ValueError("pass make_rank_args or rank_args, not both")
        own_tracer = tracer
        t_host0 = 0.0
        if profile is not None:
            from time import perf_counter

            t_host0 = perf_counter()
            if own_tracer is None:
                # The profile needs the event stream; a tracer observes
                # without touching the simulated clocks, so results stay
                # bit-identical with profiling on.
                from ..machine.trace import Tracer

                own_tracer = Tracer()
        machine = Machine(
            nprocs,
            spec if spec is not None else CM5,
            tracer=own_tracer,
            metrics=metrics,
            faults=faults,
            step_budget=step_budget,
            time_budget=time_budget,
        )
        if make_rank_args is not None:
            # In-process the "shared" arrays are just the host's arrays;
            # each rank's argument builder slices its own block lazily
            # (GridLayout.local_block views — no materialization).
            shared = dict(shared or {})
            rank_args = [make_rank_args(r, shared) for r in range(nprocs)]
        run = machine.run(program, rank_args=rank_args)
        run.time_domain = self.time_domain
        if profile is not None:
            from time import perf_counter

            from ..obs.runtime import build_sim_profile

            profile.profile = build_sim_profile(
                run, own_tracer, perf_counter() - t_host0, nprocs
            )
        return run
