"""Shared-memory SPSC ring-buffer transport for the mp backends.

One :class:`RingMatrix` per gang: a single POSIX shared-memory segment
holding, for every ordered rank pair ``(src, dst)``, a fixed-slot
single-producer/single-consumer **record ring** plus a byte-stream
**slab ring** for payloads too large for a slot.  Replacing the
per-rank ``multiprocessing.Queue`` mailboxes with these rings removes
the pickle + pipe + feeder-thread cost per message: a send is one
header ``pack_into`` and one or two ``memoryview`` copies into memory
the receiver already has mapped.

Layout (all offsets 8-byte aligned)::

    [ waiting flags: P * 8 bytes ]                 one per receiving rank
    [ pair headers:  P*P * 128 bytes ]             2 cache lines per pair
        line 0 (producer-written): slot_head, byte_head
        line 1 (consumer-written): slot_tail, byte_tail
    [ slot rings:    P*P * nslots * slot_bytes ]
    [ slab rings:    P*P * slab_bytes ]

Synchronisation is futex-free, as on the CM-5 data network the paper
targets: heads/tails are monotonically increasing int64 sequence
counters.  A producer publishes a record by filling the slot **then**
advancing ``slot_head``; the consumer reads ``slot_head``, consumes,
then advances ``slot_tail``.  int64 aligned stores are atomic on every
platform CPython runs on, and each side writes only its own cache line,
so no locks are needed.  The payload-before-head *ordering*, however,
holds only under a total-store-order memory model (x86/x86-64): plain
stores carry no release barrier, so a weakly-ordered CPU (aarch64,
ppc64le) may let the consumer observe the advanced head before the
payload bytes are visible.  :func:`repro.runtime.base.resolve_transport`
therefore defaults to the queue transport off x86 and warns when the
ring is forced there.  Waits spin briefly, then ``sched_yield``, then
block on a per-receiver **doorbell** (``os.eventfd``, falling back to a
pipe): the receiver sets its waiting flag, re-checks the rings, and
blocks in ``select`` with a bounded timeout; a producer that observes
the flag writes the doorbell.  The flag re-check bounds the classic
lost-wakeup race to one timeout slice.

Records are 40-byte headers (epoch, op id, tag, payload kind, wire
codec, flags, words, nbytes, clock); payloads at most
``slot_bytes - 40`` ride inline in the slot, larger ones stream through
the pair's slab ring *after* the record is published (flag bit 0 set).
The consumer drains slab bytes as part of popping the record, so record
order and stream order coincide and arbitrarily large payloads move
through bounded memory with flow control on ``byte_tail``.

Stale records (wrong ``(epoch, op_id)`` under the supervisor's retry
loop) must still drain their slab bytes before being dropped — skipping
them would desynchronise the byte stream for every later record.

Backpressure is **cooperative**.  A send blocked on a full slot ring or
slab invokes its ``progress`` callback between re-checks; the mp
transport wires that callback to :meth:`RingEndpoint.progress`, which
consumes the sender's *own* incoming rings into the driver's pending
buffer.  Draining is what frees a peer blocked sending to us, so a
cycle of ranks all mid-send — exactly what ``alltoallv_native``
produces by firing every send before its drain loop — makes progress
instead of deadlocking when every per-pair payload exceeds the bounded
slab space.  Crucially the hook itself **never blocks**: an incoming
slab payload whose producer is still streaming is drained *partially*
(per-source resumable state, freeing slab space as it goes) and control
returns to the blocked send — blocking the hook on the peer's stream
would just re-create the cycle one level down, with both ranks stuck
draining streams whose producers are their own suspended send loops.

SIGKILL of a peer mid-wait leaves counters frozen; nothing in here
detects that, by design.  The host side (``MpBackend._collect``, the
supervisor's heartbeat board) watches process sentinels and reaps the
whole gang, which is what unblocks the survivors — the same recovery
contract the queue transport had, now exercised by the ``ring_wait``
chaos phase.
"""

from __future__ import annotations

import os
import select
import struct
import time
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

__all__ = [
    "RECORD",
    "RingConfig",
    "RingEndpoint",
    "RingMatrix",
    "RingRecord",
]

#: Record header: epoch i32, op_id i32, tag i32, kind i16, wire u8,
#: flags u8, words i64, nbytes i64, clock f8 — 40 bytes.
RECORD = struct.Struct("<iiihBBqqd")
assert RECORD.size == 40

_F_SLAB = 1  # flags bit 0: payload streamed through the slab ring

_CACHE_LINE = 64
_PAIR_HDR = 2 * _CACHE_LINE  # producer line + consumer line

# Backoff schedule for a single-core-friendly wait: a handful of pure
# spins (cheap when the producer is truly concurrent), then yield the
# core (essential when producer and consumer share one CPU, as in CI),
# then block on the doorbell.
_SPINS = 20
_YIELDS = 40
_DOORBELL_SLICE = 0.05  # select timeout; bounds the lost-wakeup race


@dataclass(frozen=True)
class RingConfig:
    """Geometry of one gang's ring matrix.

    Defaults keep a P=8 gang under 8 MiB of /dev/shm while letting a
    whole conformance-sized message ride inline.  Env overrides
    (``REPRO_RING_SLOTS``, ``REPRO_RING_SLOT_BYTES``,
    ``REPRO_RING_SLAB_BYTES``) exist for the backpressure/spill tests
    and for tuning on bigger machines.
    """

    nslots: int = 64
    slot_bytes: int = 2048
    slab_bytes: int = 1 << 16

    @classmethod
    def from_env(cls, **overrides) -> "RingConfig":
        def _pick(key: str, env: str, default: int) -> int:
            if key in overrides and overrides[key] is not None:
                return int(overrides[key])
            return int(os.environ.get(env, default))

        cfg = cls(
            nslots=_pick("nslots", "REPRO_RING_SLOTS", cls.nslots),
            slot_bytes=_pick("slot_bytes", "REPRO_RING_SLOT_BYTES", cls.slot_bytes),
            slab_bytes=_pick("slab_bytes", "REPRO_RING_SLAB_BYTES", cls.slab_bytes),
        )
        if cfg.nslots < 2 or cfg.slot_bytes < RECORD.size + 8:
            raise ValueError(f"ring config too small: {cfg}")
        if cfg.slab_bytes < 64:
            raise ValueError(f"slab ring too small: {cfg}")
        return cfg

    @property
    def inline_max(self) -> int:
        """Largest payload that fits inline in one slot."""
        return self.slot_bytes - RECORD.size


@dataclass(frozen=True)
class RingRecord:
    """One received message header + its payload bytes.

    ``data`` is a writable ``bytearray`` (the consumer's copy out of
    shared memory), so numpy views the wire codec decodes over it are
    mutable — receive semantics match the queue transport's unpickled
    copies.
    """

    src: int
    epoch: int
    op_id: int
    tag: int
    kind: int
    wire: int
    words: int
    nbytes: int
    clock: float
    data: bytearray


def _now() -> float:
    return time.monotonic()


class _Doorbell:
    """Per-receiver wakeup fd: eventfd where available, else a pipe.

    Created before fork and inherited by every rank; any producer may
    ring it, only the owner waits on it.  Non-blocking on both ends so
    a full pipe never stalls a producer (a pending byte is wakeup
    enough).
    """

    def __init__(self) -> None:
        if hasattr(os, "eventfd"):
            fd = os.eventfd(0, os.EFD_NONBLOCK)
            self._rfd = self._wfd = fd
            self._pipe = False
        else:  # pragma: no cover - all target platforms have eventfd
            r, w = os.pipe()
            os.set_blocking(r, False)
            os.set_blocking(w, False)
            self._rfd, self._wfd = r, w
            self._pipe = True

    def ring(self) -> None:
        try:
            os.write(self._wfd, b"\x01\x00\x00\x00\x00\x00\x00\x00")
        except (BlockingIOError, InterruptedError):
            pass  # already pending — the sleeper will wake regardless

    def drain(self) -> None:
        try:
            os.read(self._rfd, 8)
        except (BlockingIOError, InterruptedError):
            pass

    def wait(self, timeout: float) -> None:
        try:
            select.select([self._rfd], [], [], timeout)
        except (OSError, ValueError):  # pragma: no cover - fd torn down
            time.sleep(min(timeout, 0.001))
        self.drain()

    def close(self) -> None:
        try:
            os.close(self._rfd)
        finally:
            if self._pipe:
                try:
                    os.close(self._wfd)
                except OSError:
                    pass


class RingMatrix:
    """The P×P ring fabric for one gang, backed by one shm segment.

    The host constructs it (``create=True``) before forking; children
    inherit the mapping through fork and build per-rank
    :class:`RingEndpoint` views with :meth:`endpoint`.  The segment is
    zero-initialised by the kernel, which is exactly the initial
    counter state.
    """

    def __init__(self, nprocs: int, config: RingConfig | None = None, *,
                 create: bool = True, name: str | None = None) -> None:
        self.nprocs = int(nprocs)
        self.config = config or RingConfig.from_env()
        p, cfg = self.nprocs, self.config
        self._off_flags = 0
        self._off_hdr = p * 8
        self._off_slots = self._off_hdr + p * p * _PAIR_HDR
        self._off_slab = self._off_slots + p * p * cfg.nslots * cfg.slot_bytes
        self.nbytes = self._off_slab + p * p * cfg.slab_bytes
        if create:
            self._shm = shared_memory.SharedMemory(create=True, size=self.nbytes)
            self._owner = True
        else:
            self._shm = _attach(name)
            self._owner = False
        self.name = self._shm.name
        buf = self._shm.buf
        self._flags = np.frombuffer(buf, dtype=np.int64, count=p,
                                    offset=self._off_flags)
        # Counters as a (p, p, 2, 8) int64 view: [src, dst, line, word].
        # Line 0 word 0/1 = slot_head/byte_head (producer); line 1
        # word 0/1 = slot_tail/byte_tail (consumer).
        self._ctr = np.frombuffer(
            buf, dtype=np.int64, count=p * p * (_PAIR_HDR // 8),
            offset=self._off_hdr,
        ).reshape(p, p, 2, _CACHE_LINE // 8)
        self._raw = buf
        # Doorbells exist only on the creating (pre-fork) side; an
        # attach-by-name user (tests, tooling) gets ring state but no
        # blocking wakeups.
        self.doorbells = [_Doorbell() for _ in range(p)] if create else []
        self._endpoints: list["RingEndpoint"] = []

    # -- geometry -----------------------------------------------------
    def _slot_view(self, src: int, dst: int, slot: int) -> memoryview:
        cfg = self.config
        base = self._off_slots + ((src * self.nprocs + dst) * cfg.nslots + slot) * cfg.slot_bytes
        return self._raw[base : base + cfg.slot_bytes]

    def _slab_view(self, src: int, dst: int) -> memoryview:
        cfg = self.config
        base = self._off_slab + (src * self.nprocs + dst) * cfg.slab_bytes
        return self._raw[base : base + cfg.slab_bytes]

    def endpoint(self, rank: int) -> "RingEndpoint":
        ep = RingEndpoint(self, rank)
        self._endpoints.append(ep)
        return ep

    # -- lifecycle ----------------------------------------------------
    def close(self) -> None:
        for ep in self._endpoints:
            ep._release()
        self._endpoints = []
        self._flags = self._ctr = None  # release buffer exports
        self._raw = None
        try:
            self._shm.close()
        except (OSError, BufferError):
            pass
        for bell in self.doorbells:
            try:
                bell.close()
            except OSError:
                pass
        self.doorbells = []

    def destroy(self) -> None:
        self.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass

    def _emergency_cleanup(self) -> None:  # register_for_cleanup hook
        self.destroy()


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach without registering with the resource tracker (host owns it)."""
    from .mp import _attach_shm

    return _attach_shm(name)


class RingEndpoint:
    """One rank's producer/consumer view of the gang's ring matrix.

    Single-producer/single-consumer per ``(src, dst)`` pair: only rank
    ``src`` ever writes that pair's producer line and only rank ``dst``
    its consumer line, so plain int64 stores publish safely.
    """

    def __init__(self, matrix: RingMatrix, rank: int) -> None:
        self.matrix = matrix
        self.rank = int(rank)
        self.nprocs = matrix.nprocs
        cfg = matrix.config
        self._nslots = cfg.nslots
        self._slot_bytes = cfg.slot_bytes
        self._slab_bytes = cfg.slab_bytes
        self._inline_max = cfg.inline_max
        self._ctr = matrix._ctr
        self._flags = matrix._flags
        # Cached local copies of the consumer's own tails (authoritative:
        # only we write them) to avoid shm reads on the hot path.
        self._my_slot_tail = [int(self._ctr[src, self.rank, 1, 0])
                              for src in range(self.nprocs)]
        self._my_byte_tail = [int(self._ctr[src, self.rank, 1, 1])
                              for src in range(self.nprocs)]
        self._my_slot_head = [int(self._ctr[self.rank, dst, 0, 0])
                              for dst in range(self.nprocs)]
        self._my_byte_head = [int(self._ctr[self.rank, dst, 0, 1])
                              for dst in range(self.nprocs)]
        self._rr = 0
        #: In-progress slab drains, src -> [header, out bytearray, got]:
        #: a record whose payload the producer is still streaming, begun
        #: by the non-blocking :meth:`progress` path.  At most one per
        #: source (record order == stream order), and it must complete
        #: before any later record from that source is surfaced.
        self._partials: dict[int, list] = {}

    # ------------------------------------------------------------ send
    def send(self, dst: int, *, epoch: int, op_id: int, tag: int, kind: int,
             wire: int, words: int, clock: float, parts, nbytes: int,
             on_wait=None, progress=None) -> None:
        """Publish one record (and payload) to ``dst``'s ring.

        Blocks (spin → yield → sleep) on slot or slab backpressure;
        ``on_wait`` is invoked once if the send had to block, letting
        the caller attribute the stall.  ``progress`` is invoked between
        backpressure re-checks and should consume this endpoint's *own*
        incoming traffic (returning True when it did) — the cooperative
        drain that keeps a cycle of ranks all blocked mid-send from
        deadlocking.  Must not be used for ``dst == rank`` — self-sends
        bypass the transport entirely.
        """
        m = self.matrix
        rank = self.rank
        head = self._my_slot_head[dst]
        # Wait for a free slot (consumer lags by at most nslots).
        self._wait_until(
            lambda: head - int(self._ctr[rank, dst, 1, 0]) < self._nslots,
            on_wait, progress,
        )
        slot = m._slot_view(rank, dst, head % self._nslots)
        use_slab = nbytes > self._inline_max
        flags = _F_SLAB if use_slab else 0
        RECORD.pack_into(slot, 0, epoch, op_id, tag, kind, wire, flags,
                         words, nbytes, clock)
        if not use_slab:
            off = RECORD.size
            for part in parts:
                pv = memoryview(part).cast("B")
                slot[off : off + len(pv)] = pv
                off += len(pv)
            self._my_slot_head[dst] = head + 1
            self._ctr[rank, dst, 0, 0] = head + 1  # publish
            self._ring_doorbell(dst)
            return
        # Slab path: publish the record first (so the consumer can start
        # draining), then stream the payload with flow control.
        self._my_slot_head[dst] = head + 1
        self._ctr[rank, dst, 0, 0] = head + 1
        self._ring_doorbell(dst)
        slab = m._slab_view(rank, dst)
        byte_head = self._my_byte_head[dst]
        size = self._slab_bytes
        for part in parts:
            pv = memoryview(part).cast("B")
            sent = 0
            while sent < len(pv):
                # Space = ring size minus unconsumed bytes.
                def _free() -> int:
                    return size - (byte_head - int(self._ctr[rank, dst, 1, 1]))

                self._wait_until(lambda: _free() > 0, on_wait, progress)
                avail = _free()
                pos = byte_head % size
                chunk = min(len(pv) - sent, avail, size - pos)
                slab[pos : pos + chunk] = pv[sent : sent + chunk]
                sent += chunk
                byte_head += chunk
                self._ctr[rank, dst, 0, 1] = byte_head  # publish bytes
                self._ring_doorbell(dst)
        self._my_byte_head[dst] = byte_head

    def _ring_doorbell(self, dst: int) -> None:
        if self._flags[dst] and self.matrix.doorbells:
            self.matrix.doorbells[dst].ring()

    # ------------------------------------------------------------ recv
    def poll(self) -> RingRecord | None:
        """Pop the next available record from any source, or ``None``.

        Scans sources round-robin from the last served rank so no pair
        starves.  Popping a slab record drains its full payload from
        the slab ring (blocking on the producer if it is still
        streaming) — including any drain the non-blocking
        :meth:`progress` path left partial.
        """
        rank = self.rank
        for i in range(self.nprocs):
            src = (self._rr + i) % self.nprocs
            if src == rank:
                continue
            if src in self._partials:
                self._rr = (src + 1) % self.nprocs
                rec, _ = self._drain_partial(src, block=True)
                return rec
            tail = self._my_slot_tail[src]
            if int(self._ctr[src, rank, 0, 0]) > tail:
                self._rr = (src + 1) % self.nprocs
                return self._pop(src, tail)
        return None

    def progress(self) -> "RingRecord | bool":
        """One bounded, **non-blocking** step of incoming consumption.

        The cooperative-backpressure hook for a blocked send: returns a
        complete :class:`RingRecord` if one could be consumed without
        waiting, ``True`` if partial progress was made (slab bytes
        drained or a new drain started — producer space was freed), and
        ``False`` if there was nothing to do.  Never waits on a
        producer: the caller *is* a suspended producer, and blocking
        here would rebuild the very send-send cycle this hook breaks.
        """
        rank = self.rank
        made = False
        for i in range(self.nprocs):
            src = (self._rr + i) % self.nprocs
            if src == rank:
                continue
            if src in self._partials:
                rec, moved = self._drain_partial(src, block=False)
                if rec is not None:
                    self._rr = (src + 1) % self.nprocs
                    return rec
                made = made or moved
                continue
            tail = self._my_slot_tail[src]
            if int(self._ctr[src, rank, 0, 0]) > tail:
                rec = self._pop(src, tail, block=False)
                if rec is not None:
                    self._rr = (src + 1) % self.nprocs
                    return rec
                made = True  # started a partial drain
        return made

    def _pop(self, src: int, tail: int, block: bool = True) -> RingRecord | None:
        m = self.matrix
        rank = self.rank
        slot = m._slot_view(src, rank, tail % self._nslots)
        epoch, op_id, tag, kind, wire, flags, words, nbytes, clock = (
            RECORD.unpack_from(slot, 0)
        )
        # Free the slot before draining any slab payload: the header is
        # copied out, and the producer cannot reuse the slot until after
        # it finishes streaming this very payload (sends are sequential
        # per pair), so early release is safe and lets an nslots-deep
        # pipeline refill sooner.
        self._my_slot_tail[src] = tail + 1
        self._ctr[src, rank, 1, 0] = tail + 1
        if flags & _F_SLAB:
            self._partials[src] = [
                (epoch, op_id, tag, kind, wire, words, clock),
                bytearray(nbytes), 0,
            ]
            rec, _ = self._drain_partial(src, block=block)
            return rec
        # bytearray, not bytes: decoded numpy views over the payload
        # stay writable, like an unpickled queue-transport copy.
        data = bytearray(slot[RECORD.size : RECORD.size + nbytes])
        return RingRecord(src, epoch, op_id, tag, kind, wire, words,
                          nbytes, clock, data)

    def _drain_partial(self, src: int, block: bool) -> tuple[RingRecord | None, bool]:
        """Advance the in-progress slab drain for ``src``.

        Returns ``(record, moved)``: the completed record (and the
        partial state retired), or ``None`` with ``moved`` telling
        whether any bytes were drained.  ``block=True`` waits for the
        producer to finish streaming; ``block=False`` (the send-side
        progress hook) drains only what is already published.
        """
        rank = self.rank
        state = self._partials[src]
        hdr, out, got = state
        nbytes = len(out)
        slab = self.matrix._slab_view(src, rank)
        size = self._slab_bytes
        byte_tail = self._my_byte_tail[src]
        moved = False
        while got < nbytes:
            avail = int(self._ctr[src, rank, 0, 1]) - byte_tail
            if avail <= 0:
                if not block:
                    break
                self._wait_until(
                    lambda: int(self._ctr[src, rank, 0, 1]) > byte_tail, None
                )
                continue
            pos = byte_tail % size
            chunk = min(nbytes - got, avail, size - pos)
            out[got : got + chunk] = slab[pos : pos + chunk]
            got += chunk
            byte_tail += chunk
            self._ctr[src, rank, 1, 1] = byte_tail  # open space for producer
            moved = True
        self._my_byte_tail[src] = byte_tail
        if got < nbytes:
            state[2] = got
            return None, moved
        del self._partials[src]
        epoch, op_id, tag, kind, wire, words, clock = hdr
        return RingRecord(src, epoch, op_id, tag, kind, wire, words,
                          nbytes, clock, out), moved

    def wait(self, *, deadline: float | None = None, on_block=None) -> RingRecord | None:
        """Block until a record arrives; ``None`` only on deadline expiry.

        ``on_block`` is invoked once when the endpoint transitions from
        polling to blocking (used by chaos injection's ``ring_wait``
        phase and by profiling).
        """
        rec = self.poll()
        if rec is not None:
            return rec
        for _ in range(_SPINS):
            rec = self.poll()
            if rec is not None:
                return rec
        blocked = False
        yields = 0
        bells = self.matrix.doorbells
        bell = bells[self.rank] if bells else None
        while True:
            rec = self.poll()
            if rec is not None:
                if blocked:
                    self._flags[self.rank] = 0
                return rec
            if deadline is not None and time.monotonic() >= deadline:
                if blocked:
                    self._flags[self.rank] = 0
                return None
            if not blocked and on_block is not None:
                on_block()
            blocked = True
            if yields < _YIELDS:
                yields += 1
                os.sched_yield()
                continue
            if bell is None:
                time.sleep(0.0005)
                continue
            # Doorbell protocol: announce, re-check, then block bounded.
            self._flags[self.rank] = 1
            rec = self.poll()
            if rec is not None:
                self._flags[self.rank] = 0
                return rec
            slice_ = _DOORBELL_SLICE
            if deadline is not None:
                slice_ = min(slice_, max(deadline - time.monotonic(), 0.0))
            bell.wait(slice_)
            self._flags[self.rank] = 0

    def _release(self) -> None:
        """Drop shm views so the matrix buffer can be closed."""
        self._ctr = self._flags = None

    # ------------------------------------------------------------ util
    def _wait_until(self, cond, on_wait, progress=None) -> None:
        if cond():
            return
        if on_wait is not None:
            on_wait()
        spins = 0
        while not cond():
            if progress is not None and progress():
                # We consumed incoming traffic: a peer blocked sending
                # to us can now advance (and eventually drain *our*
                # ring), so re-check immediately without backing off.
                continue
            if spins < _SPINS:
                spins += 1
            elif spins < _SPINS + _YIELDS:
                spins += 1
                os.sched_yield()
            else:
                time.sleep(0.0002)
