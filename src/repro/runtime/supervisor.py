"""Supervised persistent gangs: warm reuse, failure recovery, degradation.

:class:`~repro.runtime.mp.MpBackend` forks a throwaway gang per call and
fails fast on any child death.  That is the right *hygiene* baseline,
but ``BENCH_profile.json`` shows fork/reap/shm lifecycle is about half
of the mp slowdown at P=8 — and the paper's PACK/UNPACK primitives
assume a gang of processors that survives the whole computation.
:class:`GangSupervisor` provides that gang:

* **Persistent & warm** — ranks are forked *once* per gang epoch and
  then reused: each worker sits in an op-dispatch loop, receiving
  ``(epoch, op_id, op)`` commands over a per-rank control queue,
  attaching the host's shared-memory arena *by name* (the arena did not
  exist at fork time), running the op through the exact same
  :func:`~repro.runtime.mp._run_program` core as the one-shot backend,
  and posting the result home.  A warm dispatch replaces a fork.
* **Supervised** — every worker runs a daemon heartbeat thread beating a
  shared-memory board; the host's collect loop multiplexes the result
  pipe, every child's exit sentinel, the board, and the op wall
  deadline in one ``connection.wait``.  Failures are *classified*:
  ``rank_death`` (exit sentinel), ``heartbeat_miss`` (stale board — a
  SIGSTOPped or livelocked rank), ``op_timeout`` (deadline with fresh
  heartbeats — a deadlock), ``poisoned_result`` (malformed result
  message), ``spawn_failure`` (death before ready), and the
  non-retryable ``program_error`` (the rank itself raised).
* **Recovering** — on a retryable failure the supervisor reaps the whole
  gang (SIGKILL: stopped ranks can't process SIGTERM), rebuilds it
  under a new epoch, and retries the in-flight op under a seeded
  exponential-backoff-with-jitter :class:`RetryPolicy`.  Every message
  a rank sends is stamped ``(epoch, op_id)`` and stale stamps are
  dropped at the receiver, so an op retried after a rebuild is
  exactly-once from the caller's view: one ``run_spmd`` call, one
  result, bit-identical to a fault-free run.
* **Degrading** — when the retry budget is exhausted,
  ``on_exhaustion="fallback"`` reruns the op on the in-process
  :class:`~repro.runtime.sim.SimBackend` (results identical, times in
  the ``"simulated"`` domain) instead of raising; ``"raise"`` (default)
  surfaces :class:`~repro.runtime.mp.MpGangError`.

Because workers are forked *before* an op's callables exist, programs
and ``make_rank_args`` closures are shipped through the control queue:
pickled by reference when possible, otherwise frozen as marshalled code
objects plus recursively-frozen defaults and closure cells and thawed
against the worker's (fork-inherited) module globals — see
:func:`_freeze_callable`.

Lifecycle events (``rank_death``, ``rebuild``, ``retry``, ``fallback``,
``heartbeat_miss``, ...) are appended to :attr:`SupervisorStats.events`,
counted into the active :class:`~repro.obs.registry.MetricsRegistry`
(``supervisor.*``), and — for a profiled op — appended to the profile's
gang lanes as ``supervisor.*`` spans.

Chaos (:class:`~repro.faults.chaos.ChaosPlan`) is first-class: the
supervisor decrements each event's ``times`` budget per delivery, so a
``times=1`` kill recovers on the first retry while ``times > budget``
exercises exhaustion and fallback deterministically.
"""

from __future__ import annotations

import atexit
import importlib
import marshal
import multiprocessing as _mp
import os
import pickle
import queue as _queue_mod
import random
import sys
import threading
import time
import traceback
import types
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _conn_wait
from time import monotonic
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from ..faults.chaos import ChaosEvent, ChaosPlan, fire_chaos
from ..machine.spec import CM5
from ..machine.stats import RunResult, stats_from_snapshot
from .base import Backend, BackendError, Deadline, resolve_transport
from ..codecs.wire import resolve_codec
from .mp import (
    _CHILD_FAILED,
    MpGangError,
    _build_mp_profile,
    _make_transport,
    _ProfileBuffers,
    _ShmArena,
    register_for_cleanup,
    _run_program,
)

__all__ = [
    "GangSupervisor",
    "RetryPolicy",
    "SupervisorEvent",
    "SupervisorStats",
    "default_supervisor",
    "shutdown_default_supervisor",
]


# ------------------------------------------------------------ retry policy
@dataclass(frozen=True)
class RetryPolicy:
    """Seeded exponential backoff with jitter.

    ``delays()`` yields ``max_retries`` sleep lengths:
    ``min(max_delay, base_delay * multiplier**i)`` scaled by a uniform
    jitter factor in ``[1 - jitter, 1 + jitter]`` drawn from
    ``random.Random(seed)`` — deterministic per policy instance, so a
    chaos run's recovery timeline is reproducible.
    """

    max_retries: int = 2
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not (0 <= self.jitter < 1):
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def delays(self):
        rng = random.Random(self.seed)
        for i in range(self.max_retries):
            base = min(self.max_delay, self.base_delay * self.multiplier ** i)
            yield base * (1 + self.jitter * (2 * rng.random() - 1))


# ------------------------------------------------------- events and stats
@dataclass(frozen=True)
class SupervisorEvent:
    """One lifecycle event: what happened, when (monotonic), to whom."""

    kind: str
    t: float
    op_id: int | None = None
    rank: int | None = None
    detail: str = ""


@dataclass
class SupervisorStats:
    """Aggregate lifecycle counters for one supervisor instance."""

    ops: int = 0
    warm_ops: int = 0
    cold_ops: int = 0
    retries: int = 0
    rebuilds: int = 0
    fallbacks: int = 0
    gang_epoch: int = 0
    stale_dropped: int = 0
    failures: dict[str, int] = field(default_factory=dict)
    events: list[SupervisorEvent] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "ops": self.ops,
            "warm_ops": self.warm_ops,
            "cold_ops": self.cold_ops,
            "retries": self.retries,
            "rebuilds": self.rebuilds,
            "fallbacks": self.fallbacks,
            "gang_epoch": self.gang_epoch,
            "stale_dropped": self.stale_dropped,
            "failures": dict(self.failures),
            "events": [
                {"kind": e.kind, "t": e.t, "op_id": e.op_id,
                 "rank": e.rank, "detail": e.detail}
                for e in self.events
            ],
        }


class _OpFailure(Exception):
    """Internal: one attempt failed; carries the classification."""

    def __init__(self, kind: str, rank: int | None, detail: str,
                 child_traceback: str | None = None):
        self.kind = kind
        self.rank = rank
        self.detail = detail
        self.child_traceback = child_traceback
        super().__init__(f"{kind}: {detail}")


# --------------------------------------------------------- heartbeat board
class _HeartbeatBoard:
    """One float64 per rank in shared memory: last beat, CLOCK_MONOTONIC.

    Created by the host *before* the fork, so workers inherit the mapping
    and beat it from a daemon thread.  Single-writer per slot; an 8-byte
    aligned store is atomic on every platform we run on.  A SIGSTOPped
    worker freezes all its threads — heartbeat included — which is
    exactly what makes a stopped rank distinguishable from a slow one.
    """

    def __init__(self, nprocs: int):
        from multiprocessing import shared_memory

        self.nprocs = nprocs
        self._owner = True
        self._seg = shared_memory.SharedMemory(create=True, size=8 * nprocs)
        self._arr = np.ndarray((nprocs,), dtype=np.float64, buffer=self._seg.buf)
        self._arr[:] = monotonic()
        register_for_cleanup(self)

    def beat(self, rank: int) -> None:
        self._arr[rank] = monotonic()

    def ages(self, now: float | None = None) -> list[float]:
        now = monotonic() if now is None else now
        return [float(now - t) for t in self._arr]

    def destroy(self) -> None:
        self._arr = None
        seg, self._seg = self._seg, None
        if seg is None or not self._owner:
            return
        try:
            seg.close()
        except (OSError, BufferError):
            pass
        try:
            seg.unlink()
        except FileNotFoundError:
            pass

    _emergency_cleanup = destroy


# ---------------------------------------------------------- freeze / thaw
def _freeze_callable(fn: Callable | None):
    """Make ``fn`` shippable to a worker forked before ``fn`` existed.

    Module-level functions pickle by reference and import cleanly, so try
    that first.  Local closures (``pack``'s ``make_rank_args``, a test's
    inline program) don't pickle — for plain Python functions we marshal
    the code object and recursively freeze defaults and closure cells,
    rebuilding the function in the worker against its fork-inherited
    module globals (the worker forked *after* the defining module was
    imported, including ``__main__`` and test modules, so the globals are
    there).
    """
    if fn is None:
        return None
    try:
        return ("pickle", pickle.dumps(fn, pickle.HIGHEST_PROTOCOL))
    except Exception:
        pass
    if not isinstance(fn, types.FunctionType):
        raise BackendError(
            f"supervised gang cannot ship {fn!r}: not picklable and not a "
            f"plain Python function"
        )
    try:
        code = marshal.dumps(fn.__code__)
        defaults = tuple(_freeze_value(v) for v in (fn.__defaults__ or ()))
        kwdefaults = {
            k: _freeze_value(v) for k, v in (fn.__kwdefaults__ or {}).items()
        }
        closure = tuple(
            _freeze_value(c.cell_contents) for c in (fn.__closure__ or ())
        )
    except Exception as exc:
        raise BackendError(
            f"supervised gang cannot ship {fn.__qualname__}: closure state "
            f"is not picklable ({exc})"
        ) from exc
    return ("code", code, fn.__module__, defaults, kwdefaults, closure)


def _freeze_value(v):
    if isinstance(v, types.FunctionType):
        return ("fn", _freeze_callable(v))
    return ("val", pickle.dumps(v, pickle.HIGHEST_PROTOCOL))


def _thaw_value(blob):
    tag, data = blob
    if tag == "fn":
        return _thaw_callable(data)
    return pickle.loads(data)


def _thaw_callable(blob) -> Callable | None:
    if blob is None:
        return None
    if blob[0] == "pickle":
        return pickle.loads(blob[1])
    _, code_b, module, defaults, kwdefaults, closure = blob
    code = marshal.loads(code_b)
    mod = sys.modules.get(module)
    if mod is None:  # pragma: no cover - fork inherits loaded modules
        mod = importlib.import_module(module)
    cells = tuple(types.CellType(_thaw_value(v)) for v in closure)
    fn = types.FunctionType(
        code, mod.__dict__, code.co_name,
        tuple(_thaw_value(v) for v in defaults) or None,
        cells or None,
    )
    if kwdefaults:
        fn.__kwdefaults__ = {k: _thaw_value(v) for k, v in kwdefaults.items()}
    return fn


# ------------------------------------------------------------- worker loop
def _worker_main(
    rank: int,
    nprocs: int,
    epoch: int,
    ctl_q,
    transport,
    result_q,
    board: _HeartbeatBoard,
    heartbeat_interval: float,
    spawn_chaos: tuple[ChaosEvent, ...],
) -> None:
    """Persistent rank process: heartbeat + op-dispatch loop.

    Per-gang state (queues, transport, board) is fork-inherited; per-op
    state (arena, profile buffers, the program itself) arrives in the op
    command and is attached by name / thawed here.  Exits only on a
    ``shutdown`` command, an op error (after shipping the traceback), or
    a signal.
    """
    # Fork hygiene, as in MpBackend's _child_main: the parent's layout
    # LRU caches cover every rank; this worker only needs its own.
    from ..hpf.caches import clear_layout_caches

    clear_layout_caches()
    stop = threading.Event()

    def _beat():
        while not stop.is_set():
            board.beat(rank)
            stop.wait(heartbeat_interval)

    threading.Thread(target=_beat, daemon=True, name="heartbeat").start()
    if spawn_chaos:
        fire_chaos(spawn_chaos, "spawn")
    result_q.put(("ready", rank, epoch))
    # Per-op shm (arena, profile rings) must NOT be closed when the op
    # finishes: queue feeder threads pickle outgoing messages (mailbox
    # payloads sliced from arena views, the result blob) asynchronously,
    # and ``SharedMemory.close()`` unmaps even under live numpy views —
    # the race is a feeder-thread segfault.  By the time the *next*
    # command arrives the host has collected every rank's result, which
    # means every message of the previous op was received, i.e. fully
    # serialized — only then is unmapping safe.
    deferred_close: list[Any] = []
    while True:
        cmd = ctl_q.get()
        for res in deferred_close:
            res.close()
        deferred_close = []
        if cmd[0] == "shutdown":
            break
        _, cmd_epoch, op_id, op = cmd
        t_entry = monotonic()
        arena = None
        prof = None
        try:
            chaos = op["chaos"]
            recorder = None
            if op["profile"] is not None:
                prof = _ProfileBuffers.attach(op["profile"])
                recorder = prof.recorder(rank)
                recorder.mark(0, t_entry)
            arena = _ShmArena.attach(op["arena"])
            result, snapshot, metrics, events = _run_program(
                rank, nprocs, op["spec"],
                _thaw_callable(op["program"]),
                _thaw_callable(op["make_rank_args"]),
                op["rank_args"],
                arena.views(), transport, recorder,
                op["want_metrics"], op["want_trace"],
                t_entry=t_entry, stamp=(cmd_epoch, op_id), chaos=chaos,
            )
            if any(ev.kind == "poison" for ev in chaos):
                result_q.put(("ok", rank, cmd_epoch))
            else:
                # Serialize NOW, in this thread, while the arena is still
                # mapped: the queue feeder pickles asynchronously, and the
                # ``finally`` below closes (unmaps) the per-op segments —
                # a result referencing arena-backed memory would otherwise
                # race the feeder straight into a segfault.
                blob = pickle.dumps(
                    (result, snapshot, metrics, events),
                    pickle.HIGHEST_PROTOCOL,
                )
                result_q.put(("ok", rank, cmd_epoch, op_id, blob))
        except BaseException:
            try:
                result_q.put((
                    "error", rank, cmd_epoch, op_id, traceback.format_exc(),
                ))
                result_q.close()
                result_q.join_thread()
            finally:
                os._exit(_CHILD_FAILED)
        finally:
            if arena is not None:
                deferred_close.append(arena)
            if prof is not None:
                deferred_close.append(prof)
    stop.set()
    result_q.close()
    result_q.join_thread()
    # Skip interpreter teardown: atexit hooks and queue flushing belong
    # to the parent; a worker's job ends here.
    os._exit(0)


# -------------------------------------------------------------- gang state
class _Gang:
    """One epoch of worker processes and their fork-shared plumbing."""

    def __init__(self, epoch: int, nprocs: int, mpctx, procs, ctl, transport,
                 result_q, board: _HeartbeatBoard):
        self.epoch = epoch
        self.nprocs = nprocs
        self.mpctx = mpctx
        self.procs = procs
        self.ctl = ctl
        self.transport = transport
        self.result_q = result_q
        self.board = board
        register_for_cleanup(self)

    def healthy(self) -> bool:
        return all(p.is_alive() for p in self.procs)

    def reap(self, join_grace: float, graceful: bool) -> None:
        if graceful and self.healthy():
            for q in self.ctl:
                try:
                    q.put(("shutdown",))
                except (OSError, ValueError):
                    pass
            for p in self.procs:
                p.join(timeout=join_grace)
        for p in self.procs:
            if p.is_alive():
                # SIGKILL, never SIGTERM: a SIGSTOPped worker cannot run a
                # SIGTERM handler, but KILL reaps stopped processes too.
                p.kill()
        for p in self.procs:
            p.join(timeout=join_grace)
        self.board.destroy()
        try:
            self.transport.host_destroy()
        except (OSError, ValueError):
            pass
        for q in [*self.ctl, self.result_q]:
            try:
                q.close()
                q.cancel_join_thread()
            except (OSError, ValueError):
                pass

    def _emergency_cleanup(self) -> None:
        for p in self.procs:
            if p.is_alive():
                try:
                    p.kill()
                except (OSError, ValueError):
                    pass
        self.board.destroy()


# --------------------------------------------------------------- chaos state
class _ChaosState:
    """Per-supervisor delivery bookkeeping over an immutable ChaosPlan."""

    def __init__(self, plan: ChaosPlan | None):
        self.plan = plan
        self._left = [ev.times for ev in plan.events] if plan is not None else []

    def take(self, op_index: int, rank: int, spawn: bool) -> tuple[ChaosEvent, ...]:
        """Consume (decrement) and return the events due for this attempt."""
        if self.plan is None:
            return ()
        out = []
        for i, ev in enumerate(self.plan.events):
            if self._left[i] <= 0:
                continue
            if ev.rank != rank or ev.op_index != op_index:
                continue
            if spawn != (ev.phase == "spawn"):
                continue
            self._left[i] -= 1
            out.append(ev)
        return tuple(out)


# ---------------------------------------------------------------- backend
class GangSupervisor(Backend):
    """A persistent, supervised, self-healing mp gang behind the Backend seam.

    Parameters
    ----------
    timeout:
        per-op wall deadline in seconds (``None`` = none; heartbeat and
        exit supervision still apply).
    retry:
        the :class:`RetryPolicy`; default retries twice with seeded
        jittered exponential backoff.
    on_exhaustion:
        ``"raise"`` (default) surfaces :class:`MpGangError` once the
        retry budget is spent; ``"fallback"`` degrades the op to
        :class:`~repro.runtime.sim.SimBackend` (results identical,
        ``time_domain="simulated"``).
    heartbeat_interval / heartbeat_timeout:
        workers beat every ``interval`` seconds; a pending op whose rank
        has not beaten for ``timeout`` seconds is classified
        ``heartbeat_miss``.  The default timeout is deliberately large —
        on a loaded single-core host a busy gang legitimately starves its
        heartbeat threads for whole seconds.
    spawn_timeout:
        seconds to wait for every worker's ready message after a fork.
    chaos:
        optional :class:`~repro.faults.chaos.ChaosPlan`; events are
        delivered at most ``times`` attempts each (see module docstring).
    join_grace:
        seconds to wait for exits before escalating, as in MpBackend.
    transport / codec:
        message transport (``"ring"`` / ``"queue"``) and wire codec mode,
        resolved exactly as in :class:`~repro.runtime.mp.MpBackend` —
        each gang epoch gets its own ring matrix, torn down on reap.

    A supervisor instance is a context manager; :meth:`shutdown` reaps
    the gang.  The process-wide instance behind ``backend="supervised"``
    (see :func:`default_supervisor`) is shut down atexit.
    """

    name = "supervised"
    time_domain = "wall"
    supports_faults = False

    def __init__(
        self,
        timeout: float | None = None,
        retry: RetryPolicy | None = None,
        on_exhaustion: str = "raise",
        heartbeat_interval: float = 0.25,
        heartbeat_timeout: float = 15.0,
        spawn_timeout: float = 60.0,
        chaos: ChaosPlan | None = None,
        join_grace: float = 5.0,
        transport: str | None = None,
        codec: str | None = None,
    ):
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        if on_exhaustion not in ("raise", "fallback"):
            raise ValueError(
                f"on_exhaustion must be 'raise' or 'fallback', got {on_exhaustion!r}"
            )
        if heartbeat_interval <= 0 or heartbeat_timeout <= heartbeat_interval:
            raise ValueError(
                "need 0 < heartbeat_interval < heartbeat_timeout, got "
                f"{heartbeat_interval} / {heartbeat_timeout}"
            )
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.on_exhaustion = on_exhaustion
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.spawn_timeout = spawn_timeout
        self.join_grace = join_grace
        self.transport = resolve_transport(transport)
        self.codec = resolve_codec(codec)
        self.stats = SupervisorStats()
        self._chaos = _ChaosState(chaos)
        self._gang: _Gang | None = None
        self._next_epoch = 1
        self._next_op_id = 0
        self._metrics = None  # registry in scope for the current op
        # One op at a time: a long-lived server submits from many asyncio
        # tasks (each in an executor thread), and the dispatch loop's
        # mutable state (gang, op ids, metrics-in-scope) is single-op by
        # design — the lock makes concurrent submissions queue instead of
        # interleaving.
        self._dispatch_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------ lifecycle
    def __enter__(self) -> "GangSupervisor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def shutdown(self) -> None:
        """Gracefully stop the gang (idempotent; the supervisor stays
        usable — the next op forks a fresh gang).  See :meth:`close` for
        the terminal variant a long-lived server should call."""
        with self._dispatch_lock:
            gang, self._gang = self._gang, None
        if gang is not None:
            gang.reap(self.join_grace, graceful=True)

    def close(self) -> None:
        """Shut the gang down *and* retire the supervisor: any later
        :meth:`run_spmd` raises :class:`RuntimeError` instead of silently
        re-forking (or, racing a teardown, hanging on a reaped gang)."""
        self._closed = True
        self.shutdown()

    @property
    def closed(self) -> bool:
        return self._closed

    def warm(self, nprocs: int) -> None:
        """Pre-fork the gang so the first op dispatches warm."""
        if self._closed:
            raise RuntimeError("GangSupervisor is closed; create a new one")
        with self._dispatch_lock:
            self._ensure_gang(nprocs, op_index=self.stats.ops)

    # --------------------------------------------------------------- events
    def _event(self, kind: str, op_id: int | None = None,
               rank: int | None = None, detail: str = "") -> SupervisorEvent:
        ev = SupervisorEvent(kind=kind, t=monotonic(), op_id=op_id,
                             rank=rank, detail=detail)
        self.stats.events.append(ev)
        if len(self.stats.events) > 1000:
            del self.stats.events[:-1000]
        if self._metrics is not None:
            self._metrics.inc(f"supervisor.{kind}")
        return ev

    # ----------------------------------------------------------- gang build
    def _ensure_gang(self, nprocs: int, op_index: int) -> _Gang:
        gang = self._gang
        if gang is not None and gang.nprocs != nprocs:
            # One warm gang at a time; a different width rebuilds cold.
            gang.reap(self.join_grace, graceful=True)
            gang = self._gang = None
        if gang is not None and gang.healthy():
            return gang
        if gang is not None:
            # Died between ops (e.g. a program error last op).
            gang.reap(self.join_grace, graceful=False)
            self._gang = None
        epoch = self._next_epoch
        self._next_epoch += 1
        if "fork" not in _mp.get_all_start_methods():
            raise BackendError(
                "supervised backend requires the 'fork' start method (POSIX)"
            )
        mpctx = _mp.get_context("fork")
        board = _HeartbeatBoard(nprocs)
        transport = _make_transport(self.transport, mpctx, nprocs, self.codec)
        ctl = [mpctx.Queue() for _ in range(nprocs)]
        result_q = mpctx.Queue()
        procs = [
            mpctx.Process(
                target=_worker_main,
                args=(r, nprocs, epoch, ctl[r], transport, result_q, board,
                      self.heartbeat_interval,
                      self._chaos.take(op_index, r, spawn=True)),
                daemon=True,
                name=f"repro-mp-rank-{r}-e{epoch}",
            )
            for r in range(nprocs)
        ]
        gang = _Gang(epoch, nprocs, mpctx, procs, ctl, transport, result_q, board)
        self._event("gang_start", detail=f"epoch {epoch}, P={nprocs}")
        try:
            for p in procs:
                p.start()
            self._await_ready(gang)
        except BaseException:
            gang.reap(self.join_grace, graceful=False)
            raise
        self._gang = gang
        self.stats.gang_epoch = epoch
        if self._metrics is not None:
            self._metrics.set("supervisor.gang_epoch", epoch)
        return gang

    def _await_ready(self, gang: _Gang) -> None:
        deadline = monotonic() + self.spawn_timeout
        pending = set(range(gang.nprocs))
        reader = getattr(gang.result_q, "_reader", None)
        while pending:
            msg = None
            try:
                msg = gang.result_q.get_nowait()
            except _queue_mod.Empty:
                pass
            except Exception:
                msg = None
            if msg is None:
                dead = sorted(
                    r for r in pending if gang.procs[r].exitcode is not None
                )
                if dead:
                    r = dead[0]
                    raise _OpFailure(
                        "spawn_failure", r,
                        f"rank {r} exited with code {gang.procs[r].exitcode} "
                        f"before reporting ready",
                    )
                remaining = deadline - monotonic()
                if remaining <= 0:
                    raise _OpFailure(
                        "spawn_failure", sorted(pending)[0],
                        f"gang not ready within {self.spawn_timeout:g}s "
                        f"(ranks still pending: {sorted(pending)})",
                    )
                sentinels = [gang.procs[r].sentinel for r in sorted(pending)]
                wait_for = ([reader] if reader is not None else []) + sentinels
                _conn_wait(wait_for, timeout=min(remaining, 0.5))
                continue
            if (isinstance(msg, tuple) and len(msg) == 3
                    and msg[0] == "ready" and msg[2] == gang.epoch):
                pending.discard(msg[1])
            else:
                self.stats.stale_dropped += 1

    # -------------------------------------------------------------- run_spmd
    def run_spmd(
        self,
        program: Callable,
        nprocs: int,
        *,
        make_rank_args: Callable[[int, Mapping[str, Any]], tuple] | None = None,
        rank_args: Sequence[tuple] | None = None,
        shared: Mapping[str, Any] | None = None,
        spec=None,
        tracer=None,
        metrics=None,
        faults=None,
        step_budget: int | None = None,
        time_budget: float | None = None,
        profile=None,
    ) -> RunResult:
        if make_rank_args is not None and rank_args is not None:
            raise ValueError("pass make_rank_args or rank_args, not both")
        if rank_args is not None and len(rank_args) != nprocs:
            raise ValueError(
                f"rank_args has {len(rank_args)} entries for {nprocs} ranks"
            )
        if nprocs < 1:
            raise ValueError(f"need at least one processor, got {nprocs}")
        self.reject_unsupported(faults=faults)
        if step_budget is not None or time_budget is not None:
            raise BackendError(
                "supervised backend: watchdog budgets count simulated "
                "steps/seconds; use GangSupervisor(timeout=wall_seconds)"
            )
        if metrics is None:
            from ..obs.registry import current_global_metrics

            metrics = current_global_metrics()
        spec = spec if spec is not None else CM5
        if self._closed:
            raise RuntimeError(
                "GangSupervisor is closed; ops submitted after close() "
                "are refused (create a new supervisor)"
            )
        with self._dispatch_lock:
            # Re-check under the lock: a close() racing this submission
            # must not revive the gang.
            if self._closed:
                raise RuntimeError(
                    "GangSupervisor is closed; ops submitted after close() "
                    "are refused (create a new supervisor)"
                )
            return self._run_spmd_locked(
                program, nprocs, make_rank_args, rank_args, shared, spec,
                tracer, metrics, profile,
            )

    def _run_spmd_locked(
        self, program, nprocs, make_rank_args, rank_args, shared, spec,
        tracer, metrics, profile,
    ) -> RunResult:
        self._metrics = metrics

        op_index = self.stats.ops
        op_id = self._next_op_id
        self._next_op_id += 1
        self.stats.ops += 1
        frozen = {
            "spec": spec,
            "program": _freeze_callable(program),
            "make_rank_args": _freeze_callable(make_rank_args),
            "want_metrics": metrics is not None,
            "want_trace": tracer is not None,
        }
        lifecycle: list[SupervisorEvent] = []
        last_failure: _OpFailure | None = None
        try:
            delays = [None, *self.retry.delays()]
            for attempt, delay in enumerate(delays):
                if delay is not None:
                    lifecycle.append(self._event(
                        "backoff", op_id=op_id,
                        detail=f"sleep {delay * 1e3:.0f}ms before attempt "
                               f"{attempt + 1}/{len(delays)}"))
                    time.sleep(delay)
                try:
                    was_warm = self._gang is not None and self._gang.healthy() \
                        and self._gang.nprocs == nprocs
                    gang = self._ensure_gang(nprocs, op_index)
                    if attempt > 0:
                        self.stats.retries += 1
                        lifecycle.append(self._event(
                            "retry", op_id=op_id,
                            detail=f"attempt {attempt + 1}/{len(delays)} on "
                                   f"epoch {gang.epoch}"))
                    if was_warm:
                        self.stats.warm_ops += 1
                    else:
                        self.stats.cold_ops += 1
                    return self._run_once(
                        gang, op_index, op_id, attempt, frozen,
                        rank_args, shared, tracer, metrics, profile,
                        lifecycle,
                    )
                except _OpFailure as failure:
                    last_failure = failure
                    self.stats.failures[failure.kind] = (
                        self.stats.failures.get(failure.kind, 0) + 1)
                    lifecycle.append(self._event(
                        failure.kind, op_id=op_id, rank=failure.rank,
                        detail=failure.detail))
                    gang, self._gang = self._gang, None
                    if gang is not None:
                        gang.reap(self.join_grace, graceful=False)
                        self.stats.rebuilds += 1
                        lifecycle.append(self._event(
                            "rebuild", op_id=op_id,
                            detail=f"reaped epoch {gang.epoch} after "
                                   f"{failure.kind}"))
                    if failure.kind == "program_error":
                        # Deterministic program bugs don't heal by retry.
                        raise MpGangError(
                            failure.rank, "program raised",
                            child_traceback=failure.child_traceback,
                        ) from None
            # Retry budget exhausted.
            assert last_failure is not None
            if self.on_exhaustion == "fallback":
                self.stats.fallbacks += 1
                self._event(
                    "fallback", op_id=op_id, rank=last_failure.rank,
                    detail=f"degrading to SimBackend after {len(delays)} "
                           f"attempts; last: {last_failure.kind}: "
                           f"{last_failure.detail}")
                from .sim import SimBackend

                return SimBackend().run_spmd(
                    program, nprocs,
                    make_rank_args=make_rank_args, rank_args=rank_args,
                    shared=shared, spec=spec, tracer=tracer, metrics=metrics,
                    profile=profile,
                )
            raise MpGangError(
                last_failure.rank,
                f"retry budget exhausted after {len(delays)} attempts; "
                f"last failure: {last_failure.kind}: {last_failure.detail}",
                child_traceback=last_failure.child_traceback,
            )
        finally:
            self._metrics = None

    # -------------------------------------------------------------- one try
    def _run_once(
        self, gang: _Gang, op_index: int, op_id: int, attempt: int,
        frozen: dict, rank_args, shared, tracer, metrics, profile,
        lifecycle: list[SupervisorEvent],
    ) -> RunResult:
        nprocs = gang.nprocs
        t_attempt0 = monotonic()
        arena = _ShmArena(shared or {})
        prof_bufs = None
        if profile is not None:
            prof_bufs = _ProfileBuffers(nprocs, profile.ring_capacity)
        prof_data = None
        t_dispatch0 = t_dispatched = t_collected = 0.0
        try:
            arena_desc = arena.descriptor()
            prof_desc = prof_bufs.descriptor() if prof_bufs is not None else None
            t_dispatch0 = monotonic()
            for r in range(nprocs):
                gang.ctl[r].put(("op", gang.epoch, op_id, {
                    **frozen,
                    "rank_args": tuple(rank_args[r]) if rank_args is not None else None,
                    "arena": arena_desc,
                    "profile": prof_desc,
                    "chaos": self._chaos.take(op_index, r, spawn=False),
                }))
            t_dispatched = monotonic()
            reports = self._collect_op(gang, op_id)
            t_collected = monotonic()
            if prof_bufs is not None:
                prof_data = prof_bufs.copy_out()
        finally:
            arena.destroy()
            if prof_bufs is not None:
                prof_bufs.destroy()

        results = []
        stats = []
        for r in range(nprocs):
            result, snapshot, child_metrics, child_events = reports[r]
            results.append(result)
            stats.append(stats_from_snapshot(snapshot))
            if metrics is not None and child_metrics is not None:
                metrics.merge(child_metrics)
            if tracer is not None and child_events:
                tracer.events.extend(child_events)
        run = RunResult(results=results, stats=stats, time_domain=self.time_domain)
        lifecycle.append(self._event(
            "op_ok", op_id=op_id,
            detail=f"attempt {attempt + 1}, epoch {gang.epoch}"))
        if profile is not None and prof_data is not None:
            prof = _build_mp_profile(
                nprocs, prof_data, run,
                t_attempt0, t_dispatch0, t_dispatched, t_collected, monotonic(),
                transport=self.transport,
            )
            prof.backend = self.name
            # Lifecycle spans: clamp into the final attempt's window (the
            # Chrome-trace schema refuses negative timestamps; a failed
            # earlier attempt predates this attempt's origin).
            for ev in lifecycle:
                t = max(ev.t - t_attempt0, 0.0)
                prof.gang_spans.append((f"supervisor.{ev.kind}", t, t))
            profile.profile = prof
        return run

    # ---------------------------------------------------------- collect one
    def _collect_op(self, gang: _Gang, op_id: int) -> dict[int, tuple]:
        deadline = Deadline(self.timeout)
        pending = set(range(gang.nprocs))
        reports: dict[int, tuple] = {}
        reader = getattr(gang.result_q, "_reader", None)
        while pending:
            msg = None
            got = True
            try:
                msg = gang.result_q.get_nowait()
            except _queue_mod.Empty:
                got = False
            except Exception as exc:
                # A rank killed mid-write can corrupt the stream; treat it
                # like a poisoned message from an unknown rank.
                raise _OpFailure(
                    "poisoned_result", None,
                    f"result stream corrupted: {exc!r}") from None
            if not got:
                now = monotonic()
                dead = sorted(
                    r for r in pending if gang.procs[r].exitcode is not None
                )
                if dead:
                    # Grace drain: the rank may have posted before dying.
                    try:
                        msg = gang.result_q.get(timeout=0.5)
                    except (_queue_mod.Empty, Exception):
                        msg = None
                    if msg is None:
                        r = dead[0]
                        raise _OpFailure(
                            "rank_death", r,
                            f"rank {r} exited with code "
                            f"{gang.procs[r].exitcode} mid-op")
                else:
                    ages = gang.board.ages(now)
                    stale = [
                        r for r in sorted(pending)
                        if ages[r] > self.heartbeat_timeout
                        and gang.procs[r].is_alive()
                    ]
                    if stale:
                        r = stale[0]
                        raise _OpFailure(
                            "heartbeat_miss", r,
                            f"rank {r} heartbeat stale for {ages[r]:.2f}s "
                            f"(> {self.heartbeat_timeout:g}s): hung or stopped")
                    if deadline.expired():
                        raise _OpFailure(
                            "op_timeout", None,
                            deadline.describe(f"op {op_id}", pending))
                    wake = self.heartbeat_interval
                    if deadline.timeout is not None:
                        wake = max(deadline.remaining(cap=wake), 0.01)
                    sentinels = [gang.procs[r].sentinel for r in sorted(pending)]
                    wait_for = ([reader] if reader is not None else []) + sentinels
                    _conn_wait(wait_for, timeout=wake)
                    continue
            if msg is None:
                continue
            kind, rank, report = self._validate_result(gang, op_id, msg)
            if kind == "stale":
                self.stats.stale_dropped += 1
                continue
            if kind == "error":
                raise _OpFailure(
                    "program_error", rank, "program raised",
                    child_traceback=report)
            reports[rank] = report
            pending.discard(rank)
        return reports

    def _validate_result(self, gang: _Gang, op_id: int, msg):
        """Classify one result message: ok / error / stale, or fail poisoned."""
        if not isinstance(msg, tuple) or len(msg) < 3:
            rank = msg[1] if isinstance(msg, tuple) and len(msg) > 1 \
                and isinstance(msg[1], int) else None
            raise _OpFailure(
                "poisoned_result", rank,
                f"malformed result message: {msg!r}")
        kind = msg[0]
        if kind == "ready":
            return ("stale", None, None)
        if kind == "error" and len(msg) == 5:
            _, rank, epoch, msg_op, tb = msg
            if epoch != gang.epoch or msg_op != op_id:
                return ("stale", None, None)
            return ("error", rank, tb)
        if kind == "ok" and len(msg) == 5 and isinstance(msg[1], int) \
                and 0 <= msg[1] < gang.nprocs:
            _, rank, epoch, msg_op, blob = msg
            if epoch != gang.epoch or msg_op != op_id:
                return ("stale", None, None)
            try:
                report = pickle.loads(blob)
            except Exception as exc:
                raise _OpFailure(
                    "poisoned_result", rank,
                    f"undecodable result payload: {exc!r}") from None
            return ("ok", rank, report)
        if kind == "ok" and len(msg) == 3 and isinstance(msg[1], int) \
                and msg[2] != gang.epoch:
            return ("stale", None, None)
        rank = msg[1] if len(msg) > 1 and isinstance(msg[1], int) else None
        raise _OpFailure(
            "poisoned_result", rank,
            f"malformed result message: {msg!r}")


# ------------------------------------------------------- default instance
_DEFAULT: GangSupervisor | None = None


def default_supervisor() -> GangSupervisor:
    """The process-wide supervisor behind ``backend="supervised"``.

    One shared instance means every string-name caller reuses the same
    warm gang; it is shut down atexit (and by
    :func:`shutdown_default_supervisor`, which tests use to assert
    leak-freedom deterministically).
    """
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = GangSupervisor()
        atexit.register(shutdown_default_supervisor)
    return _DEFAULT


def shutdown_default_supervisor() -> None:
    """Reap the default supervisor's gang (idempotent)."""
    global _DEFAULT
    sup, _DEFAULT = _DEFAULT, None
    if sup is not None:
        sup.shutdown()
