"""Backend-agnostic SPMD primitives.

The classic coarse-grained primitive set — barrier, allreduce, exclusive
prefix sum, alltoallv — expressed as generator helpers over the context /
op protocol, so the same call works verbatim on every backend: the
simulator executes the :class:`~repro.machine.ops.CollectiveOp` on its
modeled control network; the multiprocessing backend runs it through the
root-gather protocol over real pipes.

Use with ``yield from`` inside a program::

    def program(ctx, value):
        yield from barrier(ctx)
        total = yield from allreduce(ctx, value)
        offset = yield from exclusive_prefix_sum(ctx, value)
        got = yield from alltoallv(ctx, {dest: chunk, ...})
        return total, offset, got

These are also what the ``repro runtime`` smoke command exercises to
prove a backend's transport end to end before trusting it with a full
PACK/UNPACK run.
"""

from __future__ import annotations

from typing import Any, Generator, Mapping, Sequence

from ..machine.context import Context, payload_words
from ..machine.m2m import exchange
from ..machine.ops import CollectiveOp

__all__ = ["barrier", "allreduce", "exclusive_prefix_sum", "alltoallv"]


def _resolve_group(ctx, group: Sequence[int] | None) -> tuple[int, ...]:
    return tuple(sorted(group)) if group is not None else tuple(range(ctx.size))


def barrier(ctx: Context, group: Sequence[int] | None = None, key: int = 0):
    """Synchronize ``group`` (default: all ranks)."""
    yield ctx.barrier(group, key=key)


def allreduce(
    ctx: Context,
    value: Any,
    op=None,
    group: Sequence[int] | None = None,
    key: int = 0,
) -> Generator[Any, Any, Any]:
    """Combine one value per rank; every rank receives the total.

    ``op`` is a binary reduction applied left-to-right in rank order
    (default ``+``), so non-commutative reductions are deterministic.
    """
    members = _resolve_group(ctx, group)

    def _combine(payloads: Mapping[int, Any]) -> tuple[dict, int]:
        total = None
        first = True
        for r in sorted(payloads):
            v = payloads[r]
            if first:
                total, first = v, False
            elif op is not None:
                total = op(total, v)
            else:
                total = total + v
        words = payload_words(total)
        return ({r: total for r in members}, words)

    result = yield CollectiveOp(
        group=members, kind="allreduce", payload=value, key=key, combine=_combine
    )
    return result


def exclusive_prefix_sum(
    ctx: Context,
    value: Any,
    group: Sequence[int] | None = None,
    key: int = 0,
    zero: Any = 0,
) -> Generator[Any, Any, Any]:
    """Exclusive scan in rank order: rank ``r`` receives the sum of the
    values contributed by group members with smaller rank (``zero`` for
    the lowest rank).

    This is the collective at the heart of PACK's ranking step — a rank's
    global offset is the count of selected elements on all lower ranks.
    """
    members = _resolve_group(ctx, group)

    def _combine(payloads: Mapping[int, Any]) -> tuple[dict, int]:
        results: dict[int, Any] = {}
        running = zero
        words = 0
        for r in sorted(payloads):
            results[r] = running
            running = running + payloads[r]
            words += payload_words(payloads[r])
        return (results, words)

    result = yield CollectiveOp(
        group=members, kind="xprefix", payload=value, key=key, combine=_combine
    )
    return result


def alltoallv(
    ctx: Context,
    outgoing: Mapping[int, Any],
    words: Mapping[int, int] | None = None,
    schedule: str = "linear",
) -> Generator[Any, Any, dict[int, Any]]:
    """Many-to-many personalized exchange (variable-size all-to-all).

    Thin alias over :func:`repro.machine.m2m.exchange` — the linear
    permutation schedule with its count pre-exchange — provided here so
    the primitive set is complete under one roof.  On the process-per-rank
    backends the announced linear schedule lowers to the aggregated
    native path (``MpContext.alltoallv_native``): one counts collective
    plus bulk ring writes and an arrival-order drain, instead of a
    generator suspension per peer message.  Returns
    ``source -> payload`` of everything received (self included).
    """
    received = yield from exchange(ctx, outgoing, words=words, schedule=schedule)
    return received
