"""The execution-backend seam: one program, pluggable machines.

Every phase of the Bae–Ranka algorithm — local scan, dimension-by-dimension
prefix-reduction-sum, many-to-many redistribution — is written once as an
SPMD generator program against :class:`~repro.machine.context.Context`.
A :class:`Backend` decides *where* those programs execute:

* :class:`~repro.runtime.sim.SimBackend` — the deterministic cooperative
  simulator (:class:`~repro.machine.engine.Machine`), charging the paper's
  two-level cost model.  Times are **simulated** CM-5-scale seconds, and a
  run is bit-for-bit reproducible.
* :class:`~repro.runtime.mp.MpBackend` — one OS process per rank over
  ``multiprocessing``, with shared-memory-backed input arrays and
  pipe/queue message transport.  Times are **wall** seconds measured on
  the host's cores.

Both backends run the *same* program source: the cooperative yield
protocol (``yield ctx.recv(...)``, ``yield CollectiveOp(...)``) doubles as
the transport-neutral op language, so the backend boundary sits exactly
between the redistribution plan and the transport that executes it.

Rank-argument construction goes through ``make_rank_args(rank, shared)``
rather than a pre-built list: the host hands the backend the *global*
arrays once (``shared``), and each rank extracts only the blocks it owns
(:meth:`~repro.hpf.grid.GridLayout.local_block`).  Under the simulator
this is the same lazy view-slicing as before; under the multiprocessing
backend it is what keeps the per-rank block extraction inside the rank's
own process — the host never pickles ``P`` blocks through a pipe.
"""

from __future__ import annotations

import os
import platform
import time
import warnings
from abc import ABC, abstractmethod
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..machine.stats import RunResult

__all__ = [
    "Backend",
    "BackendError",
    "BACKEND_NAMES",
    "Deadline",
    "TRANSPORT_NAMES",
    "get_backend",
    "available_backends",
    "default_transport",
    "resolve_transport",
]

#: Registered backend names, in preference order.
BACKEND_NAMES = ("sim", "mp", "supervised")

#: Message transports accepted by the process-per-rank backends.
#: ``ring`` is the zero-copy shared-memory ring matrix
#: (:mod:`repro.runtime.shm_ring`); ``queue`` is the original pickled
#: ``multiprocessing.Queue`` mailbox per rank.
TRANSPORT_NAMES = ("queue", "ring")

#: Architectures with a total-store-order memory model, where the ring
#: transport's plain-store head publication (payload bytes first, then
#: the int64 sequence counter) is safe without explicit barriers.  On
#: weakly-ordered CPUs (aarch64, ppc64le, riscv64) store-store
#: reordering could let a consumer observe the advanced head before the
#: payload is visible, so the default transport there is ``queue``.
_TSO_MACHINES = frozenset(
    {"x86_64", "amd64", "i386", "i486", "i586", "i686", "x86"}
)


def _ring_memory_model_safe() -> bool:
    return platform.machine().lower() in _TSO_MACHINES


def default_transport() -> str:
    """The platform default: ``ring`` on x86 (TSO), ``queue`` elsewhere."""
    return "ring" if _ring_memory_model_safe() else "queue"


def resolve_transport(transport: str | None) -> str:
    """Resolve a transport name.

    Explicit arg > ``REPRO_MP_TRANSPORT`` > :func:`default_transport`
    (``ring`` on x86, ``queue`` on weakly-ordered architectures — see
    :data:`_TSO_MACHINES`).  Forcing ``ring`` on a non-TSO machine is
    allowed for experiments but warns: the ring's lock-free publication
    relies on total store order.
    """
    if transport is None:
        transport = os.environ.get("REPRO_MP_TRANSPORT", default_transport())
    if transport not in TRANSPORT_NAMES:
        raise ValueError(
            f"unknown transport {transport!r}; pick from {TRANSPORT_NAMES}"
        )
    if transport == "ring" and not _ring_memory_model_safe():
        warnings.warn(
            f"the ring transport's lock-free head publication assumes a "
            f"total-store-order memory model; {platform.machine()} is "
            f"weakly-ordered and records may be observed before their "
            f"payload bytes — use transport='queue' for correctness",
            RuntimeWarning,
            stacklevel=2,
        )
    return transport


class Deadline:
    """One wall-clock deadline, shared by every collect loop that waits on a gang.

    ``MpBackend._collect`` and ``GangSupervisor._collect_op`` used to carry
    duplicate ``None``-or-``monotonic()+timeout`` plumbing; unifying it here
    means a ring-wait that overruns surfaces through the same watchdog
    attribution (which ranks are still pending, how long we waited) on both
    paths instead of a generic wall timeout.

    A ``timeout`` of ``None`` never expires.
    """

    __slots__ = ("timeout", "_expiry")

    def __init__(self, timeout: float | None):
        self.timeout = timeout
        self._expiry = None if timeout is None else time.monotonic() + timeout

    def expired(self) -> bool:
        return self._expiry is not None and time.monotonic() >= self._expiry

    def remaining(self, cap: float = 0.2) -> float:
        """Seconds to block on the next poll: ``cap``-bounded time left."""
        if self._expiry is None:
            return cap
        return max(0.0, min(cap, self._expiry - time.monotonic()))

    def describe(self, subject: str, pending: Iterable[int]) -> str:
        """Watchdog attribution line for an expired deadline."""
        return (
            f"{subject} did not finish within {self.timeout:g}s "
            f"(ranks still pending: {sorted(pending)})"
        )


class BackendError(RuntimeError):
    """A backend could not run the gang (unsupported feature, bad config)."""


class Backend(ABC):
    """Abstract execution backend.

    Concrete backends expose the classic SPMD primitive set — barrier,
    send/recv message passing, combining collectives (allreduce /
    exclusive prefix sum via :mod:`repro.runtime.primitives`), and the
    many-to-many ``alltoallv`` (:func:`repro.machine.m2m.exchange`) — by
    executing generator programs that use those primitives through their
    per-rank :class:`~repro.machine.context.Context`.

    Attributes
    ----------
    name:
        short registry name (``"sim"``, ``"mp"``).
    time_domain:
        the domain of every time this backend reports: ``"simulated"``
        or ``"wall"``.  Copied onto the :class:`RunResult`.
    supports_faults:
        whether seeded :class:`~repro.faults.FaultPlan` injection is
        available.  Fault injection intercepts the *simulated* delivery
        path, so only the simulator supports it.
    supports_reliability:
        whether the reliable transport (auto-ack retransmit loop) is
        available; it needs the engine's NIC-level acks, so again only
        the simulator supports it.
    """

    name: str = "?"
    time_domain: str = "simulated"
    supports_faults: bool = False
    supports_reliability: bool = False

    @abstractmethod
    def run_spmd(
        self,
        program: Callable,
        nprocs: int,
        *,
        make_rank_args: Callable[[int, Mapping[str, Any]], tuple] | None = None,
        rank_args: Sequence[tuple] | None = None,
        shared: Mapping[str, Any] | None = None,
        spec=None,
        tracer=None,
        metrics=None,
        faults=None,
        step_budget: int | None = None,
        time_budget: float | None = None,
        profile=None,
    ) -> RunResult:
        """Execute ``program`` on every rank and return results and stats.

        Exactly one of ``make_rank_args`` / ``rank_args`` supplies the
        per-rank arguments (neither means every rank gets no arguments).
        ``make_rank_args(rank, shared)`` is called once per rank — in the
        rank's own process under process-per-rank backends — with
        ``shared`` the host-provided mapping of global (read-only) arrays.

        ``profile`` is an optional
        :class:`~repro.obs.runtime.RuntimeProfiler`: after the run it
        holds a cross-rank :class:`~repro.obs.runtime.RunProfile` (per-rank
        trace lanes, P×P communication matrix, phase-attribution table) in
        the backend's own time domain.  Profiles from different domains
        refuse to be compared, like the run aggregation helpers.
        """

    # ------------------------------------------------------------- helpers
    def reject_unsupported(self, faults=None, reliability=None) -> None:
        """Raise :class:`BackendError` for simulator-only features."""
        if faults is not None and not self.supports_faults:
            raise BackendError(
                f"backend {self.name!r} does not support fault injection; "
                f"FaultPlan intercepts the simulated network — use backend='sim'"
            )
        if reliability is not None and reliability is not False and not self.supports_reliability:
            # The mp transport is an OS pipe: already reliable, and the
            # retransmit machinery needs the engine's NIC auto-acks.
            raise BackendError(
                f"backend {self.name!r} does not support the reliable "
                f"transport (its pipes are already reliable); use "
                f"backend='sim' for reliability experiments"
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(time_domain={self.time_domain!r})"


def available_backends() -> tuple[str, ...]:
    """Names accepted by :func:`get_backend` (and the CLI ``--backend``)."""
    return BACKEND_NAMES


def get_backend(backend: "str | Backend" = "sim") -> Backend:
    """Resolve a backend name (or pass an instance through).

    ``"sim"`` → :class:`~repro.runtime.sim.SimBackend` (default, the seed
    behaviour); ``"mp"`` → :class:`~repro.runtime.mp.MpBackend`;
    ``"supervised"`` → the process-wide persistent
    :class:`~repro.runtime.supervisor.GangSupervisor` (one shared warm
    gang, reused across calls and shut down atexit — see
    :func:`~repro.runtime.supervisor.default_supervisor`).
    """
    if isinstance(backend, Backend):
        return backend
    if backend == "sim":
        from .sim import SimBackend

        return SimBackend()
    if backend == "mp":
        from .mp import MpBackend

        return MpBackend()
    if backend == "supervised":
        from .supervisor import default_supervisor

        return default_supervisor()
    raise ValueError(
        f"unknown backend {backend!r}; pick from {list(BACKEND_NAMES)}"
    )
