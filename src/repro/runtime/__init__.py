"""Pluggable execution backends for SPMD programs.

One program source, three machines: ``get_backend("sim")`` runs on the
deterministic cost-model simulator; ``get_backend("mp")`` runs one OS
process per rank on real cores, with shared-memory input arrays and a
zero-copy shm ring transport (``transport="queue"`` restores the
pickled-Queue wire); ``get_backend("supervised")`` runs the same real
processes as a *persistent warm gang* under a
:class:`~repro.runtime.supervisor.GangSupervisor` — heartbeat-monitored,
rebuilt and retried on rank death/hang under a seeded
:class:`~repro.runtime.supervisor.RetryPolicy`, optionally degrading to
the simulator when the budget is spent.  See :mod:`repro.runtime.base`
for the contract and ``docs/runtime.md`` for the design.
"""

from .base import (
    BACKEND_NAMES,
    TRANSPORT_NAMES,
    Backend,
    BackendError,
    Deadline,
    available_backends,
    get_backend,
    resolve_transport,
)
from .mp import MpBackend, MpGangError
from .primitives import allreduce, alltoallv, barrier, exclusive_prefix_sum
from .sim import SimBackend
from .supervisor import (
    GangSupervisor,
    RetryPolicy,
    SupervisorEvent,
    SupervisorStats,
    default_supervisor,
    shutdown_default_supervisor,
)

__all__ = [
    "BACKEND_NAMES",
    "TRANSPORT_NAMES",
    "Backend",
    "BackendError",
    "Deadline",
    "resolve_transport",
    "SimBackend",
    "MpBackend",
    "MpGangError",
    "GangSupervisor",
    "RetryPolicy",
    "SupervisorEvent",
    "SupervisorStats",
    "available_backends",
    "get_backend",
    "default_supervisor",
    "shutdown_default_supervisor",
    "barrier",
    "allreduce",
    "exclusive_prefix_sum",
    "alltoallv",
]
