"""Pluggable execution backends for SPMD programs.

One program source, two machines: ``get_backend("sim")`` runs on the
deterministic cost-model simulator; ``get_backend("mp")`` runs one OS
process per rank on real cores, with shared-memory input arrays and
queue transport.  See :mod:`repro.runtime.base` for the contract and
``docs/runtime.md`` for the design.
"""

from .base import (
    BACKEND_NAMES,
    Backend,
    BackendError,
    available_backends,
    get_backend,
)
from .mp import MpBackend, MpGangError
from .primitives import allreduce, alltoallv, barrier, exclusive_prefix_sum
from .sim import SimBackend

__all__ = [
    "BACKEND_NAMES",
    "Backend",
    "BackendError",
    "SimBackend",
    "MpBackend",
    "MpGangError",
    "available_backends",
    "get_backend",
    "barrier",
    "allreduce",
    "exclusive_prefix_sum",
    "alltoallv",
]
