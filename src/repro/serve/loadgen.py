"""Seeded open-loop load generator for the serve front door.

Open-loop means arrivals are scheduled from a Poisson process derived
from the seed alone — a slow server cannot slow the offered load down,
so saturation, queueing and shedding behave like production traffic
rather than a lockstep benchmark.  Everything is deterministic in the
seed: arrival times, mask pool, per-request array data, op mix.

``run_loadgen`` drives N pipelined connections and returns a structured
report (throughput, latency percentiles, batch-occupancy histogram,
shed/error counts, plan hit/miss mix).  ``request_roundtrip`` is the
synchronous one-connection helper the tests and CI round-trips use.
"""

from __future__ import annotations

import asyncio
import json
import socket
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Mapping, Sequence

import numpy as np

from .protocol import encode_array

__all__ = ["LoadgenConfig", "request_roundtrip", "run_loadgen"]


@dataclass
class LoadgenConfig:
    """Everything `repro loadgen` exposes as flags."""

    host: str = "127.0.0.1"
    port: int = 0
    rate: float = 50.0  # offered load, requests/second
    duration: float = 2.0  # seconds of offered arrivals
    seed: int = 0
    n: int = 256  # global 1-D problem size
    procs: int = 2
    block: Any = None
    density: float = 0.3  # mask true-fraction
    masks: int = 4  # mask pool size (coalescing needs repeats)
    ops: Sequence[str] = ("pack",)
    scheme: str = "cms"
    connections: int = 4
    timeout: float = 30.0  # per-request response deadline
    validate: bool = False


# --------------------------------------------------------------- sync helper
def request_roundtrip(
    host: str,
    port: int,
    payloads: Sequence[Mapping[str, Any]],
    timeout: float = 30.0,
    connect_retry: float = 0.0,
) -> list[dict]:
    """Send request payloads over one connection, return the response
    bodies in request order (matched by id).  ``connect_retry`` keeps
    retrying the TCP connect for that many seconds — CI starts the server
    in the background and races it."""
    deadline = perf_counter() + connect_retry
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
            break
        except OSError:
            if perf_counter() >= deadline:
                raise
            import time

            time.sleep(0.05)
    with sock:
        sock.settimeout(timeout)
        f = sock.makefile("rwb")
        for p in payloads:
            f.write(json.dumps(p).encode() + b"\n")
        f.flush()
        by_id: dict[str | None, dict] = {}
        for _ in payloads:
            line = f.readline()
            if not line:
                raise ConnectionError("server closed before all responses")
            body = json.loads(line)
            by_id[body.get("id")] = body
    return [by_id.get(p.get("id")) for p in payloads]


# ---------------------------------------------------------- request building
def _build_requests(cfg: LoadgenConfig) -> list[dict]:
    """The full seeded request sequence (payload dicts, sans timing)."""
    rng = np.random.default_rng(cfg.seed)
    nreq = max(1, int(round(cfg.rate * cfg.duration)))
    pool = [
        rng.random(cfg.n) < cfg.density for _ in range(max(1, cfg.masks))
    ]
    ops = list(cfg.ops)
    out = []
    for i in range(nreq):
        data_rng = np.random.default_rng((cfg.seed, i))
        op = ops[int(rng.integers(len(ops)))]
        mask = pool[int(rng.integers(len(pool)))]
        payload: dict[str, Any] = {
            "id": f"q{i}",
            "op": op,
            "grid": [cfg.procs],
            "block": cfg.block,
            "scheme": cfg.scheme if op == "pack" else "css",
            "mask": encode_array(mask),
            "options": {"validate": cfg.validate},
        }
        if op == "pack":
            payload["array"] = encode_array(
                data_rng.standard_normal(cfg.n)
            )
        elif op == "unpack":
            k = int(mask.sum())
            payload["vector"] = encode_array(data_rng.standard_normal(k))
            payload["field"] = encode_array(np.zeros(cfg.n))
        out.append(payload)
    return out


@dataclass
class _Conn:
    writer: asyncio.StreamWriter
    reader_task: asyncio.Task
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)


async def _open_conn(
    cfg: LoadgenConfig, pending: dict[str, asyncio.Future]
) -> _Conn:
    deadline = perf_counter() + 10.0
    while True:
        try:
            reader, writer = await asyncio.open_connection(cfg.host, cfg.port)
            break
        except OSError:
            if perf_counter() >= deadline:
                raise
            await asyncio.sleep(0.05)

    async def _read_loop():
        while True:
            line = await reader.readline()
            if not line:
                break
            body = json.loads(line)
            fut = pending.pop(body.get("id"), None)
            if fut is not None and not fut.done():
                fut.set_result(body)

    return _Conn(writer=writer, reader_task=asyncio.create_task(_read_loop()))


# ------------------------------------------------------------------ the run
async def _run_async(cfg: LoadgenConfig) -> dict:
    payloads = _build_requests(cfg)
    rng = np.random.default_rng((cfg.seed, 0xA221))  # arrival stream
    gaps = rng.exponential(1.0 / cfg.rate, size=len(payloads))
    arrivals = np.cumsum(gaps)

    pending: dict[str, asyncio.Future] = {}
    conns = [
        await _open_conn(cfg, pending)
        for _ in range(max(1, cfg.connections))
    ]

    records: list[dict] = []

    # Serialize every request up front: on small hosts the generator and
    # the server share cores, and per-send json.dumps would bill
    # generator CPU to the server's measured service rate.
    lines = [(json.dumps(p) + "\n").encode() for p in payloads]

    async def _one(i: int, payload: dict, line: bytes) -> None:
        conn = conns[i % len(conns)]
        fut = asyncio.get_running_loop().create_future()
        pending[payload["id"]] = fut
        t_send = perf_counter()
        async with conn.lock:
            conn.writer.write(line)
            await conn.writer.drain()
        try:
            body = await asyncio.wait_for(fut, cfg.timeout)
        except asyncio.TimeoutError:
            pending.pop(payload["id"], None)
            records.append({"status": "timeout", "latency": cfg.timeout})
            return
        latency = perf_counter() - t_send
        if body.get("ok"):
            rec = {
                "status": "ok",
                "latency": latency,
                "batch": body.get("batch", {}),
                "plan": body.get("plan"),
            }
        else:
            code = body.get("error", {}).get("code")
            rec = {
                "status": "shed" if code == "overloaded" else "error",
                "latency": latency,
                "code": code,
            }
        records.append(rec)

    t_start = perf_counter()
    tasks = []
    for i, (payload, line, t_at) in enumerate(zip(payloads, lines, arrivals)):
        delay = t_at - (perf_counter() - t_start)
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(asyncio.create_task(_one(i, payload, line)))
    await asyncio.gather(*tasks)
    elapsed = perf_counter() - t_start

    for conn in conns:
        conn.writer.close()
        conn.reader_task.cancel()
    await asyncio.gather(
        *(c.reader_task for c in conns), return_exceptions=True
    )

    return _report(cfg, records, elapsed)


def _percentiles(lat_s: list[float]) -> dict:
    if not lat_s:
        return {"p50": None, "p95": None, "p99": None, "mean": None,
                "max": None}
    a = np.asarray(lat_s) * 1e3
    return {
        "p50": float(np.percentile(a, 50)),
        "p95": float(np.percentile(a, 95)),
        "p99": float(np.percentile(a, 99)),
        "mean": float(a.mean()),
        "max": float(a.max()),
    }


def _report(cfg: LoadgenConfig, records: list[dict], elapsed: float) -> dict:
    ok = [r for r in records if r["status"] == "ok"]
    occupancy: dict[str, int] = {}
    coalesced = 0
    plans = {"hit": 0, "miss": 0, "other": 0}
    for r in ok:
        size = int(r["batch"].get("size", 1))
        occupancy[str(size)] = occupancy.get(str(size), 0) + 1
        if r["batch"].get("coalesced"):
            coalesced += 1
        label = r.get("plan")
        plans[label if label in ("hit", "miss") else "other"] += 1
    return {
        "config": {
            "rate": cfg.rate,
            "duration": cfg.duration,
            "seed": cfg.seed,
            "n": cfg.n,
            "procs": cfg.procs,
            "density": cfg.density,
            "masks": cfg.masks,
            "ops": list(cfg.ops),
            "scheme": cfg.scheme,
            "connections": cfg.connections,
        },
        "sent": len(records),
        "ok": len(ok),
        "shed": sum(1 for r in records if r["status"] == "shed"),
        "errors": sum(
            1 for r in records if r["status"] in ("error", "timeout")
        ),
        "elapsed_s": elapsed,
        "throughput_rps": len(ok) / elapsed if elapsed > 0 else 0.0,
        "latency_ms": _percentiles([r["latency"] for r in ok]),
        "batch_occupancy": dict(sorted(occupancy.items(),
                                       key=lambda kv: int(kv[0]))),
        "coalesced_fraction": coalesced / len(ok) if ok else 0.0,
        "plan": plans,
    }


async def run_loadgen_async(cfg: LoadgenConfig) -> dict:
    """Coroutine form of :func:`run_loadgen`, for callers (the serve
    benchmark) that already run a loop hosting the server in-process."""
    return await _run_async(cfg)


def run_loadgen(cfg: LoadgenConfig) -> dict:
    """Run the seeded open-loop load and return the report dict."""
    return asyncio.run(_run_async(cfg))
