"""The asyncio TCP server tying protocol, admission, batcher and engine
together.

One ``PackUnpackServer`` per process: clients connect over TCP, send
newline-delimited JSON requests (pipelining allowed), and receive one
response line per request.  Admission control bounds in-flight work and
sheds with ``overloaded``; admitted requests flow through the
:class:`~repro.serve.batcher.Batcher` (coalescing window) into the
:class:`~repro.serve.engine.ExecutionEngine` running in a small thread
pool.  SIGTERM / SIGINT trigger a graceful drain: stop admitting, finish
everything admitted, flush the plan cache and metrics snapshot to disk,
exit 0.
"""

from __future__ import annotations

import asyncio
import json
import signal
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from time import perf_counter

from ..obs.registry import MetricsRegistry
from .admission import AdmissionController
from .batcher import Batcher, PendingRequest
from .engine import ExecutionEngine
from .protocol import (
    MAX_LINE,
    ProtocolError,
    encode_response,
    error_body,
    parse_request,
)

__all__ = ["PackUnpackServer", "ServeConfig"]

#: Batch-occupancy buckets: exact low counts, then doubling.
BATCH_SIZE_BUCKETS = (1, 2, 3, 4, 6, 8, 12, 16, 32)


@dataclass
class ServeConfig:
    """Everything `repro serve` exposes as flags."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port is printed/recorded
    backend: str = "sim"
    max_delay: float = 0.002  # coalescing window, seconds
    max_batch: int = 8
    max_queue: int = 256
    max_inflight: int = 2  # concurrent backend executions
    plan_cache_capacity: int = 128
    plan_cache_file: str | None = None
    metrics_out: str | None = None
    warm: int | None = None  # pre-fork a gang of this size (supervised)
    timeout: float | None = None  # supervisor per-op watchdog
    transport: str | None = None  # mp/supervised message transport


class PackUnpackServer:
    """Async batching front door over the PACK/UNPACK core."""

    def __init__(self, config: ServeConfig | None = None, **kw):
        self.config = config if config is not None else ServeConfig(**kw)
        cfg = self.config
        self.metrics = MetricsRegistry()
        self.metrics.histogram("serve.batch_size", BATCH_SIZE_BUCKETS)
        self.engine = ExecutionEngine(
            backend=cfg.backend,
            plan_cache_capacity=cfg.plan_cache_capacity,
            timeout=cfg.timeout,
            transport=cfg.transport,
        )
        self.admission = AdmissionController(
            max_queue=cfg.max_queue,
            max_inflight=cfg.max_inflight,
            metrics=self.metrics,
        )
        self._executor = ThreadPoolExecutor(
            max_workers=cfg.max_inflight, thread_name_prefix="repro-serve"
        )
        self.batcher = Batcher(
            self.engine.execute,
            self._executor,
            self.admission.batch_semaphore,
            max_delay=cfg.max_delay,
            max_batch=cfg.max_batch,
            metrics=self.metrics,
        )
        self._server: asyncio.AbstractServer | None = None
        self._request_tasks: set[asyncio.Task] = set()
        self._conn_tasks: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        self._drained = False
        self.host = cfg.host
        self.port = cfg.port

    # -------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        cfg = self.config
        if cfg.plan_cache_file:
            try:
                n = self.engine.plan_cache.load_into(cfg.plan_cache_file)
                self.metrics.set("serve.plans_loaded", n)
            except FileNotFoundError:
                pass  # first run; the drain will create it
        self._server = await asyncio.start_server(
            self._on_connection, cfg.host, cfg.port, limit=MAX_LINE
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        if cfg.warm:
            # Fork the gang before accepting load so the first request
            # doesn't pay the spawn.
            await asyncio.get_running_loop().run_in_executor(
                None, self.engine.warm, cfg.warm
            )

    async def drain(self) -> None:
        """Graceful shutdown: refuse new work, finish admitted work,
        persist the plan cache and metrics snapshot."""
        if self._drained:
            return
        self._drained = True
        self.admission.begin_drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.batcher.drain()
        if self._request_tasks:
            await asyncio.gather(*list(self._request_tasks),
                                 return_exceptions=True)
        for w in list(self._writers):
            w.close()
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks),
                                 return_exceptions=True)
        self._executor.shutdown(wait=True)
        self.engine.close()
        cfg = self.config
        if cfg.plan_cache_file:
            self.engine.plan_cache.save(cfg.plan_cache_file)
        if cfg.metrics_out:
            with open(cfg.metrics_out, "w") as f:
                json.dump(self.metrics.snapshot(), f, indent=2, sort_keys=True)

    async def run_until_signal(self, ready=None) -> None:
        """Serve until SIGTERM/SIGINT, then drain and return (exit 0).
        ``ready(server)`` is called once the port is bound (the CLI prints
        the address there, which CI waits on)."""
        await self.start()
        if ready is not None:
            ready(self)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, stop.set)
        try:
            await stop.wait()
        finally:
            for sig in (signal.SIGTERM, signal.SIGINT):
                loop.remove_signal_handler(sig)
            await self.drain()

    # ------------------------------------------------------------ connections
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)
        self._writers.add(writer)
        wlock = asyncio.Lock()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._write(
                        writer, wlock,
                        error_body(None, "bad_request",
                                   f"request line exceeds {MAX_LINE} bytes"),
                    )
                    break
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                if not line:
                    break
                t = asyncio.get_running_loop().create_task(
                    self._handle(line, writer, wlock)
                )
                self._request_tasks.add(t)
                t.add_done_callback(self._request_tasks.discard)
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle(
        self, line: bytes, writer: asyncio.StreamWriter, wlock: asyncio.Lock
    ) -> None:
        t0 = perf_counter()
        self.metrics.inc("serve.requests")
        try:
            req = parse_request(line)
        except ProtocolError as exc:
            rid = self._peek_id(line)
            self.metrics.inc("serve.bad_requests")
            await self._write(writer, wlock,
                              error_body(rid, exc.code, str(exc)))
            return

        code = self.admission.try_admit()
        if code is not None:
            msgs = {
                "overloaded": "server at max queue depth; retry with backoff",
                "shutting_down": "server is draining; reconnect elsewhere",
            }
            await self._write(writer, wlock,
                              error_body(req.id, code, msgs[code]))
            return

        fut = asyncio.get_running_loop().create_future()
        preq = PendingRequest(req=req, future=fut)
        try:
            self.batcher.submit(preq)
            body = await fut
        finally:
            self.admission.release()

        t1 = perf_counter()
        body["batch"] = {"size": preq.batch_size, "coalesced": preq.coalesced}
        body["timing"] = {
            "queue_ms": (preq.t_exec_start - preq.t_enqueue) * 1e3,
            "execute_ms": (preq.t_exec_end - preq.t_exec_start) * 1e3,
            "total_ms": (t1 - t0) * 1e3,
        }
        self.metrics.observe(
            "serve.queue_wait_seconds", preq.t_exec_start - preq.t_enqueue
        )
        self.metrics.observe("serve.total_seconds", t1 - t0)
        if not body.get("ok"):
            self.metrics.inc("serve.errors")
        await self._write(writer, wlock, body)

    async def _write(
        self, writer: asyncio.StreamWriter, wlock: asyncio.Lock, body: dict
    ) -> None:
        data = encode_response(body)
        try:
            async with wlock:
                writer.write(data)
                await writer.drain()
        except (ConnectionError, OSError, RuntimeError):
            pass  # client went away; its response has nowhere to go

    @staticmethod
    def _peek_id(line: bytes) -> str | None:
        """Best-effort request id recovery for error responses to
        unparseable requests."""
        try:
            doc = json.loads(line)
            rid = doc.get("id") if isinstance(doc, dict) else None
            return rid if isinstance(rid, str) else None
        except Exception:
            return None
