"""Blocking execution engine behind the server's batcher.

One :class:`ExecutionEngine` per server process owns the shared state
every request benefits from: a single process-wide
:class:`~repro.core.plan_cache.PlanCache` (so repeat masks replay their
compiled plans no matter which connection sent them) and one execution
backend — by default the in-process simulator, or a warm persistent
:class:`~repro.runtime.supervisor.GangSupervisor` gang under
``backend="supervised"``.

``execute`` is synchronous and runs inside the server's thread pool;
the supervisor's dispatch lock serializes gang ops submitted from
concurrent batches, so ``max_inflight > 1`` is safe on every backend.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.api import pack, ranking, unpack
from ..core.multi import pack_many
from ..core.plan import plan_key
from ..core.plan_cache import PlanCache
from ..core.schemes import PackConfig
from ..hpf.grid import GridLayout
from ..machine.spec import CM5
from ..runtime.base import get_backend
from .protocol import Request, encode_array, error_body

__all__ = ["ExecutionEngine"]


class ExecutionEngine:
    """Executes parsed requests (solo or coalesced) over shared state."""

    def __init__(
        self,
        backend: str = "sim",
        spec=None,
        plan_cache: PlanCache | None = None,
        plan_cache_capacity: int = 128,
        timeout: float | None = None,
        transport: str | None = None,
    ):
        self.backend_name = backend if isinstance(backend, str) else "custom"
        self._owns_backend = False
        if backend == "supervised":
            # A private supervisor (not the process-wide default): the
            # server's drain close()s it, which must not retire a gang
            # other code in the process might still be using.
            from ..runtime.supervisor import GangSupervisor

            self.backend = GangSupervisor(timeout=timeout, transport=transport)
            self._owns_backend = True
        else:
            self.backend = get_backend(backend)
        self.spec = spec if spec is not None else CM5
        self.plan_cache = (
            plan_cache if plan_cache is not None
            else PlanCache(capacity=plan_cache_capacity)
        )

    # ------------------------------------------------------------- lifecycle
    def warm(self, nprocs: int) -> None:
        """Pre-fork the gang (supervised backend) so the first request
        dispatches warm; a no-op on backends without persistent workers."""
        warm = getattr(self.backend, "warm", None)
        if warm is not None:
            warm(nprocs)

    def close(self) -> None:
        if self._owns_backend:
            self.backend.close()

    # ------------------------------------------------------------- execution
    def execute(self, reqs: Sequence[Request]) -> list[dict]:
        """Run a compatible group; returns one response body per request,
        in order.  Never raises: failures become error bodies (a gang
        failure fails the whole group — the requests shared one run)."""
        try:
            if len(reqs) > 1 and reqs[0].op == "pack":
                return self._gang_pack(reqs)
            if len(reqs) > 1 and reqs[0].op == "ranking":
                return self._ranking_fanout(reqs)
            return [self._solo(r) for r in reqs]
        except Exception as exc:  # pragma: no cover - backstop
            code = "bad_request" if isinstance(exc, ValueError) else "internal"
            return [error_body(r.id, code, str(exc)) for r in reqs]

    # One coalesced gang: k arrays, one mask, one ranking, one plan entry
    # (shared with solo pack — same op="pack" key).
    def _gang_pack(self, reqs: Sequence[Request]) -> list[dict]:
        r0 = reqs[0]
        try:
            plan = self._pack_plan_label(r0)
            vectors, _run = pack_many(
                [r.array for r in reqs],
                r0.mask,
                r0.grid,
                block=r0.block,
                scheme=r0.scheme,
                spec=self.spec,
                validate=r0.validate,
                plan_cache=self.plan_cache,
                backend=self.backend,
            )
        except Exception as exc:
            code = "bad_request" if isinstance(exc, ValueError) else "internal"
            return [error_body(r.id, code, str(exc)) for r in reqs]
        return [
            {
                "id": r.id,
                "ok": True,
                "op": "pack",
                "result": encode_array(v),
                "size": int(v.size),
                "plan": plan,
            }
            for r, v in zip(reqs, vectors)
        ]

    # Identical ranking requests: rank once, fan the result out.
    def _ranking_fanout(self, reqs: Sequence[Request]) -> list[dict]:
        body = self._solo(reqs[0])
        out = [dict(body, id=r.id) for r in reqs]
        return out

    def _solo(self, req: Request) -> dict:
        common = dict(
            block=req.block,
            scheme=req.scheme,
            spec=self.spec,
            validate=req.validate,
            backend=self.backend,
            plan_cache=self.plan_cache,
        )
        try:
            if req.op == "pack":
                res = pack(
                    req.array, req.mask, req.grid,
                    redistribute=req.redistribute,
                    vector=req.vector,
                    **common,
                )
                result = res.vector
            elif req.op == "unpack":
                res = unpack(
                    req.vector, req.mask, req.field_array, req.grid, **common,
                )
                result = res.array
            else:  # ranking
                common.pop("scheme")
                res = ranking(req.mask, req.grid, scheme=req.scheme, **common)
                result = res.ranks
        except Exception as exc:
            code = "bad_request" if isinstance(exc, ValueError) else "internal"
            return error_body(req.id, code, str(exc))
        return {
            "id": req.id,
            "ok": True,
            "op": req.op,
            "result": encode_array(np.asarray(result)),
            "size": int(res.size),
            "plan": (res.plan_info or {}).get("cache"),
        }

    def _pack_plan_label(self, r0: Request) -> str:
        """hit/miss label for a coalesced gang, probed before the run with
        exactly the key :func:`~repro.core.multi.pack_many` will use."""
        layout = GridLayout.create(r0.mask.shape, r0.grid, r0.block)
        config = PackConfig(scheme=r0.scheme)
        key = plan_key(
            "pack", layout, config, r0.mask,
            n_result=None, spec=self.spec.name,
            time_domain=self.backend.time_domain,
        )
        return "hit" if key in self.plan_cache else "miss"
