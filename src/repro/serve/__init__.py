"""repro.serve — the async batching front door over the PACK/UNPACK core.

A newline-delimited-JSON-over-TCP service (stdlib asyncio only) that
accepts concurrent pack/unpack/ranking requests from many clients and
executes them efficiently above the backend seam: compatible requests
arriving within a coalescing window are grouped into single
:func:`~repro.core.multi.pack_many` gang executions, every request shares
one process-wide :class:`~repro.core.plan_cache.PlanCache` and (under
``backend="supervised"``) one warm :class:`~repro.runtime.GangSupervisor`
gang, and admission control sheds load with structured errors instead of
queueing without bound.  See ``docs/serve.md``.
"""

from .admission import AdmissionController
from .batcher import Batcher, PendingRequest
from .engine import ExecutionEngine
from .loadgen import LoadgenConfig, request_roundtrip, run_loadgen
from .protocol import (
    ProtocolError,
    Request,
    decode_array,
    encode_array,
    encode_response,
    error_body,
    parse_request,
)
from .server import PackUnpackServer, ServeConfig

__all__ = [
    "AdmissionController",
    "Batcher",
    "ExecutionEngine",
    "LoadgenConfig",
    "PackUnpackServer",
    "PendingRequest",
    "ProtocolError",
    "Request",
    "ServeConfig",
    "decode_array",
    "encode_array",
    "encode_response",
    "error_body",
    "parse_request",
    "request_roundtrip",
    "run_loadgen",
]
