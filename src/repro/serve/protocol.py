"""Wire protocol for ``repro.serve``: newline-delimited JSON over TCP.

One request per line, one response per line, in any order (responses
carry the request ``id``, so clients may pipeline).  Array payloads ride
as the same ``{"dtype", "shape", "data": base64}`` blobs the plan
serialization uses (:mod:`repro.core.plan`), so a packed vector returned
by the service is byte-comparable across runs and modes — the property
the coalescing bit-identity tests and ``bench_serve`` lean on.

Request::

    {"id": "r1", "op": "pack", "grid": [2, 2], "block": null,
     "scheme": "cms", "mask": {...}, "array": {...},
     "options": {"validate": false}}

``op`` is ``"pack"`` (needs ``array``; optional ``vector`` = Fortran's
VECTOR argument; optional ``options.redistribute``), ``"unpack"`` (needs
``vector`` and ``field``) or ``"ranking"`` (mask only).  Responses are
``{"id", "ok": true, "op", "result", "size", "plan", "batch", "timing"}``
or ``{"id", "ok": false, "error": {"code", "message"}}`` with codes
``bad_request`` / ``overloaded`` / ``shutting_down`` / ``internal``.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from ..core.plan import _nd_from_dict, _nd_to_dict, mask_fingerprint

__all__ = [
    "MAX_LINE",
    "ProtocolError",
    "Request",
    "decode_array",
    "encode_array",
    "encode_response",
    "error_body",
    "parse_request",
]

#: Per-line byte budget for the server's stream reader: bounds worst-case
#: memory per connection (a 64 MiB line fits a ~24 MiB float64 payload).
MAX_LINE = 64 * 1024 * 1024

_OPS = ("pack", "unpack", "ranking")
_REDISTRIBUTE = (None, "selected", "whole")


class ProtocolError(ValueError):
    """A request the server cannot act on; becomes a ``bad_request``
    (or the carried ``code``) error response."""

    def __init__(self, message: str, code: str = "bad_request"):
        self.code = code
        super().__init__(message)


def encode_array(a: np.ndarray) -> dict:
    """Serialize an ndarray as a ``{"dtype", "shape", "data": b64}`` blob."""
    return _nd_to_dict(np.ascontiguousarray(a))


def decode_array(d: Mapping[str, Any], what: str = "array") -> np.ndarray:
    """Inverse of :func:`encode_array`; raises :class:`ProtocolError` on a
    malformed blob."""
    if not isinstance(d, Mapping) or not {"dtype", "shape", "data"} <= set(d):
        raise ProtocolError(
            f"{what}: expected an array blob with dtype/shape/data"
        )
    try:
        return _nd_from_dict(d)
    except Exception as exc:
        raise ProtocolError(f"{what}: undecodable array blob: {exc}") from None


@dataclass
class Request:
    """One parsed, validated request, ready for the batcher."""

    id: str
    op: str
    grid: tuple[int, ...]
    block: Any
    scheme: str
    mask: np.ndarray
    array: np.ndarray | None = None
    vector: np.ndarray | None = None
    field_array: np.ndarray | None = None
    redistribute: str | None = None
    validate: bool = False
    options: dict = field(default_factory=dict)
    fingerprint: str = ""

    def batch_key(self) -> tuple | None:
        """Compatibility key for coalescing, or ``None`` for solo-only.

        PACK requests over the same mask, geometry and scheme coalesce
        into one :func:`~repro.core.multi.pack_many` gang (the batcher
        checks the window and size); ranking requests with one key
        deduplicate into a single execution.  UNPACK, redistribution
        pre-passes and VECTOR-padded packs always run solo — there is no
        batched execution path that preserves their exact semantics.
        """
        if self.op == "unpack" or self.redistribute is not None \
                or self.vector is not None:
            return None
        block = self.block
        if isinstance(block, list):
            block = tuple(block)
        return (
            self.op, self.fingerprint, self.mask.shape, self.grid, block,
            self.scheme, self.validate,
        )


def _shape_of(blob: Mapping) -> tuple:
    return tuple(blob["shape"]) if isinstance(blob, Mapping) else ()


#: Coalescing works because masks recur across requests, which also means
#: the server decodes and fingerprints the *same* mask blob once per
#: request.  Memoize both on the raw base64 text; entries are returned
#: read-only so concurrent requests can share one array safely.
_MASK_MEMO_CAPACITY = 64
_mask_memo: OrderedDict[tuple, tuple[np.ndarray, str]] = OrderedDict()


def _decode_mask(blob: Mapping[str, Any]) -> tuple[np.ndarray, str]:
    data = blob.get("data") if isinstance(blob, Mapping) else None
    key = None
    if isinstance(data, str):
        key = (blob.get("dtype"), _shape_of(blob), data)
        hit = _mask_memo.get(key)
        if hit is not None:
            _mask_memo.move_to_end(key)
            return hit
    mask = decode_array(blob, "mask").astype(bool)
    mask.flags.writeable = False
    fingerprint = mask_fingerprint(mask)
    if key is not None:
        _mask_memo[key] = (mask, fingerprint)
        while len(_mask_memo) > _MASK_MEMO_CAPACITY:
            _mask_memo.popitem(last=False)
    return mask, fingerprint


def parse_request(line: bytes | str) -> Request:
    """Parse and validate one request line."""
    try:
        doc = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from None
    if not isinstance(doc, dict):
        raise ProtocolError("request must be a JSON object")

    rid = doc.get("id")
    if not isinstance(rid, str) or not rid:
        raise ProtocolError("request needs a non-empty string 'id'")
    op = doc.get("op")
    if op not in _OPS:
        raise ProtocolError(f"op must be one of {_OPS}, got {op!r}")

    grid = doc.get("grid")
    if isinstance(grid, int):
        grid = [grid]
    if (not isinstance(grid, list) or not grid
            or not all(isinstance(p, int) and p >= 1 for p in grid)):
        raise ProtocolError("grid must be a non-empty list of positive ints")

    if "mask" not in doc:
        raise ProtocolError("request needs a 'mask' payload")
    mask, fingerprint = _decode_mask(doc["mask"])

    options = doc.get("options") or {}
    if not isinstance(options, dict):
        raise ProtocolError("options must be an object")
    redistribute = options.get("redistribute")
    if redistribute not in _REDISTRIBUTE:
        raise ProtocolError(
            f"options.redistribute must be one of {_REDISTRIBUTE}, "
            f"got {redistribute!r}"
        )
    if redistribute is not None and op != "pack":
        raise ProtocolError("options.redistribute applies to op 'pack' only")

    scheme = doc.get("scheme") or ("cms" if op == "pack" else "css")
    if scheme not in ("sss", "css", "cms"):
        raise ProtocolError(f"scheme must be sss/css/cms, got {scheme!r}")
    if op != "pack" and scheme == "cms":
        raise ProtocolError(f"op {op!r} supports schemes sss/css only")

    array = vector = field_array = None
    if op == "pack":
        if "array" not in doc:
            raise ProtocolError("pack needs an 'array' payload")
        if _shape_of(doc["array"]) != tuple(mask.shape):
            raise ProtocolError(
                f"array shape {_shape_of(doc['array'])} != mask shape "
                f"{tuple(mask.shape)}"
            )
        array = decode_array(doc["array"], "array")
        if "vector" in doc and doc["vector"] is not None:
            vector = decode_array(doc["vector"], "vector")
    elif op == "unpack":
        if "vector" not in doc or "field" not in doc:
            raise ProtocolError("unpack needs 'vector' and 'field' payloads")
        vector = decode_array(doc["vector"], "vector")
        field_array = decode_array(doc["field"], "field")
        if field_array.shape != mask.shape:
            raise ProtocolError(
                f"field shape {field_array.shape} != mask shape {mask.shape}"
            )

    return Request(
        id=rid,
        op=op,
        grid=tuple(grid),
        block=doc.get("block"),
        scheme=scheme,
        mask=mask,
        array=array,
        vector=vector,
        field_array=field_array,
        redistribute=redistribute,
        validate=bool(options.get("validate", False)),
        options=options,
        fingerprint=fingerprint,
    )


def encode_response(body: Mapping[str, Any]) -> bytes:
    """One response line, newline-terminated."""
    return (json.dumps(body, separators=(",", ":")) + "\n").encode()


def error_body(rid: str | None, code: str, message: str) -> dict:
    return {
        "id": rid,
        "ok": False,
        "error": {"code": code, "message": message},
    }
