"""Request coalescing: compatible requests within a window become one gang.

The batcher holds each admitted request for at most ``max_delay`` seconds,
grouping it with others whose :meth:`~repro.serve.protocol.Request.batch_key`
matches (same op, mask, geometry, scheme).  A full group (``max_batch``)
flushes immediately; otherwise the window timer flushes whatever arrived.
Requests with no batch key (unpack, redistribution, VECTOR pads) dispatch
solo at once — coalescing never delays work that cannot coalesce.

Each flush acquires the admission controller's max-inflight-batches
semaphore, then runs the engine in the server's thread pool; responses
resolve per-request futures the connection handlers await.  All batcher
state is touched only from the event-loop thread.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field as dc_field
from time import perf_counter
from typing import Callable, Sequence

from .protocol import Request, error_body

__all__ = ["Batcher", "PendingRequest"]


@dataclass
class PendingRequest:
    """One admitted request travelling through the batcher."""

    req: Request
    future: asyncio.Future = dc_field(repr=False)
    t_enqueue: float = 0.0
    t_exec_start: float = 0.0
    t_exec_end: float = 0.0
    batch_size: int = 1
    coalesced: bool = False


class Batcher:
    """Window/size-bounded coalescing in front of a blocking engine."""

    def __init__(
        self,
        execute: Callable[[Sequence[Request]], list[dict]],
        executor,
        semaphore: asyncio.Semaphore,
        max_delay: float = 0.002,
        max_batch: int = 8,
        metrics=None,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {max_delay}")
        self._execute = execute
        self._executor = executor
        self._semaphore = semaphore
        self.max_delay = max_delay
        self.max_batch = max_batch
        self._metrics = metrics
        self._groups: dict[tuple, list[PendingRequest]] = {}
        self._timers: dict[tuple, asyncio.TimerHandle] = {}
        self._tasks: set[asyncio.Task] = set()
        self.batches = 0
        self.coalesced_batches = 0

    # ---------------------------------------------------------------- intake
    def submit(self, preq: PendingRequest) -> None:
        """Enqueue one admitted request (event-loop thread)."""
        preq.t_enqueue = perf_counter()
        key = preq.req.batch_key()
        if key is None or self.max_batch <= 1 or self.max_delay == 0:
            self._launch([preq])
            return
        group = self._groups.setdefault(key, [])
        group.append(preq)
        if len(group) >= self.max_batch:
            self._flush(key)
        elif len(group) == 1:
            loop = asyncio.get_running_loop()
            self._timers[key] = loop.call_later(
                self.max_delay, self._flush, key
            )

    def _flush(self, key: tuple) -> None:
        group = self._groups.pop(key, None)
        timer = self._timers.pop(key, None)
        if timer is not None:
            timer.cancel()
        if group:
            self._launch(group)

    def _launch(self, group: list[PendingRequest]) -> None:
        for p in group:
            p.batch_size = len(group)
            p.coalesced = len(group) > 1
        task = asyncio.get_running_loop().create_task(self._run(group))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    # ------------------------------------------------------------- execution
    async def _run(self, group: list[PendingRequest]) -> None:
        async with self._semaphore:
            t0 = perf_counter()
            for p in group:
                p.t_exec_start = t0
            loop = asyncio.get_running_loop()
            try:
                bodies = await loop.run_in_executor(
                    self._executor,
                    self._execute,
                    [p.req for p in group],
                )
            except Exception as exc:  # engine returns error bodies itself;
                # this catches executor shutdown and the like.
                bodies = [
                    error_body(p.req.id, "internal", str(exc)) for p in group
                ]
            t1 = perf_counter()
            self.batches += 1
            if len(group) > 1:
                self.coalesced_batches += 1
            if self._metrics is not None:
                self._metrics.inc("serve.batches")
                self._metrics.observe("serve.batch_size", len(group))
                self._metrics.observe("serve.execute_seconds", t1 - t0)
            for p, body in zip(group, bodies):
                p.t_exec_end = t1
                if not p.future.done():
                    p.future.set_result(body)

    # ----------------------------------------------------------------- drain
    async def drain(self) -> None:
        """Flush every held group and wait for all inflight batches."""
        for key in list(self._groups):
            self._flush(key)
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
