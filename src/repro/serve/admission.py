"""Admission control and backpressure for the serve front door.

Bounded work, shed early: the server admits a request only while fewer
than ``max_queue`` requests are in flight (parsed but unanswered).  Past
that it answers immediately with a structured ``overloaded`` error —
clients see explicit backpressure instead of unbounded queueing and
timeout roulette.  During drain (SIGTERM) new requests get
``shutting_down`` while admitted ones finish.

Everything here runs on the event-loop thread, so plain counters are
enough — no locks.  The max-inflight-*batches* limit is separate: an
``asyncio.Semaphore`` owned here and acquired by the batcher around each
executor dispatch, bounding concurrent backend runs (and thread-pool
width) independently of queue depth.
"""

from __future__ import annotations

import asyncio

__all__ = ["AdmissionController"]


class AdmissionController:
    """Queue-depth gate + shed/drain bookkeeping (event-loop thread only)."""

    def __init__(self, max_queue: int = 256, max_inflight: int = 2,
                 metrics=None):
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self.max_queue = max_queue
        self.max_inflight = max_inflight
        #: Acquired by the batcher around each backend execution.
        self.batch_semaphore = asyncio.Semaphore(max_inflight)
        self._metrics = metrics
        self._inflight = 0
        self._draining = False
        self.admitted = 0
        self.shed = 0
        self.refused_draining = 0

    @property
    def inflight(self) -> int:
        """Requests admitted and not yet released (queued or executing)."""
        return self._inflight

    @property
    def draining(self) -> bool:
        return self._draining

    def try_admit(self) -> str | None:
        """Admit one request.  Returns ``None`` on success, else the error
        code to answer with (``"overloaded"`` / ``"shutting_down"``)."""
        if self._draining:
            self.refused_draining += 1
            return "shutting_down"
        if self._inflight >= self.max_queue:
            self.shed += 1
            if self._metrics is not None:
                self._metrics.inc("serve.shed")
            return "overloaded"
        self._inflight += 1
        self.admitted += 1
        if self._metrics is not None:
            self._metrics.inc("serve.admitted")
            self._metrics.set("serve.inflight", self._inflight)
        return None

    def release(self) -> None:
        """One admitted request answered (success or error)."""
        self._inflight -= 1
        assert self._inflight >= 0, "admission release without admit"
        if self._metrics is not None:
            self._metrics.set("serve.inflight", self._inflight)

    def begin_drain(self) -> None:
        """Stop admitting; in-flight requests keep their slots."""
        self._draining = True
