"""Software collectives over point-to-point messages.

Every function here is a generator used as ``result = yield from
collective(ctx, ...)`` inside an SPMD program.  All ranks named in
``group`` must call the same collective with compatible arguments; the
caller is responsible for SPMD discipline (that is what makes per-channel
FIFO matching sufficient — no operation ids are needed).

Group semantics
---------------
``group`` is a sorted tuple of machine ranks (default: all ranks).  Ranks
communicate by *member index* within the group, so the same code serves the
full machine and any sub-communicator (e.g. one row of a processor grid).
Disjoint groups may run collectives concurrently without interference
because messages never cross group boundaries.

Tags
----
Each collective family uses its own tag block, with the round number added,
so that a program may pipeline different collectives back to back on the
same channels.  Two *concurrent* collectives of the same family on the same
group are not supported (and never occur in this library).

Cost shapes (P = group size, M = vector words)
----------------------------------------------
=============  =====================================
bcast          tau*ceil(log P) + mu*M*ceil(log P)   (binomial tree)
reduce         same as bcast, reversed
allreduce      2x reduce/bcast (or recursive doubling when P is 2^k)
gather         tau*(P-1) + mu*M*(P-1)  at the root  (flat; paper model)
allgather      ring: tau*(P-1) + mu*M*(P-1)
alltoall       linear permutation: tau*(P-1) + mu*(total outgoing)
=============  =====================================
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Sequence

import numpy as np

from ..machine.context import Context, payload_words

__all__ = ["bcast", "reduce", "allreduce", "gather", "allgather", "alltoall"]

_TAG_BCAST = 1000
_TAG_REDUCE = 1100
_TAG_GATHER = 1200
_TAG_ALLGATHER = 1300
_TAG_ALLTOALL = 1400
_TAG_ALLREDUCE = 1500


def _member_index(ctx: Context, group: Sequence[int]) -> int:
    try:
        return list(group).index(ctx.rank)
    except ValueError:
        raise ValueError(f"rank {ctx.rank} not in collective group {tuple(group)}") from None


def _resolve_group(ctx: Context, group: Sequence[int] | None) -> tuple[int, ...]:
    if group is None:
        return tuple(range(ctx.size))
    g = tuple(group)
    if list(g) != sorted(set(g)):
        raise ValueError(f"group must be sorted and duplicate-free: {g}")
    return g


def _add(a: Any, b: Any):
    """Default reduction operator (numpy-aware elementwise sum)."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return a + b
    return a + b


def bcast(
    ctx: Context,
    value: Any,
    root: int = 0,
    group: Sequence[int] | None = None,
    words: int | None = None,
) -> Generator[Any, Any, Any]:
    """Binomial-tree broadcast of ``value`` from group member index ``root``.

    ``root`` is a *member index* within the group, not a machine rank.
    Returns the broadcast value on every member.
    """
    g = _resolve_group(ctx, group)
    P = len(g)
    me = _member_index(ctx, g)
    # Rotate so the root is member 0 in the tree.
    v = (me - root) % P
    have = v == 0
    payload = value if have else None
    w = words
    # Rounds with doubling reach: member v receives from v - 2^k at round k.
    k = 0
    while (1 << k) < P:
        k += 1
    nrounds = k
    for r in range(nrounds):
        dist = 1 << r
        if have:
            partner_v = v + dist
            if v < dist and partner_v < P:
                dest = g[(partner_v + root) % P]
                if w is None:
                    w = payload_words(payload)
                ctx.send(dest, payload, words=w, tag=_TAG_BCAST + r)
        elif dist <= v < 2 * dist:
            src = g[((v - dist) + root) % P]
            msg = yield ctx.recv(source=src, tag=_TAG_BCAST + r)
            payload = msg.payload
            w = msg.words
            have = True
    return payload


def reduce(
    ctx: Context,
    value: Any,
    root: int = 0,
    op: Callable[[Any, Any], Any] = _add,
    group: Sequence[int] | None = None,
    words: int | None = None,
) -> Generator[Any, Any, Any]:
    """Binomial-tree reduction to group member index ``root``.

    Returns the reduced value at the root and ``None`` elsewhere.  ``op``
    must be associative; evaluation order is deterministic.
    """
    g = _resolve_group(ctx, group)
    P = len(g)
    me = _member_index(ctx, g)
    v = (me - root) % P
    acc = value
    w = words if words is not None else payload_words(value)
    nrounds = 0
    while (1 << nrounds) < P:
        nrounds += 1
    # Fold in reverse order of broadcast: at round r (from high to low),
    # members with v in [dist, 2*dist) send their accumulator to v - dist.
    for r in range(nrounds - 1, -1, -1):
        dist = 1 << r
        if dist <= v < 2 * dist:
            dest = g[((v - dist) + root) % P]
            ctx.send(dest, acc, words=w, tag=_TAG_REDUCE + r)
            return None
        if v < dist and v + dist < P:
            src = g[((v + dist) + root) % P]
            msg = yield ctx.recv(source=src, tag=_TAG_REDUCE + r)
            ctx.work(w)  # combine cost: one op per word
            acc = op(acc, msg.payload)
    return acc if v == 0 else None


def allreduce(
    ctx: Context,
    value: Any,
    op: Callable[[Any, Any], Any] = _add,
    group: Sequence[int] | None = None,
    words: int | None = None,
) -> Generator[Any, Any, Any]:
    """All-reduce: every member gets the reduction.

    Uses recursive doubling when the group size is a power of two
    (``tau log P + mu M log P``, one shot); otherwise reduce + bcast.
    """
    g = _resolve_group(ctx, group)
    P = len(g)
    me = _member_index(ctx, g)
    w = words if words is not None else payload_words(value)
    if P & (P - 1) == 0:
        acc = value
        r = 0
        dist = 1
        while dist < P:
            partner = g[me ^ dist]
            ctx.send(partner, acc, words=w, tag=_TAG_ALLREDUCE + r)
            msg = yield ctx.recv(source=partner, tag=_TAG_ALLREDUCE + r)
            ctx.work(w)
            acc = op(acc, msg.payload)
            dist <<= 1
            r += 1
        return acc
    acc = yield from reduce(ctx, value, root=0, op=op, group=g, words=w)
    out = yield from bcast(ctx, acc, root=0, group=g, words=w)
    return out


def gather(
    ctx: Context,
    value: Any,
    root: int = 0,
    group: Sequence[int] | None = None,
    words: int | None = None,
) -> Generator[Any, Any, list | None]:
    """Flat gather: every member sends directly to the root.

    Under the two-level model a flat gather costs the root
    ``(P-1) * tau + mu * total`` which is also what a tree costs in
    received volume; flat keeps arrival order deterministic and simple.
    Returns the list of member values (in member order) at the root,
    ``None`` elsewhere.
    """
    g = _resolve_group(ctx, group)
    me = _member_index(ctx, g)
    w = words if words is not None else payload_words(value)
    if me != root:
        ctx.send(g[root], value, words=w, tag=_TAG_GATHER)
        return None
    out: list[Any] = [None] * len(g)
    out[root] = value
    for i, r in enumerate(g):
        if i == root:
            continue
        msg = yield ctx.recv(source=r, tag=_TAG_GATHER)
        out[i] = msg.payload
    return out


def allgather(
    ctx: Context,
    value: Any,
    group: Sequence[int] | None = None,
    words: int | None = None,
) -> Generator[Any, Any, list]:
    """Ring all-gather; returns the list of member values in member order.

    ``(P-1)`` rounds, each forwarding one member's block: total cost
    ``(P-1)*tau + mu*(P-1)*M`` per member — the bandwidth-optimal shape.
    """
    g = _resolve_group(ctx, group)
    P = len(g)
    me = _member_index(ctx, g)
    w = words if words is not None else payload_words(value)
    out: list[Any] = [None] * P
    out[me] = value
    block = value
    block_owner = me
    for r in range(P - 1):
        right = g[(me + 1) % P]
        left = g[(me - 1) % P]
        ctx.send(right, (block_owner, block), words=w, tag=_TAG_ALLGATHER + r)
        msg = yield ctx.recv(source=left, tag=_TAG_ALLGATHER + r)
        block_owner, block = msg.payload
        out[block_owner] = block
    return out


def alltoall(
    ctx: Context,
    blocks: Sequence[Any],
    group: Sequence[int] | None = None,
    words: Sequence[int] | None = None,
) -> Generator[Any, Any, list]:
    """Personalized all-to-all with the linear permutation schedule.

    ``blocks[i]`` goes to group member ``i``; returns the list of blocks
    received, indexed by source member.  The self block is delivered
    locally for free (paper convention).
    """
    g = _resolve_group(ctx, group)
    P = len(g)
    me = _member_index(ctx, g)
    if len(blocks) != P:
        raise ValueError(f"need {P} blocks, got {len(blocks)}")
    out: list[Any] = [None] * P
    out[me] = blocks[me]
    for k in range(1, P):
        dv = (me + k) % P
        sv = (me - k) % P
        w = words[dv] if words is not None else payload_words(blocks[dv])
        ctx.send(g[dv], blocks[dv], words=w, tag=_TAG_ALLTOALL + k)
        msg = yield ctx.recv(source=g[sv], tag=_TAG_ALLTOALL + k)
        out[sv] = msg.payload
    return out
