"""Pipelined binary-tree prefix-reduction-sum — the O(tau log P + mu M)
algorithm of the paper's reference [6].

The transpose-based split algorithm (:func:`repro.collectives.prefix.prs_split`)
costs ``O(tau P + mu M)``; the bound the paper quotes for the split
algorithm, ``O(tau log P + mu M)``, is achieved by *pipelining*: split the
vector into ``B`` chunks of ``g`` words and stream them through a binary
scan tree, so the tree's depth is paid once (``2 log P`` stages) while
every rank handles only O(1) messages per chunk.  Elapsed time is the
pipeline bound

    (2 log P + B) * c * (tau + mu g)   ~   O(tau log P + mu M)

at the optimal chunk size ``g* ~ sqrt(M tau / (mu log P))``.

Tree layout
-----------
The P-1 internal nodes of the segment tree over ``[0, P)`` are mapped to
ranks by the binary-indexed-tree rule: rank ``m > 0`` hosts the node whose
segment is ``[m - lb, m + lb)`` with ``lb = lowbit(m)``; its children are
the nodes/leaves at ``m -/+ lb/2`` (or the leaves ``m-1``/``m`` when
``lb == 1``), and its parent is whichever of ``m -/+ lb`` has lowest set
bit ``2*lb``.  Every rank therefore plays at most two roles — its own leaf
plus one internal node — so per chunk it sends at most two up-sweep and
two down-sweep messages: the O(1)-per-stage property the pipeline needs.

Per chunk: the up-sweep accumulates segment sums toward the root
(``node(P/2)``); the down-sweep pushes ``(prefix-before-segment, total)``
pairs back down, each node giving its left child its own prefix and its
right child the prefix plus the left subtree's sum.  Leaves end with their
exclusive prefix and the global total — exactly the PRS contract.

Requires a power-of-two group size (the tree rule above depends on it);
:func:`repro.collectives.prefix.choose_prs_algorithm` only auto-selects it
when that holds.
"""

from __future__ import annotations

import math
from typing import Any, Generator, Sequence

import numpy as np

from ..machine.context import Context

__all__ = ["prs_pipeline", "optimal_chunk_words"]

_TAG_UP = 2300
_TAG_DOWN = 2400


def _lowbit(m: int) -> int:
    return m & (-m)


def optimal_chunk_words(spec, P: int, M: int) -> int:
    """Pipeline chunk size minimizing ``(2 log P + M/g) * (tau + mu g)``."""
    if M <= 1:
        return 1
    logp = max(1, math.ceil(math.log2(max(P, 2))))
    if spec.mu <= 0:
        return M
    g = math.sqrt(M * spec.tau / (spec.mu * 2 * logp)) if spec.tau > 0 else 1.0
    return int(min(M, max(1, round(g))))


def _parent(m: int, P: int) -> int | None:
    """Parent node of internal node ``m``, or None for the root.

    The root is the node covering ``[0, P)``, hosted at ``P // 2``.
    Otherwise exactly one of ``m - lb`` / ``m + lb`` has lowest set bit
    ``2 * lb`` and lies inside the machine — that is the parent.
    """
    lb = _lowbit(m)
    if m == P // 2 and lb == P // 2:
        return None
    for cand in (m - lb, m + lb):
        if 0 < cand < P and _lowbit(cand) == 2 * lb:
            return cand
    raise AssertionError(f"no parent found for node {m} in P={P}")


def prs_pipeline(
    ctx: Context,
    vec: Any,
    group: Sequence[int] | None = None,
    chunk_words: int | None = None,
) -> Generator[Any, Any, "PRSResult"]:
    """Pipelined tree PRS over a power-of-two group.

    Returns the same :class:`~repro.collectives.prefix.PRSResult` contract
    as the other algorithms: this member's exclusive prefix plus the
    global reduction vector.
    """
    from .prefix import PRSResult  # local import to avoid a cycle

    g = tuple(group) if group is not None else tuple(range(ctx.size))
    P = len(g)
    if P & (P - 1):
        raise ValueError(f"pipelined PRS needs a power-of-two group, got {P}")
    me = g.index(ctx.rank) if ctx.rank in g else -1
    if me < 0:
        raise ValueError(f"rank {ctx.rank} not in PRS group {g}")

    v = np.ascontiguousarray(vec).ravel().astype(np.int64, copy=False)
    M = v.size
    if P == 1:
        return PRSResult(
            prefix=np.zeros(M, dtype=np.int64), reduction=v.copy(),
            algorithm="pipeline",
        )
    if M == 0:
        empty = np.zeros(0, dtype=np.int64)
        return PRSResult(prefix=empty, reduction=empty.copy(), algorithm="pipeline")

    cw = chunk_words or optimal_chunk_words(ctx.spec, P, M)
    bounds = list(range(0, M, cw)) + [M]
    nchunks = len(bounds) - 1

    # Static role of this member: the internal node it hosts (if any).
    node = me if me > 0 else None
    lb = _lowbit(me) if node else 0
    parent = _parent(me, P) if node else None
    root = P // 2

    prefix = np.empty(M, dtype=np.int64)
    reduction = np.empty(M, dtype=np.int64)

    # The two sweeps run as separate streaming loops so chunks pipeline:
    # a leaf pushes *all* its chunks up without waiting for any result,
    # and every tree level works on chunk c while the level above handles
    # chunk c-1.  (A single fused loop would stall each rank on its own
    # chunk's full tree round trip, serializing the pipeline.)

    # ------------------------------------------------------------ up-sweep
    # The leaf stream runs one chunk AHEAD of the node duties: a rank's
    # node role consumes its sibling's output, and the sibling consumes
    # this rank's leaf stream — processing both roles for the same chunk
    # in one iteration would make every chunk pay that cycle's full round
    # trip.  With the one-chunk stagger each rank's iteration period is
    # just its own send cost, and the pipeline streams.
    left_sums: list[np.ndarray] = []
    seg_sums: list[np.ndarray] = []
    for c in range(nchunks + 1):
        if c < nchunks and me % 2 == 0:
            lo, hi = bounds[c], bounds[c + 1]
            # Leaf duty: an even member sends its chunk to node me+1; an
            # odd member's leaf is its own node's right leaf (local).
            ctx.send(g[me + 1], v[lo:hi], words=hi - lo, tag=_TAG_UP + 0)
        if c == 0 or not node:
            continue
        cc = c - 1  # the lagged chunk the node role works on
        lo, hi = bounds[cc], bounds[cc + 1]
        n = hi - lo
        # Internal-node duty: gather children bottom-up, forward to parent.
        if lb == 1:
            msg = yield ctx.recv(source=g[me - 1], tag=_TAG_UP + 0)
            left_sum = np.asarray(msg.payload)
            ctx.work(n)
            seg_sum = left_sum + v[lo:hi]
        else:
            half = lb // 2
            msg_l = yield ctx.recv(source=g[me - half], tag=_TAG_UP + 1)
            msg_r = yield ctx.recv(source=g[me + half], tag=_TAG_UP + 1)
            left_sum = np.asarray(msg_l.payload)
            ctx.work(n)
            seg_sum = left_sum + np.asarray(msg_r.payload)
        left_sums.append(left_sum)
        seg_sums.append(seg_sum)
        if parent is not None:
            ctx.send(g[parent], seg_sum, words=n, tag=_TAG_UP + 1)

    # ---------------------------------------------------------- down-sweep
    # Node duties stream first; the leaf's own result receives feed
    # nothing downstream, so they drain in a separate pass afterwards —
    # otherwise each node iteration would stall on the three-message
    # leaf-turnaround round trip, halving the pipeline rate.
    if node:
        for c in range(nchunks):
            lo, hi = bounds[c], bounds[c + 1]
            n = hi - lo
            left_sum = left_sums[c]
            if parent is None:  # root
                pre = np.zeros(n, dtype=np.int64)
                total = seg_sums[c]
            else:
                msg = yield ctx.recv(source=g[parent], tag=_TAG_DOWN + 1)
                pre, total = msg.payload
            if lb == 1:
                # Children are leaves me-1 (left) and me (right, local).
                ctx.send(g[me - 1], (pre, total), words=2 * n, tag=_TAG_DOWN + 0)
                ctx.work(n)
                prefix[lo:hi] = pre + left_sum
                reduction[lo:hi] = total
            else:
                half = lb // 2
                ctx.send(g[me - half], (pre, total), words=2 * n, tag=_TAG_DOWN + 1)
                ctx.work(n)
                right_pre = pre + left_sum
                ctx.send(
                    g[me + half], (right_pre, total), words=2 * n, tag=_TAG_DOWN + 1
                )
    if me % 2 == 0:
        # Leaf receives its prefixes from node me+1.
        for c in range(nchunks):
            lo, hi = bounds[c], bounds[c + 1]
            msg = yield ctx.recv(source=g[me + 1], tag=_TAG_DOWN + 0)
            pre, total = msg.payload
            prefix[lo:hi] = pre
            reduction[lo:hi] = total

    return PRSResult(prefix=prefix, reduction=reduction, algorithm="pipeline")
