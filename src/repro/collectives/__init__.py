"""Collective communication built on the simulated machine.

Two families live here:

* :mod:`repro.collectives.basics` — software collectives (broadcast,
  gather, reduce, all-reduce, all-gather, all-to-all) implemented as trees
  and permutations over point-to-point messages, so their costs *emerge*
  from the ``tau``/``mu`` model rather than being asserted.
* :mod:`repro.collectives.prefix` — the paper's **vector
  prefix-reduction-sum** (PRS) primitive in three variants: the *direct*
  algorithm (``O(tau log P + mu M log P)``), the *split* algorithm
  (``O(tau P + mu M)``; the paper's split variant is ``O(tau log P + mu
  M)`` on a hypercube — see the module docstring for the deviation note),
  and the CM-5 *control network* (``O(M)`` per primitive, footnote 2 of
  the paper), plus the paper's selection heuristic.

All collectives are generator functions used with ``yield from`` inside an
SPMD program, and all accept a ``group`` (sorted tuple of ranks) so they
can run along one dimension of a processor grid.
"""

from .basics import (
    allgather,
    allreduce,
    alltoall,
    bcast,
    gather,
    reduce,
)
from .extras import alltoallv, exscan, reduce_scatter, scan, scatter
from .pipeline import optimal_chunk_words, prs_pipeline
from .prefix import (
    PRS_ALGORITHMS,
    PRSResult,
    choose_prs_algorithm,
    estimate_prs_seconds,
    prefix_reduction_sum,
    prs_ctrl,
    prs_direct,
    prs_split,
)

__all__ = [
    "PRS_ALGORITHMS",
    "PRSResult",
    "allgather",
    "allreduce",
    "alltoall",
    "alltoallv",
    "bcast",
    "exscan",
    "reduce_scatter",
    "scan",
    "scatter",
    "choose_prs_algorithm",
    "estimate_prs_seconds",
    "gather",
    "optimal_chunk_words",
    "prefix_reduction_sum",
    "prs_ctrl",
    "prs_direct",
    "prs_pipeline",
    "prs_split",
    "reduce",
]
