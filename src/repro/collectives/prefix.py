"""Vector prefix-reduction-sum (PRS) — Section 5.1 of the paper.

Every group member ``i`` holds a local vector ``V_i[0:M-1]``.  PRS computes
*simultaneously*:

* the element-wise **exclusive prefix sum** over members:
  ``F_i[j] = sum_{k<i} V_k[j]`` (member 0 gets all zeros), and
* the element-wise **reduction sum**, delivered to every member:
  ``R[j] = sum_k V_k[j]``.

Combining the two saves start-up cost because both traverse the same data.
Three algorithms are provided:

``direct``
    simultaneous scan + reduction by recursive doubling, exchanging the
    *full* vector each round: ``ceil(log P)`` rounds for the scan plus a
    broadcast of the total from the last member.  Cost
    ``O(tau log P + mu M log P)`` — the paper quotes ``O(tau + mu M log
    P)``; the extra ``log P`` start-ups are negligible exactly where the
    direct algorithm is used (small P).

``split``
    the vector is *split* into P chunks which are transposed across the
    group (all-to-all), scanned locally per column, and transposed back;
    the totals ride the return transpose and a ring all-gather completes
    the reduction.  Per-member volume is ``O(M)`` independent of P:
    cost ``O(tau P + mu M)``.

    Deviation note: the paper's split algorithm [1, 6] achieves
    ``O(tau log P + mu M)`` on a hypercube by pipelining; under the
    two-level (virtual crossbar) model of Section 2 the transpose variant
    implemented here has the same ``mu M`` data term and differs only in
    start-ups (``P`` vs ``log P``).  Every experimental claim the paper
    makes about split vs direct (split wins as P and M grow) is preserved,
    as ``mu M log P`` dominates ``tau P`` for the vector sizes involved.

``ctrl``
    the CM-5 control network performs scans and reductions in hardware; per
    footnote 2 of the paper each primitive is ``O(M)`` with no per-node
    start-up.  Modeled as two combining collectives (one scan, one
    reduction) of ``M`` words each.

Selection heuristic (Section 7): on the CM-5, one-dimensional arrays used
the global (control network) functions; for two-dimensional arrays the
direct algorithm was used when ``P <= 4`` or ``M < P``, otherwise split.
:func:`choose_prs_algorithm` encodes exactly that rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Sequence

import numpy as np

from ..machine.context import Context
from ..machine.ops import CollectiveOp
from .basics import allgather, bcast

__all__ = [
    "PRSResult",
    "PRS_ALGORITHMS",
    "prs_direct",
    "prs_split",
    "prs_ctrl",
    "choose_prs_algorithm",
    "estimate_prs_seconds",
    "prefix_reduction_sum",
]

PRS_ALGORITHMS = ("direct", "split", "pipeline", "ctrl", "auto")

_TAG_DIRECT = 2000
_TAG_SPLIT_FWD = 2100
_TAG_SPLIT_BWD = 2200


@dataclass
class PRSResult:
    """Outcome of one prefix-reduction-sum.

    Attributes
    ----------
    prefix:
        this member's exclusive prefix vector ``F_i`` (int64, length M).
    reduction:
        the global reduction vector ``R`` (identical on all members).
    algorithm:
        which algorithm actually ran (after ``auto`` resolution).
    """

    prefix: np.ndarray
    reduction: np.ndarray
    algorithm: str


def _as_vector(vec: Any) -> np.ndarray:
    v = np.ascontiguousarray(vec)
    if v.ndim != 1:
        v = v.ravel()
    return v.astype(np.int64, copy=False)


def _member_index(ctx: Context, group: Sequence[int]) -> int:
    g = list(group)
    try:
        return g.index(ctx.rank)
    except ValueError:
        raise ValueError(f"rank {ctx.rank} not in PRS group {tuple(group)}") from None


def prs_direct(
    ctx: Context, vec: Any, group: Sequence[int] | None = None
) -> Generator[Any, Any, PRSResult]:
    """Direct algorithm: recursive-doubling scan over full vectors.

    Hillis–Steele inclusive scan across members (works for any group
    size), then exclusive prefix by subtracting the local vector, then a
    binomial broadcast of the total from the last member.
    """
    g = tuple(group) if group is not None else tuple(range(ctx.size))
    P = len(g)
    me = _member_index(ctx, g)
    v = _as_vector(vec)
    M = v.size
    inclusive = v.copy()
    dist = 1
    r = 0
    while dist < P:
        if me + dist < P:
            ctx.send(g[me + dist], inclusive.copy(), words=M, tag=_TAG_DIRECT + r)
        if me - dist >= 0:
            msg = yield ctx.recv(source=g[me - dist], tag=_TAG_DIRECT + r)
            ctx.work(M)  # element-wise add
            inclusive = inclusive + msg.payload
        dist <<= 1
        r += 1
    prefix = inclusive - v
    ctx.work(M)
    # Reduction: the last member holds the total; broadcast it.
    total = inclusive if me == P - 1 else None
    reduction = yield from bcast(ctx, total, root=P - 1, group=g, words=M)
    return PRSResult(prefix=prefix, reduction=np.asarray(reduction), algorithm="direct")


def prs_split(
    ctx: Context, vec: Any, group: Sequence[int] | None = None
) -> Generator[Any, Any, PRSResult]:
    """Split algorithm: transpose, scan columns locally, transpose back.

    Phase 1: member ``i`` splits ``V_i`` into P chunks and sends chunk
    ``p`` to member ``p`` (linear permutation).  Phase 2: member ``p``
    stacks the received rows into a ``P x chunk`` matrix and computes the
    per-column exclusive prefix for *every* source member, plus the column
    totals.  Phase 3: the prefixes are transposed back and the totals
    all-gathered.  Per-member data volume is ``O(M)``.
    """
    g = tuple(group) if group is not None else tuple(range(ctx.size))
    P = len(g)
    me = _member_index(ctx, g)
    v = _as_vector(vec)
    M = v.size

    if P == 1:
        return PRSResult(
            prefix=np.zeros(M, dtype=np.int64), reduction=v.copy(), algorithm="split"
        )

    # Chunk boundaries (chunk p may be empty when M < P).
    bounds = np.linspace(0, M, P + 1).astype(np.int64)
    my_rows: list[np.ndarray | None] = [None] * P
    my_rows[me] = v[bounds[me] : bounds[me + 1]]
    # Phase 1: forward transpose (linear permutation).
    for k in range(1, P):
        dv = (me + k) % P
        sv = (me - k) % P
        chunk = v[bounds[dv] : bounds[dv + 1]]
        ctx.send(g[dv], chunk, words=int(chunk.size), tag=_TAG_SPLIT_FWD + k)
        msg = yield ctx.recv(source=g[sv], tag=_TAG_SPLIT_FWD + k)
        my_rows[sv] = msg.payload

    # Phase 2: local column scan over all P source rows of my chunk.
    chunk_len = int(bounds[me + 1] - bounds[me])
    matrix = np.vstack([np.asarray(r).reshape(1, chunk_len) for r in my_rows])
    ctx.work(P * chunk_len)  # one pass to scan
    csum = np.cumsum(matrix, axis=0)
    prefixes = np.vstack([np.zeros((1, chunk_len), dtype=np.int64), csum[:-1]])
    totals = csum[-1] if P > 0 else np.zeros(chunk_len, dtype=np.int64)

    # Phase 3: backward transpose of per-source prefixes.
    prefix = np.empty(M, dtype=np.int64)
    prefix[bounds[me] : bounds[me + 1]] = prefixes[me]
    for k in range(1, P):
        dv = (me + k) % P
        sv = (me - k) % P
        ctx.send(g[dv], prefixes[dv], words=chunk_len, tag=_TAG_SPLIT_BWD + k)
        msg = yield ctx.recv(source=g[sv], tag=_TAG_SPLIT_BWD + k)
        prefix[bounds[sv] : bounds[sv + 1]] = msg.payload

    # All-gather the chunk totals to assemble the reduction vector.
    gathered = yield from allgather(ctx, totals, group=g, words=max(chunk_len, 1))
    reduction = np.concatenate([np.asarray(t).ravel() for t in gathered])
    return PRSResult(prefix=prefix, reduction=reduction, algorithm="split")


def prs_ctrl(
    ctx: Context, vec: Any, group: Sequence[int] | None = None, key: int = 0
) -> Generator[Any, Any, PRSResult]:
    """Control-network PRS: hardware combining scan + reduction, O(M) each.

    Requires ``ctx.spec.has_control_network``.  The engine synchronizes the
    group, computes both results in one combining step, and charges two
    control-network operations of M words (one scan, one reduction),
    matching footnote 2 of the paper.
    """
    g = tuple(group) if group is not None else tuple(range(ctx.size))
    v = _as_vector(vec)
    M = v.size
    spec = ctx.spec
    if not spec.has_control_network:
        raise ValueError(f"machine {spec.name!r} has no control network; use direct/split")

    def _combine(payloads: dict) -> tuple[dict, int]:
        order = sorted(payloads)
        stack = np.vstack([payloads[r].reshape(1, -1) for r in order])
        csum = np.cumsum(stack, axis=0)
        reduction = csum[-1]
        results = {}
        for i, r in enumerate(order):
            pre = csum[i - 1] if i > 0 else np.zeros_like(reduction)
            results[r] = (pre, reduction)
        return results, 2 * M  # scan + reduce, M words each

    pre, red = yield CollectiveOp(
        group=g, kind="prs", payload=v, key=key, combine=_combine
    )
    return PRSResult(prefix=np.asarray(pre), reduction=np.asarray(red), algorithm="ctrl")


def estimate_prs_seconds(spec, algorithm: str, P: int, M: int) -> float:
    """Closed-form cost estimate of one PRS, used by the ``auto`` policy.

    direct: ~2 ceil(log P) full-vector exchanges (scan + total broadcast);
    split:  two transposes plus a ring all-gather of the totals;
    ctrl:   two hardware combining operations of M words.
    """
    import math

    logp = max(1, math.ceil(math.log2(max(P, 2))))
    if algorithm == "direct":
        return 2 * logp * spec.message_time(M)
    if algorithm == "split":
        return 2 * ((P - 1) * spec.tau + spec.mu * M) + (
            (P - 1) * spec.tau + spec.mu * M
        )
    if algorithm == "pipeline":
        if P & (P - 1) or P < 2:
            return float("inf")
        # (pipeline depth + chunks) * per-stage cost; a rank's worst case
        # per chunk is 4 messages carrying ~6 chunk-lengths of data.
        best = float("inf")
        g = 1
        while g <= max(M, 1):
            chunks = max(1, -(-M // g))
            stage = 4 * spec.tau + 6 * spec.mu * min(g, max(M, 1))
            best = min(best, (2 * logp + chunks) * stage)
            g *= 2
        return best
    if algorithm == "ctrl":
        if not spec.has_control_network:
            return float("inf")
        return spec.ctrl_time(2 * M)
    raise ValueError(f"unknown PRS algorithm {algorithm!r}")


def choose_prs_algorithm(
    ctx: Context, group_size: int, vector_len: int, requested: str = "auto"
) -> str:
    """Resolve ``auto`` to a concrete PRS algorithm.

    Software selection follows the paper's Section 7 policy: the direct
    algorithm when the group is small (``P <= 4``) or the vector is
    shorter than the group (``M < P``), else the split algorithm.  The
    control network, when present, is used when its closed-form estimate
    beats the software pick — the CM-5's combining hardware processes
    scans element-serially, so for long vectors the data-network
    algorithms win (this is why the paper's 2-D experiments used
    direct/split rather than the global functions).
    """
    if requested != "auto":
        if requested not in PRS_ALGORITHMS:
            raise ValueError(f"unknown PRS algorithm {requested!r}")
        return requested
    if group_size <= 4 or vector_len < group_size:
        software = "direct"
    else:
        software = "split"
        # The pipelined tree realizes the [6] O(tau log P + mu M) bound;
        # it overtakes the transpose split once P start-ups dominate.
        if group_size & (group_size - 1) == 0 and estimate_prs_seconds(
            ctx.spec, "pipeline", group_size, vector_len
        ) < estimate_prs_seconds(ctx.spec, "split", group_size, vector_len):
            software = "pipeline"
    if ctx.spec.has_control_network:
        ctrl_est = estimate_prs_seconds(ctx.spec, "ctrl", group_size, vector_len)
        soft_est = estimate_prs_seconds(ctx.spec, software, group_size, vector_len)
        if ctrl_est <= soft_est:
            return "ctrl"
    return software


def prefix_reduction_sum(
    ctx: Context,
    vec: Any,
    group: Sequence[int] | None = None,
    algorithm: str = "auto",
    key: int = 0,
) -> Generator[Any, Any, PRSResult]:
    """Run PRS with the requested (or auto-selected) algorithm."""
    g = tuple(group) if group is not None else tuple(range(ctx.size))
    v = _as_vector(vec)
    algo = choose_prs_algorithm(ctx, len(g), v.size, algorithm)
    if algo == "direct":
        result = yield from prs_direct(ctx, v, g)
    elif algo == "split":
        result = yield from prs_split(ctx, v, g)
    elif algo == "pipeline":
        from .pipeline import prs_pipeline

        result = yield from prs_pipeline(ctx, v, g)
    elif algo == "ctrl":
        result = yield from prs_ctrl(ctx, v, g, key=key)
    else:  # pragma: no cover - choose() already validated
        raise ValueError(f"unknown PRS algorithm {algo!r}")
    return result
