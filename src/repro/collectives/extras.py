"""Additional collectives: scatter, reduce-scatter, scan, all-to-all-v.

These complete the communication library to the standard MPI surface the
HPF-era runtimes assumed.  Like :mod:`repro.collectives.basics`, every
function is a generator used with ``yield from`` and accepts a ``group``
sub-communicator; costs emerge from point-to-point messages.

Cost shapes (P = group size, M = per-member words):

===============  ====================================================
scatter          binomial tree: tau log P + mu * (remaining payload)
reduce_scatter   recursive halving (2^k members): tau log P + mu M
scan / exscan    recursive doubling: (tau + mu M) log P
alltoallv        linear permutation: (P-1) tau + mu * total outgoing
===============  ====================================================
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Sequence

import numpy as np

from ..machine.context import Context, payload_words
from .basics import _member_index, _resolve_group, _add

__all__ = ["scatter", "reduce_scatter", "scan", "exscan", "alltoallv"]

_TAG_SCATTER = 1600
_TAG_RSCAT = 1700
_TAG_SCAN = 1800
_TAG_ATAV = 1900


def scatter(
    ctx: Context,
    blocks: Sequence[Any] | None,
    root: int = 0,
    group: Sequence[int] | None = None,
    words: Sequence[int] | None = None,
) -> Generator[Any, Any, Any]:
    """Binomial-tree scatter: member ``i`` receives ``blocks[i]``.

    ``blocks`` is required at the root (member index ``root``) and ignored
    elsewhere.  The tree forwards each subtree's blocks together, so the
    root sends ``O(total)`` words in ``log P`` messages rather than
    ``P-1`` separate start-ups.
    """
    g = _resolve_group(ctx, group)
    P = len(g)
    me = _member_index(ctx, g)
    v = (me - root) % P
    if v == 0:
        if blocks is None or len(blocks) != P:
            raise ValueError(f"root needs {P} blocks, got {blocks and len(blocks)}")
        # bundle[j] = block for virtual member j.
        bundle = {j: blocks[(j + root) % P] for j in range(P)}
    else:
        bundle = None

    nrounds = 0
    while (1 << nrounds) < P:
        nrounds += 1
    # Reverse binomial broadcast: at round r (high to low), the holder of
    # a bundle covering [v, v + 2^(r+1)) sends the upper half onward.
    for r in range(nrounds - 1, -1, -1):
        dist = 1 << r
        if bundle is not None and v % (2 * dist) == 0 and v + dist < P:
            upper = {j: b for j, b in bundle.items() if j >= v + dist}
            bundle = {j: b for j, b in bundle.items() if j < v + dist}
            w = (
                sum(payload_words(b) for b in upper.values())
                if words is None
                else sum(words[(j + root) % P] for j in upper)
            )
            ctx.send(g[(v + dist + root) % P], upper, words=w, tag=_TAG_SCATTER + r)
        elif bundle is None and dist <= v and v % dist == 0 and v % (2 * dist) == dist:
            src = g[((v - dist) + root) % P]
            msg = yield ctx.recv(source=src, tag=_TAG_SCATTER + r)
            bundle = msg.payload
    assert bundle is not None and v in bundle
    return bundle[v]


def reduce_scatter(
    ctx: Context,
    vec: np.ndarray,
    group: Sequence[int] | None = None,
    op: Callable = _add,
) -> Generator[Any, Any, np.ndarray]:
    """Recursive-halving reduce-scatter for power-of-two groups.

    Each member contributes a length-M vector; member ``i`` ends with the
    element-wise reduction of chunk ``i`` (M/P slots, padded chunks for
    non-dividing M).  Cost ``tau log P + mu M (1 - 1/P)``.
    """
    g = _resolve_group(ctx, group)
    P = len(g)
    if P & (P - 1):
        raise ValueError(f"reduce_scatter needs a power-of-two group, got {P}")
    me = _member_index(ctx, g)
    v = np.asarray(vec)
    M = v.shape[0]
    bounds = np.linspace(0, M, P + 1).astype(int)

    lo, hi = 0, P
    work = v
    off = 0  # global element offset of `work`'s first element
    r = 0
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if me < mid:
            # Keep lower half, send upper half to partner in upper group.
            partner = g[me + (mid - lo)]
            cut = bounds[mid] - off
            ctx.send(partner, work[cut:], words=int(work[cut:].size), tag=_TAG_RSCAT + r)
            msg = yield ctx.recv(source=partner, tag=_TAG_RSCAT + r)
            work = op(work[:cut], msg.payload)
            ctx.work(int(np.asarray(work).size))
            hi = mid
        else:
            partner = g[me - (mid - lo)]
            cut = bounds[mid] - off
            ctx.send(partner, work[:cut], words=int(work[:cut].size), tag=_TAG_RSCAT + r)
            msg = yield ctx.recv(source=partner, tag=_TAG_RSCAT + r)
            work = op(work[cut:], msg.payload)
            ctx.work(int(np.asarray(work).size))
            lo = mid
            off = int(bounds[mid])
        r += 1
    return np.asarray(work)


def scan(
    ctx: Context,
    value: Any,
    op: Callable = _add,
    group: Sequence[int] | None = None,
    words: int | None = None,
) -> Generator[Any, Any, Any]:
    """Inclusive scan over group members (recursive doubling, any P)."""
    g = _resolve_group(ctx, group)
    P = len(g)
    me = _member_index(ctx, g)
    w = words if words is not None else payload_words(value)
    acc = value
    dist = 1
    r = 0
    while dist < P:
        if me + dist < P:
            ctx.send(g[me + dist], acc, words=w, tag=_TAG_SCAN + r)
        if me - dist >= 0:
            msg = yield ctx.recv(source=g[me - dist], tag=_TAG_SCAN + r)
            ctx.work(w)
            acc = op(msg.payload, acc)
        dist <<= 1
        r += 1
    return acc


def exscan(
    ctx: Context,
    value: Any,
    op: Callable = _add,
    group: Sequence[int] | None = None,
    words: int | None = None,
    identity: Any = None,
) -> Generator[Any, Any, Any]:
    """Exclusive scan: member 0 gets ``identity`` (or None)."""
    g = _resolve_group(ctx, group)
    me = _member_index(ctx, g)
    # Shift the inclusive scan: send my inclusive value right by one.
    inclusive = yield from scan(ctx, value, op=op, group=g, words=words)
    w = words if words is not None else payload_words(value)
    if me + 1 < len(g):
        ctx.send(g[me + 1], inclusive, words=w, tag=_TAG_SCAN + 99)
    if me == 0:
        return identity
    msg = yield ctx.recv(source=g[me - 1], tag=_TAG_SCAN + 99)
    return msg.payload


def alltoallv(
    ctx: Context,
    blocks: Sequence[Any],
    group: Sequence[int] | None = None,
    words: Sequence[int] | None = None,
) -> Generator[Any, Any, list]:
    """Variable-size personalized all-to-all (linear permutation).

    Unlike :func:`repro.collectives.basics.alltoall`, block sizes may
    differ per destination; ``None`` blocks are skipped entirely (no
    message, no start-up) and come back as ``None``.
    """
    g = _resolve_group(ctx, group)
    P = len(g)
    me = _member_index(ctx, g)
    if len(blocks) != P:
        raise ValueError(f"need {P} blocks, got {len(blocks)}")
    out: list[Any] = [None] * P
    out[me] = blocks[me]
    # Announce sizes (single word per partner) so empties can be skipped.
    have = {}
    for k in range(1, P):
        dv = (me + k) % P
        sv = (me - k) % P
        w = 0 if blocks[dv] is None else (
            words[dv] if words is not None else payload_words(blocks[dv])
        )
        ctx.send(g[dv], w if blocks[dv] is not None else 0, words=1, tag=_TAG_ATAV + k)
        msg = yield ctx.recv(source=g[sv], tag=_TAG_ATAV + k)
        have[sv] = msg.payload
    for k in range(1, P):
        dv = (me + k) % P
        if blocks[dv] is not None:
            w = words[dv] if words is not None else payload_words(blocks[dv])
            ctx.send(g[dv], blocks[dv], words=w, tag=_TAG_ATAV + 200 + k)
    for k in range(1, P):
        sv = (me - k) % P
        if have[sv]:
            msg = yield ctx.recv(source=g[sv], tag=_TAG_ATAV + 200 + k)
            out[sv] = msg.payload
    return out
