"""Experiment configurations of the paper's Section 7.

"Experiments were conducted for six one-dimensional arrays (N = 4096,
8192, 16384, 32768, 65536, 131072) and four two-dimensional arrays (N x N
= 64x64, 128x128, 256x256, 512x512).  On the CM-5, 16 processors for
one-dimensional arrays and 4x4 processors for two-dimensional arrays were
used. ... Various block sizes were used ... but the block size for
dimension 0 was fixed to be the same as that for dimension 1 in the
two-dimensional arrays."

The scaling study used 256 processors (16x16) with the local array size
held at that of N = 65536 / 512x512 on 16 processors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "PAPER_1D_SIZES",
    "PAPER_2D_SIZES",
    "PAPER_DENSITIES",
    "ExperimentConfig",
    "block_size_sweep",
    "paper_configs_1d",
    "paper_configs_2d",
]

#: One-dimensional global sizes (16 processors).
PAPER_1D_SIZES = (4096, 8192, 16384, 32768, 65536, 131072)

#: Two-dimensional edge lengths (4 x 4 processors).
PAPER_2D_SIZES = (64, 128, 256, 512)

#: Random mask densities (plus the structured "half"/"LT" masks).
PAPER_DENSITIES = (0.1, 0.3, 0.5, 0.7, 0.9)

#: Processor counts of the paper's two machine configurations.
PAPER_1D_PROCS = 16
PAPER_2D_GRID = (4, 4)
PAPER_SCALED_1D_PROCS = 256
PAPER_SCALED_2D_GRID = (16, 16)


@dataclass(frozen=True)
class ExperimentConfig:
    """One (shape, grid, block, mask) experiment point."""

    shape: tuple[int, ...]
    grid: tuple[int, ...]
    block: tuple[int, ...]
    mask_kind: object  # density float or "half" / "lt"

    @property
    def local_size(self) -> int:
        out = 1
        for n, p in zip(self.shape, self.grid):
            out *= n // p
        return out

    def label(self) -> str:
        shape = "x".join(str(n) for n in self.shape)
        block = "x".join(str(w) for w in self.block)
        return f"N={shape} P={'x'.join(map(str, self.grid))} W={block} mask={self.mask_kind}"


def block_size_sweep(n: int, p: int, max_points: int | None = None) -> tuple[int, ...]:
    """Power-of-two block sizes from cyclic (1) to block (N/P).

    These are the x-axes of Figures 3-5.  ``max_points`` trims the sweep
    (keeping both endpoints) for fast benchmark runs.
    """
    l = n // p
    sizes = []
    w = 1
    while w <= l:
        if l % w == 0:
            sizes.append(w)
        w *= 2
    if sizes[-1] != l:
        sizes.append(l)
    if max_points is not None and len(sizes) > max_points:
        # Keep endpoints, subsample the middle.
        step = (len(sizes) - 1) / (max_points - 1)
        keep = sorted({round(i * step) for i in range(max_points)})
        sizes = [sizes[i] for i in keep]
    return tuple(sizes)


def paper_configs_1d(
    sizes=PAPER_1D_SIZES,
    procs: int = PAPER_1D_PROCS,
    densities=PAPER_DENSITIES,
    include_structured: bool = True,
    block_points: int | None = None,
) -> Iterator[ExperimentConfig]:
    """All 1-D experiment points of Section 7 (optionally subsampled)."""
    masks = list(densities) + (["half"] if include_structured else [])
    for n in sizes:
        for w in block_size_sweep(n, procs, block_points):
            for mk in masks:
                yield ExperimentConfig(
                    shape=(n,), grid=(procs,), block=(w,), mask_kind=mk
                )


def paper_configs_2d(
    sizes=PAPER_2D_SIZES,
    grid=PAPER_2D_GRID,
    densities=PAPER_DENSITIES,
    include_structured: bool = True,
    block_points: int | None = None,
) -> Iterator[ExperimentConfig]:
    """All 2-D experiment points (block size equal on both dimensions)."""
    masks = list(densities) + (["lt"] if include_structured else [])
    for n in sizes:
        # Equal block size on both dimensions (paper's constraint); the
        # sweep is bounded by the smaller local extent.
        for w in block_size_sweep(n, grid[0], block_points):
            if w > n // grid[1]:
                continue
            for mk in masks:
                yield ExperimentConfig(
                    shape=(n, n), grid=tuple(grid), block=(w, w), mask_kind=mk
                )
