"""Mask array generators (Section 7 of the paper).

"Five input mask arrays were randomly generated with density = 10%, 30%,
50%, 70%, and 90%, and one mask array was made in such a way that the mask
value was true in the one-dimensional array if the global index was less
than N/2, and that in the two-dimensional array was true if the global
index on dimension 1 was larger than that on dimension 0."

The structured masks are interesting because their trues are spatially
clustered: the 1-D half mask concentrates all work on the lower half of
the index space (load imbalance), and the 2-D triangle gives every
processor a different density (the paper labels the column "LT").
"""

from __future__ import annotations

import numpy as np

__all__ = ["random_mask", "half_mask_1d", "lt_mask_2d", "clustered_mask", "make_mask"]


def random_mask(shape, density: float, seed: int = 0) -> np.ndarray:
    """Bernoulli mask: each element true with probability ``density``.

    Deterministic for a given (shape, density, seed) triple, so every
    experiment and test sees identical workloads.
    """
    if not (0.0 <= density <= 1.0):
        raise ValueError(f"density must be in [0, 1], got {density}")
    rng = np.random.default_rng(seed + int(density * 1000) * 1_000_003)
    return rng.random(shape) < density


def half_mask_1d(n: int) -> np.ndarray:
    """The paper's structured 1-D mask: true iff global index < N/2."""
    return np.arange(n) < n // 2


def lt_mask_2d(shape) -> np.ndarray:
    """The paper's structured 2-D mask ("LT"): true iff the global index on
    dimension 1 exceeds that on dimension 0.

    In our axis convention (paper dimension 1 = numpy axis 0 for a 2-D
    array) this selects the strictly lower triangle of the numpy array.
    """
    if len(shape) != 2:
        raise ValueError(f"LT mask needs a 2-D shape, got {shape}")
    i1 = np.arange(shape[0])[:, None]  # paper dimension 1
    i0 = np.arange(shape[1])[None, :]  # paper dimension 0
    return i1 > i0


def clustered_mask(shape, density: float, run_length: int = 32, seed: int = 0) -> np.ndarray:
    """Spatially clustered mask: trues arrive in runs of ~``run_length``.

    Section 7 notes that the block-distribution self-send effect "will not
    happen" when the selected elements are *not* randomly distributed —
    this generator produces such non-random masks (a two-state Markov
    chain over the flattened index space whose stationary density is
    ``density``), for studying that remark and redistribution behaviour
    under realistic spatial correlation (e.g. dead particles cluster where
    the field is strong).
    """
    if not (0.0 < density < 1.0):
        if density in (0.0, 1.0):
            return np.full(shape, bool(density))
        raise ValueError(f"density must be in [0, 1], got {density}")
    if run_length < 1:
        raise ValueError(f"run_length must be >= 1, got {run_length}")
    rng = np.random.default_rng(seed * 7_919 + int(density * 997) + run_length)
    n = int(np.prod(shape))
    # Two-state Markov chain: stay-true prob chosen so the expected true
    # run is run_length; leave-false prob fixed by the target density.
    p_tf = 1.0 / run_length  # true -> false
    p_ft = density * p_tf / max(1.0 - density, 1e-12)  # false -> true
    out = np.empty(n, dtype=bool)
    state = rng.random() < density
    u = rng.random(n)
    for i in range(n):
        out[i] = state
        if state:
            state = u[i] >= p_tf
        else:
            state = u[i] < p_ft
    return out.reshape(shape)


def make_mask(shape, kind, seed: int = 0) -> np.ndarray:
    """Front door used by experiments: ``kind`` is a density in (0, 1], a
    percentage string (``"30%"``), or a structured-mask name (``"half"``,
    ``"lt"``)."""
    if isinstance(kind, str):
        k = kind.strip().lower()
        if k in ("half", "n/2"):
            if len(shape) != 1:
                raise ValueError("half mask is 1-D only")
            return half_mask_1d(shape[0])
        if k == "lt":
            return lt_mask_2d(shape)
        if k.startswith("clustered:"):
            return clustered_mask(shape, float(k.split(":", 1)[1]), seed=seed)
        if k.endswith("%"):
            return random_mask(shape, float(k[:-1]) / 100.0, seed)
        raise ValueError(f"unknown mask kind {kind!r}")
    return random_mask(shape, float(kind), seed)
