"""Workload generators reproducing the paper's Section 7 experiment inputs.

* :mod:`repro.workloads.masks` — the six mask families: random Bernoulli at
  densities 10/30/50/70/90%, the structured 1-D half mask, and the
  structured 2-D lower-triangle ("LT") mask;
* :mod:`repro.workloads.grids` — the array sizes, processor counts and
  block-size sweeps of the paper's experiments.
"""

from .grids import (
    PAPER_1D_SIZES,
    PAPER_2D_SIZES,
    PAPER_DENSITIES,
    block_size_sweep,
    paper_configs_1d,
    paper_configs_2d,
)
from .masks import clustered_mask, half_mask_1d, lt_mask_2d, make_mask, random_mask

__all__ = [
    "PAPER_1D_SIZES",
    "PAPER_2D_SIZES",
    "PAPER_DENSITIES",
    "block_size_sweep",
    "clustered_mask",
    "half_mask_1d",
    "lt_mask_2d",
    "make_mask",
    "paper_configs_1d",
    "paper_configs_2d",
    "random_mask",
]
