"""d-dimensional block-cyclic layout over a logical processor grid.

Conventions (Section 3 of the paper):

* the array shape is written ``(N_{d-1}, ..., N_1, N_0)`` and row-major
  ordering is used, so **paper dimension 0 varies fastest** — it is the
  *last* numpy axis.  Paper dimension ``i`` is numpy axis ``d-1-i``
  (:meth:`GridLayout.axis`).
* the processor grid is ``(P_{d-1}, ..., P_0)``; a processor has grid
  coordinates ``(p_{d-1}, ..., p_0)``.  Machine ranks enumerate the grid
  with dimension 0 fastest: ``rank = sum_i p_i * prod_{k<i} P_k``.

A :class:`GridLayout` owns one :class:`~repro.hpf.dimlayout.DimLayout` per
dimension plus the rank mapping, and provides scatter/gather between a
global numpy array and per-rank local blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property, lru_cache
from typing import Sequence

import numpy as np

from .dimlayout import DimLayout
from .dist import resolve_dist

__all__ = ["GridLayout"]


@lru_cache(maxsize=1024)
def _grid_flat_index(dims: tuple[DimLayout, ...], rank: int) -> np.ndarray:
    """Cached :meth:`GridLayout.global_flat_index` result (read-only).

    Keyed by the dims tuple (layouts are hashable value objects), so the
    redistribution pre-passes stop recomputing the same per-rank map on
    every PACK/UNPACK call.
    """
    grid = GridLayout(dims=dims)
    idx = grid.local_global_indices(rank)
    flat = np.zeros(grid.local_shape, dtype=np.int64)
    stride = 1
    # accumulate strides from the last numpy axis (paper dim 0) upward
    for j in range(grid.d - 1, -1, -1):
        reshape = [1] * grid.d
        reshape[j] = len(idx[j])
        flat = flat + idx[j].astype(np.int64).reshape(reshape) * stride
        stride *= grid.shape[j]
    flat.setflags(write=False)
    return flat


@dataclass(frozen=True)
class GridLayout:
    """Layout of a rank-d array; ``dims[i]`` is paper dimension ``i``.

    Note the *constructor order*: ``dims`` is indexed by paper dimension
    (0 = fastest varying), while the classmethod :meth:`create` accepts
    shape/grid/block tuples in the familiar numpy order (slowest first)
    and flips them.
    """

    dims: tuple[DimLayout, ...]

    def __post_init__(self) -> None:
        if not self.dims:
            raise ValueError("need at least one dimension")

    # ------------------------------------------------------------- factory
    @classmethod
    def create(
        cls,
        shape: Sequence[int],
        grid: Sequence[int],
        block: Sequence | int | str | None = None,
    ) -> "GridLayout":
        """Build a layout from numpy-order tuples.

        Parameters
        ----------
        shape:
            array shape ``(N_{d-1}, ..., N_0)`` (numpy order).
        grid:
            processor grid ``(P_{d-1}, ..., P_0)`` (numpy order).
        block:
            per-dimension block sizes (numpy order), or one value applied
            to every dimension.  Each entry may be an int, a
            :class:`~repro.hpf.dist.Dist`, ``"block"`` or ``"cyclic"``.
            Default: ``"block"``.
        """
        shape = tuple(int(n) for n in shape)
        grid = tuple(int(p) for p in grid)
        if len(shape) != len(grid):
            raise ValueError(f"shape {shape} and grid {grid} have different ranks")
        d = len(shape)
        if block is None:
            block = "block"
        if isinstance(block, (int, str)) or not isinstance(block, (list, tuple)):
            block = [block] * d
        if len(block) != d:
            raise ValueError(f"block spec {block} has wrong rank for shape {shape}")
        dims = []
        # numpy axis j is paper dimension d-1-j.
        for i in range(d):  # paper dimension i
            j = d - 1 - i
            w = resolve_dist(block[j], shape[j], grid[j])
            dims.append(DimLayout(n=shape[j], p=grid[j], w=w))
        return cls(dims=tuple(dims))

    # ------------------------------------------------------------ geometry
    @property
    def d(self) -> int:
        """Array rank."""
        return len(self.dims)

    def axis(self, i: int) -> int:
        """Numpy axis corresponding to paper dimension ``i``."""
        return self.d - 1 - i

    @cached_property
    def shape(self) -> tuple[int, ...]:
        """Global shape in numpy order."""
        return tuple(self.dims[self.d - 1 - j].n for j in range(self.d))

    @cached_property
    def grid(self) -> tuple[int, ...]:
        """Processor grid in numpy order."""
        return tuple(self.dims[self.d - 1 - j].p for j in range(self.d))

    @cached_property
    def local_shape(self) -> tuple[int, ...]:
        """Per-rank local block shape in numpy order (same on every rank)."""
        return tuple(self.dims[self.d - 1 - j].l for j in range(self.d))

    @property
    def nprocs(self) -> int:
        out = 1
        for dim in self.dims:
            out *= dim.p
        return out

    @property
    def n(self) -> int:
        """Global element count N."""
        out = 1
        for dim in self.dims:
            out *= dim.n
        return out

    @property
    def local_size(self) -> int:
        """Per-rank element count L = N / P."""
        return self.n // self.nprocs

    # --------------------------------------------------------- rank mapping
    def coords_of_rank(self, rank: int) -> tuple[int, ...]:
        """Grid coordinates ``(p_{d-1}, ..., p_0)`` — *paper* order tuple
        indexed so that ``coords[i]`` is the coordinate on paper dim i."""
        if not (0 <= rank < self.nprocs):
            raise ValueError(f"rank {rank} out of range [0, {self.nprocs})")
        coords = []
        r = rank
        for dim in self.dims:  # dimension 0 fastest
            coords.append(r % dim.p)
            r //= dim.p
        return tuple(coords)

    def rank_of_coords(self, coords: Sequence[int]) -> int:
        """Inverse of :meth:`coords_of_rank` (``coords[i]`` = paper dim i)."""
        if len(coords) != self.d:
            raise ValueError(f"coords {coords} has wrong rank {len(coords)} != {self.d}")
        rank = 0
        stride = 1
        for i, dim in enumerate(self.dims):
            c = coords[i]
            if not (0 <= c < dim.p):
                raise ValueError(f"coordinate {c} out of range on paper dim {i}")
            rank += c * stride
            stride *= dim.p
        return rank

    def group_along(self, i: int, coords: Sequence[int]) -> tuple[int, ...]:
        """Ranks of the processors varying only paper dimension ``i``.

        Returned sorted ascending, which coincides with increasing ``p_i``
        because lower dimensions have smaller rank strides.
        """
        if not (0 <= i < self.d):
            raise ValueError(f"paper dimension {i} out of range")
        # Ranks in a group differ only in the p_i term, which has stride
        # prod_{k<i} P_k; increasing p_i already yields ascending ranks.
        stride = 1
        for k in range(i):
            stride *= self.dims[k].p
        base = self.rank_of_coords(coords) - coords[i] * stride
        return tuple(base + pi * stride for pi in range(self.dims[i].p))

    # ------------------------------------------------------ scatter/gather
    def local_global_indices(self, rank: int) -> list[np.ndarray]:
        """Per-numpy-axis sorted global indices owned by ``rank``.

        ``np.ix_`` of these index vectors selects exactly the rank's local
        block, in local storage order.
        """
        coords = self.coords_of_rank(rank)
        out = []
        for j in range(self.d):  # numpy axis order
            i = self.d - 1 - j
            out.append(self.dims[i].globals_(coords[i]))
        return out

    def _block_slices(self, rank: int) -> tuple[slice, ...] | None:
        """Per-numpy-axis slices selecting ``rank``'s local block, or None
        when some dimension is not block-distributed (multi-tile).

        When every dimension is a single tile, the local block is a plain
        hyperrectangle — slicing it avoids the ``np.ix_`` gather/scatter
        fancy-index path entirely.
        """
        if any(dim.t != 1 for dim in self.dims):
            return None
        coords = self.coords_of_rank(rank)
        out = []
        for j in range(self.d):  # numpy axis order
            i = self.d - 1 - j
            c, w = coords[i], self.dims[i].w
            out.append(slice(c * w, (c + 1) * w))
        return tuple(out)

    def local_block(
        self, global_array: np.ndarray, rank: int, copy: bool = True
    ) -> np.ndarray:
        """Extract only ``rank``'s local block of a global array.

        The single-rank fast path under :meth:`scatter`: an execution
        backend whose rank processes can see the global array (e.g.
        through a shared-memory segment) calls this with its own rank and
        never materializes the other ``nprocs - 1`` blocks.  ``copy=False``
        permits returning a view when the layout allows it (all-block
        layouts slice directly) — callers that only *read* the block
        (PACK/UNPACK programs) skip the materialization.
        """
        global_array = np.asarray(global_array)
        if global_array.shape != self.shape:
            raise ValueError(
                f"array shape {global_array.shape} does not match layout {self.shape}"
            )
        sel = self._block_slices(rank)
        if sel is not None:
            block = global_array[sel]
            return block.copy() if copy else block
        idx = self.local_global_indices(rank)
        return global_array[np.ix_(*idx)]

    def scatter(self, global_array: np.ndarray, copy: bool = True) -> list[np.ndarray]:
        """Split a global array into per-rank local blocks.

        ``copy=False`` permits returning views of ``global_array`` when the
        layout allows it (all-block layouts slice it directly) — callers
        that only *read* the blocks (PACK/UNPACK programs) skip the full
        materialization.
        """
        return [
            self.local_block(global_array, rank, copy=copy)
            for rank in range(self.nprocs)
        ]

    def gather(self, locals_: Sequence[np.ndarray], dtype=None) -> np.ndarray:
        """Reassemble a global array from per-rank local blocks."""
        if len(locals_) != self.nprocs:
            raise ValueError(f"need {self.nprocs} local blocks, got {len(locals_)}")
        if dtype is None:
            dtype = np.asarray(locals_[0]).dtype
        out = np.empty(self.shape, dtype=dtype)
        for rank, block in enumerate(locals_):
            block = np.asarray(block)
            if block.shape != self.local_shape:
                raise ValueError(
                    f"rank {rank} block shape {block.shape} != {self.local_shape}"
                )
            sel = self._block_slices(rank)
            if sel is not None:
                out[sel] = block
            else:
                idx = self.local_global_indices(rank)
                out[np.ix_(*idx)] = block
        return out

    # -------------------------------------------------- global rank helpers
    def global_flat_index(self, rank: int) -> np.ndarray:
        """Row-major global flat index of every local element of ``rank``,
        shaped like the local block.

        Used by oracle tests and by the redistribution pre-passes (the
        paper combines the d per-dimension indices into one global index to
        halve index traffic — Section 6.3).  Cached per layout/rank;
        returned read-only.
        """
        return _grid_flat_index(self.dims, rank)

    def describe(self) -> str:
        lines = [f"GridLayout d={self.d} shape={self.shape} grid={self.grid}"]
        for i in range(self.d - 1, -1, -1):
            lines.append(f"  dim {i}: {self.dims[i].describe()}")
        return "\n".join(lines)
