"""Conformance and alignment checks.

The paper assumes the mask array ``M`` is *conformable with and aligned to*
the input array ``A`` (PACK), and that the field array ``F`` and result
array ``A`` are conformable with and aligned to ``M`` (UNPACK).  In HPF
terms: same shape, and distributed identically so corresponding elements
are co-resident.  These helpers enforce that contract early with precise
error messages instead of letting shape bugs surface as wrong answers deep
inside the ranking stage.
"""

from __future__ import annotations

import numpy as np

from .grid import GridLayout

__all__ = ["check_conformable", "check_aligned"]


def check_conformable(a: np.ndarray, b: np.ndarray, what: str = "arrays") -> None:
    """Raise unless the two arrays have identical shape."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise ValueError(f"{what} not conformable: {a.shape} vs {b.shape}")


def check_aligned(layout_a: GridLayout, layout_b: GridLayout, what: str = "arrays") -> None:
    """Raise unless the two layouts place every element identically."""
    if layout_a.d != layout_b.d:
        raise ValueError(f"{what} not aligned: ranks differ ({layout_a.d} vs {layout_b.d})")
    for i, (da, db) in enumerate(zip(layout_a.dims, layout_b.dims)):
        if (da.n, da.p, da.w) != (db.n, db.p, db.w):
            raise ValueError(
                f"{what} not aligned on paper dimension {i}: "
                f"{da.describe()} vs {db.describe()}"
            )


def check_local_block(layout: GridLayout, block: np.ndarray, rank: int) -> None:
    """Raise unless ``block`` has the layout's local shape."""
    block = np.asarray(block)
    if block.shape != layout.local_shape:
        raise ValueError(
            f"rank {rank}: local block shape {block.shape} != layout local "
            f"shape {layout.local_shape}"
        )
