"""Visibility and hygiene for the layout layer's module-level LRU caches.

:mod:`repro.hpf.grid` / :mod:`repro.hpf.vector` /
:mod:`repro.hpf.dimlayout` memoize their read-only index maps with
``functools.lru_cache``.  Those caches are process-global and — until
this module — invisible: no hit/miss accounting, and a forked
``MpBackend`` child inherited the parent's fully-populated caches,
inflating every rank's resident memory with maps for *all* ranks while
the child only ever asks for its own.

:func:`layout_cache_stats` exposes each cache's ``cache_info()`` as plain
dicts (re-exported through :mod:`repro.obs`);
:func:`clear_layout_caches` drops them all — called at the top of every
mp child process right after the fork.
"""

from __future__ import annotations

__all__ = ["clear_layout_caches", "layout_cache_stats", "publish_layout_cache_stats"]


def _cached_functions():
    from . import dimlayout, grid, vector

    return {
        "hpf.grid.flat_index": grid._grid_flat_index,
        "hpf.vector.globals": vector._vec_globals,
        "hpf.dimlayout.globals": dimlayout._dim_globals,
    }


def layout_cache_stats() -> dict[str, dict[str, int]]:
    """Hit/miss/size counters of every layout-layer LRU cache.

    Returns ``{cache name: {"hits", "misses", "entries", "maxsize"}}``
    from ``functools.lru_cache.cache_info()`` — counters are since
    process start (or the last :func:`clear_layout_caches`).
    """
    stats = {}
    for name, fn in _cached_functions().items():
        info = fn.cache_info()
        stats[name] = {
            "hits": info.hits,
            "misses": info.misses,
            "entries": info.currsize,
            "maxsize": info.maxsize,
        }
    return stats


def publish_layout_cache_stats(metrics=None) -> dict[str, dict[str, int]]:
    """Push the current counters into a metrics registry as gauges
    (``layout_cache.<name>.hits`` / ``.misses`` / ``.entries``).

    ``metrics=None`` uses the process-global registry when one is enabled
    (:func:`repro.obs.enable_global_metrics`); silently a no-op otherwise.
    Returns the stats either way.
    """
    stats = layout_cache_stats()
    if metrics is None:
        from ..obs.registry import current_global_metrics

        metrics = current_global_metrics()
    if metrics is not None:
        for name, info in stats.items():
            for field in ("hits", "misses", "entries"):
                metrics.set(f"layout_cache.{name}.{field}", info[field])
    return stats


def clear_layout_caches() -> None:
    """Drop every layout-layer LRU cache (counters reset too).

    Called in freshly forked mp rank processes so a child's memory holds
    only the maps *it* computes, not the parent's accumulated working
    set; also useful in tests that assert cold-path behaviour.
    """
    for fn in _cached_functions().values():
        fn.cache_clear()
