"""Index algebra for one block-cyclically distributed dimension.

With extent ``N``, processor count ``P`` and block size ``W`` (Section 3 of
the paper, which assumes ``P*W | N``):

* a **block** is ``W`` consecutive global indices;
* a **tile** is ``P`` consecutive blocks (``S = P*W`` indices), one block
  per processor — so each processor owns exactly one block of every tile;
* ``T = N / S`` tiles exist, each processor holds ``L = N / P = T*W`` local
  elements, stored tile-major: local index ``l = t*W + w`` holds global
  index ``g = t*S + p*W + w``.

All maps are provided in scalar and vectorized (numpy) form; the vectorized
forms are what the library uses on hot paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

__all__ = ["DimLayout"]


@lru_cache(maxsize=4096)
def _dim_globals(n: int, p: int, w: int, coord: int) -> np.ndarray:
    """Cached full global-index map of one processor coordinate.

    Layouts are value objects, so the map depends only on ``(n, p, w,
    coord)`` — PACK/UNPACK ask for the same handful of maps once per
    message otherwise.  The array is marked read-only because it is
    shared between callers.
    """
    l = np.arange(n // p, dtype=np.int64)
    s = p * w
    t, rem = np.divmod(l, w)
    out = t * s + coord * w + rem
    out.setflags(write=False)
    return out


@dataclass(frozen=True)
class DimLayout:
    """Block-cyclic layout of one dimension: extent ``n`` over ``p`` procs
    with block size ``w``.

    Enforces the paper's simplifying assumption ``P*W | N`` (Section 3),
    which makes every processor's local extent identical.
    """

    n: int
    p: int
    w: int

    def __post_init__(self) -> None:
        if self.n < 1 or self.p < 1 or self.w < 1:
            raise ValueError(f"need positive N, P, W; got {self.n}, {self.p}, {self.w}")
        if self.n % (self.p * self.w) != 0:
            raise ValueError(
                f"paper assumption violated: P*W must divide N "
                f"(N={self.n}, P={self.p}, W={self.w}, P*W={self.p * self.w})"
            )

    # ------------------------------------------------------------ derived
    @property
    def s(self) -> int:
        """Tile size ``S = P*W``."""
        return self.p * self.w

    @property
    def t(self) -> int:
        """Number of tiles ``T = N / (P*W)``."""
        return self.n // self.s

    @property
    def l(self) -> int:
        """Local extent per processor ``L = N / P = T*W``."""
        return self.n // self.p

    @property
    def is_block(self) -> bool:
        return self.w == self.l

    @property
    def is_cyclic(self) -> bool:
        return self.w == 1

    # ------------------------------------------------------- scalar maps
    def owner(self, g: int) -> int:
        """Processor coordinate owning global index ``g``."""
        self._check_global(g)
        return (g // self.w) % self.p

    def tile(self, g: int) -> int:
        """Tile number of global index ``g``."""
        self._check_global(g)
        return g // self.s

    def local(self, g: int) -> int:
        """Local index of ``g`` on its owner."""
        self._check_global(g)
        return (g // self.s) * self.w + g % self.w

    def global_(self, p: int, l: int) -> int:
        """Global index of local index ``l`` on processor coordinate ``p``."""
        if not (0 <= p < self.p):
            raise ValueError(f"processor coordinate {p} out of range [0, {self.p})")
        if not (0 <= l < self.l):
            raise ValueError(f"local index {l} out of range [0, {self.l})")
        t, w = divmod(l, self.w)
        return t * self.s + p * self.w + w

    def _check_global(self, g: int) -> None:
        if not (0 <= g < self.n):
            raise ValueError(f"global index {g} out of range [0, {self.n})")

    # --------------------------------------------------- vectorized maps
    def owners(self, g: np.ndarray) -> np.ndarray:
        g = np.asarray(g)
        q = g // self.w
        # Single-tile (block) layouts: g // w already is the coordinate.
        return q if self.n == self.s else q % self.p

    def tiles(self, g: np.ndarray) -> np.ndarray:
        return np.asarray(g) // self.s

    def locals_(self, g: np.ndarray) -> np.ndarray:
        g = np.asarray(g)
        if self.n == self.s:  # single tile: t = 0, local index is g % w
            return g % self.w
        return (g // self.s) * self.w + g % self.w

    def globals_(self, p: int, l: np.ndarray | None = None) -> np.ndarray:
        """Global indices of local indices ``l`` (default: all of them) on
        processor coordinate ``p``, in local order.

        The result is strictly increasing: local storage order equals
        global order restricted to one processor.  The full map (``l is
        None``) is cached per coordinate and returned read-only.
        """
        if l is None:
            return _dim_globals(self.n, self.p, self.w, p)
        l = np.asarray(l, dtype=np.int64)
        t, w = np.divmod(l, self.w)
        return t * self.s + p * self.w + w

    def local_tiles(self, l: np.ndarray) -> np.ndarray:
        """Tile number of each local index (same on every processor)."""
        return np.asarray(l) // self.w

    def globals_reference(self, p: int) -> np.ndarray:
        """Uncached, scalar-map derivation of :meth:`globals_`.

        The A/B oracle for the lru-cached vectorized fast path: one
        :meth:`global_` call per local index, no shared state.  Slow —
        test/diagnostic use only.
        """
        return np.array(
            [self.global_(p, l) for l in range(self.l)], dtype=np.int64
        )

    # ---------------------------------------------------------- reporting
    def describe(self) -> str:
        if self.is_block:
            fmt = "BLOCK"
        elif self.is_cyclic:
            fmt = "CYCLIC"
        else:
            fmt = f"CYCLIC({self.w})"
        return f"{fmt}: N={self.n} P={self.p} W={self.w} L={self.l} T={self.t} S={self.s}"
