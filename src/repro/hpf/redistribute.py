"""Array redistribution with communication detection.

Section 6.3 of the paper reduces cyclic-distribution ranking overhead by
first redistributing the input to BLOCK.  The machinery needed is general
block-cyclic-to-block-cyclic redistribution, citing the communication
detection algorithms of Ranka/Wang/Kumar [7]:

* **communication detection** — compute, from the two layouts alone, which
  local elements go to which destination rank (send detection) and which
  elements will arrive from which source (receive detection).  The [7]
  schedule construction enumerates index *classes per dimension*, so one
  detection phase costs ``DETECT_OPS_PER_GLOBAL_INDEX * sum_i N_i`` — this
  is why detection dominated the paper's 1-D Table II numbers
  (``sum N_i = 16384``) while remaining cheap for 2-D arrays of the same
  total size (``sum N_i = 512``).  On top of the schedule, each moved
  element pays ``ADDR_OPS_PER_ELEMENT`` for its address arithmetic.
* **data exchange** — one many-to-many personalized communication round
  moving the elements; because both sides enumerate elements in global
  order per (source, dest) pair, no per-element indices need to travel for
  a *whole-array* redistribution.  Boolean arrays (masks) are bit-packed
  on the wire (32 elements per word).
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from ..machine.context import Context
from ..machine.m2m import exchange
from .grid import GridLayout

__all__ = [
    "detect_sends",
    "detect_recvs",
    "redistribute",
    "DETECT_OPS_PER_GLOBAL_INDEX",
    "ADDR_OPS_PER_ELEMENT",
]

#: Schedule-construction cost per *global* index per detection phase: the
#: per-dimension class enumeration of [7] (integer div/mod chains).
#: Calibrated so one phase over N = 16384 costs ~139 ms on the CM-5
#: profile, reproducing the paper's Table II 1-D Red.1 column.
DETECT_OPS_PER_GLOBAL_INDEX = 85

#: Per moved element: compute its position in the send buffer / its local
#: address in the destination block (one fused multiply-add per side).
ADDR_OPS_PER_ELEMENT = 2

#: Elements per wire word for bit-packed boolean payloads.
BOOL_PACK = 32


def _dest_rank_and_local(
    src: GridLayout, dst: GridLayout, rank: int
) -> tuple[np.ndarray, np.ndarray]:
    """For every local element of ``rank`` under ``src``: destination rank
    and destination local *flat* index under ``dst``.

    Both returned arrays have the source local block shape.
    """
    if src.shape != dst.shape:
        raise ValueError(f"layout shapes differ: {src.shape} vs {dst.shape}")
    d = src.d
    idx = src.local_global_indices(rank)  # per numpy axis, global indices

    dest_rank = np.zeros(src.local_shape, dtype=np.int64)
    dest_local = np.zeros(src.local_shape, dtype=np.int64)
    rank_stride = 1
    local_stride = 1
    # Paper dimension i: rank stride is prod_{k<i} P_k (dim 0 fastest);
    # local flat index stride (C order over dst.local_shape) is
    # prod_{k<i} L_k for the same reason.
    for i in range(d):  # paper dims, fastest first
        j = d - 1 - i  # numpy axis
        g = idx[j]
        coord = dst.dims[i].owners(g)  # dest coordinate on paper dim i
        loc = dst.dims[i].locals_(g)
        reshape = [1] * d
        reshape[j] = g.size
        dest_rank = dest_rank + coord.reshape(reshape) * rank_stride
        dest_local = dest_local + loc.reshape(reshape) * local_stride
        rank_stride *= dst.dims[i].p
        local_stride *= dst.dims[i].l
    return dest_rank, dest_local


def detect_sends(
    src: GridLayout, dst: GridLayout, rank: int
) -> dict[int, tuple[np.ndarray, np.ndarray]]:
    """Send-side communication detection.

    Returns ``dest_rank -> (src_local_flat, dst_local_flat)`` where both
    index vectors are in matching order, sorted by destination local index
    (global order per destination) — the canonical order both sides agree
    on without exchanging indices.
    """
    dest_rank, dest_local = _dest_rank_and_local(src, dst, rank)
    dr = dest_rank.ravel()
    dl = dest_local.ravel()
    sl = np.arange(dr.size, dtype=np.int64)
    order = np.lexsort((dl, dr))
    dr_sorted = dr[order]
    boundaries = np.flatnonzero(np.diff(dr_sorted)) + 1
    groups = np.split(np.arange(dr.size), boundaries)
    out: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    for grp in groups:
        if grp.size == 0:
            continue
        rows = order[grp]
        out[int(dr_sorted[grp[0]])] = (sl[rows], dl[rows])
    return out


def detect_recvs(
    src: GridLayout, dst: GridLayout, rank: int
) -> dict[int, np.ndarray]:
    """Receive-side communication detection.

    Returns ``source_rank -> dst_local_flat`` (sorted ascending), telling
    ``rank`` where to store the elements arriving from each source.  The
    order matches the send side's per-destination order.
    """
    # Reuse the send detection from the opposite perspective: for every
    # local element of `rank` under `dst`, find its owner under `src`.
    src_rank, _src_local = _dest_rank_and_local(dst, src, rank)
    sr = src_rank.ravel()
    dl = np.arange(sr.size, dtype=np.int64)
    order = np.lexsort((dl, sr))
    sr_sorted = sr[order]
    boundaries = np.flatnonzero(np.diff(sr_sorted)) + 1
    groups = np.split(np.arange(sr.size), boundaries)
    out: dict[int, np.ndarray] = {}
    for grp in groups:
        if grp.size == 0:
            continue
        rows = order[grp]
        out[int(sr_sorted[grp[0]])] = dl[rows]
    return out


def detection_phase_ops(layout: GridLayout) -> int:
    """Local work of one communication-detection phase (see module docs)."""
    return DETECT_OPS_PER_GLOBAL_INDEX * sum(d.n for d in layout.dims)


def redistribute(
    ctx: Context,
    src: GridLayout,
    dst: GridLayout,
    local_block: np.ndarray,
    phase: str | None = None,
    schedule: str = "linear",
    charge_detection: bool = True,
    reliability=None,
) -> Generator[Any, Any, np.ndarray]:
    """Move this rank's block from layout ``src`` to layout ``dst``.

    Charges send *and* receive detection (the "two phases of communication
    detection" the paper attributes to whole-array redistribution, each a
    global-extent schedule construction), then performs one many-to-many
    exchange of the raw element values (no indices travel — both sides
    derive the per-pair element order from the layouts; boolean blocks are
    bit-packed).  Returns the new local block under ``dst``.

    ``charge_detection=False`` lets a caller that already built the
    schedule (e.g. redistributing a second conformable array with the same
    pair of layouts) skip the schedule-construction charge — the per-
    element address arithmetic is still charged.
    """
    if phase is not None:
        ctx.phase(phase)
    local_block = np.asarray(local_block)
    if local_block.shape != src.local_shape:
        raise ValueError(
            f"rank {ctx.rank}: block shape {local_block.shape} != {src.local_shape}"
        )

    L_src = int(np.prod(src.local_shape))
    L_dst = int(np.prod(dst.local_shape))

    # Phase 1: send detection.  Phase 2: receive detection.
    if charge_detection:
        ctx.work(detection_phase_ops(src))
        ctx.work(detection_phase_ops(dst))
    sends = detect_sends(src, dst, ctx.rank)
    recvs = detect_recvs(src, dst, ctx.rank)

    is_bool = local_block.dtype == np.bool_
    flat = local_block.ravel()
    outgoing = {
        dest: flat[src_idx].copy() for dest, (src_idx, _dst_idx) in sends.items()
    }
    if is_bool:
        words = {d: -(-int(v.size) // BOOL_PACK) for d, v in outgoing.items()}
    else:
        words = {dest: int(v.size) for dest, v in outgoing.items()}
    ctx.work(L_src * ADDR_OPS_PER_ELEMENT)
    received = yield from exchange(
        ctx, outgoing, words=words, schedule=schedule, reliability=reliability
    )

    out = np.empty(L_dst, dtype=local_block.dtype)
    for source, values in received.items():
        positions = recvs.get(source)
        if positions is None or positions.size != np.asarray(values).size:
            raise RuntimeError(
                f"rank {ctx.rank}: redistribution mismatch from source {source}"
            )
        out[positions] = values
    # Placement: address arithmetic plus one write per received element.
    ctx.work(L_dst * ADDR_OPS_PER_ELEMENT)
    return out.reshape(dst.local_shape)
