"""Layout of rank-1 vectors (PACK's result, UNPACK's input).

The result vector's size is only known at run time (it equals the number of
mask trues), so its layout cannot assume the paper's ``P*W | N``
divisibility.  This module implements general block-cyclic indexing for
vectors of arbitrary size, with ragged local extents.

The paper fixes the result/input vector to a **block** distribution in all
experiments; :meth:`VectorLayout.block` builds that (block size
``ceil(Size / P)``), and general ``CYCLIC(W)`` is supported for the
Section 6.2 sensitivity discussion (the compact message scheme degrades as
the result vector's block size shrinks).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

__all__ = ["VectorLayout"]


@lru_cache(maxsize=1024)
def _vec_globals(n: int, p: int, w: int, rank: int, size: int) -> np.ndarray:
    """Cached global-index map of one rank's vector block (read-only)."""
    l = np.arange(size, dtype=np.int64)
    t, rem = np.divmod(l, w)
    out = t * (p * w) + rank * w + rem
    out.setflags(write=False)
    return out


@dataclass(frozen=True)
class VectorLayout:
    """Block-cyclic layout of a vector of ``n`` elements over ``p`` ranks
    with block size ``w`` — no divisibility assumptions.

    Element ``g`` lives on rank ``(g // w) % p`` at local index
    ``(g // (p*w)) * w + g % w``.  Local extents may differ by up to ``w``
    between ranks (and trailing ranks may be empty).
    """

    n: int
    p: int
    w: int

    def __post_init__(self) -> None:
        if self.n < 0 or self.p < 1 or self.w < 1:
            raise ValueError(f"bad vector layout: n={self.n}, p={self.p}, w={self.w}")

    # ------------------------------------------------------------ factories
    @classmethod
    def block(cls, n: int, p: int) -> "VectorLayout":
        """Block distribution: rank ``r`` owns ``[r*B, (r+1)*B)`` with
        ``B = ceil(n/p)`` (empty for trailing ranks when ``n < p*B``)."""
        b = max(1, -(-n // p)) if n > 0 else 1
        return cls(n=n, p=p, w=b)

    @classmethod
    def cyclic(cls, n: int, p: int, w: int = 1) -> "VectorLayout":
        return cls(n=n, p=p, w=w)

    # -------------------------------------------------------------- algebra
    @property
    def s(self) -> int:
        """Tile size ``P*W``."""
        return self.p * self.w

    def owner(self, g: int) -> int:
        self._check(g)
        return (g // self.w) % self.p

    def local(self, g: int) -> int:
        self._check(g)
        return (g // self.s) * self.w + g % self.w

    def owners(self, g: np.ndarray) -> np.ndarray:
        q = np.asarray(g) // self.w
        # Block layouts fit in one tile, so g // w never wraps past p.
        return q if self.is_block else q % self.p

    def locals_(self, g: np.ndarray) -> np.ndarray:
        g = np.asarray(g)
        if self.is_block:  # one tile: local index is just the in-block offset
            return g % self.w
        return (g // self.s) * self.w + g % self.w

    def local_size(self, rank: int) -> int:
        """Number of vector elements stored on ``rank``."""
        if not (0 <= rank < self.p):
            raise ValueError(f"rank {rank} out of range [0, {self.p})")
        full, rem = divmod(self.n, self.s)
        extra = min(max(rem - rank * self.w, 0), self.w)
        return full * self.w + extra

    def globals_(self, rank: int) -> np.ndarray:
        """Global indices owned by ``rank``, in local storage order.

        Cached per layout/rank and returned read-only (layouts are value
        objects, so the map is a pure function of ``(n, p, w, rank)``).
        """
        size = self.local_size(rank)
        return _vec_globals(self.n, self.p, self.w, rank, size)

    def _check(self, g: int) -> None:
        if not (0 <= g < self.n):
            raise ValueError(f"vector index {g} out of range [0, {self.n})")

    def globals_reference(self, rank: int) -> np.ndarray:
        """Uncached, scalar-map derivation of :meth:`globals_`.

        Walks every global index through the scalar :meth:`owner` map —
        ascending global order restricted to one owner is exactly local
        storage order.  The A/B oracle for the cached fast path; slow —
        test/diagnostic use only.
        """
        if not (0 <= rank < self.p):
            raise ValueError(f"rank {rank} out of range [0, {self.p})")
        return np.array(
            [g for g in range(self.n) if self.owner(g) == rank],
            dtype=np.int64,
        )

    # --------------------------------------------------------- host helpers
    def local_block(self, vector: np.ndarray, rank: int, copy: bool = True) -> np.ndarray:
        """Extract only ``rank``'s block of a global vector.

        The single-rank fast path under :meth:`scatter`: an execution
        backend whose rank processes see the global vector (e.g. through a
        shared-memory segment) calls this with its own rank and never
        materializes the other ``p - 1`` blocks.  ``copy=False`` returns a
        view where the layout allows (block layouts slice contiguous
        spans) for read-only consumers.
        """
        vector = np.asarray(vector)
        if vector.shape != (self.n,):
            raise ValueError(f"vector shape {vector.shape} != ({self.n},)")
        if self.is_block:  # contiguous per-rank span: slice, don't gather
            block = vector[rank * self.w : rank * self.w + self.local_size(rank)]
            return block.copy() if copy else block
        return vector[self.globals_(rank)]

    def scatter(self, vector: np.ndarray, copy: bool = True) -> list[np.ndarray]:
        """Split into per-rank blocks; ``copy=False`` returns views where
        the layout allows (block layouts slice contiguous spans) for
        read-only consumers."""
        return [self.local_block(vector, r, copy=copy) for r in range(self.p)]

    def gather(self, locals_: list[np.ndarray], dtype=None) -> np.ndarray:
        if len(locals_) != self.p:
            raise ValueError(f"need {self.p} blocks, got {len(locals_)}")
        if dtype is None:
            non_empty = [np.asarray(b) for b in locals_ if np.asarray(b).size]
            dtype = non_empty[0].dtype if non_empty else np.float64
        out = np.empty(self.n, dtype=dtype)
        for r, block in enumerate(locals_):
            block = np.asarray(block)
            expected = self.local_size(r)
            if block.shape != (expected,):
                raise ValueError(f"rank {r} block shape {block.shape} != ({expected},)")
            if self.is_block:
                out[r * self.w : r * self.w + expected] = block
            else:
                out[self.globals_(r)] = block
        return out

    @property
    def is_block(self) -> bool:
        return self.w * self.p >= self.n

    def describe(self) -> str:
        fmt = "BLOCK" if self.is_block else (f"CYCLIC({self.w})" if self.w > 1 else "CYCLIC")
        return f"vector {fmt}: n={self.n} p={self.p} w={self.w}"
