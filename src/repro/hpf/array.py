"""Host-side container for a distributed array.

The simulator hosts every rank in one process, so a "distributed array" is
simply a layout plus the list of per-rank local blocks.  Programs receive
only their own local block (the engine passes it via ``rank_args``); this
container exists for setup, for gathering results, and for oracle checks in
tests.  It never appears inside SPMD programs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .align import check_local_block
from .grid import GridLayout

__all__ = ["DistributedArray"]


class DistributedArray:
    """A global array paired with its block-cyclic layout.

    Construct with :meth:`from_global` (scatters a numpy array) or
    :meth:`from_locals` (adopts per-rank blocks).  ``to_global()``
    reassembles the full array.
    """

    def __init__(self, layout: GridLayout, locals_: list[np.ndarray]):
        if len(locals_) != layout.nprocs:
            raise ValueError(
                f"layout has {layout.nprocs} ranks but {len(locals_)} blocks given"
            )
        for rank, block in enumerate(locals_):
            check_local_block(layout, block, rank)
        self.layout = layout
        self._locals = [np.asarray(b) for b in locals_]

    # ------------------------------------------------------------ factories
    @classmethod
    def from_global(cls, global_array: np.ndarray, layout: GridLayout) -> "DistributedArray":
        return cls(layout, layout.scatter(np.asarray(global_array)))

    @classmethod
    def from_locals(
        cls, locals_: Sequence[np.ndarray], layout: GridLayout
    ) -> "DistributedArray":
        return cls(layout, list(locals_))

    # -------------------------------------------------------------- access
    def local(self, rank: int) -> np.ndarray:
        """This rank's local block (a live reference, not a copy)."""
        return self._locals[rank]

    def locals_list(self) -> list[np.ndarray]:
        return list(self._locals)

    def to_global(self) -> np.ndarray:
        return self.layout.gather(self._locals)

    @property
    def dtype(self):
        return self._locals[0].dtype

    @property
    def shape(self) -> tuple[int, ...]:
        return self.layout.shape

    def __repr__(self) -> str:
        return (
            f"DistributedArray(shape={self.shape}, grid={self.layout.grid}, "
            f"dtype={self.dtype})"
        )
