"""HPF-style data distribution substrate.

Implements the data layout machinery of Section 3 of the paper: arrays of
arbitrary rank distributed **block-cyclic** along every dimension over a
logical processor grid, with the paper's row-major ordering convention
(dimension 0 varies fastest; paper dimension *i* is numpy axis ``d-1-i``).

Main entry points:

* :class:`~repro.hpf.dist.Dist` descriptors — ``BLOCK``, ``CYCLIC``,
  ``BlockCyclic(W)``;
* :class:`~repro.hpf.dimlayout.DimLayout` — one dimension's index algebra;
* :class:`~repro.hpf.grid.GridLayout` — the d-dimensional layout plus the
  processor-grid rank mapping;
* :class:`~repro.hpf.array.DistributedArray` — host-side container pairing
  a layout with per-rank local blocks (scatter/gather for oracle checks);
* :class:`~repro.hpf.vector.VectorLayout` — the distribution of PACK's
  result vector / UNPACK's input vector;
* :mod:`repro.hpf.redistribute` — communication detection and whole-array
  redistribution between two layouts (used by the Section 6.3 pre-passes).
"""

from .align import check_aligned, check_conformable
from .array import DistributedArray
from .dimlayout import DimLayout
from .dist import BLOCK, CYCLIC, BlockCyclic, Dist, resolve_dist
from .grid import GridLayout
from .redistribute import detect_recvs, detect_sends, redistribute
from .vector import VectorLayout

__all__ = [
    "BLOCK",
    "BlockCyclic",
    "CYCLIC",
    "DimLayout",
    "Dist",
    "DistributedArray",
    "GridLayout",
    "VectorLayout",
    "check_aligned",
    "check_conformable",
    "detect_recvs",
    "detect_sends",
    "redistribute",
    "resolve_dist",
]
