"""Distribution descriptors: BLOCK, CYCLIC and BLOCK-CYCLIC(W).

HPF's ``DISTRIBUTE`` directive offers three per-dimension formats, all of
which are special cases of block-cyclic with block size ``W``:

* ``CYCLIC``       — ``W = 1``: element ``g`` lives on processor ``g mod P``;
* ``BLOCK``        — ``W = N / P``: one contiguous block per processor;
* ``CYCLIC(W)``    — general block-cyclic: blocks of ``W`` dealt round-robin.

A :class:`Dist` is a symbolic descriptor; :func:`resolve_dist` turns it into
a concrete block size once the extent ``N`` and processor count ``P`` are
known.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Dist", "BLOCK", "CYCLIC", "BlockCyclic", "resolve_dist"]


@dataclass(frozen=True)
class Dist:
    """Symbolic distribution format for one array dimension.

    ``kind`` is ``"block"``, ``"cyclic"`` or ``"block_cyclic"``; ``w`` is
    the block size for the ``block_cyclic`` kind (ignored otherwise).
    """

    kind: str
    w: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("block", "cyclic", "block_cyclic"):
            raise ValueError(f"unknown distribution kind {self.kind!r}")
        if self.kind == "block_cyclic":
            if self.w is None or self.w < 1:
                raise ValueError(f"block_cyclic needs a block size >= 1, got {self.w}")
        elif self.w is not None:
            raise ValueError(f"{self.kind} takes no block size")

    def block_size(self, n: int, p: int) -> int:
        """Concrete block size for extent ``n`` over ``p`` processors."""
        if n < 1 or p < 1:
            raise ValueError(f"need positive extent and processor count, got {n}, {p}")
        if self.kind == "cyclic":
            return 1
        if self.kind == "block":
            if n % p != 0:
                raise ValueError(
                    f"BLOCK distribution needs P | N (paper assumption); got N={n}, P={p}"
                )
            return n // p
        return int(self.w)  # block_cyclic

    def __repr__(self) -> str:
        if self.kind == "block_cyclic":
            return f"CYCLIC({self.w})"
        return self.kind.upper()


#: One contiguous block per processor (lowest ranking overhead, Section 6.3).
BLOCK = Dist("block")

#: Round-robin single elements (highest ranking overhead).
CYCLIC = Dist("cyclic")


def BlockCyclic(w: int) -> Dist:
    """Block-cyclic distribution with block size ``w`` (HPF ``CYCLIC(w)``)."""
    return Dist("block_cyclic", w=int(w))


def resolve_dist(dist, n: int, p: int) -> int:
    """Accept a :class:`Dist`, an int block size, or a kind string; return W.

    This is the permissive front door used by the top-level API:
    ``resolve_dist(4, 64, 4) == 4``, ``resolve_dist("block", 64, 4) == 16``,
    ``resolve_dist(CYCLIC, 64, 4) == 1``.
    """
    if isinstance(dist, Dist):
        return dist.block_size(n, p)
    if isinstance(dist, str):
        key = dist.lower()
        if key == "block":
            return BLOCK.block_size(n, p)
        if key == "cyclic":
            return CYCLIC.block_size(n, p)
        raise ValueError(f"unknown distribution string {dist!r}")
    w = int(dist)
    if w < 1:
        raise ValueError(f"block size must be >= 1, got {w}")
    return w
