"""The SPMD execution engine.

:class:`Machine` runs one generator per rank, cooperatively scheduling them
until all complete.  Scheduling is round-robin over runnable ranks; a rank
leaves the runnable set only when it yields a blocking op (:class:`Recv`
with no matching message, or :class:`CollectiveOp` waiting for its group)
and re-enters it when the op can complete.  Sends are eager and buffered, so
they never block — matching the paper's model where a message simply costs
``tau + mu * m`` and contention is ignored.

Determinism
-----------
Given the same programs and arguments, a run is bit-for-bit reproducible:
ranks are resumed in rank order, message matching uses global sequence
numbers to break ties, and no real time or randomness enters the engine.

Clock semantics
---------------
Each rank has a local clock (see :mod:`repro.machine.stats`).  A receive
completes at ``max(receiver clock, message arrival time)``; the gap, if any,
is idle time.  A collective synchronizes all member clocks to the group
maximum before charging its cost.  The run's elapsed time is the maximum
final clock, and per-phase times are maxima of per-rank phase totals.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Sequence

from .context import Context
from .errors import CollectiveMismatchError, DeadlockError, ProgramError
from .mailbox import Mailbox
from .ops import CollectiveOp, Message, Recv
from .spec import CM5, MachineSpec
from .stats import ProcStats, RunResult

__all__ = ["Machine"]


class _Proc:
    """Book-keeping for one rank's generator."""

    __slots__ = ("rank", "gen", "waiting", "send_value", "finished", "result")

    def __init__(self, rank: int, gen):
        self.rank = rank
        self.gen = gen
        self.waiting: Recv | CollectiveOp | None = None
        self.send_value: Any = None
        self.finished = False
        self.result: Any = None


class _PendingCollective:
    """A collective op waiting for its full group to arrive."""

    __slots__ = ("op", "payloads", "arrived")

    def __init__(self, op: CollectiveOp):
        self.op = op
        self.payloads: dict[int, Any] = {}
        self.arrived: set[int] = set()

    def join(self, rank: int, op: CollectiveOp) -> None:
        if op.kind != self.op.kind:
            raise CollectiveMismatchError(
                f"rank {rank} joined kind {op.kind!r}, group started {self.op.kind!r}"
            )
        if op.group != self.op.group:
            raise CollectiveMismatchError(
                f"rank {rank} joined group {op.group}, expected {self.op.group}"
            )
        self.payloads[rank] = op.payload
        self.arrived.add(rank)

    @property
    def complete(self) -> bool:
        return self.arrived == set(self.op.group)


class Machine:
    """A simulated coarse-grained distributed-memory parallel machine.

    Parameters
    ----------
    nprocs:
        number of processors.
    spec:
        cost parameters; defaults to the CM-5 profile.

    A machine object is reusable: each :meth:`run` starts from fresh clocks
    and mailboxes.

    Observability
    -------------
    ``tracer`` (a :class:`~repro.machine.trace.Tracer`) records the event
    stream; ``metrics`` (a :class:`~repro.obs.registry.MetricsRegistry`)
    accumulates counters and histograms from the send / receive /
    collective / port-contention paths.  Both are optional and both are
    free when absent — every instrumentation site is guarded by a plain
    ``is not None`` check.  When ``metrics`` is omitted, the process-wide
    registry installed by :func:`repro.obs.enable_global_metrics` (if any)
    is used.
    """

    def __init__(self, nprocs: int, spec: MachineSpec = CM5, tracer=None, metrics=None):
        if nprocs < 1:
            raise ValueError(f"need at least one processor, got {nprocs}")
        self.nprocs = nprocs
        self.spec = spec
        self.tracer = tracer
        if metrics is None:
            from ..obs.registry import current_global_metrics

            metrics = current_global_metrics()
        self.metrics = metrics
        # Run-scoped state, created in run():
        self._mailboxes: list[Mailbox] = []
        self._procs: list[_Proc] = []
        self._stats: list[ProcStats] = []
        self._runnable: deque[int] = deque()
        self._runnable_set: set[int] = set()
        self._pending_collectives: dict[tuple, _PendingCollective] = {}
        self._seq = 0

    # ------------------------------------------------------------------ API
    def run(
        self,
        program: Callable,
        *args: Any,
        rank_args: Sequence[tuple] | None = None,
    ) -> RunResult:
        """Execute ``program`` on every rank and return results and stats.

        Parameters
        ----------
        program:
            generator function called as ``program(ctx, *args)`` (or
            ``program(ctx, *rank_args[rank])`` when ``rank_args`` is given).
            A plain function (non-generator) is also accepted for purely
            local programs.
        args:
            arguments shared by all ranks.
        rank_args:
            optional per-rank argument tuples, overriding ``args``.
        """
        if rank_args is not None and len(rank_args) != self.nprocs:
            raise ValueError(
                f"rank_args has {len(rank_args)} entries for {self.nprocs} ranks"
            )

        self._mailboxes = [Mailbox(r) for r in range(self.nprocs)]
        self._stats = [ProcStats(r) for r in range(self.nprocs)]
        self._pending_collectives = {}
        self._seq = 0
        self._procs = []
        self._runnable = deque()
        self._runnable_set = set()
        # rx_port contention: per-destination sorted busy intervals.
        self._port_busy: list[list[tuple[float, float]]] = [
            [] for _ in range(self.nprocs)
        ]

        for r in range(self.nprocs):
            ctx = Context(r, self.nprocs, self.spec, self._stats[r], self)
            call_args = rank_args[r] if rank_args is not None else args
            gen_or_value = program(ctx, *call_args)
            proc = _Proc(r, None)
            if hasattr(gen_or_value, "send") and hasattr(gen_or_value, "throw"):
                proc.gen = gen_or_value
                self._procs.append(proc)
                self._make_runnable(r)
            else:
                # Plain function: already ran to completion during the call.
                proc.finished = True
                proc.result = gen_or_value
                self._procs.append(proc)

        self._loop()

        return RunResult(results=[p.result for p in self._procs], stats=self._stats)

    # --------------------------------------------------------------- engine
    def _make_runnable(self, rank: int) -> None:
        if rank not in self._runnable_set and not self._procs[rank].finished:
            self._runnable.append(rank)
            self._runnable_set.add(rank)

    def _loop(self) -> None:
        while True:
            if self._runnable:
                rank = self._runnable.popleft()
                self._runnable_set.discard(rank)
                self._step(rank)
                continue
            # Nobody runnable: either all done, or deadlock.
            live = [p for p in self._procs if not p.finished]
            if not live:
                return
            # A blocked receive may still be satisfiable if a matching
            # message arrived while the rank was out of the queue (cannot
            # happen with current wake logic, but guard anyway).
            woke = False
            for p in live:
                if isinstance(p.waiting, Recv) and self._mailboxes[p.rank].would_match(p.waiting):
                    self._make_runnable(p.rank)
                    woke = True
            if woke:
                continue
            blocked = {
                p.rank: (p.waiting.describe() if p.waiting is not None else "nothing")
                for p in live
            }
            raise DeadlockError(blocked)

    def _step(self, rank: int) -> None:
        """Advance one rank until it blocks or finishes."""
        proc = self._procs[rank]
        while True:
            try:
                op = proc.gen.send(proc.send_value)
            except StopIteration as stop:
                proc.finished = True
                proc.result = stop.value
                return
            except Exception as exc:
                raise ProgramError(rank, f"program raised {type(exc).__name__}: {exc}") from exc
            proc.send_value = None

            if isinstance(op, Recv):
                msg = self._mailboxes[rank].match(op)
                if msg is None:
                    proc.waiting = op
                    return
                self._complete_recv(rank, msg)
                proc.send_value = msg
                continue

            if isinstance(op, CollectiveOp):
                finished = self._join_collective(rank, op)
                if not finished:
                    proc.waiting = op
                    return
                # This rank was the last to arrive.  _fire_collective set
                # proc.send_value and re-queued every member (including this
                # rank), so yield the timeslice and let the scheduler resume
                # it with the collective's result.
                return

            raise ProgramError(rank, f"yielded unsupported op {op!r}")

    # ------------------------------------------------------------- messages
    def _deliver(
        self, source: int, dest: int, tag: int, payload: Any, words: int, send_clock: float
    ) -> None:
        """Called by Context.send: enqueue the message and wake the receiver."""
        self._seq += 1
        if self.metrics is not None:
            self.metrics.inc("machine.sends")
            self.metrics.inc("machine.words_sent", words)
            self.metrics.observe("machine.message_words", words)
        arrival = send_clock  # sender already paid tau + mu*m
        if self.spec.rx_port and source != dest and words > 0:
            # Node contention: the message occupies the destination's
            # serial receive port for mu*words.  The transfer may start as
            # early as send_clock - transfer (overlapping the sender's own
            # charge), in the earliest gap of the port's busy schedule —
            # interval gap-filling keeps arrivals causal even though the
            # engine delivers messages in simulation order, which need not
            # be simulated-time order.
            transfer = self.spec.mu * words
            arrival = self._reserve_port(dest, send_clock - transfer, transfer)
            if self.metrics is not None and arrival > send_clock:
                # The destination's serial receive port was busy: the
                # message landed later than the contention-free model
                # would have delivered it.
                self.metrics.inc("machine.port_stalls")
                self.metrics.observe(
                    "machine.port_stall_seconds", arrival - send_clock
                )
        msg = Message(
            source=source,
            dest=dest,
            tag=tag,
            payload=payload,
            words=words,
            send_time=send_clock,
            arrival_time=arrival,
            seq=self._seq,
        )
        if self.tracer is not None:
            self.tracer.record(
                self._stats[source].clock, source, "send",
                dest=dest, tag=tag, words=words,
            )
        self._mailboxes[dest].deposit(msg)
        waiting = self._procs[dest].waiting
        if isinstance(waiting, Recv) and waiting.matches(msg):
            self._procs[dest].waiting = None
            # The engine loop will re-run the Recv; put the op back by
            # resuming through the normal path: deliver directly.
            taken = self._mailboxes[dest].match(waiting)
            assert taken is not None
            self._complete_recv(dest, taken)
            self._procs[dest].send_value = taken
            self._make_runnable(dest)

    def _reserve_port(self, dest: int, ready: float, transfer: float) -> float:
        """Book ``transfer`` seconds on dest's receive port, no earlier
        than ``ready``; returns the transfer's end time (the arrival)."""
        import bisect

        intervals = self._port_busy[dest]
        start = ready
        idx = 0
        for i, (b0, b1) in enumerate(intervals):
            if b1 <= start:
                idx = i + 1
                continue
            if b0 >= start + transfer:
                idx = i
                break  # the gap before interval i fits
            # overlaps: push past this interval
            start = b1
            idx = i + 1
        intervals.insert(idx, (start, start + transfer))
        return start + transfer

    def _complete_recv(self, rank: int, msg: Message) -> None:
        st = self._stats[rank]
        if self.metrics is not None:
            self.metrics.inc("machine.recvs")
            wait = msg.arrival_time - st.clock
            if wait > 0:
                self.metrics.observe("machine.recv_wait_seconds", wait)
        st.advance_to(msg.arrival_time)
        st.recvs += 1
        st.words_received += msg.words
        if self.tracer is not None:
            self.tracer.record(
                st.clock, rank, "recv",
                source=msg.source, tag=msg.tag, words=msg.words,
            )

    # ---------------------------------------------------------- collectives
    def _join_collective(self, rank: int, op: CollectiveOp) -> bool:
        if rank not in op.group:
            raise CollectiveMismatchError(f"rank {rank} not in its own group {op.group}")
        key = (op.group, op.kind, op.key)
        pending = self._pending_collectives.get(key)
        if pending is None:
            pending = _PendingCollective(op)
            self._pending_collectives[key] = pending
        pending.join(rank, op)
        if not pending.complete:
            return False
        del self._pending_collectives[key]
        self._fire_collective(pending)
        return True

    def _fire_collective(self, pending: _PendingCollective) -> None:
        op = pending.op
        members = op.group
        sync = max(self._stats[r].clock for r in members)
        if op.combine is not None:
            results, words = op.combine(pending.payloads)
        else:
            results, words = ({r: None for r in members}, 0)
        if op.cost_seconds is not None:
            cost = op.cost_seconds
        elif self.spec.has_control_network:
            cost = self.spec.ctrl_time(words)
        else:
            raise CollectiveMismatchError(
                f"collective {op.kind!r} needs a control network or explicit cost "
                f"on machine {self.spec.name!r}"
            )
        if self.metrics is not None:
            self.metrics.inc("machine.collectives")
            self.metrics.inc("machine.collective_words", words)
            self.metrics.observe("machine.collective_group_size", len(members))
            skew = sync - min(self._stats[r].clock for r in members)
            if skew > 0:
                self.metrics.observe("machine.collective_skew_seconds", skew)
        for r in members:
            st = self._stats[r]
            st.advance_to(sync)
            st.advance(cost)
            st.ctrl_ops += 1
            if self.tracer is not None:
                self.tracer.record(
                    st.clock, r, "collective", op=op.kind, group_size=len(members)
                )
            proc = self._procs[r]
            proc.waiting = None
            proc.send_value = results.get(r)
            self._make_runnable(r)

    def __repr__(self) -> str:
        return f"Machine(nprocs={self.nprocs}, spec={self.spec.name!r})"
