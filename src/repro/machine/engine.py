"""The SPMD execution engine.

:class:`Machine` runs one generator per rank, cooperatively scheduling them
until all complete.  Scheduling is round-robin over runnable ranks; a rank
leaves the runnable set only when it yields a blocking op (:class:`Recv`
with no matching message, or :class:`CollectiveOp` waiting for its group)
and re-enters it when the op can complete.  Sends are eager and buffered, so
they never block — matching the paper's model where a message simply costs
``tau + mu * m`` and contention is ignored.

Determinism
-----------
Given the same programs and arguments, a run is bit-for-bit reproducible:
ranks are resumed in rank order, message matching uses global sequence
numbers to break ties, and no real time or randomness enters the engine.
Fault injection preserves this: a :class:`~repro.faults.FaultPlan` draws
its decisions from a seeded stream consumed in simulation order, so a
fixed ``(program, plan)`` pair always fails identically.

Fault injection and the watchdog
--------------------------------
``faults=FaultPlan(...)`` intercepts the delivery path (message drop /
duplication / corruption / delay), the scheduler (rank crash-at-step)
and local-work charging (stragglers).  Timed receives
(:class:`Recv` with ``timeout=``) expire conservatively — only when no
rank can otherwise progress — which is what the reliable transport's
retransmit timers build on.  When a run gets stuck, the engine
attributes the failure: injected crashes raise
:class:`~.errors.RankFailureError` naming the dead ranks and what was
pending on them; genuine deadlocks raise
:class:`~.errors.DeadlockError` carrying the blocked-rank wait-for
graph; and ``step_budget`` / ``time_budget`` bound livelocks with
:class:`~.errors.WatchdogError`.

Clock semantics
---------------
Each rank has a local clock (see :mod:`repro.machine.stats`).  A receive
completes at ``max(receiver clock, message arrival time)``; the gap, if any,
is idle time.  A collective synchronizes all member clocks to the group
maximum before charging its cost.  The run's elapsed time is the maximum
final clock, and per-phase times are maxima of per-rank phase totals.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import deque
from typing import Any, Callable, Sequence

from .context import Context
from .errors import (
    CollectiveMismatchError,
    DeadlockError,
    ProgramError,
    RankFailureError,
    WatchdogError,
)
from .mailbox import Mailbox
from .ops import ANY, TIMEOUT, CollectiveOp, Message, Recv
from .spec import CM5, MachineSpec
from .stats import ProcStats, RunResult

__all__ = ["Machine"]


class _Proc:
    """Book-keeping for one rank's generator."""

    __slots__ = (
        "rank", "gen", "waiting", "send_value", "finished", "result",
        "crashed", "deadline",
    )

    def __init__(self, rank: int, gen):
        self.rank = rank
        self.gen = gen
        self.waiting: Recv | CollectiveOp | None = None
        self.send_value: Any = None
        self.finished = False
        self.result: Any = None
        self.crashed = False
        # Absolute expiry clock of a pending timed Recv, else None.
        self.deadline: float | None = None

    @property
    def live(self) -> bool:
        return not self.finished and not self.crashed


class _PendingCollective:
    """A collective op waiting for its full group to arrive."""

    __slots__ = ("op", "payloads", "arrived")

    def __init__(self, op: CollectiveOp):
        self.op = op
        self.payloads: dict[int, Any] = {}
        self.arrived: set[int] = set()

    def join(self, rank: int, op: CollectiveOp) -> None:
        if op.kind != self.op.kind:
            raise CollectiveMismatchError(
                f"rank {rank} joined kind {op.kind!r}, group started {self.op.kind!r}"
            )
        if op.group != self.op.group:
            raise CollectiveMismatchError(
                f"rank {rank} joined group {op.group}, expected {self.op.group}"
            )
        if rank in self.arrived:
            raise CollectiveMismatchError(
                f"rank {rank} joined collective {self.op.kind!r} "
                f"(key={self.op.key}) twice before the group completed — "
                f"mismatched keys on concurrent collectives?"
            )
        self.payloads[rank] = op.payload
        self.arrived.add(rank)

    @property
    def complete(self) -> bool:
        return self.arrived == set(self.op.group)


class _EngineMetrics:
    """Pre-bound metric handles for the engine's hot paths.

    Resolving ``registry.counter("machine.sends")`` on every send costs a
    dict lookup plus an isinstance check; binding the Counter/Histogram
    objects once at machine construction reduces each recording site to
    attribute loads.  Every site still guards on ``registry.enabled`` so a
    disabled registry costs one flag check per event and nothing else.
    """

    __slots__ = (
        "registry",
        "sends", "words_sent", "message_words",
        "recvs", "recv_wait_seconds", "recv_timeouts",
        "auto_acks", "port_stalls", "port_stall_seconds",
        "collectives", "collective_words",
        "collective_group_size", "collective_skew_seconds",
    )

    def __init__(self, registry):
        self.registry = registry
        self.sends = registry.counter("machine.sends")
        self.words_sent = registry.counter("machine.words_sent")
        self.message_words = registry.histogram("machine.message_words")
        self.recvs = registry.counter("machine.recvs")
        self.recv_wait_seconds = registry.histogram("machine.recv_wait_seconds")
        self.recv_timeouts = registry.counter("machine.recv_timeouts")
        self.auto_acks = registry.counter("machine.auto_acks")
        self.port_stalls = registry.counter("machine.port_stalls")
        self.port_stall_seconds = registry.histogram("machine.port_stall_seconds")
        self.collectives = registry.counter("machine.collectives")
        self.collective_words = registry.counter("machine.collective_words")
        self.collective_group_size = registry.histogram("machine.collective_group_size")
        self.collective_skew_seconds = registry.histogram("machine.collective_skew_seconds")


class Machine:
    """A simulated coarse-grained distributed-memory parallel machine.

    Parameters
    ----------
    nprocs:
        number of processors.
    spec:
        cost parameters; defaults to the CM-5 profile.

    A machine object is reusable: each :meth:`run` starts from fresh clocks
    and mailboxes.

    Observability
    -------------
    ``tracer`` (a :class:`~repro.machine.trace.Tracer`) records the event
    stream; ``metrics`` (a :class:`~repro.obs.registry.MetricsRegistry`)
    accumulates counters and histograms from the send / receive /
    collective / port-contention paths.  Both are optional and both are
    free when absent — every instrumentation site is guarded by a plain
    ``is not None`` check.  When ``metrics`` is omitted, the process-wide
    registry installed by :func:`repro.obs.enable_global_metrics` (if any)
    is used.
    """

    def __init__(
        self,
        nprocs: int,
        spec: MachineSpec = CM5,
        tracer=None,
        metrics=None,
        faults=None,
        step_budget: int | None = None,
        time_budget: float | None = None,
    ):
        if nprocs < 1:
            raise ValueError(f"need at least one processor, got {nprocs}")
        if step_budget is not None and step_budget < 1:
            raise ValueError(f"step_budget must be >= 1, got {step_budget}")
        if time_budget is not None and time_budget <= 0:
            raise ValueError(f"time_budget must be > 0, got {time_budget}")
        self.nprocs = nprocs
        self.spec = spec
        self.tracer = tracer
        if metrics is None:
            from ..obs.registry import current_global_metrics

            metrics = current_global_metrics()
        self.metrics = metrics
        # Hot-path handles: bound once so per-event recording is attribute
        # loads plus an enabled-flag check (a disabled registry is a no-op).
        self._mx = _EngineMetrics(metrics) if metrics is not None else None
        #: Optional :class:`~repro.faults.FaultPlan`; each run builds a
        #: fresh seeded injector from it, so runs are independent and
        #: identically reproducible.
        self.fault_plan = faults
        #: Progress watchdog: max scheduler steps / max simulated seconds
        #: per run (None = unbounded, the seed behavior).
        self.step_budget = step_budget
        self.time_budget = time_budget
        # Run-scoped state, created in run():
        self._mailboxes: list[Mailbox] = []
        self._procs: list[_Proc] = []
        self._stats: list[ProcStats] = []
        self._runnable: deque[int] = deque()
        self._runnable_set: set[int] = set()
        self._pending_collectives: dict[tuple, _PendingCollective] = {}
        self._seq = 0
        self._injector = None
        self._work_scales: list[float] | None = None
        self._steps_total = 0

    # ------------------------------------------------------------------ API
    def run(
        self,
        program: Callable,
        *args: Any,
        rank_args: Sequence[tuple] | None = None,
    ) -> RunResult:
        """Execute ``program`` on every rank and return results and stats.

        Parameters
        ----------
        program:
            generator function called as ``program(ctx, *args)`` (or
            ``program(ctx, *rank_args[rank])`` when ``rank_args`` is given).
            A plain function (non-generator) is also accepted for purely
            local programs.
        args:
            arguments shared by all ranks.
        rank_args:
            optional per-rank argument tuples, overriding ``args``.
        """
        if rank_args is not None and len(rank_args) != self.nprocs:
            raise ValueError(
                f"rank_args has {len(rank_args)} entries for {self.nprocs} ranks"
            )

        self._mailboxes = [Mailbox(r) for r in range(self.nprocs)]
        self._stats = [ProcStats(r) for r in range(self.nprocs)]
        self._pending_collectives = {}
        self._seq = 0
        self._procs = []
        self._runnable = deque()
        self._runnable_set = set()
        self._steps_total = 0
        self._injector = None
        self._work_scales = None
        if self.fault_plan is not None and not self.fault_plan.is_noop:
            self._injector = self.fault_plan.build(self.nprocs, metrics=self.metrics)
            self._work_scales = self._injector.work_scales
        # rx_port contention: per-destination busy schedule as parallel
        # sorted (starts, ends) lists of disjoint, coalesced intervals.
        self._port_busy: list[tuple[list[float], list[float]]] = [
            ([], []) for _ in range(self.nprocs)
        ]

        for r in range(self.nprocs):
            ctx = Context(r, self.nprocs, self.spec, self._stats[r], self)
            call_args = rank_args[r] if rank_args is not None else args
            gen_or_value = program(ctx, *call_args)
            proc = _Proc(r, None)
            if hasattr(gen_or_value, "send") and hasattr(gen_or_value, "throw"):
                proc.gen = gen_or_value
                self._procs.append(proc)
                self._make_runnable(r)
            else:
                # Plain function: already ran to completion during the call.
                proc.finished = True
                proc.result = gen_or_value
                self._procs.append(proc)

        self._loop()

        return RunResult(results=[p.result for p in self._procs], stats=self._stats)

    # --------------------------------------------------------------- engine
    def _make_runnable(self, rank: int) -> None:
        proc = self._procs[rank]
        if rank not in self._runnable_set and proc.live:
            self._runnable.append(rank)
            self._runnable_set.add(rank)

    def _loop(self) -> None:
        while True:
            if self._runnable:
                rank = self._runnable.popleft()
                self._runnable_set.discard(rank)
                self._steps_total += 1
                if self.step_budget is not None and self._steps_total > self.step_budget:
                    raise WatchdogError("steps", self.step_budget, self._steps_total)
                self._step(rank)
                if (
                    self.time_budget is not None
                    and self._stats[rank].clock > self.time_budget
                ):
                    raise WatchdogError(
                        "time", self.time_budget, self._stats[rank].clock
                    )
                continue
            # Nobody runnable: all done, a timer to fire, or a dead end.
            live = [p for p in self._procs if p.live]
            if not live:
                return
            # A blocked receive may still be satisfiable if a matching
            # message arrived while the rank was out of the queue (cannot
            # happen with current wake logic, but guard anyway).
            woke = False
            for p in live:
                if not isinstance(p.waiting, Recv):
                    continue
                msg = self._mailboxes[p.rank].match(p.waiting)
                if msg is None:
                    continue
                p.waiting = None
                p.deadline = None
                self._complete_recv(p.rank, msg)
                p.send_value = msg
                self._make_runnable(p.rank)
                woke = True
            if woke:
                continue
            # Timed receives expire only here — when nothing else can
            # move — so a timeout can never race a message some runnable
            # rank was still going to send.  Fire the earliest deadline
            # (rank id breaks ties) and resume that rank with TIMEOUT.
            timed = [
                p for p in live
                if isinstance(p.waiting, Recv) and p.deadline is not None
            ]
            if timed:
                p = min(timed, key=lambda q: (q.deadline, q.rank))
                st = self._stats[p.rank]
                st.advance_to(p.deadline)
                p.waiting = None
                p.deadline = None
                p.send_value = TIMEOUT
                mx = self._mx
                if mx is not None and mx.registry._enabled:
                    mx.recv_timeouts.inc()
                if self.tracer is not None:
                    self.tracer.record(st.clock, p.rank, "timeout")
                self._make_runnable(p.rank)
                continue
            # Stuck for good: attribute the failure.
            crashed = {
                p.rank: self.fault_plan.crash_at.get(p.rank, 0)
                for p in self._procs
                if p.crashed
            }
            if crashed:
                raise RankFailureError(crashed, pending=self._pending_on(crashed, live))
            blocked = {
                p.rank: (p.waiting.describe() if p.waiting is not None else "nothing")
                for p in live
            }
            raise DeadlockError(blocked, wait_for=self._wait_for_graph(live))

    # -------------------------------------------------------- stuck forensics
    def _waits_on(self, proc: _Proc) -> tuple[int, ...]:
        """Ranks whose progress could unblock ``proc`` right now."""
        op = proc.waiting
        if isinstance(op, Recv):
            if op.source is ANY:
                return tuple(
                    q.rank for q in self._procs
                    if q.rank != proc.rank and not q.finished
                )
            return (op.source,)
        if isinstance(op, CollectiveOp):
            key = (op.group, op.kind, op.key)
            pending = self._pending_collectives.get(key)
            arrived = pending.arrived if pending is not None else set()
            return tuple(sorted(set(op.group) - arrived))
        return ()

    def _wait_for_graph(self, live: list[_Proc]) -> dict[int, tuple[int, ...]]:
        return {p.rank: self._waits_on(p) for p in live if p.waiting is not None}

    def _pending_on(self, crashed: dict[int, int], live: list[_Proc]) -> dict[int, str]:
        """For each crashed rank, what the survivors still need from it."""
        pending: dict[int, str] = {}
        for rank in sorted(crashed):
            waiters = sorted(
                p.rank for p in live
                if p.waiting is not None and rank in self._waits_on(p)
            )
            unread = len(self._mailboxes[rank])
            parts = []
            if waiters:
                parts.append(f"ranks {waiters} blocked on rank {rank}")
            if unread:
                parts.append(f"{unread} unread message(s) in its mailbox")
            pending[rank] = "; ".join(parts) if parts else f"nothing pending on rank {rank}"
        return pending

    def _crash(self, rank: int) -> None:
        proc = self._procs[rank]
        proc.crashed = True
        proc.waiting = None
        proc.deadline = None
        if proc.gen is not None:
            proc.gen.close()
        if self.tracer is not None:
            self.tracer.record(self._stats[rank].clock, rank, "crash")

    def _step(self, rank: int) -> None:
        """Advance one rank until it blocks or finishes."""
        proc = self._procs[rank]
        inj = self._injector
        while True:
            if inj is not None and inj.should_crash(rank):
                self._crash(rank)
                return
            try:
                op = proc.gen.send(proc.send_value)
            except StopIteration as stop:
                proc.finished = True
                proc.result = stop.value
                return
            except Exception as exc:
                raise ProgramError(rank, f"program raised {type(exc).__name__}: {exc}") from exc
            proc.send_value = None

            if isinstance(op, Recv):
                msg = self._mailboxes[rank].match(op)
                if msg is None:
                    proc.waiting = op
                    if op.timeout is not None:
                        proc.deadline = self._stats[rank].clock + op.timeout
                    return
                self._complete_recv(rank, msg)
                proc.send_value = msg
                continue

            if isinstance(op, CollectiveOp):
                finished = self._join_collective(rank, op)
                if not finished:
                    proc.waiting = op
                    return
                # This rank was the last to arrive.  _fire_collective set
                # proc.send_value and re-queued every member (including this
                # rank), so yield the timeslice and let the scheduler resume
                # it with the collective's result.
                return

            raise ProgramError(rank, f"yielded unsupported op {op!r}")

    # ------------------------------------------------------------- messages
    def _deliver(
        self,
        source: int,
        dest: int,
        tag: int,
        payload: Any,
        words: int,
        send_clock: float,
        auto_ack: tuple[Any, int] | None = None,
    ) -> None:
        """Called by Context.send: enqueue the message and wake the receiver.

        With a fault injector attached, the delivery may be dropped,
        duplicated, corrupted or delayed here — after the sender already
        paid its send cost, exactly like a real in-flight loss.  Messages
        addressed to a crashed rank are dropped unconditionally.

        ``auto_ack=(ack_payload, ack_words)`` asks for a transport-level
        acknowledgment: for every copy that arrives *uncorrupted*, the
        engine sends ``ack_payload`` back to the sender on the same tag,
        originating at the copy's arrival time.  The ack is generated by
        the destination node's network interface, not its program — it
        costs the destination's CPU nothing and keeps flowing even when
        the destination's program has finished — and it crosses the same
        faulty network (it may itself be dropped, duplicated, corrupted
        or delayed).  This is the primitive the reliable transport
        (:mod:`repro.faults.reliable`) builds its retransmit loop on.
        """
        mx = self._mx
        if mx is not None and mx.registry._enabled:
            mx.sends.inc()
            mx.words_sent.inc(words)
            mx.message_words.observe(words)
        if self.tracer is not None:
            self.tracer.record(
                send_clock, source, "send",
                dest=dest, tag=tag, words=words,
            )
        inj = self._injector
        if inj is None:
            copies = ((payload, 0.0, False),)
        else:
            if self._procs[dest].crashed:
                inj.drop_to_crashed()
                if self.tracer is not None:
                    self.tracer.record(
                        send_clock, source, "fault",
                        kind_of="drop", dest=dest, tag=tag, reason="crashed",
                    )
                return
            copies = inj.deliveries(source, dest, tag, payload, words)
            if not copies:
                if self.tracer is not None:
                    self.tracer.record(
                        send_clock, source, "fault",
                        kind_of="drop", dest=dest, tag=tag,
                    )
                return
        for delivered_payload, extra_delay, corrupted in copies:
            arrival = self._deposit(
                source, dest, tag, delivered_payload, words, send_clock, extra_delay
            )
            if auto_ack is not None and not corrupted and dest != source:
                ack_payload, ack_words = auto_ack
                mx = self._mx
                if mx is not None and mx.registry._enabled:
                    mx.auto_acks.inc()
                transit = self.spec.message_time(
                    ack_words, self.spec.hops_between(dest, source)
                )
                self._deliver(dest, source, tag, ack_payload, ack_words, arrival + transit)

    def _deposit(
        self,
        source: int,
        dest: int,
        tag: int,
        payload: Any,
        words: int,
        send_clock: float,
        extra_delay: float = 0.0,
    ) -> float:
        """Place one (possibly fault-modified) copy into dest's mailbox;
        returns the copy's arrival time."""
        self._seq += 1
        arrival = send_clock  # sender already paid tau + mu*m
        if self.spec.rx_port and source != dest and words > 0:
            # Node contention: the message occupies the destination's
            # serial receive port for mu*words.  The transfer may start as
            # early as send_clock - transfer (overlapping the sender's own
            # charge), in the earliest gap of the port's busy schedule —
            # interval gap-filling keeps arrivals causal even though the
            # engine delivers messages in simulation order, which need not
            # be simulated-time order.
            transfer = self.spec.mu * words
            arrival = self._reserve_port(dest, send_clock - transfer, transfer)
            mx = self._mx
            if mx is not None and mx.registry._enabled and arrival > send_clock:
                # The destination's serial receive port was busy: the
                # message landed later than the contention-free model
                # would have delivered it.
                mx.port_stalls.inc()
                mx.port_stall_seconds.observe(arrival - send_clock)
        msg = Message(
            source=source,
            dest=dest,
            tag=tag,
            payload=payload,
            words=words,
            send_time=send_clock,
            arrival_time=arrival + extra_delay,
            seq=self._seq,
        )
        self._mailboxes[dest].deposit(msg)
        # One wake attempt per deposit: only when the receiver is blocked
        # on a pattern this message satisfies is the (indexed, O(log n))
        # match run — it returns the best match, which is this message
        # unless an older pending one also satisfies the pattern.
        proc = self._procs[dest]
        waiting = proc.waiting
        if type(waiting) is Recv and waiting.matches(msg):
            taken = self._mailboxes[dest].match(waiting)
            proc.waiting = None
            proc.deadline = None
            self._complete_recv(dest, taken)
            proc.send_value = taken
            self._make_runnable(dest)
        return msg.arrival_time

    def _reserve_port(self, dest: int, ready: float, transfer: float) -> float:
        """Book ``transfer`` seconds on dest's receive port, no earlier
        than ``ready``; returns the transfer's end time (the arrival).

        The busy schedule is kept as disjoint sorted intervals with
        touching neighbours merged, so locating the earliest fitting gap
        is a bisection plus a (typically zero-length) walk over the few
        intervals straddling ``ready`` — the seed implementation rescanned
        the whole schedule from the start for every message.  Gap choice
        is identical to the seed's first-fit scan: merging touching
        intervals never removes a gap, and intervals wholly before
        ``ready`` can never contain the booking.
        """
        starts, ends = self._port_busy[dest]
        n = len(starts)
        # First interval that ends after `ready` — everything before it is
        # already in the past relative to this booking.
        i = bisect_right(ends, ready)
        start = ready
        while i < n and starts[i] < start + transfer:
            # Interval i overlaps the candidate window: push past it.
            if ends[i] > start:
                start = ends[i]
            i += 1
        end = start + transfer
        # Insert [start, end) before interval i, merging touching runs.
        merge_prev = i > 0 and ends[i - 1] == start
        merge_next = i < n and starts[i] == end
        if merge_prev and merge_next:
            ends[i - 1] = ends[i]
            del starts[i], ends[i]
        elif merge_prev:
            ends[i - 1] = end
        elif merge_next:
            starts[i] = start
        else:
            starts.insert(i, start)
            ends.insert(i, end)
        return end

    def _complete_recv(self, rank: int, msg: Message) -> None:
        st = self._stats[rank]
        mx = self._mx
        if mx is not None and mx.registry._enabled:
            mx.recvs.inc()
            wait = msg.arrival_time - st.clock
            if wait > 0:
                mx.recv_wait_seconds.observe(wait)
        st.advance_to(msg.arrival_time)
        st.recvs += 1
        st.words_received += msg.words
        if self.tracer is not None:
            self.tracer.record(
                st.clock, rank, "recv",
                source=msg.source, tag=msg.tag, words=msg.words,
            )

    # ---------------------------------------------------------- collectives
    def _join_collective(self, rank: int, op: CollectiveOp) -> bool:
        if rank not in op.group:
            raise CollectiveMismatchError(f"rank {rank} not in its own group {op.group}")
        key = (op.group, op.kind, op.key)
        pending = self._pending_collectives.get(key)
        if pending is None:
            pending = _PendingCollective(op)
            self._pending_collectives[key] = pending
        pending.join(rank, op)
        if not pending.complete:
            return False
        del self._pending_collectives[key]
        self._fire_collective(pending)
        return True

    def _fire_collective(self, pending: _PendingCollective) -> None:
        op = pending.op
        members = op.group
        sync = max(self._stats[r].clock for r in members)
        if op.combine is not None:
            results, words = op.combine(pending.payloads)
        else:
            results, words = ({r: None for r in members}, 0)
        if op.cost_seconds is not None:
            cost = op.cost_seconds
        elif self.spec.has_control_network:
            cost = self.spec.ctrl_time(words)
        else:
            raise CollectiveMismatchError(
                f"collective {op.kind!r} needs a control network or explicit cost "
                f"on machine {self.spec.name!r}"
            )
        mx = self._mx
        if mx is not None and mx.registry._enabled:
            mx.collectives.inc()
            mx.collective_words.inc(words)
            mx.collective_group_size.observe(len(members))
            skew = sync - min(self._stats[r].clock for r in members)
            if skew > 0:
                mx.collective_skew_seconds.observe(skew)
        for r in members:
            st = self._stats[r]
            st.advance_to(sync)
            st.advance(cost)
            st.ctrl_ops += 1
            if self.tracer is not None:
                self.tracer.record(
                    st.clock, r, "collective", op=op.kind, group_size=len(members)
                )
            proc = self._procs[r]
            proc.waiting = None
            proc.send_value = results.get(r)
            self._make_runnable(r)

    def __repr__(self) -> str:
        return f"Machine(nprocs={self.nprocs}, spec={self.spec.name!r})"
