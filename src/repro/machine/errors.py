"""Exception hierarchy for the coarse-grained machine simulator.

The simulator is deterministic, so every error below is reproducible: the
same program on the same :class:`~repro.machine.spec.MachineSpec` either
always raises or never does.  Errors carry enough rank-level state to debug
SPMD programs (which rank was blocked on what, which message could not be
matched, and so on).
"""

from __future__ import annotations

__all__ = [
    "MachineError",
    "DeadlockError",
    "ProgramError",
    "CollectiveMismatchError",
    "MessageError",
    "PhaseError",
    "RankFailureError",
    "ReliabilityError",
    "TimeDomainError",
    "WatchdogError",
]


class MachineError(Exception):
    """Base class for all simulator errors."""


class DeadlockError(MachineError):
    """Every live rank is blocked on a receive that can never be satisfied.

    Raised by the engine when no rank is runnable, at least one rank is
    blocked, and no queued or in-flight message can match any pending
    receive.  The message lists each blocked rank and the (source, tag)
    pattern it is waiting for; :attr:`wait_for` additionally carries the
    wait-for graph — for each blocked rank, the ranks whose progress
    could unblock it (the named receive source, or the collective
    members that have not arrived) — so cyclic waits can be read off
    directly.
    """

    def __init__(
        self,
        blocked: dict[int, str],
        wait_for: dict[int, tuple[int, ...]] | None = None,
    ):
        self.blocked = dict(blocked)
        self.wait_for = {r: tuple(w) for r, w in (wait_for or {}).items()}
        lines = ", ".join(f"rank {r}: waiting on {w}" for r, w in sorted(blocked.items()))
        detail = f"deadlock: all live ranks blocked ({lines})"
        if self.wait_for:
            edges = "; ".join(
                f"{r} <- {list(w)}" for r, w in sorted(self.wait_for.items())
            )
            detail += f" [wait-for graph: {edges}]"
        super().__init__(detail)


class RankFailureError(MachineError):
    """One or more ranks crashed and the rest of the run got stuck on them.

    Raised instead of a bare :class:`DeadlockError` when injected rank
    crashes (see :class:`repro.faults.FaultPlan`) leave the surviving
    ranks blocked.  Carries which ranks died (:attr:`crashed`, with the
    step each died at) and what was still pending on them
    (:attr:`pending`: blocked ranks waiting on a dead peer, and unread
    messages sitting in dead mailboxes).
    """

    def __init__(
        self,
        crashed: dict[int, int],
        pending: dict[int, str] | None = None,
    ):
        self.crashed = dict(crashed)
        self.pending = dict(pending or {})
        who = ", ".join(
            f"rank {r} (at step {s})" for r, s in sorted(self.crashed.items())
        )
        detail = f"rank failure: {who} crashed"
        if self.pending:
            waits = "; ".join(f"{w}" for _, w in sorted(self.pending.items()))
            detail += f"; pending on crashed ranks: {waits}"
        super().__init__(detail)


class WatchdogError(MachineError):
    """The run exceeded its progress budget (steps or simulated time).

    A livelock — e.g. a retransmit storm — never raises
    :class:`DeadlockError` because some rank is always runnable; the
    watchdog budgets passed to :class:`~repro.machine.engine.Machine`
    bound it instead.
    """

    def __init__(self, kind: str, limit: float, reached: float):
        self.kind = kind
        self.limit = limit
        self.reached = reached
        unit = "steps" if kind == "steps" else "simulated seconds"
        super().__init__(
            f"watchdog: run exceeded its {kind} budget "
            f"({reached:g} > {limit:g} {unit})"
        )


class ReliabilityError(MachineError):
    """The reliable transport gave up on a packet (retries exhausted).

    The configured loss rate was not survivable with the configured
    retry budget; raising beats both silent data loss and an opaque
    deadlock.  Attributes name the sending rank, the destination and
    the per-channel sequence number of the abandoned packet.
    """

    def __init__(self, rank: int, dest: int, seq: int, attempts: int):
        self.rank = rank
        self.dest = dest
        self.seq = seq
        self.attempts = attempts
        super().__init__(
            f"rank {rank}: gave up sending packet seq={seq} to rank {dest} "
            f"after {attempts} attempts (all unacknowledged)"
        )


class ProgramError(MachineError):
    """An SPMD program raised, or yielded something the engine cannot run.

    The original exception (if any) is attached as ``__cause__`` and the
    offending rank is recorded in :attr:`rank`.
    """

    def __init__(self, rank: int, detail: str):
        self.rank = rank
        super().__init__(f"rank {rank}: {detail}")


class CollectiveMismatchError(MachineError):
    """Members of a synchronizing collective disagreed about the operation.

    Every participant of a :class:`~repro.machine.ops.CollectiveOp` must name
    the same group and the same kind; anything else is an SPMD bug in the
    caller, not a recoverable condition.
    """


class MessageError(MachineError):
    """A send or receive was malformed (negative size, bad rank, ...)."""


class PhaseError(MachineError):
    """Phase bookkeeping was used inconsistently (e.g. empty phase name)."""


class TimeDomainError(MachineError):
    """An aggregate tried to combine times from different domains.

    A :class:`~repro.machine.stats.RunResult` carries a ``time_domain``:
    ``"simulated"`` (CM-5-scale clock charged from the
    :class:`~repro.machine.spec.MachineSpec` cost model) or ``"wall"``
    (real host seconds measured by the multiprocessing backend).  The two
    are unrelated scales — a sum or comparison across them is garbage, so
    the aggregation helpers refuse instead.
    """

    def __init__(self, domains):
        self.domains = tuple(sorted(set(domains)))
        super().__init__(
            f"cannot aggregate times across domains {list(self.domains)}; "
            f"simulated clocks and wall clocks are unrelated scales"
        )
