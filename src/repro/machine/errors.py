"""Exception hierarchy for the coarse-grained machine simulator.

The simulator is deterministic, so every error below is reproducible: the
same program on the same :class:`~repro.machine.spec.MachineSpec` either
always raises or never does.  Errors carry enough rank-level state to debug
SPMD programs (which rank was blocked on what, which message could not be
matched, and so on).
"""

from __future__ import annotations

__all__ = [
    "MachineError",
    "DeadlockError",
    "ProgramError",
    "CollectiveMismatchError",
    "MessageError",
    "PhaseError",
]


class MachineError(Exception):
    """Base class for all simulator errors."""


class DeadlockError(MachineError):
    """Every live rank is blocked on a receive that can never be satisfied.

    Raised by the engine when no rank is runnable, at least one rank is
    blocked, and no queued or in-flight message can match any pending
    receive.  The message lists each blocked rank and the (source, tag)
    pattern it is waiting for.
    """

    def __init__(self, blocked: dict[int, str]):
        self.blocked = dict(blocked)
        lines = ", ".join(f"rank {r}: waiting on {w}" for r, w in sorted(blocked.items()))
        super().__init__(f"deadlock: all live ranks blocked ({lines})")


class ProgramError(MachineError):
    """An SPMD program raised, or yielded something the engine cannot run.

    The original exception (if any) is attached as ``__cause__`` and the
    offending rank is recorded in :attr:`rank`.
    """

    def __init__(self, rank: int, detail: str):
        self.rank = rank
        super().__init__(f"rank {rank}: {detail}")


class CollectiveMismatchError(MachineError):
    """Members of a synchronizing collective disagreed about the operation.

    Every participant of a :class:`~repro.machine.ops.CollectiveOp` must name
    the same group and the same kind; anything else is an SPMD bug in the
    caller, not a recoverable condition.
    """


class MessageError(MachineError):
    """A send or receive was malformed (negative size, bad rank, ...)."""


class PhaseError(MachineError):
    """Phase bookkeeping was used inconsistently (e.g. empty phase name)."""
