"""Per-rank mailboxes with deterministic, indexed matching.

Sends in the simulator are eager and buffered: the sender deposits the
message into the receiver's mailbox immediately (stamped with its arrival
time) and continues.  A receive takes, among the queued messages its
pattern matches, the one with the smallest ``(arrival_time, seq)``.
Because sequence numbers are issued globally in simulation order, matching
is fully deterministic, and per ``(source, tag)`` channel delivery is FIFO
— the ordering contract every algorithm in this library is written
against.

The seed implementation scanned every pending message per ``match`` —
O(pending) per receive, O(pending^2) to drain a mailbox, which dominated
wall-clock time in many-to-many rounds (each of P ranks drains up to P-1
buffered messages).  This version indexes the store instead:

* one min-heap per ``(source, tag)`` **channel**, keyed by
  ``(arrival_time, seq)`` — arrival times within a channel need *not* be
  monotone (receive-port gap-filling and injected delay faults can
  reorder them), so a heap rather than a FIFO deque is required for the
  exact seed contract;
* ``source -> tags`` and ``tag -> sources`` secondary indexes, so a
  half-wildcard pattern peeks only the live channels it could match
  (typically a handful) instead of every message;
* one global heap over all messages for fully-wildcard patterns, with
  lazy deletion: a message popped through any other path leaves a stale
  entry behind, skipped (and reclaimed) the next time it surfaces.

Every operation is O(log pending) amortised, and ``would_match`` is a
peek, not a scan.  Matching results are bit-for-bit identical to the seed
scan (verified by ``tests/machine/test_mailbox_determinism.py``).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Iterable

from .ops import ANY, Message, Recv

__all__ = ["Mailbox"]


class Mailbox:
    """Indexed message store for one receiving rank."""

    __slots__ = ("rank", "_channels", "_by_source", "_by_tag", "_all",
                 "_stale", "_count")

    def __init__(self, rank: int):
        self.rank = rank
        # (source, tag) -> heap of (arrival_time, seq, msg)
        self._channels: dict[tuple[int, int], list] = {}
        self._by_source: dict[int, set[int]] = {}
        self._by_tag: dict[int, set[int]] = {}
        # Global heap for (ANY, ANY); entries removed lazily.
        self._all: list = []
        # Seqs physically removed from one heap whose twin entry is stale.
        self._stale: set[int] = set()
        self._count = 0

    def __len__(self) -> int:
        return self._count

    # -------------------------------------------------------------- deposit
    def deposit(self, msg: Message) -> None:
        if msg.dest != self.rank:
            raise ValueError(f"message for {msg.dest} deposited at rank {self.rank}")
        entry = (msg.arrival_time, msg.seq, msg)
        key = (msg.source, msg.tag)
        heap = self._channels.get(key)
        if heap is None:
            self._channels[key] = [entry]
            self._by_source.setdefault(msg.source, set()).add(msg.tag)
            self._by_tag.setdefault(msg.tag, set()).add(msg.source)
        else:
            heappush(heap, entry)
        heappush(self._all, entry)
        self._count += 1

    # ------------------------------------------------------------- matching
    def _drop_channel(self, key: tuple[int, int]) -> None:
        del self._channels[key]
        source, tag = key
        tags = self._by_source[source]
        tags.discard(tag)
        if not tags:
            del self._by_source[source]
        sources = self._by_tag[tag]
        sources.discard(source)
        if not sources:
            del self._by_tag[tag]

    def _peek_channel(self, key: tuple[int, int]):
        """Head entry of one channel, or None.

        Channel heaps hold no stale entries — removal always pops the
        channel copy physically and leaves the stale twin in ``_all`` —
        and emptied channels are dropped eagerly, so a present heap is
        non-empty and its head is live.
        """
        heap = self._channels.get(key)
        return heap[0] if heap else None

    def _best_key(self, pattern: Recv) -> tuple[int, int] | None:
        """Channel holding the pattern's best match, or None."""
        source, tag = pattern.source, pattern.tag
        if source is not ANY and tag is not ANY:
            key = (source, tag)
            return key if self._peek_channel(key) is not None else None
        if source is not ANY:
            candidates = [(source, t) for t in self._by_source.get(source, ())]
        elif tag is not ANY:
            candidates = [(s, tag) for s in self._by_tag.get(tag, ())]
        else:
            # Fully wildcard: the global heap's live head is the answer.
            heap, stale = self._all, self._stale
            while heap:
                entry = heap[0]
                if entry[1] in stale:
                    heappop(heap)
                    stale.discard(entry[1])
                else:
                    msg = entry[2]
                    return (msg.source, msg.tag)
            return None
        best_key = None
        best = None
        for key in candidates:
            entry = self._peek_channel(key)
            if entry is not None and (best is None or entry < best):
                best = entry
                best_key = key
        return best_key

    def match(self, pattern: Recv) -> Message | None:
        """Remove and return the best matching message, or None.

        "Best" is the smallest ``(arrival_time, seq)`` pair, which keeps
        simulation time causal and tie-breaks deterministically.
        """
        key = self._best_key(pattern)
        if key is None:
            return None
        entry = heappop(self._channels[key])
        if not self._channels[key]:
            self._drop_channel(key)
        # Its twin in the global heap is now stale.
        self._stale.add(entry[1])
        self._count -= 1
        return entry[2]

    def would_match(self, pattern: Recv) -> bool:
        return self._best_key(pattern) is not None

    # ------------------------------------------------------------ inspection
    def peek_all(self) -> Iterable[Message]:
        """All pending messages, in deposit (sequence) order."""
        live = [e for heap in self._channels.values() for e in heap]
        live.sort(key=lambda e: e[1])
        return tuple(e[2] for e in live)

    def __repr__(self) -> str:
        return f"Mailbox(rank={self.rank}, pending={self._count})"
