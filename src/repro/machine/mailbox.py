"""Per-rank mailboxes with deterministic matching.

Sends in the simulator are eager and buffered: the sender deposits the
message into the receiver's mailbox immediately (stamped with its arrival
time) and continues.  A receive scans the mailbox for matching messages and
takes the one with the smallest ``(arrival_time, seq)``.  Because sequence
numbers are issued globally in simulation order, matching is fully
deterministic, and per ``(source, tag)`` channel delivery is FIFO — the
ordering contract every algorithm in this library is written against.
"""

from __future__ import annotations

from typing import Iterable

from .ops import Message, Recv

__all__ = ["Mailbox"]


class Mailbox:
    """Unordered message store for one receiving rank."""

    __slots__ = ("rank", "_messages")

    def __init__(self, rank: int):
        self.rank = rank
        self._messages: list[Message] = []

    def __len__(self) -> int:
        return len(self._messages)

    def deposit(self, msg: Message) -> None:
        if msg.dest != self.rank:
            raise ValueError(f"message for {msg.dest} deposited at rank {self.rank}")
        self._messages.append(msg)

    def match(self, pattern: Recv) -> Message | None:
        """Remove and return the best matching message, or None.

        "Best" is the smallest ``(arrival_time, seq)`` pair, which keeps
        simulation time causal and tie-breaks deterministically.
        """
        best_idx = -1
        best_key: tuple[float, int] | None = None
        for i, msg in enumerate(self._messages):
            if pattern.matches(msg):
                key = (msg.arrival_time, msg.seq)
                if best_key is None or key < best_key:
                    best_key = key
                    best_idx = i
        if best_idx < 0:
            return None
        return self._messages.pop(best_idx)

    def would_match(self, pattern: Recv) -> bool:
        return any(pattern.matches(m) for m in self._messages)

    def peek_all(self) -> Iterable[Message]:
        return tuple(self._messages)

    def __repr__(self) -> str:
        return f"Mailbox(rank={self.rank}, pending={len(self._messages)})"
