"""Interconnect topologies beyond the virtual crossbar.

Section 2 of the paper adopts the two-level model — a message costs
``tau + mu*m`` regardless of distance — and argues the algorithms "can be
efficiently implemented on meshes and hypercubes with wormhole routing",
where the per-message time becomes ``tau + h*tau_hop + mu*m`` with ``h``
the routing distance and ``tau_hop`` the (small) per-hop wormhole set-up
cost, still contention-free.

This module supplies those topologies so the claim can be *tested*: attach
one to a :class:`~repro.machine.spec.MachineSpec` (``spec.with_topology``)
and every point-to-point send pays its hop count.  The architecture-
independence ablation (``bench_topology.py``) shows PACK totals moving by
only a few percent between the crossbar, a 2-D mesh and a hypercube at
CM-5-like ``tau_hop/tau`` ratios — the paper's portability argument.

Topologies are frozen (hashable) and validate rank bounds; routing
distances follow the standard minimal routes:

* crossbar — 1 hop between distinct processors;
* ring — minimal of clockwise/counterclockwise distance;
* 2-D mesh — Manhattan distance under dimension-ordered (XY) routing
  (torus wraparound optional);
* hypercube — Hamming distance under e-cube routing.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Topology", "Crossbar", "Ring", "Mesh2D", "Hypercube", "make_topology"]


@dataclass(frozen=True)
class Topology:
    """Base: a named graph over ``nprocs`` processors with a hop metric."""

    nprocs: int

    def __post_init__(self) -> None:
        if self.nprocs < 1:
            raise ValueError(f"need at least one processor, got {self.nprocs}")

    def hops(self, src: int, dst: int) -> int:
        raise NotImplementedError

    def _check(self, src: int, dst: int) -> None:
        if not (0 <= src < self.nprocs and 0 <= dst < self.nprocs):
            raise ValueError(
                f"ranks ({src}, {dst}) out of range for {self.nprocs} processors"
            )

    @property
    def diameter(self) -> int:
        """Maximum hop count between any pair."""
        return max(
            self.hops(0, d) for d in range(self.nprocs)
        ) if self.nprocs > 1 else 0

    def average_distance(self) -> float:
        """Mean hop count over all ordered distinct pairs."""
        if self.nprocs < 2:
            return 0.0
        total = sum(
            self.hops(s, d)
            for s in range(self.nprocs)
            for d in range(self.nprocs)
            if s != d
        )
        return total / (self.nprocs * (self.nprocs - 1))


@dataclass(frozen=True)
class Crossbar(Topology):
    """The paper's virtual crossbar: one hop between distinct processors."""

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        return 0 if src == dst else 1


@dataclass(frozen=True)
class Ring(Topology):
    """Bidirectional ring; minimal routing."""

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        d = abs(src - dst)
        return min(d, self.nprocs - d)


@dataclass(frozen=True)
class Mesh2D(Topology):
    """``rows x cols`` mesh with dimension-ordered routing.

    Ranks are laid out row-major.  With ``torus=True`` each dimension
    wraps around (a 2-D torus).
    """

    rows: int = 0
    cols: int = 0
    torus: bool = False

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.rows * self.cols != self.nprocs:
            raise ValueError(
                f"mesh {self.rows}x{self.cols} does not tile {self.nprocs} processors"
            )

    def coords(self, rank: int) -> tuple[int, int]:
        return divmod(rank, self.cols)

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        (r1, c1), (r2, c2) = self.coords(src), self.coords(dst)
        dr = abs(r1 - r2)
        dc = abs(c1 - c2)
        if self.torus:
            dr = min(dr, self.rows - dr)
            dc = min(dc, self.cols - dc)
        return dr + dc


@dataclass(frozen=True)
class Hypercube(Topology):
    """Boolean hypercube; e-cube routing distance = Hamming distance."""

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.nprocs & (self.nprocs - 1):
            raise ValueError(f"hypercube needs a power-of-two size, got {self.nprocs}")

    @property
    def dimension(self) -> int:
        return self.nprocs.bit_length() - 1

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        return (src ^ dst).bit_count()


def make_topology(kind: str, nprocs: int, **kw) -> Topology:
    """Front door: ``"crossbar"``, ``"ring"``, ``"mesh"`` (square by
    default, or pass ``rows``/``cols``), ``"torus"``, ``"hypercube"``."""
    k = kind.lower()
    if k == "crossbar":
        return Crossbar(nprocs)
    if k == "ring":
        return Ring(nprocs)
    if k in ("mesh", "torus"):
        rows = kw.get("rows")
        cols = kw.get("cols")
        if rows is None and cols is None:
            side = int(round(nprocs**0.5))
            if side * side != nprocs:
                raise ValueError(
                    f"cannot build a square mesh of {nprocs} processors; "
                    f"pass rows=/cols="
                )
            rows = cols = side
        elif rows is None:
            rows = nprocs // cols
        elif cols is None:
            cols = nprocs // rows
        return Mesh2D(nprocs, rows=rows, cols=cols, torus=(k == "torus"))
    if k == "hypercube":
        return Hypercube(nprocs)
    raise ValueError(f"unknown topology {kind!r}")
