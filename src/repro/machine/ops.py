"""Operations an SPMD program may yield to the engine.

Programs are Python generator functions with signature ``program(ctx, ...)``.
Purely local actions (charging work, sending a message, switching phase) are
ordinary method calls on the :class:`~repro.machine.context.Context`; only
actions that may *block* — receiving a message, synchronizing a collective —
are expressed by yielding one of the op objects below.  The engine resumes
the generator with the op's result (a :class:`Message` for :class:`Recv`,
the combined payload for :class:`CollectiveOp`, ``None`` for
:class:`Barrier`).

Keeping blocking ops explicit makes programs read like message-passing code::

    def worker(ctx):
        ctx.send(0, my_data, words=len(my_data))
        reply = yield Recv(source=0)
        ctx.work(len(reply.payload))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

__all__ = ["ANY", "TIMEOUT", "Message", "Recv", "CollectiveOp", "Barrier"]


class _Any:
    """Wildcard sentinel for ``source`` / ``tag`` matching."""

    _instance: "_Any | None" = None

    def __new__(cls) -> "_Any":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "ANY"


#: Match any source rank or any tag in a :class:`Recv`.
ANY = _Any()


class _Timeout:
    """Sentinel the engine resumes a timed :class:`Recv` with on expiry."""

    _instance: "_Timeout | None" = None

    def __new__(cls) -> "_Timeout":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "TIMEOUT"

    def __bool__(self) -> bool:
        return False


#: Resumption value of a :class:`Recv` whose ``timeout`` expired.
TIMEOUT = _Timeout()


@dataclass(frozen=True, slots=True)
class Message:
    """A delivered point-to-point message.

    Attributes
    ----------
    source:
        sending rank.
    dest:
        receiving rank.
    tag:
        integer tag chosen by the sender.
    payload:
        arbitrary Python object; the simulator never copies it, so senders
        must not mutate a payload after sending (programs in this library
        send immutable tuples or freshly allocated numpy arrays).
    words:
        the size charged to the network, in 4-byte words.  This is the
        *modeled* size, set explicitly by the sender; it need not equal the
        Python object's memory footprint.
    send_time:
        sender's local clock when the send was issued.
    arrival_time:
        time at which the message is available at the receiver
        (``send_time + tau + mu * words``).
    seq:
        global sequence number, used only to break arrival-time ties
        deterministically.
    """

    source: int
    dest: int
    tag: int
    payload: Any
    words: int
    send_time: float
    arrival_time: float
    seq: int

    def __repr__(self) -> str:
        return (
            f"Message({self.source}->{self.dest}, tag={self.tag}, "
            f"words={self.words}, arrives={self.arrival_time:.6f})"
        )


@dataclass(frozen=True, slots=True)
class Recv:
    """Blocking receive.

    ``source`` and ``tag`` may each be a concrete value or :data:`ANY`.
    Among queued messages that match, the engine delivers the one with the
    smallest ``(arrival_time, seq)``; per (source, tag) channel this gives
    FIFO order, which is the ordering guarantee the rest of the library
    relies on.

    ``timeout`` (simulated seconds, relative to the moment the rank
    blocks) makes the receive expire: the generator is resumed with
    :data:`TIMEOUT` instead of a message.  The engine is conservative —
    a timed receive expires only when no rank can otherwise make
    progress — so a timeout never races a message that another runnable
    rank was still going to send.  This is the primitive the reliable
    transport's retransmit timers are built on
    (:mod:`repro.faults.reliable`).
    """

    source: Any = ANY
    tag: Any = ANY
    timeout: float | None = None

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"Recv timeout must be > 0, got {self.timeout}")

    def matches(self, msg: Message) -> bool:
        if self.source is not ANY and msg.source != self.source:
            return False
        if self.tag is not ANY and msg.tag != self.tag:
            return False
        return True

    def describe(self) -> str:
        src = "ANY" if self.source is ANY else str(self.source)
        tag = "ANY" if self.tag is ANY else str(self.tag)
        extra = "" if self.timeout is None else f", timeout={self.timeout:g}s"
        return f"Recv(source={src}, tag={tag}{extra})"


@dataclass(frozen=True)
class CollectiveOp:
    """A synchronizing collective executed by the engine itself.

    All ranks listed in ``group`` must yield a ``CollectiveOp`` with the
    same ``group``, ``kind`` and ``key``; the engine gathers their
    ``payload`` values, applies ``combine`` once, charges every member
    ``cost_seconds`` on top of the synchronized clock (the max of the
    members' clocks), and resumes each member with the combined result.

    This models *hardware-combining* primitives — on the CM-5, the control
    network performs scans and reductions without any data-network traffic.
    Software collectives (trees over point-to-point messages) live in
    :mod:`repro.collectives` instead and never use this op.

    Attributes
    ----------
    group:
        sorted tuple of participating ranks.
    kind:
        short operation name (``"prs"``, ``"barrier"``, ...); purely for
        mismatch checking and tracing.
    key:
        per-call-site disambiguator.  Two different collective calls that
        could be outstanding at once must use different keys; SPMD programs
        that execute the same call sequence on every member rank may leave
        it at 0.
    payload:
        this rank's contribution.
    combine:
        function ``(payloads: dict[rank, payload]) -> (results: dict[rank,
        Any], words: int)`` run once when the group is complete.  ``words``
        is the control-network traffic volume used for cost accounting.
    cost_seconds:
        explicit extra cost per member; if ``None`` the engine charges
        ``spec.ctrl_time(words)`` using the ``words`` returned by
        ``combine``.
    """

    group: tuple[int, ...]
    kind: str
    payload: Any = None
    key: int = 0
    combine: Callable[[dict], tuple[dict, int]] | None = None
    cost_seconds: float | None = None

    def __post_init__(self) -> None:
        if tuple(sorted(self.group)) != tuple(self.group):
            raise ValueError(f"collective group must be sorted: {self.group}")
        if len(set(self.group)) != len(self.group):
            raise ValueError(f"collective group has duplicates: {self.group}")

    def describe(self) -> str:
        return f"CollectiveOp(kind={self.kind!r}, key={self.key}, group={self.group})"


def Barrier(group: Sequence[int], key: int = 0) -> CollectiveOp:
    """A pure synchronization collective: clocks meet at the group max.

    Modeled on the CM-5 control network's global-synchronization capability
    (a few microseconds, here charged as one zero-word control operation).
    """

    def _combine(payloads: dict) -> tuple[dict, int]:
        return ({r: None for r in payloads}, 0)

    return CollectiveOp(group=tuple(sorted(group)), kind="barrier", key=key, combine=_combine)
