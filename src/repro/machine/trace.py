"""Execution tracing for SPMD runs.

Attach a :class:`Tracer` to a :class:`~repro.machine.engine.Machine` to
record a structured event stream — sends, receives, collectives and phase
switches, each stamped with the acting rank's simulated clock.  Useful for
debugging communication patterns (who talked to whom, when), verifying
schedules (the linear permutation's step structure is plainly visible),
and rendering per-rank phase timelines.

Tracing is opt-in and has zero cost when absent; determinism of the run is
unaffected either way.

Example::

    tracer = Tracer()
    machine = Machine(4, CM5, tracer=tracer)
    machine.run(program)
    print(tracer.summary())
    for ev in tracer.events_of_kind("send"):
        print(ev)
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One traced occurrence.

    ``kind`` is one of ``"send"``, ``"recv"``, ``"phase"``,
    ``"collective"``.  ``time`` is the acting rank's clock *after* the
    event took effect.  ``detail`` is kind-specific:

    * send: ``{"dest": int, "tag": int, "words": int}``
    * recv: ``{"source": int, "tag": int, "words": int}``
    * phase: ``{"name": str}``
    * collective: ``{"op": str, "group_size": int}``
    """

    time: float
    rank: int
    kind: str
    detail: dict

    def __str__(self) -> str:
        items = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time * 1e6:10.2f}us] rank {self.rank}: {self.kind} {items}"


class Tracer:
    """Collects :class:`TraceEvent` records during a run.

    A tracer may be reused across runs; :meth:`clear` resets it.  Events
    are appended in simulation order (deterministic), not global time
    order — sort by ``(time, rank)`` for a timeline view, which
    :meth:`sorted_events` does.
    """

    def __init__(self, capture_phases: bool = True):
        self.capture_phases = capture_phases
        self.events: list[TraceEvent] = []

    # ------------------------------------------------------------ recording
    def record(self, time: float, rank: int, kind: str, **detail: Any) -> None:
        self.events.append(TraceEvent(time=time, rank=rank, kind=kind, detail=detail))

    def clear(self) -> None:
        self.events.clear()

    # -------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self.events)

    def events_of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def events_of_rank(self, rank: int) -> list[TraceEvent]:
        return [e for e in self.events if e.rank == rank]

    def sorted_events(self) -> list[TraceEvent]:
        return sorted(self.events, key=lambda e: (e.time, e.rank))

    def message_pairs(self) -> list[tuple[int, int, int]]:
        """(source, dest, words) of every traced send, in issue order."""
        return [
            (e.rank, e.detail["dest"], e.detail["words"])
            for e in self.events
            if e.kind == "send"
        ]

    def phase_sequence(self, rank: int) -> list[str]:
        """The phase names rank entered, in order."""
        return [
            e.detail["name"]
            for e in self.events
            if e.kind == "phase" and e.rank == rank
        ]

    # ------------------------------------------------------------ reporting
    def summary(self) -> str:
        counts = Counter(e.kind for e in self.events)
        words = sum(e.detail.get("words", 0) for e in self.events if e.kind == "send")
        parts = [f"{len(self.events)} events"]
        for kind in ("send", "recv", "collective", "phase"):
            if counts.get(kind):
                parts.append(f"{kind}s={counts[kind]}")
        parts.append(f"words={words}")
        return " ".join(parts)

    def communication_matrix(self, nprocs: int):
        """``nprocs x nprocs`` word-count matrix from traced sends."""
        import numpy as np

        m = np.zeros((nprocs, nprocs), dtype=np.int64)
        for src, dst, words in self.message_pairs():
            m[src, dst] += words
        return m

    def to_chrome_trace(self, nprocs: int) -> list[dict]:
        """Export as Chrome trace-event JSON (load in chrome://tracing or
        https://ui.perfetto.dev).

        Phases become duration events (one track per rank), messages
        become flow arrows from send to receive, collectives become
        instants.  Times are microseconds, as the format requires.
        """
        events: list[dict] = []
        for r in range(nprocs):
            events.append({
                "name": "process_name", "ph": "M", "pid": 0, "tid": r,
                "args": {"name": f"rank {r}"},
            })
        # Phase duration events: each phase runs until the rank's next one.
        t_max = max((e.time for e in self.events), default=0.0)
        for r in range(nprocs):
            spans = [
                (e.time, e.detail["name"])
                for e in self.events
                if e.kind == "phase" and e.rank == r
            ]
            for i, (start, name) in enumerate(spans):
                end = spans[i + 1][0] if i + 1 < len(spans) else t_max
                events.append({
                    "name": name, "ph": "X", "pid": 0, "tid": r,
                    "ts": start * 1e6, "dur": max(end - start, 0.0) * 1e6,
                })
        # Message flows: bind sends to the matching receives per channel.
        flow_id = 0
        pending: dict[tuple, list[TraceEvent]] = {}
        for e in self.events:
            if e.kind == "send":
                pending.setdefault((e.rank, e.detail["dest"], e.detail["tag"]), []).append(e)
        for e in self.events:
            if e.kind != "recv":
                continue
            key = (e.detail["source"], e.rank, e.detail["tag"])
            queue = pending.get(key)
            if not queue:
                continue
            s = queue.pop(0)
            flow_id += 1
            events.append({
                "name": f"msg {s.detail['words']}w", "ph": "s", "cat": "msg",
                "pid": 0, "tid": s.rank, "ts": s.time * 1e6, "id": flow_id,
            })
            events.append({
                "name": f"msg {s.detail['words']}w", "ph": "f", "cat": "msg",
                "pid": 0, "tid": e.rank, "ts": e.time * 1e6, "id": flow_id,
                "bp": "e",
            })
        for e in self.events:
            if e.kind == "collective":
                events.append({
                    "name": e.detail["op"], "ph": "i", "pid": 0, "tid": e.rank,
                    "ts": e.time * 1e6, "s": "t",
                })
        return events

    def timeline(self, nprocs: int, width: int = 64) -> str:
        """ASCII phase timeline: one lane per rank, one glyph per slot.

        Each phase gets a letter (in order of first appearance); idle time
        before the first event is blank.  Coarse but enough to eyeball
        phase skew across ranks.
        """
        phase_events = [e for e in self.events if e.kind == "phase"]
        if not phase_events:
            return "(no phase events traced)"
        t_max = max(e.time for e in self.events)
        if t_max <= 0:
            t_max = 1.0
        letters: dict[str, str] = {}
        for e in phase_events:
            name = e.detail["name"]
            if name not in letters:
                letters[name] = chr(ord("a") + (len(letters) % 26))
        lanes = []
        for r in range(nprocs):
            spans = [
                (e.time, e.detail["name"])
                for e in phase_events
                if e.rank == r
            ]
            lane = [" "] * width
            for i, (start, name) in enumerate(spans):
                end = spans[i + 1][0] if i + 1 < len(spans) else t_max
                a = min(width - 1, int(start / t_max * width))
                b = min(width, max(a + 1, int(end / t_max * width)))
                for j in range(a, b):
                    lane[j] = letters[name]
            lanes.append(f"r{r:<3d} |" + "".join(lane) + "|")
        legend = "  ".join(f"{v}={k}" for k, v in letters.items())
        return "\n".join(lanes + [legend])
